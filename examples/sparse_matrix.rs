//! Sparse matrix–vector multiply specialized to a fixed sparsity pattern —
//! the paper's "numerical codes (where … the patterns of sparsity can be
//! run-time constant)".
//!
//! Builds a banded sparse matrix, multiplies a stream of dense vectors,
//! and compares static vs dynamically compiled cycle counts.
//!
//! ```text
//! cargo run --release --example sparse_matrix
//! ```

use dyncomp::{Compiler, Engine};

const SRC: &str = r#"
    struct Sparse { int n; int *rowptr; int *col; double *val; };
    void spmv(struct Sparse *m, double *x, double *y) {
        dynamicRegion (m) {
            int i;
            int j;
            unrolled for (i = 0; i < m->n; i++) {
                double acc = 0.0;
                unrolled for (j = m->rowptr[i]; j < m->rowptr[i + 1]; j++) {
                    acc = acc + m->val[j] * x dynamic[ m->col[j] ];
                }
                y dynamic[ i ] = acc;
            }
        }
    }
"#;

fn main() -> Result<(), dyncomp::Error> {
    // A tridiagonal-ish band matrix of dimension n.
    let n: usize = 24;
    let mut rowptr = vec![0i64];
    let mut col = Vec::new();
    let mut val = Vec::new();
    for i in 0..n as i64 {
        for d in [-1i64, 0, 1] {
            let c = i + d;
            if (0..n as i64).contains(&c) {
                col.push(c);
                val.push(if d == 0 { 2.0 } else { -1.0 });
            }
        }
        rowptr.push(col.len() as i64);
    }

    let mut cycles = Vec::new();
    for dynamic in [false, true] {
        let compiler = if dynamic {
            Compiler::new()
        } else {
            Compiler::static_baseline()
        };
        let program = compiler.compile(SRC)?;
        let mut engine = Engine::new(&program);
        let (mp, xp, yp) = {
            let mut h = engine.heap();
            let rp = h.array_i64(&rowptr).unwrap();
            let cl = h.array_i64(&col).unwrap();
            let vl = h.array_f64(&val).unwrap();
            let mp = h.record(&[n as u64, rp, cl, vl]).unwrap();
            let x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.25).collect();
            let xp = h.array_f64(&x).unwrap();
            let yp = h.alloc(8 * n as u64).unwrap();
            (mp, xp, yp)
        };

        engine.call("spmv", &[mp, xp, yp])?; // warm-up / stitch
        let start = engine.cycles();
        let reps = 200u64;
        for _ in 0..reps {
            engine.call("spmv", &[mp, xp, yp])?;
        }
        let per = (engine.cycles() - start) / reps;
        cycles.push(per);

        // Verify y = A·x against a host computation (Laplacian stencil).
        let x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.25).collect();
        for i in 0..n {
            let got = f64::from_bits(engine.heap().get_u64(yp + 8 * i as u64).unwrap());
            let mut want = 2.0 * x[i];
            if i > 0 {
                want -= x[i - 1];
            }
            if i + 1 < n {
                want -= x[i + 1];
            }
            assert!((got - want).abs() < 1e-12, "row {i}: {got} vs {want}");
        }
        let label = if dynamic {
            "specialized to the pattern"
        } else {
            "static CSR loop          "
        };
        println!("{label}: {per} cycles per multiply");
    }
    println!(
        "\nspeedup from baking in the sparsity pattern: {:.2}x",
        cycles[0] as f64 / cycles[1] as f64
    );
    Ok(())
}
