//! An interpreter that compiles itself away — the paper's flagship use
//! case ("interpreters, where the data structure that represents the
//! program being interpreted is the run-time constant").
//!
//! A tiny stack bytecode is interpreted by an annotated MiniC interpreter;
//! dynamic compilation unrolls the fetch–decode loop over the constant
//! bytecode and resolves every opcode switch, leaving straight-line
//! arithmetic. The example prints per-interpretation cycle counts for the
//! static interpreter vs the dynamically compiled one.
//!
//! ```text
//! cargo run --release --example bytecode_interpreter
//! ```

use dyncomp::{Compiler, Engine};

const SRC: &str = r#"
    /* opcodes: 0 lit, 1 arg0, 2 arg1, 3 add, 4 sub, 5 mul, 6 neg, 7 dup */
    struct Prog { int n; int *ops; int *lits; };
    int run(struct Prog *p, int a, int b) {
        dynamicRegion (p) {
            int stack[64];
            int sp = 0;
            int i;
            unrolled for (i = 0; i < p->n; i++) {
                switch (p->ops[i]) {
                    case 0: stack[sp] = p->lits[i]; sp = sp + 1; break;
                    case 1: stack[sp] = a; sp = sp + 1; break;
                    case 2: stack[sp] = b; sp = sp + 1; break;
                    case 3: sp = sp - 1; stack[sp - 1] = stack[sp - 1] + stack[sp]; break;
                    case 4: sp = sp - 1; stack[sp - 1] = stack[sp - 1] - stack[sp]; break;
                    case 5: sp = sp - 1; stack[sp - 1] = stack[sp - 1] * stack[sp]; break;
                    case 6: stack[sp - 1] = 0 - stack[sp - 1]; break;
                    default: stack[sp] = stack[sp - 1]; sp = sp + 1; break;
                }
            }
            return stack[0];
        }
    }
"#;

/// A tiny assembler for the bytecode.
#[derive(Clone, Copy)]
#[allow(dead_code)] // demo ISA is complete even where the demo program isn't
enum BcOp {
    Lit(i64),
    Arg0,
    Arg1,
    Add,
    Sub,
    Mul,
    Neg,
    Dup,
}

fn assemble(prog: &[BcOp]) -> (Vec<i64>, Vec<i64>) {
    let mut ops = Vec::new();
    let mut lits = Vec::new();
    for &op in prog {
        let (o, l) = match op {
            BcOp::Lit(v) => (0, v),
            BcOp::Arg0 => (1, 0),
            BcOp::Arg1 => (2, 0),
            BcOp::Add => (3, 0),
            BcOp::Sub => (4, 0),
            BcOp::Mul => (5, 0),
            BcOp::Neg => (6, 0),
            BcOp::Dup => (7, 0),
        };
        ops.push(o);
        lits.push(l);
    }
    (ops, lits)
}

fn main() -> Result<(), dyncomp::Error> {
    // (a*a + b*b) * 3 - a, via the stack machine (with a dup and a neg for
    // opcode coverage).
    use BcOp::*;
    let bytecode = [
        Arg0,
        Dup,
        Mul, // a*a
        Arg1,
        Dup,
        Mul, // b*b
        Add,
        Lit(3),
        Mul,
        Arg0,
        Neg,
        Add, // ... - a  == + (-a)
    ];
    let (ops, lits) = assemble(&bytecode);
    let native = |a: i64, b: i64| (a * a + b * b) * 3 - a;

    let mut results = Vec::new();
    for dynamic in [false, true] {
        let compiler = if dynamic {
            Compiler::new()
        } else {
            Compiler::static_baseline()
        };
        let program = compiler.compile(SRC)?;
        let mut engine = Engine::new(&program);
        let prog = {
            let mut h = engine.heap();
            let ops_a = h.array_i64(&ops).unwrap();
            let lits_a = h.array_i64(&lits).unwrap();
            h.record(&[ops.len() as u64, ops_a, lits_a]).unwrap()
        };

        // Warm up (first dynamic call pays set-up + stitching).
        engine.call("run", &[prog, 1, 1])?;
        let start = engine.cycles();
        let n = 500u64;
        for i in 0..n {
            let (a, b) = ((i % 13) as i64 - 6, (i % 7) as i64 - 3);
            let r = engine.call("run", &[prog, a as u64, b as u64])? as i64;
            assert_eq!(r, native(a, b), "a={a} b={b}");
        }
        let per_call = (engine.cycles() - start) / n;
        let label = if dynamic {
            "dynamically compiled"
        } else {
            "static interpreter  "
        };
        println!("{label}: {per_call} cycles per interpretation");
        results.push(per_call);
    }
    println!(
        "\nspeedup from compiling the interpreter away: {:.2}x",
        results[0] as f64 / results[1] as f64
    );
    Ok(())
}
