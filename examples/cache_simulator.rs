//! The paper's running example (§2): a cache simulator whose lookup
//! routine is dynamically compiled for each cache configuration.
//!
//! Simulates a synthetic address trace against several cache
//! configurations simultaneously — the paper's motivation for `key(...)`:
//! "if the cache simulator were simulating multiple cache configurations
//! simultaneously, each configuration would have its own cache values and
//! need cache lookup code specialized to each of them."
//!
//! ```text
//! cargo run --release --example cache_simulator
//! ```

use dyncomp::{Compiler, Engine};

/// The §2 cacheLookup, keyed by the cache descriptor, plus an insert
/// routine used by the simulator to fill lines on misses.
const SRC: &str = r#"
    struct setStructure { unsigned tag; };
    struct cacheLine { struct setStructure **sets; };
    struct Cache {
        unsigned blockSize;
        unsigned numLines;
        struct cacheLine **lines;
        int associativity;
    };
    int cacheLookup(unsigned addr, struct Cache *cache) {
        dynamicRegion key(cache) (cache) {
            unsigned blockSize = cache->blockSize;
            unsigned numLines = cache->numLines;
            unsigned tag = addr / (blockSize * numLines);
            unsigned line = (addr / blockSize) % numLines;
            struct setStructure **setArray = cache->lines[line]->sets;
            int assoc = cache->associativity;
            int set;
            unrolled for (set = 0; set < assoc; set++) {
                if (setArray[set] dynamic-> tag == tag)
                    return 1;
            }
            return 0;
        }
    }
    void cacheInsert(unsigned addr, struct Cache *cache) {
        unsigned blockSize = cache->blockSize;
        unsigned numLines = cache->numLines;
        unsigned tag = addr / (blockSize * numLines);
        unsigned line = (addr / blockSize) % numLines;
        struct setStructure **setArray = cache->lines[line]->sets;
        int assoc = cache->associativity;
        int set;
        /* shift existing entries down (LRU-ish), insert at slot 0 */
        int s;
        for (s = assoc - 1; s > 0; s--) {
            setArray[s]->tag = setArray[s - 1]->tag;
        }
        setArray[0]->tag = tag;
    }
"#;

/// Build one cache in VM memory; returns the `Cache*`.
fn build_cache(engine: &mut Engine, block_size: u64, num_lines: u64, assoc: u64) -> u64 {
    let mut h = engine.heap();
    let mut line_recs = Vec::new();
    for _ in 0..num_lines {
        let mut sets = Vec::new();
        for _ in 0..assoc {
            sets.push(h.record(&[u64::MAX]).unwrap()); // empty tag
        }
        let sets_arr = h.array_u64(&sets).unwrap();
        line_recs.push(h.record(&[sets_arr]).unwrap());
    }
    let lines = h.array_u64(&line_recs).unwrap();
    h.record(&[block_size, num_lines, lines, assoc]).unwrap()
}

/// A simple strided-plus-random reference trace.
fn trace(n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut lcg = 0x2545F4914F6CDD1Du64;
    for i in 0..n {
        // Mix sequential locality with jumps.
        if i % 4 != 0 {
            out.push(((i * 8) % 0x8000) as u64);
        } else {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.push(lcg % 0x10000);
        }
    }
    out
}

fn main() -> Result<(), dyncomp::Error> {
    let program = Compiler::new().compile(SRC)?;
    let mut engine = Engine::new(&program);

    // Three configurations simulated against the same trace — one stitched
    // lookup routine per configuration, cached by key.
    let configs = [(32u64, 512u64, 4u64), (64, 128, 2), (16, 1024, 1)];
    let caches: Vec<u64> = configs
        .iter()
        .map(|&(bs, nl, a)| build_cache(&mut engine, bs, nl, a))
        .collect();

    let addrs = trace(3000);
    println!(
        "simulating {} references against {} configurations\n",
        addrs.len(),
        configs.len()
    );
    for (ci, (&cache, &(bs, nl, a))) in caches.iter().zip(configs.iter()).enumerate() {
        let mut hits = 0u64;
        let start = engine.cycles();
        for &addr in &addrs {
            if engine.call("cacheLookup", &[addr, cache])? == 1 {
                hits += 1;
            } else {
                engine.call("cacheInsert", &[addr, cache])?;
            }
        }
        let cycles = engine.cycles() - start;
        println!(
            "config {ci}: {bs}B blocks x {nl} lines x {a}-way  ->  hit rate {:5.1}%  ({cycles} cycles)",
            100.0 * hits as f64 / addrs.len() as f64,
        );
    }

    let report = engine.region_report(0);
    println!();
    println!(
        "lookup region: {} stitched versions (one per configuration), \
         {} loop iterations unrolled in total,",
        report.stitches, report.stitch_stats.loop_iterations
    );
    println!(
        "{} constant branches resolved, {} divisions/modulos strength-reduced to shifts/masks",
        report.stitch_stats.const_branches_resolved, report.stitch_stats.strength_reductions
    );
    Ok(())
}
