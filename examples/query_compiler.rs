//! Query compiler: specialize a record-filter predicate to each query.
//!
//! ```text
//! cargo run --example query_compiler
//! ```
//!
//! A database-style workload, the other classic home of dynamic
//! compilation (the paper's §6 cites Keppel's and Engler's work on
//! exactly this pattern). A query is a little condition program —
//! `(field, op, value)` triples — normally run by an interpreter that
//! re-decodes it for every record. Annotating the query pointer as a
//! run-time constant and unrolling the condition loop compiles each
//! query down to straight-line compares against inline immediates: the
//! interpreter disappears, exactly like the paper's bytecode dispatcher.
//!
//! The region is `key(q)`, so each distinct query gets its own stitched
//! instance in the region's code cache, and switching between live
//! queries is a cache hit, not a re-compile.

use dyncomp::{Compiler, Engine, EngineOptions};

/// Condition ops in the query encoding.
const EQ: i64 = 0;
const LT: i64 = 1;
const GT: i64 = 2;

/// Record field indices (a tiny "employees" schema).
const AGE: i64 = 0;
const DEPT: i64 = 1;
const SALARY: i64 = 2;
const YEARS: i64 = 3;

fn main() -> Result<(), dyncomp::Error> {
    // The predicate interpreter. `q` points at [n, f0,op0,v0, f1,op1,v1, …]
    // and is constant per query; `rec` is a different record every call.
    // Everything derived from `q` — the trip count, each condition's
    // field/op/value, even which comparison runs — folds away at stitch
    // time; only the `rec[...]` loads and compares remain.
    let src = r#"
        int matches(int *q, int *rec) {
            dynamicRegion key(q) (q) {
                int n = q[0];
                int i;
                unrolled for (i = 0; i < n; i++) {
                    int field = q[1 + 3 * i];
                    int op    = q[2 + 3 * i];
                    int val   = q[3 + 3 * i];
                    int rv = rec[field];
                    if (op == 0) {
                        if (rv != val) return 0;
                    } else if (op == 1) {
                        if (rv >= val) return 0;
                    } else {
                        if (rv <= val) return 0;
                    }
                }
                return 1;
            }
        }
    "#;
    let program = Compiler::new().compile(src)?;
    let mut engine = Engine::with_options(
        &program,
        // Keep at most 8 compiled queries around (plenty here; with more
        // live queries than capacity, the least recently used would be
        // evicted and re-stitched on return).
        EngineOptions {
            keyed_cache_capacity: Some(8),
            ..EngineOptions::default()
        },
    );

    // A synthetic table of 1000 records.
    let mut records = Vec::new();
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut rand = move |m: i64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % m as u64) as i64
    };
    for _ in 0..1000 {
        let rec = [rand(45) + 20, rand(5), rand(90_000) + 30_000, rand(30)];
        records.push(engine.heap().array_i64(&rec).unwrap());
    }

    // Three queries, compiled on first use.
    let queries: Vec<(&str, Vec<i64>)> = vec![
        ("age > 40 AND dept == 2", vec![2, AGE, GT, 40, DEPT, EQ, 2]),
        ("salary < 50000", vec![1, SALARY, LT, 50_000]),
        (
            "30 < age < 50 AND years > 10 AND dept == 1",
            vec![4, AGE, GT, 30, AGE, LT, 50, YEARS, GT, 10, DEPT, EQ, 1],
        ),
    ];
    let handles: Vec<u64> = queries
        .iter()
        .map(|(_, enc)| engine.heap().array_i64(enc).unwrap())
        .collect();

    for (qi, (text, _)) in queries.iter().enumerate() {
        let mut hits = 0u64;
        for &rec in &records {
            hits += engine.call("matches", &[handles[qi], rec])?;
        }
        println!("query {qi}: {text:<44} -> {hits:>4}/1000 records");
    }

    // Re-running a query is a code-cache hit: no new stitches.
    let before = engine.region_report(0).stitches;
    for &rec in records.iter().take(100) {
        engine.call("matches", &[handles[0], rec])?;
    }
    let report = engine.region_report(0);
    assert_eq!(report.stitches, before, "query 0 was already compiled");

    println!();
    println!(
        "region 0: {} entries, {} compile(s) (one per query), {} eviction(s)",
        report.invocations, report.stitches, report.evictions
    );
    for (i, (key, code)) in engine.stitched_instances(0).iter().enumerate() {
        println!(
            "  query at {:#x}: {:>3} instructions of straight-line code",
            key[0],
            code.len()
        );
        // The single-condition query compiles to just a handful of
        // instructions: load the field, one compare, one branch, returns.
        if i == 1 {
            for line in dyncomp_machine::disasm::disassemble(code, 0) {
                println!("        {}", line.text);
            }
        }
    }
    Ok(())
}
