//! Quickstart: compile an annotated C function, run it on the simulated
//! machine, and watch the dynamic compiler work.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dyncomp::{Compiler, Engine};

fn main() -> Result<(), dyncomp::Error> {
    // A polynomial whose coefficient vector is fixed at run time: the
    // `dynamicRegion (coef, n)` annotation promises `coef` and `n` never
    // change after the first execution, so the compiler may specialize.
    let src = r#"
        int horner(int *coef, int n, int x) {
            dynamicRegion (coef, n) {
                int acc = 0;
                int i;
                unrolled for (i = 0; i < n; i++) {
                    acc = acc * x + coef[i];
                }
                return acc;
            }
        }
    "#;

    // Static compiler: analyses, region splitting, templates, codegen.
    let program = Compiler::new().compile(src)?;
    println!(
        "compiled: {} region(s), {} template instruction(s), {} table slot(s)",
        program.region_count(),
        program.compiled.regions[0].template.template_words(),
        program.compiled.regions[0].table_static_len,
    );

    // Run-time: build the constant data, call the function.
    let mut engine = Engine::new(&program);
    let coef = engine.heap().array_i64(&[2, -3, 0, 7]).unwrap();

    // First call: set-up code runs, the stitcher instantiates the
    // template, and the region entry is patched to branch straight to the
    // stitched code.
    let first_start = engine.cycles();
    let v = engine.call("horner", &[coef, 4, 10])?;
    let first = engine.cycles() - first_start;
    println!("horner(x=10) = {v}   (first call: {first} cycles, includes set-up)");
    assert_eq!(v as i64, 2 * 1000 - 3 * 100 + 7);

    // Later calls run the specialized code: the loop is fully unrolled,
    // the coefficients are immediates, the loads are gone.
    let again_start = engine.cycles();
    let v = engine.call("horner", &[coef, 4, 2])?;
    let again = engine.cycles() - again_start;
    println!("horner(x=2)  = {v}   (warm call: {again} cycles)");
    assert_eq!(v as i64, 2 * 8 - 3 * 4 + 7);

    let report = engine.region_report(0);
    println!();
    println!("dynamic compilation report:");
    println!("  stitched once:        {}", report.stitches == 1);
    println!("  set-up cycles:        {}", report.setup_cycles);
    println!("  stitcher cycles:      {}", report.stitch_cycles);
    println!("  instructions emitted: {}", report.instructions_stitched);
    println!(
        "  loop iterations unrolled: {}",
        report.stitch_stats.loop_iterations
    );
    println!(
        "  constants patched inline: {}",
        report.stitch_stats.holes_inline
    );
    Ok(())
}
