//! A two-pass assembler: instruction stream with symbolic labels, resolved
//! to encoded SimAlpha words. Used by the code generator and by tests.

use crate::isa::{encode, EncodeError, Inst, Op, Reg};
use std::collections::HashMap;
use std::fmt;

/// A symbolic code label.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// One assembler item.
#[derive(Clone, Debug, PartialEq)]
enum Item {
    /// A fixed instruction.
    Inst(Inst),
    /// A branch-format instruction targeting a label (displacement filled
    /// at assembly).
    BranchTo(Op, Reg, Label),
    /// Bind a label at the current position.
    Bind(Label),
}

/// Assembly failure.
#[derive(Debug, Clone, PartialEq)]
pub enum AsmError {
    /// A referenced label was never bound.
    UnboundLabel(Label),
    /// A label was bound twice.
    DuplicateLabel(Label),
    /// Field encoding failure.
    Encode(EncodeError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "unbound label {l}"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label {l}"),
            AsmError::Encode(e) => write!(f, "encoding error: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> Self {
        AsmError::Encode(e)
    }
}

/// The assembler.
#[derive(Default, Debug)]
pub struct Assembler {
    items: Vec<Item>,
    next_label: u32,
}

/// Assembled output.
#[derive(Debug, Clone)]
pub struct Assembled {
    /// Encoded code words.
    pub words: Vec<u32>,
    /// Word offset of each bound label.
    pub label_offsets: HashMap<Label, u32>,
    /// Word offset of each input instruction item (in item order, labels
    /// excluded). Useful for attaching directives to emitted positions.
    pub inst_offsets: Vec<u32>,
}

impl Assembler {
    /// A fresh assembler.
    pub fn new() -> Self {
        Assembler::default()
    }

    /// Allocate a fresh label.
    pub fn fresh_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Append an instruction; returns its item index.
    pub fn push(&mut self, inst: Inst) -> usize {
        self.items.push(Item::Inst(inst));
        self.inst_count() - 1
    }

    /// Append a branch to a label; returns its item index.
    pub fn branch_to(&mut self, op: Op, ra: Reg, target: Label) -> usize {
        debug_assert_eq!(op.format(), crate::isa::Format::Branch);
        self.items.push(Item::BranchTo(op, ra, target));
        self.inst_count() - 1
    }

    /// Bind `label` at the current position.
    pub fn bind(&mut self, label: Label) {
        self.items.push(Item::Bind(label));
    }

    fn inst_count(&self) -> usize {
        self.items
            .iter()
            .filter(|i| !matches!(i, Item::Bind(_)))
            .count()
    }

    /// Assemble to code words.
    ///
    /// # Errors
    /// Fails on unbound/duplicate labels or out-of-range fields.
    pub fn assemble(&self) -> Result<Assembled, AsmError> {
        // Pass 1: compute word offsets.
        let mut label_offsets: HashMap<Label, u32> = HashMap::new();
        let mut inst_offsets: Vec<u32> = Vec::new();
        let mut at: u32 = 0;
        for item in &self.items {
            match item {
                Item::Bind(l) => {
                    if label_offsets.insert(*l, at).is_some() {
                        return Err(AsmError::DuplicateLabel(*l));
                    }
                }
                Item::Inst(i) => {
                    inst_offsets.push(at);
                    at += if i.is_wide() { 2 } else { 1 };
                }
                Item::BranchTo(..) => {
                    inst_offsets.push(at);
                    at += 1;
                }
            }
        }
        // Pass 2: encode.
        let mut words = Vec::with_capacity(at as usize);
        let mut pos: u32 = 0;
        for item in &self.items {
            match item {
                Item::Bind(_) => {}
                Item::Inst(i) => {
                    let (w, extra) = encode(i)?;
                    words.push(w);
                    pos += 1;
                    if let Some(x) = extra {
                        words.push(x);
                        pos += 1;
                    }
                }
                Item::BranchTo(op, ra, l) => {
                    let target = *label_offsets.get(l).ok_or(AsmError::UnboundLabel(*l))?;
                    let disp = target as i64 - (pos as i64 + 1);
                    let (w, _) = encode(&Inst::branch(*op, *ra, disp as i32))?;
                    words.push(w);
                    pos += 1;
                }
            }
        }
        Ok(Assembled {
            words,
            label_offsets,
            inst_offsets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Operand, ZERO};
    use crate::vm::{Stop, Vm};

    #[test]
    fn forward_and_backward_branches() {
        // r1 = 5; loop: r2 += r1; r1 -= 1; bne r1, loop; halt
        let mut a = Assembler::new();
        let l = a.fresh_label();
        a.push(Inst::op3(Op::Addq, ZERO, Operand::Lit(5), 1));
        a.bind(l);
        a.push(Inst::op3(Op::Addq, 2, Operand::Reg(1), 2));
        a.push(Inst::op3(Op::Subq, 1, Operand::Lit(1), 1));
        a.branch_to(Op::Bne, 1, l);
        a.push(Inst {
            op: Op::Halt,
            ra: 0,
            rb: Operand::Reg(ZERO),
            rc: 0,
            imm: 0,
        });
        let out = a.assemble().unwrap();

        let mut vm = Vm::new(1 << 16);
        let start = vm.append_code(&out.words);
        vm.pc = start;
        assert_eq!(vm.run().unwrap(), Stop::Halted);
        assert_eq!(vm.reg(2), 5 + 4 + 3 + 2 + 1);
    }

    #[test]
    fn wide_instructions_offset_labels_correctly() {
        let mut a = Assembler::new();
        let skip = a.fresh_label();
        a.branch_to(Op::Br, ZERO, skip);
        a.push(Inst::ldiw(1, 111)); // 2 words, skipped
        a.bind(skip);
        a.push(Inst::op3(Op::Addq, ZERO, Operand::Lit(9), 2));
        a.push(Inst {
            op: Op::Halt,
            ra: 0,
            rb: Operand::Reg(ZERO),
            rc: 0,
            imm: 0,
        });
        let out = a.assemble().unwrap();
        assert_eq!(out.label_offsets[&skip], 3);

        let mut vm = Vm::new(1 << 16);
        let start = vm.append_code(&out.words);
        vm.pc = start;
        vm.run().unwrap();
        assert_eq!(vm.reg(1), 0);
        assert_eq!(vm.reg(2), 9);
    }

    #[test]
    fn unbound_label_errors() {
        let mut a = Assembler::new();
        let l = a.fresh_label();
        a.branch_to(Op::Br, ZERO, l);
        assert_eq!(a.assemble().unwrap_err(), AsmError::UnboundLabel(l));
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Assembler::new();
        let l = a.fresh_label();
        a.bind(l);
        a.bind(l);
        assert_eq!(a.assemble().unwrap_err(), AsmError::DuplicateLabel(l));
    }

    #[test]
    fn inst_offsets_track_positions() {
        let mut a = Assembler::new();
        a.push(Inst::ldiw(1, 5));
        a.push(Inst::op3(Op::Addq, 1, Operand::Lit(1), 1));
        let out = a.assemble().unwrap();
        assert_eq!(out.inst_offsets, vec![0, 2]);
    }
}
