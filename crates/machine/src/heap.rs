//! Host-side helpers for laying out C-like data structures in VM memory.
//!
//! Benchmarks build their run-time-constant data structures (cache
//! descriptors, sparse matrices, expression programs, …) with these
//! helpers, then pass the addresses to compiled code.

use dyncomp_ir::eval::{EvalError, Memory};

/// A builder over a [`Memory`] for structs, arrays and linked records.
pub struct HeapBuilder<'m> {
    mem: &'m mut Memory,
}

impl<'m> HeapBuilder<'m> {
    /// Wrap a memory image.
    pub fn new(mem: &'m mut Memory) -> Self {
        HeapBuilder { mem }
    }

    /// Allocate `n` zeroed bytes; returns the address.
    ///
    /// # Errors
    /// Fails when the heap is exhausted.
    pub fn alloc(&mut self, n: u64) -> Result<u64, EvalError> {
        self.mem.alloc(n)
    }

    /// Write a 64-bit word.
    pub fn put_u64(&mut self, addr: u64, v: u64) -> Result<(), EvalError> {
        self.mem.write_u64(addr, v)
    }

    /// Write a signed 64-bit word.
    pub fn put_i64(&mut self, addr: u64, v: i64) -> Result<(), EvalError> {
        self.mem.write_u64(addr, v as u64)
    }

    /// Write a double.
    pub fn put_f64(&mut self, addr: u64, v: f64) -> Result<(), EvalError> {
        self.mem.write_u64(addr, v.to_bits())
    }

    /// Write a 32-bit word.
    pub fn put_u32(&mut self, addr: u64, v: u32) -> Result<(), EvalError> {
        self.mem.write(addr, dyncomp_ir::MemSize::B4, u64::from(v))
    }

    /// Allocate and fill an array of 64-bit words; returns its address.
    ///
    /// # Errors
    /// Fails when the heap is exhausted.
    pub fn array_u64(&mut self, values: &[u64]) -> Result<u64, EvalError> {
        let a = self.alloc(8 * values.len() as u64)?;
        for (i, &v) in values.iter().enumerate() {
            self.put_u64(a + 8 * i as u64, v)?;
        }
        Ok(a)
    }

    /// Allocate and fill an array of signed 64-bit words.
    ///
    /// # Errors
    /// Fails when the heap is exhausted.
    pub fn array_i64(&mut self, values: &[i64]) -> Result<u64, EvalError> {
        let a = self.alloc(8 * values.len() as u64)?;
        for (i, &v) in values.iter().enumerate() {
            self.put_i64(a + 8 * i as u64, v)?;
        }
        Ok(a)
    }

    /// Allocate and fill an array of doubles.
    ///
    /// # Errors
    /// Fails when the heap is exhausted.
    pub fn array_f64(&mut self, values: &[f64]) -> Result<u64, EvalError> {
        let a = self.alloc(8 * values.len() as u64)?;
        for (i, &v) in values.iter().enumerate() {
            self.put_f64(a + 8 * i as u64, v)?;
        }
        Ok(a)
    }

    /// Allocate a struct of `fields` 64-bit values in declaration order;
    /// returns its address (fields at `addr + 8*i`).
    ///
    /// # Errors
    /// Fails when the heap is exhausted.
    pub fn record(&mut self, fields: &[u64]) -> Result<u64, EvalError> {
        self.array_u64(fields)
    }

    /// Read back a 64-bit word (for assertions in tests).
    ///
    /// # Errors
    /// Fails on out-of-bounds access.
    pub fn get_u64(&self, addr: u64) -> Result<u64, EvalError> {
        self.mem.read_u64(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_array_layout() {
        let mut mem = Memory::with_capacity(1 << 16);
        let mut hb = HeapBuilder::new(&mut mem);
        let arr = hb.array_i64(&[10, -20, 30]).unwrap();
        let rec = hb.record(&[1, arr, 3]).unwrap();
        assert_eq!(hb.get_u64(rec).unwrap(), 1);
        assert_eq!(hb.get_u64(rec + 8).unwrap(), arr);
        assert_eq!(hb.get_u64(arr + 8).unwrap() as i64, -20);
    }

    #[test]
    fn float_array_bits() {
        let mut mem = Memory::with_capacity(1 << 16);
        let mut hb = HeapBuilder::new(&mut mem);
        let a = hb.array_f64(&[1.5, -2.5]).unwrap();
        assert_eq!(f64::from_bits(hb.get_u64(a + 8).unwrap()), -2.5);
    }
}
