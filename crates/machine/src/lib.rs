//! # dyncomp-machine
//!
//! **SimAlpha**: the simulated compilation target of the `dyncomp`
//! reproduction of *"Fast, Effective Dynamic Compilation"* (PLDI 1996).
//!
//! The paper's experiments ran on a DEC Alpha 21064 and measured with its
//! hardware cycle counter; this crate substitutes a deterministic,
//! cycle-accounted interpreter for an Alpha-like 64-bit RISC:
//!
//! * [`isa`] — the instruction set: 32-bit words, 32 integer + 32 float
//!   registers, and (crucially for the reproduction) **8-bit operate
//!   literals**, so that integer template holes only patch inline when the
//!   run-time constant is small, exercising the paper's
//!   too-large-constant fallbacks;
//! * [`asm`] — a two-pass label assembler;
//! * [`vm`] — the interpreter with a 21064-flavoured [`vm::CycleModel`] and
//!   the two dynamic-compilation traps (`EnterRegion`, `EndSetup`);
//! * [`template`] — the machine-code template and stitcher-directive data
//!   model of the paper's Table 1, shared between the static compiler
//!   (`dyncomp-codegen`) and the run-time stitcher (`dyncomp-stitcher`);
//! * [`verify`] — install-time verification of patched code: every word
//!   of a stitched instance is decoded and range-checked before it may
//!   join the code space;
//! * [`heap`] — host-side helpers for building C-like data structures in
//!   VM memory;
//! * [`disasm`] — a disassembler for inspection and debugging.
//!
//! ## Example
//!
//! ```
//! use dyncomp_machine::isa::{Inst, Op, Operand, ZERO};
//! use dyncomp_machine::asm::Assembler;
//! use dyncomp_machine::vm::{Stop, Vm};
//!
//! // r0 = 6 * 7, then halt.
//! let mut a = Assembler::new();
//! a.push(Inst::op3(Op::Addq, ZERO, Operand::Lit(6), 1));
//! a.push(Inst::op3(Op::Mulq, 1, Operand::Lit(7), 0));
//! a.push(Inst { op: Op::Halt, ra: 0, rb: Operand::Reg(ZERO), rc: 0, imm: 0 });
//! let out = a.assemble()?;
//!
//! let mut vm = Vm::new(1 << 16);
//! let entry = vm.append_code(&out.words);
//! vm.pc = entry;
//! assert_eq!(vm.run()?, Stop::Halted);
//! assert_eq!(vm.reg(0), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod asm;
pub mod disasm;
pub mod heap;
pub mod isa;
pub mod template;
pub mod verify;
pub mod vm;

pub use asm::{Assembled, Assembler, Label};
pub use heap::HeapBuilder;
pub use isa::{Inst, Op, Operand, Reg};
pub use template::{RegionCode, Template};
pub use verify::{verify_code, CodeVerifyError};
pub use vm::{CycleModel, Stop, Vm, VmError};
