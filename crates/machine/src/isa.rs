//! The SimAlpha instruction set: encoding and decoding.
//!
//! A 64-bit RISC in the style of the DEC Alpha 21064 the paper evaluated
//! on. Fixed 32-bit instruction words (except [`Op::Ldiw`], which carries a
//! 32-bit immediate in a second word), 32 integer registers (`r31` reads as
//! zero), 32 double-precision float registers (`f31` reads as 0.0).
//!
//! Like the real Alpha, *operate* instructions take either a register or an
//! **8-bit zero-extended literal** as their second operand. The narrow
//! literal is load-bearing for the reproduction: integer template holes are
//! patched inline only when the run-time constant fits 8 bits, otherwise
//! the stitcher falls back to constructing the value or loading it from the
//! linearized constants table, exactly the trade-off §4 of the paper
//! describes.
//!
//! ## Encodings (bit fields, msb first)
//!
//! | format  | layout |
//! |---------|--------|
//! | operate | `op[31:24] ra[23:19] rb[18:14]/lit[18:11] fmt[10] rc[4:0]` |
//! | memory  | `op[31:24] ra[23:19] rb[18:14] disp[13:0]` (signed words/bytes per op) |
//! | branch  | `op[31:24] ra[23:19] disp[18:0]` (signed word displacement) |
//! | special | `op[31:24] ra[23:19] rb[18:14] imm[13:0]` |
//!
//! `Ldiw rc, #imm32` occupies two words: the first in special format, the
//! second the raw immediate (sign-extended to 64 bits).

use std::fmt;

/// Integer register name (0–31); `r31` is hardwired zero.
pub type Reg = u8;

/// The zero register.
pub const ZERO: Reg = 31;
/// Stack pointer.
pub const SP: Reg = 30;
/// Global pointer (reserved).
pub const GP: Reg = 29;
/// Constants-table pointer: set-up code leaves the table address here for
/// the stitcher (read at the `EndSetup` trap).
pub const CTP: Reg = 28;
/// Linearized-constants-table base inside stitched code.
pub const LIN: Reg = 27;
/// Return-address register.
pub const RA: Reg = 26;
/// Stitcher scratch registers, reserved by register allocation so the
/// stitcher may materialize large constants without clobbering live state.
pub const SCRATCH0: Reg = 25;
/// Second stitcher scratch register.
pub const SCRATCH1: Reg = 24;
/// First integer argument register (`r16`–`r21` carry arguments).
pub const ARG0: Reg = 16;
/// Integer return-value register.
pub const RET: Reg = 0;
/// First float argument register (`f16`–`f21`).
pub const FARG0: Reg = 16;
/// Float return-value register.
pub const FRET: Reg = 0;

/// Opcodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // the variants are the ISA reference table below
pub enum Op {
    // Integer operate (register or 8-bit literal second operand).
    Addq = 0,
    Subq,
    Mulq,
    Divq,
    Divqu,
    Remq,
    Remqu,
    And,
    Bis, // or
    Xor,
    Ornot, // rc = ra | !rb  (NOT via ra = zero)
    Sll,
    Srl,
    Sra,
    Cmpeq,
    Cmpne,
    Cmplt,
    Cmple,
    Cmpult,
    Cmpule,
    Sextb,
    Sextw,
    Sextl,
    Zextb,
    Zextw,
    Zextl,
    Cmoveq, // rc = rb if ra == 0
    Cmovne, // rc = rb if ra != 0
    // Memory format.
    Lda,  // ra = rb + disp
    Ldbu, // zero-extending loads
    Ldwu,
    Ldlu,
    Ldb, // sign-extending loads
    Ldw,
    Ldl,
    Ldq,
    Stb,
    Stw,
    Stl,
    Stq,
    Ldt, // float load (fa)
    Stt, // float store (fa)
    // Branch format (conditional on ra; Br/Bsr write the link into ra).
    Br,
    Bsr,
    Beq,
    Bne,
    Blt,
    Ble,
    Bgt,
    Bge,
    // Jump format (special): ra = link, rb = target address register.
    Jmp,
    Jsr,
    // Float operate: fa op fb -> fc (register form only).
    Addt,
    Subt,
    Mult,
    Divt,
    Cmpteq, // writes 0/1 to INTEGER rc
    Cmptlt,
    Cmptle,
    Sqrtt,
    Cvtqt,   // int ra -> float fc
    Cvttq,   // float fa -> int rc
    Fmov,    // fc = fb
    Fneg,    // fc = -fb
    Fcmovne, // fc = fb if integer ra != 0
    // Specials.
    Ldiw,        // rc = sext(imm32 in next word)
    Alloc,       // rc = bump-allocate ra bytes (operate form)
    EnterRegion, // trap: dynamic region entry; imm = region number
    EndSetup,    // trap: set-up finished, table address in r28; imm = region number
    Halt,
}

impl Op {
    /// All opcodes, for decode validation.
    pub const COUNT: u8 = Op::Halt as u8 + 1;

    /// Decode an opcode byte.
    pub fn from_u8(v: u8) -> Option<Op> {
        if v < Self::COUNT {
            // SAFETY-free transmute alternative: match through a table.
            Some(OP_TABLE[v as usize])
        } else {
            None
        }
    }
}

const OP_TABLE: [Op; Op::COUNT as usize] = {
    use Op::*;
    [
        Addq,
        Subq,
        Mulq,
        Divq,
        Divqu,
        Remq,
        Remqu,
        And,
        Bis,
        Xor,
        Ornot,
        Sll,
        Srl,
        Sra,
        Cmpeq,
        Cmpne,
        Cmplt,
        Cmple,
        Cmpult,
        Cmpule,
        Sextb,
        Sextw,
        Sextl,
        Zextb,
        Zextw,
        Zextl,
        Cmoveq,
        Cmovne,
        Lda,
        Ldbu,
        Ldwu,
        Ldlu,
        Ldb,
        Ldw,
        Ldl,
        Ldq,
        Stb,
        Stw,
        Stl,
        Stq,
        Ldt,
        Stt,
        Br,
        Bsr,
        Beq,
        Bne,
        Blt,
        Ble,
        Bgt,
        Bge,
        Jmp,
        Jsr,
        Addt,
        Subt,
        Mult,
        Divt,
        Cmpteq,
        Cmptlt,
        Cmptle,
        Sqrtt,
        Cvtqt,
        Cvttq,
        Fmov,
        Fneg,
        Fcmovne,
        Ldiw,
        Alloc,
        EnterRegion,
        EndSetup,
        Halt,
    ]
};

/// Instruction format classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Integer/float operate: `ra op rb/lit -> rc`.
    Operate,
    /// Memory: `ra <-> mem[rb + disp]` (also `Lda`).
    Memory,
    /// Branch: conditional/unconditional pc-relative.
    Branch,
    /// Jump through register.
    Jump,
    /// Specials (`Ldiw`, traps, halt).
    Special,
}

impl Op {
    /// The format class of this opcode.
    pub fn format(self) -> Format {
        use Op::*;
        match self {
            Addq | Subq | Mulq | Divq | Divqu | Remq | Remqu | And | Bis | Xor | Ornot | Sll
            | Srl | Sra | Cmpeq | Cmpne | Cmplt | Cmple | Cmpult | Cmpule | Sextb | Sextw
            | Sextl | Zextb | Zextw | Zextl | Cmoveq | Cmovne | Addt | Subt | Mult | Divt
            | Cmpteq | Cmptlt | Cmptle | Sqrtt | Cvtqt | Cvttq | Fmov | Fneg | Fcmovne | Alloc => {
                Format::Operate
            }
            Lda | Ldbu | Ldwu | Ldlu | Ldb | Ldw | Ldl | Ldq | Stb | Stw | Stl | Stq | Ldt
            | Stt => Format::Memory,
            Br | Bsr | Beq | Bne | Blt | Ble | Bgt | Bge => Format::Branch,
            Jmp | Jsr => Format::Jump,
            Ldiw | EnterRegion | EndSetup | Halt => Format::Special,
        }
    }

    /// Whether this is a float-operand operate instruction.
    pub fn is_float_op(self) -> bool {
        use Op::*;
        matches!(
            self,
            Addt | Subt
                | Mult
                | Divt
                | Cmpteq
                | Cmptlt
                | Cmptle
                | Sqrtt
                | Cvttq
                | Fmov
                | Fneg
                | Ldt
                | Stt
        )
    }
}

/// The second operand of an operate instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// An 8-bit zero-extended literal.
    Lit(u8),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "r{r}"),
            Operand::Lit(l) => write!(f, "#{l}"),
        }
    }
}

/// A decoded instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Inst {
    /// Opcode.
    pub op: Op,
    /// First source / branch test / memory data register.
    pub ra: Reg,
    /// Second operand (operate), base register (memory), or target
    /// register (jump).
    pub rb: Operand,
    /// Destination register (operate/jump link).
    pub rc: Reg,
    /// Memory displacement (signed), branch word displacement (signed), or
    /// special immediate.
    pub imm: i32,
}

impl Inst {
    /// An operate instruction `ra op rb -> rc`.
    pub fn op3(op: Op, ra: Reg, rb: Operand, rc: Reg) -> Inst {
        debug_assert_eq!(op.format(), Format::Operate);
        Inst {
            op,
            ra,
            rb,
            rc,
            imm: 0,
        }
    }

    /// A memory instruction `ra <-> mem[rb + disp]`.
    pub fn mem(op: Op, ra: Reg, rb: Reg, disp: i16) -> Inst {
        debug_assert_eq!(op.format(), Format::Memory);
        Inst {
            op,
            ra,
            rb: Operand::Reg(rb),
            rc: 0,
            imm: disp as i32,
        }
    }

    /// A branch instruction with a word displacement.
    pub fn branch(op: Op, ra: Reg, disp: i32) -> Inst {
        debug_assert_eq!(op.format(), Format::Branch);
        Inst {
            op,
            ra,
            rb: Operand::Reg(ZERO),
            rc: 0,
            imm: disp,
        }
    }

    /// A jump through register `rb`, linking into `ra`.
    pub fn jump(op: Op, ra: Reg, rb: Reg) -> Inst {
        debug_assert_eq!(op.format(), Format::Jump);
        Inst {
            op,
            ra,
            rb: Operand::Reg(rb),
            rc: 0,
            imm: 0,
        }
    }

    /// `Ldiw rc, #imm32` (occupies two code words).
    pub fn ldiw(rc: Reg, imm: i32) -> Inst {
        Inst {
            op: Op::Ldiw,
            ra: 0,
            rb: Operand::Reg(ZERO),
            rc,
            imm,
        }
    }

    /// Whether this instruction occupies two code words.
    pub fn is_wide(&self) -> bool {
        self.op == Op::Ldiw
    }
}

/// Limits of the encodable fields.
pub mod limits {
    /// Memory displacement range (14-bit signed).
    pub const DISP_MIN: i32 = -(1 << 13);
    /// Memory displacement max.
    pub const DISP_MAX: i32 = (1 << 13) - 1;
    /// Branch displacement range (19-bit signed words).
    pub const BDISP_MIN: i32 = -(1 << 18);
    /// Branch displacement max.
    pub const BDISP_MAX: i32 = (1 << 18) - 1;
}

/// Encoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// Memory displacement out of the 14-bit signed range.
    DispRange(i32),
    /// Branch displacement out of the 19-bit signed range.
    BranchRange(i32),
    /// Special immediate out of range.
    ImmRange(i32),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::DispRange(d) => write!(f, "memory displacement {d} out of range"),
            EncodeError::BranchRange(d) => write!(f, "branch displacement {d} out of range"),
            EncodeError::ImmRange(d) => write!(f, "immediate {d} out of range"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Encode an instruction. Returns one word, plus a second for `Ldiw`.
///
/// # Errors
/// Fails when a displacement or immediate exceeds its field.
pub fn encode(inst: &Inst) -> Result<(u32, Option<u32>), EncodeError> {
    let op = (inst.op as u32) << 24;
    let ra = (inst.ra as u32 & 31) << 19;
    let word = match inst.op.format() {
        Format::Operate => {
            let (mid, fmt) = match inst.rb {
                Operand::Reg(r) => ((r as u32 & 31) << 14, 0u32),
                Operand::Lit(l) => ((l as u32) << 11, 1u32),
            };
            op | ra | mid | (fmt << 10) | (inst.rc as u32 & 31)
        }
        Format::Memory => {
            if inst.imm < limits::DISP_MIN || inst.imm > limits::DISP_MAX {
                return Err(EncodeError::DispRange(inst.imm));
            }
            let rb = match inst.rb {
                Operand::Reg(r) => (r as u32 & 31) << 14,
                Operand::Lit(_) => unreachable!("memory format has register base"),
            };
            op | ra | rb | (inst.imm as u32 & 0x3FFF)
        }
        Format::Branch => {
            if inst.imm < limits::BDISP_MIN || inst.imm > limits::BDISP_MAX {
                return Err(EncodeError::BranchRange(inst.imm));
            }
            op | ra | (inst.imm as u32 & 0x7FFFF)
        }
        Format::Jump => {
            let rb = match inst.rb {
                Operand::Reg(r) => (r as u32 & 31) << 14,
                Operand::Lit(_) => unreachable!("jump format has register target"),
            };
            op | ra | rb
        }
        Format::Special => match inst.op {
            Op::Ldiw => {
                let w = op | ra | (inst.rc as u32 & 31);
                return Ok((w, Some(inst.imm as u32)));
            }
            Op::EnterRegion | Op::EndSetup => {
                if inst.imm < 0 || inst.imm > 0x3FFF {
                    return Err(EncodeError::ImmRange(inst.imm));
                }
                op | ra | (inst.imm as u32 & 0x3FFF)
            }
            Op::Halt => op,
            _ => unreachable!(),
        },
    };
    Ok((word, None))
}

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub u32);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Decode one instruction word (`extra` supplies the second `Ldiw` word).
///
/// # Errors
/// Fails on an unknown opcode byte.
pub fn decode(word: u32, extra: Option<u32>) -> Result<Inst, DecodeError> {
    let op = Op::from_u8((word >> 24) as u8).ok_or(DecodeError(word))?;
    let ra = ((word >> 19) & 31) as Reg;
    Ok(match op.format() {
        Format::Operate => {
            let fmt = (word >> 10) & 1;
            let rb = if fmt == 1 {
                Operand::Lit(((word >> 11) & 0xFF) as u8)
            } else {
                Operand::Reg(((word >> 14) & 31) as Reg)
            };
            Inst {
                op,
                ra,
                rb,
                rc: (word & 31) as Reg,
                imm: 0,
            }
        }
        Format::Memory => {
            let rb = ((word >> 14) & 31) as Reg;
            let disp = ((word & 0x3FFF) as i32) << 18 >> 18; // sign-extend 14 bits
            Inst {
                op,
                ra,
                rb: Operand::Reg(rb),
                rc: 0,
                imm: disp,
            }
        }
        Format::Branch => {
            let disp = ((word & 0x7FFFF) as i32) << 13 >> 13; // sign-extend 19 bits
            Inst {
                op,
                ra,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: disp,
            }
        }
        Format::Jump => {
            let rb = ((word >> 14) & 31) as Reg;
            Inst {
                op,
                ra,
                rb: Operand::Reg(rb),
                rc: 0,
                imm: 0,
            }
        }
        Format::Special => match op {
            Op::Ldiw => Inst {
                op,
                ra,
                rb: Operand::Reg(ZERO),
                rc: (word & 31) as Reg,
                imm: extra.unwrap_or(0) as i32,
            },
            _ => {
                let imm = (word & 0x3FFF) as i32;
                Inst {
                    op,
                    ra,
                    rb: Operand::Reg(ZERO),
                    rc: 0,
                    imm,
                }
            }
        },
    })
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let Inst {
            op,
            ra,
            rb,
            rc,
            imm,
        } = self;
        match op.format() {
            Format::Operate => write!(f, "{op:?} r{ra}, {rb} -> r{rc}"),
            Format::Memory => write!(f, "{op:?} r{ra}, {imm}({rb})"),
            Format::Branch => write!(f, "{op:?} r{ra}, {imm:+}"),
            Format::Jump => write!(f, "{op:?} r{ra}, ({rb})"),
            Format::Special => match op {
                Op::Ldiw => write!(f, "Ldiw r{rc}, #{imm}"),
                _ => write!(f, "{op:?} #{imm}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Inst) {
        let (w, extra) = encode(&i).unwrap();
        let d = decode(w, extra).unwrap();
        assert_eq!(d, i, "roundtrip of {i}");
    }

    #[test]
    fn operate_register_roundtrip() {
        roundtrip(Inst::op3(Op::Addq, 1, Operand::Reg(2), 3));
        roundtrip(Inst::op3(Op::Mulq, 31, Operand::Reg(30), 0));
        roundtrip(Inst::op3(Op::Cmpule, 15, Operand::Reg(16), 17));
    }

    #[test]
    fn operate_literal_roundtrip() {
        roundtrip(Inst::op3(Op::Addq, 1, Operand::Lit(0), 3));
        roundtrip(Inst::op3(Op::Subq, 1, Operand::Lit(255), 3));
        roundtrip(Inst::op3(Op::Sll, 9, Operand::Lit(63), 9));
    }

    #[test]
    fn memory_roundtrip_with_negative_disp() {
        roundtrip(Inst::mem(Op::Ldq, 5, 30, -8));
        roundtrip(Inst::mem(Op::Stq, 5, 30, 8184));
        roundtrip(Inst::mem(Op::Lda, 7, 31, -8192));
        roundtrip(Inst::mem(Op::Ldt, 2, 27, 16));
    }

    #[test]
    fn branch_roundtrip() {
        roundtrip(Inst::branch(Op::Beq, 4, -100));
        roundtrip(Inst::branch(Op::Br, 31, 1000));
        roundtrip(Inst::branch(Op::Bsr, 26, limits::BDISP_MAX));
        roundtrip(Inst::branch(Op::Bge, 0, limits::BDISP_MIN));
    }

    #[test]
    fn jump_and_specials_roundtrip() {
        roundtrip(Inst::jump(Op::Jsr, 26, 25));
        roundtrip(Inst::jump(Op::Jmp, 31, 26));
        roundtrip(Inst::ldiw(7, -123456));
        roundtrip(Inst::ldiw(7, i32::MAX));
        roundtrip(Inst {
            op: Op::EnterRegion,
            ra: 0,
            rb: Operand::Reg(ZERO),
            rc: 0,
            imm: 42,
        });
        roundtrip(Inst {
            op: Op::Halt,
            ra: 0,
            rb: Operand::Reg(ZERO),
            rc: 0,
            imm: 0,
        });
    }

    #[test]
    fn out_of_range_displacements_error() {
        assert!(matches!(
            encode(&Inst::mem(Op::Ldq, 0, 0, i16::MAX)),
            Err(EncodeError::DispRange(_))
        ));
        assert!(matches!(
            encode(&Inst::branch(Op::Br, 31, limits::BDISP_MAX + 1)),
            Err(EncodeError::BranchRange(_))
        ));
    }

    #[test]
    fn unknown_opcode_fails_decode() {
        assert!(decode(0xFF00_0000, None).is_err());
        assert!(decode((Op::COUNT as u32) << 24, None).is_err());
    }

    #[test]
    fn ldiw_is_wide() {
        assert!(Inst::ldiw(0, 0).is_wide());
        assert!(!Inst::op3(Op::Addq, 0, Operand::Lit(0), 0).is_wide());
    }

    #[test]
    fn every_opcode_decodes_its_own_byte() {
        for b in 0..Op::COUNT {
            let op = Op::from_u8(b).unwrap();
            assert_eq!(
                op as u8, b,
                "OP_TABLE order must match discriminants for {op:?}"
            );
        }
        assert_eq!(Op::from_u8(Op::COUNT), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use dyncomp_ir::prng::SplitMix64;

    /// A random well-formed instruction (the shapes `encode` accepts).
    fn random_inst(rng: &mut SplitMix64) -> Inst {
        loop {
            let op = match Op::from_u8(rng.below(u64::from(Op::COUNT)) as u8) {
                Some(op) => op,
                None => continue,
            };
            let ra = rng.below(32) as u8;
            let rb = rng.below(32) as u8;
            let rc = rng.below(32) as u8;
            match op.format() {
                Format::Operate => {
                    let operand = if rng.chance(1, 2) {
                        Operand::Reg(rb)
                    } else {
                        Operand::Lit(rng.below(256) as u8)
                    };
                    return Inst::op3(op, ra, operand, rc);
                }
                Format::Memory => {
                    let disp = rng
                        .range_i64(i64::from(limits::DISP_MIN), i64::from(limits::DISP_MAX) + 1)
                        as i16;
                    return Inst::mem(op, ra, rb, disp);
                }
                Format::Branch => {
                    let disp = rng.range_i64(
                        i64::from(limits::BDISP_MIN),
                        i64::from(limits::BDISP_MAX) + 1,
                    ) as i32;
                    return Inst::branch(op, ra, disp);
                }
                _ => {
                    if op == Op::Ldiw {
                        return Inst::ldiw(rc, rng.next_u64() as i32);
                    }
                    continue;
                }
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut rng = SplitMix64::new(0x15a5_0001);
        for _ in 0..4000 {
            let inst = random_inst(&mut rng);
            let (w, extra) = encode(&inst).expect("in-range fields encode");
            let back = decode(w, extra).expect("encoded words decode");
            assert_eq!(back, inst);
        }
    }

    #[test]
    fn decode_never_panics() {
        let mut rng = SplitMix64::new(0x15a5_0002);
        for _ in 0..40_000 {
            let word = rng.next_u64() as u32;
            let extra = rng.next_u64() as u32;
            let _ = decode(word, Some(extra));
            let _ = decode(word, None);
        }
    }
}
