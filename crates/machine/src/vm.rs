//! The SimAlpha interpreter with deterministic cycle accounting.
//!
//! The paper measured asymptotic speedups and breakeven points with the
//! Alpha 21064's hardware cycle counter; the interpreter's [`CycleModel`]
//! plays that role here. Costs are loosely calibrated to the 21064
//! (loads 3 cycles, integer ALU 1, multiply 8, divide ~35, FP 6, taken
//! branches 2) — all reported results are relative, so the model only needs
//! to preserve the *shape* of the paper's numbers.

use crate::isa::{decode, Inst, Op, Operand, Reg, CTP, RA, SP, ZERO};
use dyncomp_ir::eval::{EvalError, Memory};
use std::fmt;

/// Per-instruction-class cycle costs.
#[derive(Clone, Debug, PartialEq)]
pub struct CycleModel {
    /// Simple integer operate (add, logic, shifts, compares, cmov, lda).
    pub int_op: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide/remainder.
    pub div: u64,
    /// Memory load (cache-hit latency).
    pub load: u64,
    /// Memory store.
    pub store: u64,
    /// Float add/sub/mul/compare/convert.
    pub fp_op: u64,
    /// Float divide.
    pub fp_div: u64,
    /// Float square root.
    pub fp_sqrt: u64,
    /// Taken branch (including unconditional).
    pub branch_taken: u64,
    /// Untaken conditional branch.
    pub branch_untaken: u64,
    /// Jump through register (jsr/jmp/ret).
    pub jump: u64,
    /// Two-word immediate load.
    pub ldiw: u64,
    /// Heap allocation.
    pub alloc: u64,
}

impl Default for CycleModel {
    fn default() -> Self {
        CycleModel {
            int_op: 1,
            mul: 8,
            div: 35,
            load: 3,
            store: 1,
            fp_op: 6,
            fp_div: 34,
            fp_sqrt: 30,
            branch_taken: 2,
            branch_untaken: 1,
            jump: 3,
            ldiw: 2,
            alloc: 30,
        }
    }
}

impl CycleModel {
    /// Cost of one executed instruction (`taken` applies to branches).
    pub fn cost(&self, op: Op, taken: bool) -> u64 {
        use Op::*;
        match op {
            Mulq => self.mul,
            Divq | Divqu | Remq | Remqu => self.div,
            Ldbu | Ldwu | Ldlu | Ldb | Ldw | Ldl | Ldq | Ldt => self.load,
            Stb | Stw | Stl | Stq | Stt => self.store,
            Lda => self.int_op,
            Addt | Subt | Mult | Cmpteq | Cmptlt | Cmptle | Cvtqt | Cvttq => self.fp_op,
            Divt => self.fp_div,
            Sqrtt => self.fp_sqrt,
            Fmov | Fneg | Fcmovne => self.int_op,
            Br | Bsr => self.branch_taken,
            Beq | Bne | Blt | Ble | Bgt | Bge => {
                if taken {
                    self.branch_taken
                } else {
                    self.branch_untaken
                }
            }
            Jmp | Jsr => self.jump,
            Ldiw => self.ldiw,
            Alloc => self.alloc,
            EnterRegion | EndSetup | Halt => 0,
            _ => self.int_op,
        }
    }
}

/// Why the VM stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stop {
    /// `Halt` executed.
    Halted,
    /// `EnterRegion` trap: the dynamic-compilation runtime must choose
    /// where execution continues (set-up code or stitched code).
    EnterRegion {
        /// Region number from the instruction.
        region: u16,
        /// Code address of the trapping instruction (for patching).
        at: u32,
    },
    /// `EndSetup` trap: set-up code finished; the constants-table address
    /// is in `r28` ([`CTP`]).
    EndSetup {
        /// Region number from the instruction.
        region: u16,
    },
    /// Execution reached a code address marked for a native backend
    /// (see [`Vm::mark_native`]); the instruction at `at` has **not**
    /// been fetched, charged, or executed. The runtime dispatches the
    /// translated code and resumes the VM at the pc it reports.
    Native {
        /// The marked code address.
        at: u32,
    },
}

/// VM runtime error.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// Invalid or truncated instruction at `pc`.
    BadInstruction {
        /// Code address.
        pc: u32,
    },
    /// Program counter outside the code area.
    PcOutOfRange(u32),
    /// Memory fault.
    Mem(EvalError),
    /// Integer division by zero (or `i64::MIN / -1`).
    DivideByZero {
        /// Code address of the divide.
        pc: u32,
    },
    /// Instruction budget exhausted.
    OutOfFuel,
    /// More call arguments than the register calling convention carries.
    TooManyArgs {
        /// Arguments supplied.
        given: usize,
        /// Arguments the convention supports.
        max: usize,
    },
    /// A code patch targeted an address outside the code area.
    PatchOutOfRange(u32),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::BadInstruction { pc } => write!(f, "bad instruction at pc={pc}"),
            VmError::PcOutOfRange(pc) => write!(f, "pc out of range: {pc}"),
            VmError::Mem(e) => write!(f, "memory fault: {e}"),
            VmError::DivideByZero { pc } => write!(f, "integer divide by zero at pc={pc}"),
            VmError::OutOfFuel => write!(f, "instruction budget exhausted"),
            VmError::TooManyArgs { given, max } => {
                write!(
                    f,
                    "{given} call arguments, but at most {max} fit in registers"
                )
            }
            VmError::PatchOutOfRange(at) => write!(f, "code patch out of range: {at}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<EvalError> for VmError {
    fn from(e: EvalError) -> Self {
        VmError::Mem(e)
    }
}

/// The simulated machine.
///
/// `Clone` forks the whole machine — code, predecode cache, registers,
/// memory, cycle state — giving an independent machine that can run
/// elsewhere (the tiered runtime forks the session VM so background
/// workers can execute region set-up code against a detached snapshot).
#[derive(Clone)]
pub struct Vm {
    /// Code space (word-addressed; stitched code is appended here).
    ///
    /// Reads are free-for-all; **writes must go through
    /// [`Vm::patch_code`]** (or [`Vm::append_code`]) so the predecode
    /// cache stays coherent. Writing `code` directly leaves stale decoded
    /// entries behind and the VM will keep executing the old instruction.
    pub code: Vec<u32>,
    /// Predecode cache: each code word decoded at most once. `None` means
    /// not yet decoded (or invalidated by a patch). Purely a host-side
    /// speedup — it changes no simulated cycle counts, because decoding
    /// was never a modeled cost (the simulated 21064 fetches from I-cache
    /// either way).
    decoded: Vec<Option<(Inst, u32)>>,
    /// Integer registers (`r31` reads as zero).
    pub regs: [u64; 32],
    /// Float registers (`f31` reads as 0.0).
    pub fregs: [f64; 32],
    /// Data memory (shared layout with the reference interpreter).
    pub mem: Memory,
    /// Program counter (word index).
    pub pc: u32,
    /// Accumulated cycles.
    pub cycles: u64,
    /// The cost model.
    pub model: CycleModel,
    /// Remaining instruction budget.
    pub fuel: u64,
    halt_stub: Option<u32>,
    /// Code addresses where [`Vm::run`] yields [`Stop::Native`] instead
    /// of interpreting. Empty (the default) costs one branch per run
    /// loop. Cloned VMs inherit marks; forks that run without a native
    /// dispatcher must call [`Vm::clear_native_marks`].
    native_marks: Vec<bool>,
    /// One-shot suppression of the mark at this pc, so a native bail-out
    /// that made no progress (fuel too low, unsupported entry) can hand
    /// the address to the interpreter exactly once without bouncing.
    native_skip: Option<u32>,
}

impl Vm {
    /// A fresh VM with `mem_bytes` of data memory. The stack pointer starts
    /// at the top of memory and grows down; the heap grows up.
    pub fn new(mem_bytes: usize) -> Self {
        let mem = Memory::with_capacity(mem_bytes);
        let mut regs = [0u64; 32];
        regs[SP as usize] = mem_bytes as u64 & !15;
        Vm {
            code: Vec::new(),
            decoded: Vec::new(),
            regs,
            fregs: [0.0; 32],
            mem,
            pc: 0,
            cycles: 0,
            model: CycleModel::default(),
            fuel: 2_000_000_000,
            halt_stub: None,
            native_marks: Vec::new(),
            native_skip: None,
        }
    }

    /// Mark `at` as a native dispatch point: when the run loop reaches
    /// it, [`Vm::run`] returns [`Stop::Native`] without fetching the
    /// instruction there.
    pub fn mark_native(&mut self, at: u32) {
        if self.native_marks.len() <= at as usize {
            self.native_marks.resize(at as usize + 1, false);
        }
        self.native_marks[at as usize] = true;
    }

    /// Remove the native dispatch mark at `at`, if any.
    pub fn unmark_native(&mut self, at: u32) {
        if let Some(m) = self.native_marks.get_mut(at as usize) {
            *m = false;
        }
    }

    /// Drop every native dispatch mark (and any pending skip). Forked
    /// VMs that run without a native dispatcher must call this, or the
    /// run loop would surface [`Stop::Native`] nobody handles.
    pub fn clear_native_marks(&mut self) {
        self.native_marks = Vec::new();
        self.native_skip = None;
    }

    /// Suppress the native mark at `at` for the next arrival only. Used
    /// after a native bail-out at its own entry pc, letting the
    /// interpreter make progress before native dispatch re-arms.
    pub fn skip_native_once(&mut self, at: u32) {
        self.native_skip = Some(at);
    }

    /// Append raw code words, returning the address of the first.
    pub fn append_code(&mut self, words: &[u32]) -> u32 {
        let at = self.code.len() as u32;
        self.code.extend_from_slice(words);
        self.decoded.resize(self.code.len(), None);
        // A wide instruction whose second word was missing may have been
        // fetched (and faulted) before this append completed it; drop any
        // cached decode of the previous last word.
        if at > 0 {
            self.decoded[at as usize - 1] = None;
        }
        at
    }

    /// Overwrite the code word at `at`, invalidating the predecode cache
    /// for every instruction that could span it (the word itself, and a
    /// two-word `Ldiw` starting one word earlier). This is how the engine
    /// patches `EnterRegion` traps into direct branches.
    ///
    /// # Errors
    /// [`VmError::PatchOutOfRange`] when `at` is outside the code area.
    pub fn patch_code(&mut self, at: u32, word: u32) -> Result<(), VmError> {
        let slot = self
            .code
            .get_mut(at as usize)
            .ok_or(VmError::PatchOutOfRange(at))?;
        *slot = word;
        self.decoded[at as usize] = None;
        if at > 0 {
            self.decoded[at as usize - 1] = None;
        }
        // A patched word no longer matches any translated code.
        self.unmark_native(at);
        Ok(())
    }

    /// Address of a one-instruction `Halt` stub (created on first use),
    /// used as the return address for top-level calls.
    pub fn halt_stub(&mut self) -> u32 {
        if let Some(s) = self.halt_stub {
            return s;
        }
        let (w, _) = crate::isa::encode(&Inst {
            op: Op::Halt,
            ra: 0,
            rb: Operand::Reg(ZERO),
            rc: 0,
            imm: 0,
        })
        .expect("halt encodes");
        let s = self.append_code(&[w]);
        self.halt_stub = Some(s);
        s
    }

    /// Read an integer register (`r31` = 0).
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        if r == ZERO {
            0
        } else {
            self.regs[r as usize]
        }
    }

    /// Write an integer register (writes to `r31` are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if r != ZERO {
            self.regs[r as usize] = v;
        }
    }

    /// Read a float register (`f31` = 0.0).
    #[inline]
    pub fn freg(&self, r: Reg) -> f64 {
        if r == ZERO {
            0.0
        } else {
            self.fregs[r as usize]
        }
    }

    /// Write a float register (writes to `f31` are discarded).
    #[inline]
    pub fn set_freg(&mut self, r: Reg, v: f64) {
        if r != ZERO {
            self.fregs[r as usize] = v;
        }
    }

    /// Prepare a call: arguments into `r16…`/`f16…`, return address to the
    /// halt stub, `pc` to `entry`. Use [`Vm::run`] to execute and read `r0`
    /// (or `f0`) for the result.
    ///
    /// # Errors
    /// [`VmError::TooManyArgs`] when `args` exceeds the six register
    /// argument slots of the calling convention.
    pub fn setup_call(&mut self, entry: u32, args: &[u64]) -> Result<(), VmError> {
        if args.len() > 6 {
            return Err(VmError::TooManyArgs {
                given: args.len(),
                max: 6,
            });
        }
        for (i, &a) in args.iter().enumerate() {
            self.regs[16 + i] = a;
            self.fregs[16 + i] = f64::from_bits(a);
        }
        let stub = self.halt_stub();
        self.regs[RA as usize] = u64::from(stub);
        self.pc = entry;
        Ok(())
    }

    fn fetch(&mut self, pc: u32) -> Result<(Inst, u32), VmError> {
        if let Some(Some(hit)) = self.decoded.get(pc as usize) {
            return Ok(*hit);
        }
        let w = *self
            .code
            .get(pc as usize)
            .ok_or(VmError::PcOutOfRange(pc))?;
        let opbyte = (w >> 24) as u8;
        let extra = if Op::from_u8(opbyte) == Some(Op::Ldiw) {
            Some(
                *self
                    .code
                    .get(pc as usize + 1)
                    .ok_or(VmError::PcOutOfRange(pc + 1))?,
            )
        } else {
            None
        };
        let inst = decode(w, extra).map_err(|_| VmError::BadInstruction { pc })?;
        let len = if inst.is_wide() { 2 } else { 1 };
        self.decoded[pc as usize] = Some((inst, len));
        Ok((inst, len))
    }

    /// Run until a trap ([`Stop`]) or an error.
    ///
    /// # Errors
    /// Returns [`VmError`] on faults; the machine state is left at the
    /// faulting instruction for inspection.
    pub fn run(&mut self) -> Result<Stop, VmError> {
        loop {
            if !self.native_marks.is_empty() {
                let pc = self.pc;
                if self.native_skip == Some(pc) {
                    self.native_skip = None;
                } else if self.native_marks.get(pc as usize) == Some(&true) {
                    return Ok(Stop::Native { at: pc });
                }
            }
            if self.fuel == 0 {
                return Err(VmError::OutOfFuel);
            }
            self.fuel -= 1;
            let pc = self.pc;
            let (inst, len) = self.fetch(pc)?;
            let next = pc + len;
            let mut taken = false;
            match self.step(&inst, pc, next, &mut taken)? {
                Some(stop) => {
                    self.cycles += self.model.cost(inst.op, taken);
                    return Ok(stop);
                }
                None => {
                    self.cycles += self.model.cost(inst.op, taken);
                }
            }
        }
    }

    fn operand(&self, o: Operand) -> u64 {
        match o {
            Operand::Reg(r) => self.reg(r),
            Operand::Lit(l) => u64::from(l),
        }
    }

    #[inline]
    fn step(
        &mut self,
        inst: &Inst,
        pc: u32,
        next: u32,
        taken: &mut bool,
    ) -> Result<Option<Stop>, VmError> {
        use Op::*;
        let Inst {
            op,
            ra,
            rb,
            rc,
            imm,
        } = *inst;
        self.pc = next;
        match op {
            // ---- integer operate ----
            Addq | Subq | Mulq | And | Bis | Xor | Ornot | Sll | Srl | Sra | Cmpeq | Cmpne
            | Cmplt | Cmple | Cmpult | Cmpule | Sextb | Sextw | Sextl | Zextb | Zextw | Zextl => {
                let a = self.reg(ra);
                let b = self.operand(rb);
                let v = match op {
                    Addq => a.wrapping_add(b),
                    Subq => a.wrapping_sub(b),
                    Mulq => a.wrapping_mul(b),
                    And => a & b,
                    Bis => a | b,
                    Xor => a ^ b,
                    Ornot => a | !b,
                    Sll => a.wrapping_shl(b as u32 & 63),
                    Srl => a.wrapping_shr(b as u32 & 63),
                    Sra => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
                    Cmpeq => u64::from(a == b),
                    Cmpne => u64::from(a != b),
                    Cmplt => u64::from((a as i64) < (b as i64)),
                    Cmple => u64::from((a as i64) <= (b as i64)),
                    Cmpult => u64::from(a < b),
                    Cmpule => u64::from(a <= b),
                    Sextb => (a as i8) as i64 as u64,
                    Sextw => (a as i16) as i64 as u64,
                    Sextl => (a as i32) as i64 as u64,
                    Zextb => a & 0xFF,
                    Zextw => a & 0xFFFF,
                    Zextl => a & 0xFFFF_FFFF,
                    _ => unreachable!(),
                };
                self.set_reg(rc, v);
            }
            Divq | Divqu | Remq | Remqu => {
                let a = self.reg(ra);
                let b = self.operand(rb);
                if b == 0 || (matches!(op, Divq | Remq) && a as i64 == i64::MIN && b as i64 == -1) {
                    return Err(VmError::DivideByZero { pc });
                }
                let v = match op {
                    Divq => ((a as i64) / (b as i64)) as u64,
                    Divqu => a / b,
                    Remq => ((a as i64) % (b as i64)) as u64,
                    Remqu => a % b,
                    _ => unreachable!(),
                };
                self.set_reg(rc, v);
            }
            Cmoveq | Cmovne => {
                let a = self.reg(ra);
                let b = self.operand(rb);
                let cond = if op == Cmoveq { a == 0 } else { a != 0 };
                if cond {
                    self.set_reg(rc, b);
                }
            }
            // ---- memory ----
            // Memory- and jump-format words have no literal-operand bit:
            // `decode` always produces `Operand::Reg` for them, so the
            // `else` arms below are decode invariants, not reachable
            // through any code word.
            Lda => {
                let Operand::Reg(base) = rb else {
                    unreachable!()
                };
                self.set_reg(ra, self.reg(base).wrapping_add(imm as i64 as u64));
            }
            Ldbu | Ldwu | Ldlu | Ldb | Ldw | Ldl | Ldq => {
                let Operand::Reg(base) = rb else {
                    unreachable!()
                };
                let addr = self.reg(base).wrapping_add(imm as i64 as u64);
                use dyncomp_ir::{MemSize, Signedness};
                let (sz, sg) = match op {
                    Ldbu => (MemSize::B1, Signedness::Unsigned),
                    Ldwu => (MemSize::B2, Signedness::Unsigned),
                    Ldlu => (MemSize::B4, Signedness::Unsigned),
                    Ldb => (MemSize::B1, Signedness::Signed),
                    Ldw => (MemSize::B2, Signedness::Signed),
                    Ldl => (MemSize::B4, Signedness::Signed),
                    Ldq => (MemSize::B8, Signedness::Unsigned),
                    _ => unreachable!(),
                };
                let v = self.mem.read(addr, sz, sg)?;
                self.set_reg(ra, v);
            }
            Stb | Stw | Stl | Stq => {
                let Operand::Reg(base) = rb else {
                    unreachable!()
                };
                let addr = self.reg(base).wrapping_add(imm as i64 as u64);
                use dyncomp_ir::MemSize;
                let sz = match op {
                    Stb => MemSize::B1,
                    Stw => MemSize::B2,
                    Stl => MemSize::B4,
                    Stq => MemSize::B8,
                    _ => unreachable!(),
                };
                self.mem.write(addr, sz, self.reg(ra))?;
            }
            Ldt => {
                let Operand::Reg(base) = rb else {
                    unreachable!()
                };
                let addr = self.reg(base).wrapping_add(imm as i64 as u64);
                let v = self.mem.read_u64(addr)?;
                self.set_freg(ra, f64::from_bits(v));
            }
            Stt => {
                let Operand::Reg(base) = rb else {
                    unreachable!()
                };
                let addr = self.reg(base).wrapping_add(imm as i64 as u64);
                self.mem.write_u64(addr, self.freg(ra).to_bits())?;
            }
            // ---- branches ----
            Br | Bsr => {
                self.set_reg(ra, u64::from(next));
                self.pc = next.wrapping_add_signed(imm);
                *taken = true;
            }
            Beq | Bne | Blt | Ble | Bgt | Bge => {
                let a = self.reg(ra) as i64;
                let t = match op {
                    Beq => a == 0,
                    Bne => a != 0,
                    Blt => a < 0,
                    Ble => a <= 0,
                    Bgt => a > 0,
                    Bge => a >= 0,
                    _ => unreachable!(),
                };
                if t {
                    self.pc = next.wrapping_add_signed(imm);
                    *taken = true;
                }
            }
            Jmp | Jsr => {
                let Operand::Reg(target) = rb else {
                    unreachable!()
                };
                let t = self.reg(target) as u32;
                self.set_reg(ra, u64::from(next));
                self.pc = t;
                *taken = true;
            }
            // ---- float operate ----
            // Float operate instructions use the Operate encoding, whose
            // literal-operand bit a crafted or patched code word can set;
            // there is no literal float form, so that decodes must fault
            // rather than hit an unreachable arm.
            Addt | Subt | Mult | Divt => {
                let a = self.freg(ra);
                let Operand::Reg(b) = rb else {
                    return Err(VmError::BadInstruction { pc });
                };
                let b = self.freg(b);
                let v = match op {
                    Addt => a + b,
                    Subt => a - b,
                    Mult => a * b,
                    Divt => a / b,
                    _ => unreachable!(),
                };
                self.set_freg(rc, v);
            }
            Cmpteq | Cmptlt | Cmptle => {
                let a = self.freg(ra);
                let Operand::Reg(b) = rb else {
                    return Err(VmError::BadInstruction { pc });
                };
                let b = self.freg(b);
                let v = match op {
                    Cmpteq => a == b,
                    Cmptlt => a < b,
                    Cmptle => a <= b,
                    _ => unreachable!(),
                };
                self.set_reg(rc, u64::from(v));
            }
            Sqrtt => {
                let Operand::Reg(b) = rb else {
                    return Err(VmError::BadInstruction { pc });
                };
                let v = self.freg(b).sqrt();
                self.set_freg(rc, v);
            }
            Cvtqt => {
                let v = self.reg(ra) as i64 as f64;
                self.set_freg(rc, v);
            }
            Cvttq => {
                let v = self.freg(ra);
                let i = if v.is_nan() {
                    0
                } else if v >= i64::MAX as f64 {
                    i64::MAX
                } else if v <= i64::MIN as f64 {
                    i64::MIN
                } else {
                    v as i64
                };
                self.set_reg(rc, i as u64);
            }
            Fmov => {
                let Operand::Reg(b) = rb else {
                    return Err(VmError::BadInstruction { pc });
                };
                let v = self.freg(b);
                self.set_freg(rc, v);
            }
            Fneg => {
                let Operand::Reg(b) = rb else {
                    return Err(VmError::BadInstruction { pc });
                };
                let v = -self.freg(b);
                self.set_freg(rc, v);
            }
            Fcmovne => {
                let Operand::Reg(b) = rb else {
                    return Err(VmError::BadInstruction { pc });
                };
                if self.reg(ra) != 0 {
                    let v = self.freg(b);
                    self.set_freg(rc, v);
                }
            }
            // ---- specials ----
            Ldiw => {
                self.set_reg(rc, imm as i64 as u64);
            }
            Alloc => {
                let n = self.reg(ra);
                let addr = self.mem.alloc(n)?;
                self.set_reg(rc, addr);
            }
            EnterRegion => {
                return Ok(Some(Stop::EnterRegion {
                    region: imm as u16,
                    at: pc,
                }));
            }
            EndSetup => {
                let _ = self.reg(CTP); // table address available to the runtime
                return Ok(Some(Stop::EndSetup { region: imm as u16 }));
            }
            Halt => return Ok(Some(Stop::Halted)),
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::encode;

    fn emit(vm: &mut Vm, i: Inst) -> u32 {
        let (w, extra) = encode(&i).unwrap();
        let at = vm.append_code(&[w]);
        if let Some(x) = extra {
            vm.append_code(&[x]);
        }
        at
    }

    #[test]
    fn add_and_halt() {
        let mut vm = Vm::new(1 << 16);
        let start = emit(&mut vm, Inst::ldiw(1, 20));
        emit(&mut vm, Inst::op3(Op::Addq, 1, Operand::Lit(22), 2));
        emit(
            &mut vm,
            Inst {
                op: Op::Halt,
                ra: 0,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: 0,
            },
        );
        vm.pc = start;
        assert_eq!(vm.run().unwrap(), Stop::Halted);
        assert_eq!(vm.reg(2), 42);
        assert_eq!(vm.cycles, vm.model.ldiw + vm.model.int_op);
    }

    #[test]
    fn zero_register_is_hardwired() {
        let mut vm = Vm::new(1 << 16);
        let start = emit(&mut vm, Inst::ldiw(31, 99));
        emit(&mut vm, Inst::op3(Op::Addq, 31, Operand::Lit(1), 1));
        emit(
            &mut vm,
            Inst {
                op: Op::Halt,
                ra: 0,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: 0,
            },
        );
        vm.pc = start;
        vm.run().unwrap();
        assert_eq!(vm.reg(31), 0);
        assert_eq!(vm.reg(1), 1);
    }

    #[test]
    fn memory_roundtrip_and_narrow_loads() {
        let mut vm = Vm::new(1 << 16);
        let addr = vm.mem.alloc(16).unwrap();
        let start = emit(&mut vm, Inst::ldiw(1, addr as i32));
        emit(&mut vm, Inst::ldiw(2, -2)); // 0xFFFF...FE
        emit(&mut vm, Inst::mem(Op::Stq, 2, 1, 0));
        emit(&mut vm, Inst::mem(Op::Ldw, 3, 1, 0)); // sext 16 -> -2
        emit(&mut vm, Inst::mem(Op::Ldwu, 4, 1, 0)); // zext -> 0xFFFE
        emit(
            &mut vm,
            Inst {
                op: Op::Halt,
                ra: 0,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: 0,
            },
        );
        vm.pc = start;
        vm.run().unwrap();
        assert_eq!(vm.reg(3) as i64, -2);
        assert_eq!(vm.reg(4), 0xFFFE);
    }

    #[test]
    fn branch_taken_and_untaken_costs() {
        let mut vm = Vm::new(1 << 16);
        // r1 = 0; beq r1, +1 (taken; skips the ldiw) ; ldiw r2, 7 ; halt
        let start = emit(&mut vm, Inst::op3(Op::Addq, ZERO, Operand::Lit(0), 1));
        emit(&mut vm, Inst::branch(Op::Beq, 1, 2)); // skip 2-word ldiw
        emit(&mut vm, Inst::ldiw(2, 7));
        emit(
            &mut vm,
            Inst {
                op: Op::Halt,
                ra: 0,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: 0,
            },
        );
        vm.pc = start;
        vm.run().unwrap();
        assert_eq!(vm.reg(2), 0, "branch skipped the load");
        assert_eq!(vm.cycles, vm.model.int_op + vm.model.branch_taken);
    }

    #[test]
    fn jsr_ret_convention() {
        let mut vm = Vm::new(1 << 16);
        // callee: r0 = r16 * 3; ret (jmp zero-link, (ra))
        let callee = emit(&mut vm, Inst::op3(Op::Mulq, 16, Operand::Lit(3), 0));
        emit(&mut vm, Inst::jump(Op::Jmp, ZERO, RA));
        // caller via setup_call
        let caller = emit(&mut vm, Inst::ldiw(25, callee as i32));
        emit(&mut vm, Inst::jump(Op::Jsr, RA, 25));
        // after return, halt comes from setup_call's stub... we instead
        // return directly: use setup_call on callee.
        let _ = caller;
        vm.setup_call(callee, &[14]).unwrap();
        assert_eq!(vm.run().unwrap(), Stop::Halted);
        assert_eq!(vm.reg(0), 42);
    }

    #[test]
    fn divide_by_zero_faults() {
        let mut vm = Vm::new(1 << 16);
        let start = emit(&mut vm, Inst::op3(Op::Divq, 1, Operand::Reg(2), 3));
        vm.pc = start;
        assert!(matches!(vm.run(), Err(VmError::DivideByZero { .. })));
    }

    #[test]
    fn float_pipeline() {
        let mut vm = Vm::new(1 << 16);
        let a = vm.mem.alloc(8).unwrap();
        vm.mem.write_u64(a, 2.25f64.to_bits()).unwrap();
        let start = emit(&mut vm, Inst::ldiw(1, a as i32));
        emit(&mut vm, Inst::mem(Op::Ldt, 2, 1, 0));
        emit(&mut vm, Inst::op3(Op::Mult, 2, Operand::Reg(2), 3)); // f3 = 5.0625
        emit(&mut vm, Inst::op3(Op::Sqrtt, ZERO, Operand::Reg(3), 4)); // f4 = 2.25
        emit(&mut vm, Inst::op3(Op::Cmpteq, 2, Operand::Reg(4), 5)); // r5 = 1
        emit(&mut vm, Inst::op3(Op::Cvttq, 4, Operand::Reg(ZERO), 6)); // r6 = 2
        emit(
            &mut vm,
            Inst {
                op: Op::Halt,
                ra: 0,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: 0,
            },
        );
        vm.pc = start;
        vm.run().unwrap();
        assert_eq!(vm.freg(3), 5.0625);
        assert_eq!(vm.reg(5), 1);
        assert_eq!(vm.reg(6), 2);
    }

    #[test]
    fn enter_region_traps_with_resume_info() {
        let mut vm = Vm::new(1 << 16);
        let start = emit(
            &mut vm,
            Inst {
                op: Op::EnterRegion,
                ra: 0,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: 7,
            },
        );
        vm.pc = start;
        assert_eq!(
            vm.run().unwrap(),
            Stop::EnterRegion {
                region: 7,
                at: start
            }
        );
        assert_eq!(vm.pc, start + 1, "pc advanced past the trap");
    }

    #[test]
    fn end_setup_reports_table_in_r28() {
        let mut vm = Vm::new(1 << 16);
        let start = emit(&mut vm, Inst::ldiw(CTP, 0x4000));
        emit(
            &mut vm,
            Inst {
                op: Op::EndSetup,
                ra: 0,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: 3,
            },
        );
        vm.pc = start;
        assert_eq!(vm.run().unwrap(), Stop::EndSetup { region: 3 });
        assert_eq!(vm.reg(CTP), 0x4000);
    }

    #[test]
    fn alloc_bumps_heap() {
        let mut vm = Vm::new(1 << 16);
        let start = emit(&mut vm, Inst::op3(Op::Addq, ZERO, Operand::Lit(64), 1));
        emit(&mut vm, Inst::op3(Op::Alloc, 1, Operand::Reg(ZERO), 2));
        emit(&mut vm, Inst::op3(Op::Alloc, 1, Operand::Reg(ZERO), 3));
        emit(
            &mut vm,
            Inst {
                op: Op::Halt,
                ra: 0,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: 0,
            },
        );
        vm.pc = start;
        vm.run().unwrap();
        assert!(vm.reg(2) >= dyncomp_ir::eval::MEM_BASE);
        assert_eq!(vm.reg(3), vm.reg(2) + 64);
    }

    #[test]
    fn fuel_exhaustion_detected() {
        let mut vm = Vm::new(1 << 16);
        let start = emit(&mut vm, Inst::branch(Op::Br, ZERO, -1));
        vm.pc = start;
        vm.fuel = 1000;
        assert_eq!(vm.run(), Err(VmError::OutOfFuel));
    }

    #[test]
    fn cmov_selects() {
        let mut vm = Vm::new(1 << 16);
        let start = emit(&mut vm, Inst::op3(Op::Addq, ZERO, Operand::Lit(0), 1)); // r1 = 0
        emit(&mut vm, Inst::op3(Op::Addq, ZERO, Operand::Lit(5), 2)); // r2 = 5
        emit(&mut vm, Inst::op3(Op::Cmoveq, 1, Operand::Lit(9), 3)); // r1==0 -> r3=9
        emit(&mut vm, Inst::op3(Op::Cmovne, 1, Operand::Lit(7), 4)); // r1!=0 ? no
        emit(
            &mut vm,
            Inst {
                op: Op::Halt,
                ra: 0,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: 0,
            },
        );
        vm.pc = start;
        vm.run().unwrap();
        assert_eq!(vm.reg(3), 9);
        assert_eq!(vm.reg(4), 0);
    }

    #[test]
    fn pc_out_of_range_faults() {
        let mut vm = Vm::new(1 << 12);
        vm.pc = 500; // no code appended at all
        assert!(matches!(vm.run(), Err(VmError::PcOutOfRange(500))));
    }

    #[test]
    fn truncated_ldiw_faults() {
        let mut vm = Vm::new(1 << 12);
        // Hand-encode an Ldiw and drop its second word: decoding must fail
        // rather than read past the end of the code area.
        let (w, extra) = encode(&Inst::ldiw(1, 123456)).unwrap();
        assert!(extra.is_some());
        let start = vm.append_code(&[w]);
        vm.pc = start;
        assert!(matches!(
            vm.run(),
            Err(VmError::BadInstruction { .. }) | Err(VmError::PcOutOfRange(_))
        ));
    }

    #[test]
    fn out_of_fuel_is_reported() {
        let mut vm = Vm::new(1 << 12);
        // Tight self-loop: br .-0 (branch displacement -1 re-executes itself).
        let start = emit(&mut vm, Inst::branch(Op::Br, ZERO, -1));
        vm.pc = start;
        vm.fuel = 1000;
        assert_eq!(vm.run(), Err(VmError::OutOfFuel));
    }

    #[test]
    fn wild_load_is_a_memory_fault() {
        let mut vm = Vm::new(1 << 12);
        let start = emit(&mut vm, Inst::ldiw(1, i32::MAX));
        emit(&mut vm, Inst::op3(Op::Sll, 1, Operand::Lit(20), 1));
        emit(&mut vm, Inst::mem(Op::Ldq, 2, 1, 0));
        vm.pc = start;
        assert!(matches!(vm.run(), Err(VmError::Mem(_))));
    }

    #[test]
    fn signed_division_edge_cases() {
        // i64::MIN / -1 overflows on real hardware; the VM reports it as a
        // divide fault rather than wrapping silently.
        let mut vm = Vm::new(1 << 12);
        let a = vm.mem.alloc(8).unwrap();
        vm.mem.write_u64(a, i64::MIN as u64).unwrap();
        let start = emit(&mut vm, Inst::ldiw(1, a as i32));
        emit(&mut vm, Inst::mem(Op::Ldq, 1, 1, 0));
        emit(&mut vm, Inst::ldiw(2, -1));
        emit(&mut vm, Inst::op3(Op::Divq, 1, Operand::Reg(2), 3));
        vm.pc = start;
        assert!(matches!(vm.run(), Err(VmError::DivideByZero { .. })));

        // Ordinary signed divide/remainder truncate toward zero.
        let mut vm = Vm::new(1 << 12);
        let a = vm.mem.alloc(8).unwrap();
        vm.mem.write_u64(a, (-7i64) as u64).unwrap();
        let start = emit(&mut vm, Inst::ldiw(1, a as i32));
        emit(&mut vm, Inst::mem(Op::Ldq, 1, 1, 0));
        emit(&mut vm, Inst::op3(Op::Divq, 1, Operand::Lit(2), 3));
        emit(&mut vm, Inst::op3(Op::Remq, 1, Operand::Lit(2), 4));
        emit(
            &mut vm,
            Inst {
                op: Op::Halt,
                ra: 0,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: 0,
            },
        );
        vm.pc = start;
        vm.run().unwrap();
        assert_eq!(vm.reg(3) as i64, -3);
        assert_eq!(vm.reg(4) as i64, -1);
    }

    #[test]
    fn shifts_use_low_six_bits() {
        let mut vm = Vm::new(1 << 12);
        let start = emit(&mut vm, Inst::op3(Op::Addq, ZERO, Operand::Lit(1), 1));
        emit(&mut vm, Inst::op3(Op::Sll, 1, Operand::Lit(63), 2)); // sign bit
        emit(&mut vm, Inst::op3(Op::Sra, 2, Operand::Lit(63), 3)); // all ones
        emit(&mut vm, Inst::op3(Op::Srl, 2, Operand::Lit(63), 4)); // 1
        emit(
            &mut vm,
            Inst {
                op: Op::Halt,
                ra: 0,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: 0,
            },
        );
        vm.pc = start;
        vm.run().unwrap();
        assert_eq!(vm.reg(2), 1u64 << 63);
        assert_eq!(vm.reg(3), u64::MAX);
        assert_eq!(vm.reg(4), 1);
    }

    #[test]
    fn conditional_moves_int_and_float() {
        let mut vm = Vm::new(1 << 12);
        let a = vm.mem.alloc(8).unwrap();
        vm.mem.write_u64(a, 1.5f64.to_bits()).unwrap();
        let start = emit(&mut vm, Inst::ldiw(1, a as i32));
        emit(&mut vm, Inst::mem(Op::Ldt, 2, 1, 0)); // f2 = 1.5
        emit(&mut vm, Inst::op3(Op::Addq, ZERO, Operand::Lit(5), 3)); // r3 = 5 (true)
        emit(&mut vm, Inst::op3(Op::Addq, ZERO, Operand::Lit(9), 4));
        emit(&mut vm, Inst::op3(Op::Cmovne, 3, Operand::Lit(77), 4)); // r4 = 77
        emit(&mut vm, Inst::op3(Op::Cmoveq, 3, Operand::Lit(11), 4)); // unchanged
        emit(&mut vm, Inst::op3(Op::Fcmovne, 3, Operand::Reg(2), 5)); // f5 = 1.5
        emit(&mut vm, Inst::op3(Op::Fcmovne, ZERO, Operand::Reg(2), 6)); // f6 unchanged (0.0)
        emit(
            &mut vm,
            Inst {
                op: Op::Halt,
                ra: 0,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: 0,
            },
        );
        vm.pc = start;
        vm.run().unwrap();
        assert_eq!(vm.reg(4), 77);
        assert_eq!(vm.freg(5), 1.5);
        assert_eq!(vm.freg(6), 0.0);
    }

    #[test]
    fn patch_code_invalidates_predecode() {
        // Execute an EnterRegion trap (caching its decode), patch it into
        // a direct branch — the engine's unkeyed-region retirement — and
        // re-execute: the branch must be taken, not the stale trap.
        let mut vm = Vm::new(1 << 12);
        let start = emit(
            &mut vm,
            Inst {
                op: Op::EnterRegion,
                ra: 0,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: 4,
            },
        );
        emit(&mut vm, Inst::ldiw(1, 111)); // fall-through (2 words)
        emit(
            &mut vm,
            Inst {
                op: Op::Halt,
                ra: 0,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: 0,
            },
        );
        let target = emit(&mut vm, Inst::ldiw(2, 222));
        emit(
            &mut vm,
            Inst {
                op: Op::Halt,
                ra: 0,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: 0,
            },
        );
        vm.pc = start;
        assert_eq!(
            vm.run().unwrap(),
            Stop::EnterRegion {
                region: 4,
                at: start
            }
        );
        let disp = target as i64 - (i64::from(start) + 1);
        let (w, _) = encode(&Inst::branch(Op::Br, ZERO, disp as i32)).unwrap();
        vm.patch_code(start, w).unwrap();
        vm.pc = start;
        assert_eq!(vm.run().unwrap(), Stop::Halted);
        assert_eq!(vm.reg(2), 222, "patched branch was executed");
        assert_eq!(vm.reg(1), 0, "stale fall-through was not executed");
    }

    #[test]
    fn patch_code_invalidates_wide_instruction_prefix() {
        // Patch the *second* word of a cached Ldiw: the cached decode at
        // the first word must be dropped too.
        let mut vm = Vm::new(1 << 12);
        let start = emit(&mut vm, Inst::ldiw(1, 1000));
        emit(
            &mut vm,
            Inst {
                op: Op::Halt,
                ra: 0,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: 0,
            },
        );
        vm.pc = start;
        vm.run().unwrap();
        assert_eq!(vm.reg(1), 1000);
        vm.patch_code(start + 1, 2000u32).unwrap();
        vm.pc = start;
        vm.run().unwrap();
        assert_eq!(vm.reg(1), 2000, "patched immediate word took effect");
    }

    #[test]
    fn predecode_changes_no_cycles() {
        // Running the same loop twice on one VM (second run fully served
        // by the predecode cache) costs exactly the same simulated cycles.
        let mut vm = Vm::new(1 << 12);
        let start = emit(&mut vm, Inst::op3(Op::Addq, ZERO, Operand::Lit(50), 1));
        emit(&mut vm, Inst::op3(Op::Subq, 1, Operand::Lit(1), 1));
        emit(&mut vm, Inst::branch(Op::Bne, 1, -2));
        emit(
            &mut vm,
            Inst {
                op: Op::Halt,
                ra: 0,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: 0,
            },
        );
        vm.pc = start;
        vm.run().unwrap();
        let cold = vm.cycles;
        vm.pc = start;
        vm.run().unwrap();
        assert_eq!(vm.cycles - cold, cold, "warm run costs the same cycles");
    }

    #[test]
    fn cycle_accounting_is_deterministic() {
        let build = || {
            let mut vm = Vm::new(1 << 12);
            let start = emit(&mut vm, Inst::op3(Op::Addq, ZERO, Operand::Lit(10), 1));
            // loop: r1 -= 1; bne r1, loop
            emit(&mut vm, Inst::op3(Op::Subq, 1, Operand::Lit(1), 1));
            emit(&mut vm, Inst::branch(Op::Bne, 1, -2));
            emit(
                &mut vm,
                Inst {
                    op: Op::Halt,
                    ra: 0,
                    rb: Operand::Reg(ZERO),
                    rc: 0,
                    imm: 0,
                },
            );
            vm.pc = start;
            vm.run().unwrap();
            vm.cycles
        };
        let c1 = build();
        let c2 = build();
        assert_eq!(c1, c2);
        let m = CycleModel::default();
        // 1 setup + 10 subs + 9 taken + 1 untaken branches.
        assert_eq!(
            c1,
            m.int_op + 10 * m.int_op + 9 * m.branch_taken + m.branch_untaken
        );
    }

    #[test]
    fn too_many_call_args_is_an_error_not_a_panic() {
        let mut vm = Vm::new(1 << 12);
        let err = vm.setup_call(0, &[0; 7]).unwrap_err();
        assert!(
            matches!(err, VmError::TooManyArgs { given: 7, max: 6 }),
            "{err}"
        );
        // At the boundary, six arguments are fine.
        vm.setup_call(0, &[0; 6]).unwrap();
    }

    #[test]
    fn code_patch_out_of_range_is_an_error_not_a_panic() {
        let mut vm = Vm::new(1 << 12);
        vm.append_code(&[0]);
        let err = vm.patch_code(99, 0).unwrap_err();
        assert!(matches!(err, VmError::PatchOutOfRange(99)), "{err}");
        vm.patch_code(0, 0).unwrap();
    }

    #[test]
    fn float_op_with_literal_operand_is_an_error_not_a_panic() {
        // Operate-format words carry a literal bit, so a crafted (or
        // mispatched) code word can reach a float op with `Operand::Lit`;
        // the VM must report it as a bad instruction, not panic.
        let mut vm = Vm::new(1 << 12);
        let start = emit(&mut vm, Inst::op3(Op::Addt, 1, Operand::Lit(5), 2));
        vm.pc = start;
        let err = vm.run().unwrap_err();
        assert!(matches!(err, VmError::BadInstruction { .. }), "{err}");
    }
}
