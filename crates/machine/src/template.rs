//! Machine-code templates and stitcher directives (§3.2, §3.4, Table 1).
//!
//! A [`Template`] is the static compiler's output for one dynamic region:
//! pre-optimized machine code whose instructions contain *holes* for
//! run-time constant operands, organized into directive-delimited blocks.
//! The directives of the paper's Table 1 map onto this structure as
//! follows:
//!
//! | paper directive | here |
//! |---|---|
//! | `START` / `END` | [`Template::entry`] / [`TmplExit::ExitRegion`] |
//! | `HOLE(inst, operand#, index)` | [`Hole`] |
//! | `CONST_BRANCH(inst, index)` | [`TmplExit::ConstBranch`] / [`TmplExit::ConstSwitch`] |
//! | `ENTER_LOOP(inst, header index)` | [`LoopMarker::Enter`] |
//! | `EXIT_LOOP(inst)` | [`LoopMarker::Exit`] |
//! | `RESTART_LOOP(inst, next index)` | [`LoopMarker::Restart`] |
//! | `BRANCH(inst)` / `LABEL(inst)` | [`BranchFixup`] / block boundaries |
//!
//! Table locations are [`SlotPath`]s: a static slot index, or a path through
//! the per-iteration record chains of unrolled loops (the paper's `4:1`
//! notation).

use crate::isa::{Format, Op, Reg};
use dyncomp_ir::SlotPath;

/// Label of a template block (index into [`Template::blocks`]).
pub type TmplLabel = u32;

/// Which field of an instruction a hole patches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HoleField {
    /// The 8-bit literal operand of an operate instruction. The stitcher
    /// patches the value inline when it fits, otherwise materializes it
    /// into a scratch register (immediate construction or linearized-table
    /// load) and rewrites the instruction to register form.
    Lit,
    /// The displacement of a load from the linearized constants table
    /// (`r27`-based); the static compiler emitted the load itself (used for
    /// float and pointer-typed constants, §4). The stitcher appends the
    /// value to the linearized table and patches the displacement.
    MemDisp {
        /// Whether the constant is a float (affects only bookkeeping).
        float: bool,
    },
}

/// A hole directive: patch the instruction at word `at` with the run-time
/// constant found at `slot`.
#[derive(Clone, Debug, PartialEq)]
pub struct Hole {
    /// Word offset within [`Template::code`].
    pub at: u32,
    /// The instruction field to patch.
    pub field: HoleField,
    /// Where the set-up code stored the value.
    pub slot: SlotPath,
}

/// A pc-relative branch inside the template that targets another template
/// block; the stitcher recomputes its displacement after layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchFixup {
    /// Word offset of the branch instruction within [`Template::code`].
    pub at: u32,
    /// Target block.
    pub target: TmplLabel,
}

/// Unrolled-loop marker attached to a block. A marker takes effect *after*
/// the block's instructions (φ-copies placed in marker blocks by SSA
/// destruction must read the pre-advance record) and before its exit.
#[derive(Clone, Debug, PartialEq)]
pub enum LoopMarker {
    /// Begin iterating the record chain rooted at `root`.
    Enter {
        /// Table path of the chain head slot.
        root: SlotPath,
    },
    /// Advance to the next record (found at `next_slot` of the current).
    Restart {
        /// Slot index of the `next` pointer within the record.
        next_slot: u32,
    },
    /// Leave the innermost active loop.
    Exit,
}

/// How control leaves a template block.
#[derive(Clone, Debug, PartialEq)]
pub enum TmplExit {
    /// Fall through / jump to another block.
    Jump(TmplLabel),
    /// The block ends with an encoded conditional branch at word `at`:
    /// taken goes to `taken`, fall-through to `fall`. Both sides are
    /// stitched.
    CondBranch {
        /// Word offset of the branch instruction (last in the block).
        at: u32,
        /// Target when taken.
        taken: TmplLabel,
        /// Target on fall-through.
        fall: TmplLabel,
    },
    /// Run-time constant 2-way branch (no code): the stitcher reads the
    /// predicate from `slot` and follows exactly one side.
    ConstBranch {
        /// Table location of the predicate.
        slot: SlotPath,
        /// Side when the predicate is non-zero.
        then_l: TmplLabel,
        /// Side when zero.
        else_l: TmplLabel,
    },
    /// Run-time constant n-way switch (no code).
    ConstSwitch {
        /// Table location of the scrutinee.
        slot: SlotPath,
        /// `(case value, target)` pairs.
        cases: Vec<(i64, TmplLabel)>,
        /// Target when no case matches.
        default: TmplLabel,
    },
    /// The block's code ends in a return (or other register jump); nothing
    /// follows.
    Return,
    /// Leave the dynamic region through exit number `exit`: the stitcher
    /// emits a branch back to the corresponding address in the enclosing
    /// function.
    ExitRegion {
        /// Index into [`RegionCode::exit_pcs`].
        exit: u32,
    },
}

/// One directive-delimited template block.
#[derive(Clone, Debug, PartialEq)]
pub struct TmplBlock {
    /// Word range `[start, end)` of this block's code in
    /// [`Template::code`].
    pub start: u32,
    /// End of the code range (exclusive).
    pub end: u32,
    /// Hole directives within the range, ordered by `at`.
    pub holes: Vec<Hole>,
    /// Branch fixups within the range (excluding the [`TmplExit`] branch).
    pub branches: Vec<BranchFixup>,
    /// Unrolled-loop marker, if this block sits on a loop arc.
    pub marker: Option<LoopMarker>,
    /// How control leaves.
    pub exit: TmplExit,
    /// Precompiled copy-and-patch plan (see [`StitchPlan`]), built at
    /// static-compile time by [`precompile_plans`]. `None` keeps the block
    /// on the interpretive directive-walking path.
    pub plan: Option<StitchPlan>,
}

/// A hole patch within a [`StitchPlan`], with its word offset relative to
/// the plan's code block (not to [`Template::code`]).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanPatch {
    /// Word offset within [`StitchPlan::code`].
    pub at: u32,
    /// The instruction field to patch.
    pub field: HoleField,
    /// Where the set-up code stored the value.
    pub slot: SlotPath,
}

/// A precompiled stitch plan for one template block: the copy-and-patch
/// fast path.
///
/// At static-compile time, a block whose directives are value-independent
/// — a plain `EMIT` run plus in-place `HOLE` patches, with no unrolling
/// marker pending — is lowered into a contiguous code block plus an
/// ordered patch list. At run time the stitcher then *copies the block and
/// applies the patches* instead of interpreting directives word by word
/// (the copy-and-patch idiom). Patches are still value-dependent at the
/// edges: a `Lit` hole whose value exceeds the 8-bit literal, or a
/// `MemDisp` hole whose linearized-table offset leaves displacement range,
/// needs extra instructions and therefore falls back to the interpretive
/// path (a *plan miss*). Peephole-candidate holes (constant multiplies,
/// unsigned divides/mods) are flagged so the miss decision is one branch.
#[derive(Clone, Debug, PartialEq)]
pub struct StitchPlan {
    /// The block's code words, ready to copy (holes still unpatched).
    pub code: Vec<u32>,
    /// In-place patches in ascending `at` order.
    pub patches: Vec<PlanPatch>,
    /// Instructions in `code` (`Ldiw` counts one instruction, two words).
    pub insts: u32,
    /// Whether any `Lit` patch targets a strength-reduction candidate
    /// (`mulq`/`divqu`/`remqu`): with peephole optimization enabled such
    /// blocks must take the interpretive path, which may rewrite the
    /// instruction entirely.
    pub sr_candidate: bool,
}

/// Lower every eligible block of `t` into a [`StitchPlan`]
/// (copy-and-patch fast path). Called once at static-compile time.
///
/// A block is eligible when its directives are value-independent:
/// no unrolled-loop marker (record-chain walking decides block identity at
/// stitch time), no intra-block branch fixups, and every hole patches an
/// instruction in place. Value-dependent decisions that *remain* —
/// oversized literals, far table entries, peephole rewrites — are checked
/// per stitch and fall back to the interpretive path.
pub fn precompile_plans(t: &mut Template) {
    let code = t.code.clone();
    'blocks: for blk in &mut t.blocks {
        if blk.marker.is_some() || !blk.branches.is_empty() {
            continue;
        }
        let (start, end) = (blk.start as usize, blk.end as usize);
        if code.len() < end || start > end {
            continue; // malformed; leave for the interpretive path to report
        }
        let mut sr_candidate = false;
        let mut patches = Vec::with_capacity(blk.holes.len());
        for h in &blk.holes {
            let at = h.at as usize;
            if at < start || at >= end {
                continue 'blocks;
            }
            if let HoleField::Lit = h.field {
                let op = Op::from_u8((code[at] >> 24) as u8);
                match op {
                    Some(op) if op.format() == Format::Operate => {
                        sr_candidate |= matches!(op, Op::Mulq | Op::Divqu | Op::Remqu);
                    }
                    _ => continue 'blocks, // undecodable hole word
                }
            }
            patches.push(PlanPatch {
                at: h.at - blk.start,
                field: h.field,
                slot: h.slot.clone(),
            });
        }
        // Count instructions (every word except an Ldiw's second).
        let mut insts = 0u32;
        let mut w = start;
        while w < end {
            insts += 1;
            if Op::from_u8((code[w] >> 24) as u8) == Some(Op::Ldiw) {
                w += 1;
            }
            w += 1;
        }
        if w != end {
            continue; // trailing half of a wide instruction: malformed
        }
        blk.plan = Some(StitchPlan {
            code: code[start..end].to_vec(),
            patches,
            insts,
            sr_candidate,
        });
    }
}

/// A complete machine-code template for one dynamic region.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Template {
    /// The template's code words (never executed in place; the stitcher
    /// copies from here).
    pub code: Vec<u32>,
    /// Directive-delimited blocks over `code`.
    pub blocks: Vec<TmplBlock>,
    /// The entry block.
    pub entry: TmplLabel,
}

impl Template {
    /// Count of instruction words covered by blocks (template size metric).
    pub fn template_words(&self) -> u32 {
        self.blocks.iter().map(|b| b.end - b.start).sum()
    }
}

/// Where the code generator left a value at a trap point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValueLoc {
    /// An integer register.
    Reg(Reg),
    /// A float register.
    FReg(Reg),
    /// A frame slot at `sp + offset`.
    Frame(i32),
}

/// Everything the run-time needs to dynamically compile one region:
/// produced by the code generator alongside the enclosing function's code.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionCode {
    /// Global region number (matches the `EnterRegion` immediate).
    pub region_index: u16,
    /// Code address of the `EnterRegion` instruction (patched to a direct
    /// branch for unkeyed regions after first stitch).
    pub enter_pc: u32,
    /// Code address of the set-up subgraph's entry.
    pub setup_pc: u32,
    /// Code address of the statically compiled fallback copy of the region
    /// body (`None` unless the program was lowered with a tiered fallback).
    /// A tiered engine may redirect a cold `EnterRegion` trap here while
    /// set-up + stitching proceed on a background worker.
    pub fallback_pc: Option<u32>,
    /// The machine-code template.
    pub template: Template,
    /// Post-region code addresses, indexed by [`TmplExit::ExitRegion`]
    /// exit number.
    pub exit_pcs: Vec<u32>,
    /// Locations of the region's key values at `EnterRegion` (empty for
    /// unkeyed regions).
    pub key_locs: Vec<ValueLoc>,
    /// Number of static slots in the run-time constants table.
    pub table_static_len: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_words_sums_block_ranges() {
        let t = Template {
            code: vec![0; 10],
            blocks: vec![
                TmplBlock {
                    start: 0,
                    end: 4,
                    holes: vec![],
                    branches: vec![],
                    marker: None,
                    exit: TmplExit::Jump(1),
                    plan: None,
                },
                TmplBlock {
                    start: 6,
                    end: 10,
                    holes: vec![],
                    branches: vec![],
                    marker: None,
                    exit: TmplExit::Return,
                    plan: None,
                },
            ],
            entry: 0,
        };
        assert_eq!(t.template_words(), 8);
    }

    #[test]
    fn slot_path_in_hole_directive() {
        let h = Hole {
            at: 3,
            field: HoleField::Lit,
            slot: SlotPath::stat(4).child(1),
        };
        assert_eq!(h.slot.to_string(), "4:1");
    }
}
