//! Disassembly of SimAlpha code, for inspection tools and debugging.

use crate::isa::{decode, Format, Inst, Op, Operand};

/// One disassembled instruction.
#[derive(Clone, Debug, PartialEq)]
pub struct DisasmLine {
    /// Word address of the instruction.
    pub addr: u32,
    /// The decoded instruction (`None` for undecodable words).
    pub inst: Option<Inst>,
    /// Rendered text.
    pub text: String,
}

/// Disassemble `words`, treating index 0 as address `base`.
///
/// `Ldiw` consumes two words; branch targets are annotated with their
/// absolute word address.
pub fn disassemble(words: &[u32], base: u32) -> Vec<DisasmLine> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < words.len() {
        let addr = base + i as u32;
        let word = words[i];
        let wide = Op::from_u8((word >> 24) as u8) == Some(Op::Ldiw);
        let extra = if wide {
            words.get(i + 1).copied()
        } else {
            None
        };
        match decode(word, extra) {
            Ok(inst) => {
                let text = render(&inst, addr);
                out.push(DisasmLine {
                    addr,
                    inst: Some(inst),
                    text,
                });
                i += if wide { 2 } else { 1 };
            }
            Err(_) => {
                out.push(DisasmLine {
                    addr,
                    inst: None,
                    text: format!(".word {word:#010x}"),
                });
                i += 1;
            }
        }
    }
    out
}

/// Render one instruction with target annotations.
pub fn render(inst: &Inst, addr: u32) -> String {
    match inst.op.format() {
        Format::Branch => {
            let len = 1; // branches are single-word
            let target = addr.wrapping_add(len).wrapping_add_signed(inst.imm);
            match inst.op {
                Op::Br | Op::Bsr => format!("{:?} r{}, -> {target}", inst.op, inst.ra),
                _ => format!("{:?} r{}, -> {target}", inst.op, inst.ra),
            }
        }
        Format::Memory => {
            let base = match inst.rb {
                Operand::Reg(r) => r,
                Operand::Lit(_) => unreachable!("memory base is a register"),
            };
            format!("{:?} r{}, {}(r{})", inst.op, inst.ra, inst.imm, base)
        }
        Format::Operate => format!("{:?} r{}, {} -> r{}", inst.op, inst.ra, inst.rb, inst.rc),
        Format::Jump => {
            let Operand::Reg(rb) = inst.rb else {
                unreachable!()
            };
            format!("{:?} r{}, (r{})", inst.op, inst.ra, rb)
        }
        Format::Special => match inst.op {
            Op::Ldiw => format!("Ldiw r{}, #{}", inst.rc, inst.imm),
            Op::EnterRegion => format!("EnterRegion #{}", inst.imm),
            Op::EndSetup => format!("EndSetup #{}", inst.imm),
            Op::Halt => "Halt".into(),
            _ => format!("{:?}", inst.op),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{encode, ZERO};

    fn words(insts: &[Inst]) -> Vec<u32> {
        let mut out = Vec::new();
        for i in insts {
            let (w, extra) = encode(i).unwrap();
            out.push(w);
            if let Some(x) = extra {
                out.push(x);
            }
        }
        out
    }

    #[test]
    fn renders_all_formats() {
        let code = words(&[
            Inst::op3(Op::Addq, 1, Operand::Lit(5), 2),
            Inst::mem(Op::Ldq, 3, 30, -8),
            Inst::branch(Op::Beq, 4, 2),
            Inst::jump(Op::Jmp, ZERO, 26),
            Inst::ldiw(7, 123456),
            Inst {
                op: Op::Halt,
                ra: 0,
                rb: Operand::Reg(ZERO),
                rc: 0,
                imm: 0,
            },
        ]);
        let d = disassemble(&code, 100);
        assert_eq!(d.len(), 6);
        assert_eq!(d[0].text, "Addq r1, #5 -> r2");
        assert_eq!(d[1].text, "Ldq r3, -8(r30)");
        assert_eq!(d[2].text, "Beq r4, -> 105", "target = 102+1+2");
        assert_eq!(d[3].text, "Jmp r31, (r26)");
        assert_eq!(d[4].text, "Ldiw r7, #123456");
        assert_eq!(d[4].addr, 104);
        assert_eq!(d[5].text, "Halt");
        assert_eq!(d[5].addr, 106, "Ldiw occupied two words");
    }

    #[test]
    fn bad_words_render_as_data() {
        let d = disassemble(&[0xFF00_0000], 0);
        assert_eq!(d[0].inst, None);
        assert!(d[0].text.starts_with(".word"));
    }
}
