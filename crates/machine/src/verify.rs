//! Install-time verification of stitched code.
//!
//! The stitcher and the relocation path (`Stitched::relocate`) both build
//! code by patching words — literal fields, memory displacements, branch
//! displacements, `Ldiw` payloads. A bug (or a corrupted artifact) in any
//! of those paths produces a word stream the VM would either refuse to
//! decode mid-run or, worse, execute with a branch into unrelated code.
//! [`verify_code`] is the last line of defense: it decodes **every** word
//! of an instance about to be installed and range-checks what can be
//! checked statically, so nothing undecodable or wild-branching ever
//! enters the code space. It is pure host-side work and charges no
//! simulated cycles.
//!
//! Checked per instance (to be installed at `base`):
//!
//! * every word decodes ([`crate::isa::decode`]), with `Ldiw` consuming
//!   its payload word — a trailing truncated `Ldiw` is rejected;
//! * branch targets (`base + pos + 1 + disp`) land inside
//!   `[0, base + len)`: either the existing code space (region exits) or
//!   the instance itself — never past the end of installed code;
//! * no dynamic-compilation trap (`EnterRegion` / `EndSetup`) appears:
//!   stitched instances are the *output* of servicing those traps and
//!   must never re-enter the runtime.
//!
//! Register-indirect jumps and memory operands cannot be validated
//! statically; the VM's own bounds checks cover them at execution time.

use crate::isa::{decode, Format, Op};
use std::fmt;

/// Why an instance failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeVerifyError {
    /// A word did not decode (unknown opcode byte).
    Undecodable {
        /// Word position within the instance.
        at: u32,
        /// The offending word.
        word: u32,
    },
    /// A wide instruction (`Ldiw`) started on the last word, so its
    /// payload word is missing.
    Truncated {
        /// Word position of the truncated instruction.
        at: u32,
    },
    /// A branch targets an address outside `[0, base + len)`.
    BranchOutOfRange {
        /// Word position of the branch within the instance.
        at: u32,
        /// The computed absolute target.
        target: i64,
        /// One past the last valid target (`base + len`).
        limit: u32,
    },
    /// A dynamic-compilation trap instruction appeared in stitched code.
    TrapInCode {
        /// Word position of the trap within the instance.
        at: u32,
        /// Which trap.
        op: Op,
    },
}

impl fmt::Display for CodeVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CodeVerifyError::Undecodable { at, word } => {
                write!(f, "word {at} ({word:#010x}) does not decode")
            }
            CodeVerifyError::Truncated { at } => {
                write!(
                    f,
                    "wide instruction at word {at} is missing its payload word"
                )
            }
            CodeVerifyError::BranchOutOfRange { at, target, limit } => write!(
                f,
                "branch at word {at} targets {target}, outside [0, {limit})"
            ),
            CodeVerifyError::TrapInCode { at, op } => {
                write!(f, "trap instruction {op:?} at word {at} in stitched code")
            }
        }
    }
}

impl std::error::Error for CodeVerifyError {}

/// Verify an instance of `code.len()` words about to be installed at
/// word address `base`. See the module docs for the checks performed.
///
/// # Errors
/// The first failing word, most specific check first.
pub fn verify_code(code: &[u32], base: u32) -> Result<(), CodeVerifyError> {
    let limit = base + code.len() as u32;
    let mut i = 0usize;
    while i < code.len() {
        let word = code[i];
        let at = i as u32;
        let inst = decode(word, code.get(i + 1).copied())
            .map_err(|_| CodeVerifyError::Undecodable { at, word })?;
        match inst.op {
            Op::EnterRegion | Op::EndSetup => {
                return Err(CodeVerifyError::TrapInCode { at, op: inst.op });
            }
            _ => {}
        }
        if inst.op.format() == Format::Branch {
            let target = i64::from(base) + i64::from(at) + 1 + i64::from(inst.imm);
            if target < 0 || target >= i64::from(limit) {
                return Err(CodeVerifyError::BranchOutOfRange { at, target, limit });
            }
        }
        if inst.is_wide() {
            if i + 1 >= code.len() {
                return Err(CodeVerifyError::Truncated { at });
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{encode, Inst, Op, Operand, ZERO};

    fn word(inst: &Inst) -> u32 {
        encode(inst).expect("encodes").0
    }

    #[test]
    fn accepts_straightline_code() {
        let code = vec![
            word(&Inst::op3(Op::Addq, ZERO, Operand::Lit(1), 1)),
            word(&Inst::op3(Op::Mulq, 1, Operand::Lit(7), 0)),
        ];
        assert_eq!(verify_code(&code, 100), Ok(()));
    }

    #[test]
    fn rejects_undecodable_word() {
        let code = vec![0xFF00_0000];
        assert!(matches!(
            verify_code(&code, 0),
            Err(CodeVerifyError::Undecodable { at: 0, .. })
        ));
    }

    #[test]
    fn rejects_truncated_wide_instruction() {
        let (w, _) = encode(&Inst {
            op: Op::Ldiw,
            ra: 0,
            rb: Operand::Reg(ZERO),
            rc: 1,
            imm: 0x1234,
        })
        .expect("encodes");
        assert!(matches!(
            verify_code(&[w], 0),
            Err(CodeVerifyError::Truncated { at: 0 })
        ));
    }

    #[test]
    fn wide_payload_is_not_decoded_as_an_instruction() {
        // The Ldiw payload is an arbitrary 32-bit value; an opcode-shaped
        // garbage payload must not be rejected.
        let (w, extra) = encode(&Inst {
            op: Op::Ldiw,
            ra: 0,
            rb: Operand::Reg(ZERO),
            rc: 1,
            imm: -1,
        })
        .expect("encodes");
        assert_eq!(verify_code(&[w, extra.unwrap()], 0), Ok(()));
    }

    #[test]
    fn branch_targets_are_range_checked() {
        // Backward branch into existing code: fine.
        let back = word(&Inst::branch(Op::Br, ZERO, -50));
        assert_eq!(verify_code(&[back], 100), Ok(()));
        // Branch past the end of the instance: rejected.
        let fwd = word(&Inst::branch(Op::Br, ZERO, 10));
        assert!(matches!(
            verify_code(&[fwd], 100),
            Err(CodeVerifyError::BranchOutOfRange { at: 0, .. })
        ));
        // Branch before address 0: rejected.
        let neg = word(&Inst::branch(Op::Br, ZERO, -50));
        assert!(matches!(
            verify_code(&[neg], 10),
            Err(CodeVerifyError::BranchOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_trap_instructions() {
        let trap = word(&Inst {
            op: Op::EnterRegion,
            ra: 0,
            rb: Operand::Reg(ZERO),
            rc: 0,
            imm: 3,
        });
        assert!(matches!(
            verify_code(&[trap], 0),
            Err(CodeVerifyError::TrapInCode { at: 0, .. })
        ));
    }
}
