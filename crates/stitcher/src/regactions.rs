//! Register actions (§5 extension): stitcher-time register allocation of
//! constant-address array elements, after Wall's link-time allocator.
//!
//! The paper reports that most template code in some kernels is array
//! loads/stores through run-time-constant addresses; promoting a few such
//! elements to registers at stitch time raised the calculator's speedup
//! from 1.7× to 4.1×. Here the static compiler's role is played by a
//! post-stitch rewrite: loads and stores whose base register is the
//! stitcher scratch (`r25`, holding a just-materialized constant address)
//! or whose address was patched from the constants table are candidates;
//! the hottest few addresses are assigned to a bank of reserved registers,
//! their loads/stores rewritten to register moves.
//!
//! The implementation works on stitched code as a peephole pass: it scans
//! for `Ldq/Stq rX, disp(rB)` pairs whose effective address is a known
//! constant (recorded by the stitcher in an *action log*), ranks addresses
//! by access count, assigns the top `k` to registers, and rewrites.

use dyncomp_machine::isa::{decode, encode, Inst, Op, Operand, Reg};

/// A memory access the stitcher identified as having a run-time-constant
/// effective address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConstAccess {
    /// Word offset of the load/store in the stitched code.
    pub at: u32,
    /// The constant effective address.
    pub addr: u64,
    /// Whether this is a store.
    pub is_store: bool,
    /// Output position of the hole load that materialized the base
    /// address, when known and not otherwise used — if every access
    /// through it is rewritten, the load itself is dead ("eliminate
    /// loads, stores, and address arithmetic", §5).
    pub via_load: Option<u32>,
}

/// Result of applying register actions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegActionStats {
    /// Loads rewritten to register moves.
    pub loads_removed: u32,
    /// Stores rewritten to register moves.
    pub stores_rewritten: u32,
    /// Address-materializing loads that became dead and were neutralized.
    pub addr_loads_removed: u32,
    /// Addresses promoted to registers.
    pub promoted: u32,
}

/// Registers available for promotion (a dedicated bank the allocator never
/// uses for ordinary values would be reserved by a production compiler; we
/// borrow high float-caller registers' integer twins, which our code
/// generator leaves untouched between calls: `r16`–`r21` are argument
/// registers, dead after the prologue in leaf templates).
pub const ACTION_REGS: &[Reg] = &[16, 17, 18, 19, 20, 21];

/// Rewrite `code` so the `k` most-accessed constant addresses live in a
/// register bank: a preload sequence (returned for the caller to splice at
/// the stitched entry) brings each promoted element into its bank
/// register; loads become register moves and stores become register moves
/// *into* the bank.
///
/// There is **no write-back**: this matches the §5 experiment, where the
/// promoted array (the calculator's operand stack) is pure scratch — dead
/// once the region exits. Applying register actions to a region whose
/// promoted memory is read by other code after the region would be
/// unsound; the option is therefore opt-in per program.
///
/// Returns the preamble instructions, a per-access rewrite mask, and the
/// statistics.
pub fn apply_register_actions(
    code: &mut [u32],
    accesses: &[ConstAccess],
    k: usize,
) -> (Vec<Inst>, Vec<bool>, RegActionStats) {
    let mut stats = RegActionStats::default();
    let mut rewritten = vec![false; accesses.len()];
    use std::collections::HashMap;
    let mut count: HashMap<u64, u32> = HashMap::new();
    for a in accesses {
        *count.entry(a.addr).or_insert(0) += 1;
    }
    let mut ranked: Vec<(u64, u32)> = count.into_iter().collect();
    ranked.sort_by_key(|&(addr, n)| (std::cmp::Reverse(n), addr));
    ranked.truncate(k.min(ACTION_REGS.len()));

    let assignment: HashMap<u64, Reg> = ranked
        .iter()
        .enumerate()
        .map(|(i, &(addr, _))| (addr, ACTION_REGS[i]))
        .collect();
    stats.promoted = assignment.len() as u32;

    for (i, a) in accesses.iter().enumerate() {
        let Some(&bank) = assignment.get(&a.addr) else {
            continue;
        };
        let word = code[a.at as usize];
        let Ok(inst) = decode(word, None) else {
            continue;
        };
        match inst.op {
            Op::Ldq if !a.is_store => {
                let mv = Inst::op3(Op::Bis, bank, Operand::Reg(bank), inst.ra);
                let (w, _) = encode(&mv).expect("move encodes");
                code[a.at as usize] = w;
                stats.loads_removed += 1;
                rewritten[i] = true;
            }
            Op::Stq if a.is_store => {
                let mv = Inst::op3(Op::Bis, inst.ra, Operand::Reg(inst.ra), bank);
                let (w, _) = encode(&mv).expect("move encodes");
                code[a.at as usize] = w;
                stats.stores_rewritten += 1;
                rewritten[i] = true;
            }
            _ => {}
        }
    }

    // Neutralize address loads whose every consumer was rewritten.
    {
        use std::collections::HashMap as Map;
        let mut by_load: Map<u32, Vec<usize>> = Map::new();
        for (i, a) in accesses.iter().enumerate() {
            if let Some(l) = a.via_load {
                by_load.entry(l).or_default().push(i);
            }
        }
        let nop = encode(&Inst::op3(Op::Bis, 31, Operand::Reg(31), 31))
            .expect("nop")
            .0;
        for (l, idxs) in by_load {
            if idxs.iter().all(|&i| rewritten[i]) {
                code[l as usize] = nop;
                stats.addr_loads_removed += 1;
            }
        }
    }

    // Preamble: materialize each promoted address into the stitcher
    // scratch and load the element into its bank register.
    let mut preamble = Vec::new();
    for (&addr, &bank) in {
        let mut v: Vec<_> = assignment.iter().collect();
        v.sort();
        v
    } {
        preamble.push(Inst::ldiw(dyncomp_machine::isa::SCRATCH0, addr as i32));
        preamble.push(Inst::mem(Op::Ldq, bank, dyncomp_machine::isa::SCRATCH0, 0));
    }
    (preamble, rewritten, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotes_hot_read_only_addresses() {
        // Two loads of the same address, one of another.
        let l1 = encode(&Inst::mem(Op::Ldq, 1, 25, 0)).unwrap().0;
        let l2 = encode(&Inst::mem(Op::Ldq, 2, 25, 0)).unwrap().0;
        let l3 = encode(&Inst::mem(Op::Ldq, 3, 25, 0)).unwrap().0;
        let mut code = vec![l1, l2, l3];
        let accesses = vec![
            ConstAccess {
                at: 0,
                addr: 0x2000,
                is_store: false,
                via_load: None,
            },
            ConstAccess {
                at: 1,
                addr: 0x2000,
                is_store: false,
                via_load: None,
            },
            ConstAccess {
                at: 2,
                addr: 0x3000,
                is_store: false,
                via_load: None,
            },
        ];
        let (pre, _rw, stats) = apply_register_actions(&mut code, &accesses, 1);
        assert_eq!(stats.promoted, 1);
        assert_eq!(stats.loads_removed, 2, "both 0x2000 loads rewritten");
        assert_eq!(pre.len(), 2, "one ldiw + one ldq preload");
        // Rewritten words are moves now.
        let d = decode(code[0], None).unwrap();
        assert_eq!(d.op, Op::Bis);
        assert_eq!(d.rc, 1);
        let d3 = decode(code[2], None).unwrap();
        assert_eq!(d3.op, Op::Ldq, "cold address untouched");
    }

    #[test]
    fn written_addresses_promote_with_store_rewrites() {
        let l1 = encode(&Inst::mem(Op::Ldq, 1, 25, 0)).unwrap().0;
        let s1 = encode(&Inst::mem(Op::Stq, 2, 25, 0)).unwrap().0;
        let mut code = vec![l1, s1];
        let accesses = vec![
            ConstAccess {
                at: 0,
                addr: 0x2000,
                is_store: false,
                via_load: None,
            },
            ConstAccess {
                at: 1,
                addr: 0x2000,
                is_store: true,
                via_load: None,
            },
        ];
        let (_, _rw, stats) = apply_register_actions(&mut code, &accesses, 4);
        assert_eq!(stats.promoted, 1);
        assert_eq!(stats.loads_removed, 1);
        assert_eq!(stats.stores_rewritten, 1);
        let d = decode(code[1], None).unwrap();
        assert_eq!(d.op, Op::Bis, "store became a move into the bank");
    }

    #[test]
    fn promotion_limited_by_bank_size() {
        let mut code = Vec::new();
        let mut accesses = Vec::new();
        for i in 0..10 {
            let w = encode(&Inst::mem(Op::Ldq, 1, 25, 0)).unwrap().0;
            code.push(w);
            accesses.push(ConstAccess {
                at: i,
                addr: 0x1000 + u64::from(i) * 8,
                is_store: false,
                via_load: None,
            });
        }
        let (_, _rw, stats) = apply_register_actions(&mut code, &accesses, 100);
        assert_eq!(stats.promoted as usize, ACTION_REGS.len());
    }
}
