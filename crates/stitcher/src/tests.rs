//! Stitcher unit tests on hand-built templates (end-to-end pipeline tests
//! live in the `dyncomp` core crate).

use crate::{stitch, StitchError, StitchOptions};
use dyncomp_ir::eval::Memory;
use dyncomp_ir::SlotPath;
use dyncomp_machine::isa::{encode, Inst, Op, Operand, Reg, ZERO};
use dyncomp_machine::template::{
    Hole, HoleField, LoopMarker, RegionCode, Template, TmplBlock, TmplExit,
};
use dyncomp_machine::vm::{Stop, Vm};

fn word(i: Inst) -> u32 {
    encode(&i).unwrap().0
}

fn block(start: u32, end: u32, exit: TmplExit) -> TmplBlock {
    TmplBlock {
        start,
        end,
        holes: vec![],
        branches: vec![],
        marker: None,
        exit,
        plan: None,
    }
}

fn region(template: Template, static_len: u32) -> RegionCode {
    RegionCode {
        region_index: 0,
        enter_pc: 0,
        setup_pc: 0,
        fallback_pc: None,
        template,
        exit_pcs: vec![],
        key_locs: vec![],
        table_static_len: static_len,
    }
}

/// Build a table in memory with the given static slot values.
fn make_table(mem: &mut Memory, slots: &[u64]) -> u64 {
    let t = mem.alloc(8 * slots.len() as u64).unwrap();
    for (i, &v) in slots.iter().enumerate() {
        mem.write_u64(t + 8 * i as u64, v).unwrap();
    }
    t
}

/// Run stitched code in a VM: set up args, jump in, expect Halted; the
/// code must end with a return through `ra`.
fn run_stitched(code: &[u32], mem: Memory, args: &[u64]) -> (u64, Vm) {
    let mut vm = Vm::new(1 << 20);
    vm.mem = mem;
    let entry = vm.append_code(code);
    vm.setup_call(entry, args).unwrap();
    match vm.run() {
        Ok(Stop::Halted) => (vm.reg(0), vm),
        other => panic!("unexpected stop: {other:?}"),
    }
}

/// Template: r0 = r16 + <hole t[0]>; ret.
fn add_hole_template() -> Template {
    let code = vec![
        word(Inst::op3(Op::Addq, 16, Operand::Lit(0), 0)),
        word(Inst::jump(Op::Jmp, ZERO, dyncomp_machine::isa::RA)),
    ];
    Template {
        code,
        blocks: vec![TmplBlock {
            start: 0,
            end: 2,
            holes: vec![Hole {
                at: 0,
                field: HoleField::Lit,
                slot: SlotPath::stat(0),
            }],
            branches: vec![],
            marker: None,
            exit: TmplExit::Return,
            plan: None,
        }],
        entry: 0,
    }
}

#[test]
fn small_constant_patched_inline() {
    let mut mem = Memory::with_capacity(1 << 20);
    let t = make_table(&mut mem, &[42]);
    let rc = region(add_hole_template(), 1);
    let out = stitch(&rc, t, &mut mem, 0, &StitchOptions::default()).unwrap();
    assert_eq!(out.stats.holes_inline, 1);
    assert_eq!(out.stats.holes_big, 0);
    let (r, _) = run_stitched(&out.code, mem, &[100]);
    assert_eq!(r, 142);
}

#[test]
fn large_constant_goes_through_scratch() {
    let mut mem = Memory::with_capacity(1 << 20);
    let t = make_table(&mut mem, &[1_000_000]);
    let rc = region(add_hole_template(), 1);
    let out = stitch(&rc, t, &mut mem, 0, &StitchOptions::default()).unwrap();
    assert_eq!(out.stats.holes_big, 1);
    let (r, _) = run_stitched(&out.code, mem, &[7]);
    assert_eq!(r, 1_000_007);
}

#[test]
fn huge_constant_uses_linearized_table() {
    let mut mem = Memory::with_capacity(1 << 20);
    let big = 0x1234_5678_9ABC_DEF0u64;
    let t = make_table(&mut mem, &[big]);
    let rc = region(add_hole_template(), 1);
    let out = stitch(&rc, t, &mut mem, 0, &StitchOptions::default()).unwrap();
    assert_ne!(out.lin_table_addr, 0, "linearized table allocated");
    let (r, _) = run_stitched(&out.code, mem, &[1]);
    assert_eq!(r, big.wrapping_add(1));
}

#[test]
fn huge_constant_without_linearized_table_is_constructed() {
    let mut mem = Memory::with_capacity(1 << 20);
    let big = 0x1234_5678_9ABC_DEF0u64;
    let t = make_table(&mut mem, &[big]);
    let rc = region(add_hole_template(), 1);
    let opts = StitchOptions {
        linearized_table: false,
        ..Default::default()
    };
    let out = stitch(&rc, t, &mut mem, 0, &opts).unwrap();
    assert_eq!(out.lin_table_addr, 0, "no table in ablation mode");
    let (r, _) = run_stitched(&out.code, mem, &[1]);
    assert_eq!(r, big.wrapping_add(1));
}

/// Template with a constant branch: r0 = 1 on the then-side, 2 on else.
fn const_branch_template() -> Template {
    let code = vec![
        word(Inst::op3(Op::Addq, ZERO, Operand::Lit(1), 0)),
        word(Inst::jump(Op::Jmp, ZERO, dyncomp_machine::isa::RA)),
        word(Inst::op3(Op::Addq, ZERO, Operand::Lit(2), 0)),
        word(Inst::jump(Op::Jmp, ZERO, dyncomp_machine::isa::RA)),
    ];
    Template {
        code,
        blocks: vec![
            block(
                0,
                0,
                TmplExit::ConstBranch {
                    slot: SlotPath::stat(0),
                    then_l: 1,
                    else_l: 2,
                },
            ),
            block(0, 2, TmplExit::Return),
            block(2, 4, TmplExit::Return),
        ],
        entry: 0,
    }
}

#[test]
fn constant_branch_stitches_exactly_one_side() {
    for (pred, want) in [(1u64, 1u64), (0, 2)] {
        let mut mem = Memory::with_capacity(1 << 20);
        let t = make_table(&mut mem, &[pred]);
        let rc = region(const_branch_template(), 1);
        let out = stitch(&rc, t, &mut mem, 0, &StitchOptions::default()).unwrap();
        assert_eq!(out.stats.const_branches_resolved, 1);
        // Prologue (2 words) + exactly one side (2 words).
        assert_eq!(out.code.len(), 4, "dead side not stitched");
        let (r, _) = run_stitched(&out.code, mem, &[]);
        assert_eq!(r, want);
    }
}

/// Unrolled loop: per-iteration records each hold [predicate, value, next].
/// Body: r0 += <hole rec[1]>.
fn unrolled_template() -> Template {
    let code = vec![
        // entry block: r0 = 0
        word(Inst::op3(Op::Addq, ZERO, Operand::Lit(0), 0)),
        // body: r0 = r0 + hole(rec slot 1)
        word(Inst::op3(Op::Addq, 0, Operand::Lit(0), 0)),
        // exit: ret
        word(Inst::jump(Op::Jmp, ZERO, dyncomp_machine::isa::RA)),
    ];
    Template {
        code,
        blocks: vec![
            // 0: entry code then EnterLoop marker, to header.
            TmplBlock {
                start: 0,
                end: 1,
                holes: vec![],
                branches: vec![],
                marker: Some(LoopMarker::Enter {
                    root: SlotPath::stat(0),
                }),
                exit: TmplExit::Jump(1),
                plan: None,
            },
            // 1: header: constant branch on rec[0].
            block(
                1,
                1,
                TmplExit::ConstBranch {
                    slot: SlotPath::stat(0).child(0),
                    then_l: 2,
                    else_l: 4,
                },
            ),
            // 2: body with per-iteration hole.
            TmplBlock {
                start: 1,
                end: 2,
                holes: vec![Hole {
                    at: 1,
                    field: HoleField::Lit,
                    slot: SlotPath::stat(0).child(1),
                }],
                branches: vec![],
                marker: None,
                exit: TmplExit::Jump(3),
                plan: None,
            },
            // 3: restart marker back to header.
            TmplBlock {
                start: 2,
                end: 2,
                holes: vec![],
                branches: vec![],
                marker: Some(LoopMarker::Restart { next_slot: 2 }),
                exit: TmplExit::Jump(1),
                plan: None,
            },
            // 4: exit marker then return.
            TmplBlock {
                start: 2,
                end: 3,
                holes: vec![],
                branches: vec![],
                marker: Some(LoopMarker::Exit),
                exit: TmplExit::Return,
                plan: None,
            },
        ],
        entry: 0,
    }
}

/// Build the record chain for values; the last record has predicate 0.
fn build_chain(mem: &mut Memory, values: &[u64]) -> u64 {
    let table = mem.alloc(8).unwrap();
    let mut link = table; // static slot 0 is the chain root
    for &v in values {
        let rec = mem.alloc(24).unwrap();
        mem.write_u64(link, rec).unwrap();
        mem.write_u64(rec, 1).unwrap();
        mem.write_u64(rec + 8, v).unwrap();
        link = rec + 16;
    }
    let last = mem.alloc(24).unwrap();
    mem.write_u64(link, last).unwrap();
    mem.write_u64(last, 0).unwrap();
    table
}

#[test]
fn loop_unrolls_once_per_record() {
    let mut mem = Memory::with_capacity(1 << 20);
    let t = build_chain(&mut mem, &[5, 7, 11]);
    let rc = region(unrolled_template(), 1);
    let out = stitch(&rc, t, &mut mem, 0, &StitchOptions::default()).unwrap();
    assert_eq!(out.stats.loop_iterations, 3);
    assert_eq!(out.stats.const_branches_resolved, 4, "3 continues + 1 exit");
    assert_eq!(out.stats.holes_inline, 3, "one body hole per iteration");
    let (r, _) = run_stitched(&out.code, mem, &[]);
    assert_eq!(r, 23);
}

#[test]
fn zero_iteration_loop() {
    let mut mem = Memory::with_capacity(1 << 20);
    let t = build_chain(&mut mem, &[]);
    let rc = region(unrolled_template(), 1);
    let out = stitch(&rc, t, &mut mem, 0, &StitchOptions::default()).unwrap();
    assert_eq!(out.stats.loop_iterations, 0);
    let (r, _) = run_stitched(&out.code, mem, &[]);
    assert_eq!(r, 0);
}

#[test]
fn strength_reduction_multiply_by_power_of_two() {
    // Template: r0 = r16 * hole; ret.
    let code = vec![
        word(Inst::op3(Op::Mulq, 16, Operand::Lit(0), 0)),
        word(Inst::jump(Op::Jmp, ZERO, dyncomp_machine::isa::RA)),
    ];
    let tmpl = Template {
        code,
        blocks: vec![TmplBlock {
            start: 0,
            end: 2,
            holes: vec![Hole {
                at: 0,
                field: HoleField::Lit,
                slot: SlotPath::stat(0),
            }],
            branches: vec![],
            marker: None,
            exit: TmplExit::Return,
            plan: None,
        }],
        entry: 0,
    };
    for (mult, expect_sr) in [
        (8u64, true),
        (6, true),
        (1, true),
        (0, true),
        (255, true),
        (86, false),
    ] {
        let mut mem = Memory::with_capacity(1 << 20);
        let t = make_table(&mut mem, &[mult]);
        let rc = region(tmpl.clone(), 1);
        let out = stitch(&rc, t, &mut mem, 0, &StitchOptions::default()).unwrap();
        assert_eq!(
            out.stats.strength_reductions > 0,
            expect_sr,
            "mult={mult} sr={}",
            out.stats.strength_reductions
        );
        let (r, _) = run_stitched(&out.code, mem, &[13]);
        assert_eq!(r, 13 * mult, "mult={mult}");
    }
}

#[test]
fn strength_reduction_div_rem_by_power_of_two() {
    for (op, val, arg, want) in [
        (Op::Divqu, 8u64, 100u64, 12u64),
        (Op::Remqu, 8, 100, 4),
        (Op::Remqu, 1024, 1_000_000, 1_000_000 % 1024),
    ] {
        let code = vec![
            word(Inst::op3(op, 16, Operand::Lit(0), 0)),
            word(Inst::jump(Op::Jmp, ZERO, dyncomp_machine::isa::RA)),
        ];
        let tmpl = Template {
            code,
            blocks: vec![TmplBlock {
                start: 0,
                end: 2,
                holes: vec![Hole {
                    at: 0,
                    field: HoleField::Lit,
                    slot: SlotPath::stat(0),
                }],
                branches: vec![],
                marker: None,
                exit: TmplExit::Return,
                plan: None,
            }],
            entry: 0,
        };
        let mut mem = Memory::with_capacity(1 << 20);
        let t = make_table(&mut mem, &[val]);
        let rc = region(tmpl, 1);
        let out = stitch(&rc, t, &mut mem, 0, &StitchOptions::default()).unwrap();
        assert!(out.stats.strength_reductions > 0, "{op:?} by {val}");
        let (r, _) = run_stitched(&out.code, mem, &[arg]);
        assert_eq!(r, want, "{op:?} by {val}");
    }
}

#[test]
fn peephole_off_keeps_multiply() {
    let code = vec![
        word(Inst::op3(Op::Mulq, 16, Operand::Lit(0), 0)),
        word(Inst::jump(Op::Jmp, ZERO, dyncomp_machine::isa::RA)),
    ];
    let tmpl = Template {
        code,
        blocks: vec![TmplBlock {
            start: 0,
            end: 2,
            holes: vec![Hole {
                at: 0,
                field: HoleField::Lit,
                slot: SlotPath::stat(0),
            }],
            branches: vec![],
            marker: None,
            exit: TmplExit::Return,
            plan: None,
        }],
        entry: 0,
    };
    let mut mem = Memory::with_capacity(1 << 20);
    let t = make_table(&mut mem, &[8]);
    let rc = region(tmpl, 1);
    let opts = StitchOptions {
        peephole: false,
        ..Default::default()
    };
    let out = stitch(&rc, t, &mut mem, 0, &opts).unwrap();
    assert_eq!(out.stats.strength_reductions, 0);
    let (r, _) = run_stitched(&out.code, mem, &[13]);
    assert_eq!(r, 104);
}

#[test]
fn dynamic_branch_stitches_both_sides() {
    // if (r16 != 0) r0 = 1 else r0 = 2, via a real BNE in the template.
    let code = vec![
        word(Inst::branch(Op::Bne, 16, 0)), // block 0, fixed up
        word(Inst::op3(Op::Addq, ZERO, Operand::Lit(2), 0)), // else
        word(Inst::jump(Op::Jmp, ZERO, dyncomp_machine::isa::RA)),
        word(Inst::op3(Op::Addq, ZERO, Operand::Lit(1), 0)), // then
        word(Inst::jump(Op::Jmp, ZERO, dyncomp_machine::isa::RA)),
    ];
    let tmpl = Template {
        code,
        blocks: vec![
            block(
                0,
                1,
                TmplExit::CondBranch {
                    at: 0,
                    taken: 2,
                    fall: 1,
                },
            ),
            block(1, 3, TmplExit::Return),
            block(3, 5, TmplExit::Return),
        ],
        entry: 0,
    };
    let mut mem = Memory::with_capacity(1 << 20);
    let t = make_table(&mut mem, &[0]);
    let rc = region(tmpl, 1);
    let out = stitch(&rc, t, &mut mem, 0, &StitchOptions::default()).unwrap();
    // Both sides present: prologue 2 + branch 1 + else 2 + then 2.
    assert_eq!(out.code.len(), 7);
    let (r1, _) = run_stitched(&out.code, mem.clone(), &[5]);
    assert_eq!(r1, 1);
    let (r2, _) = run_stitched(&out.code, mem, &[0]);
    assert_eq!(r2, 2);
}

#[test]
fn merge_points_are_shared_not_duplicated() {
    // Diamond: both sides jump to a shared tail.
    let code = vec![
        word(Inst::branch(Op::Bne, 16, 0)),
        word(Inst::op3(Op::Addq, ZERO, Operand::Lit(2), 0)),
        word(Inst::op3(Op::Addq, ZERO, Operand::Lit(1), 0)),
        word(Inst::op3(Op::Addq, 0, Operand::Lit(100), 0)), // shared tail
        word(Inst::jump(Op::Jmp, ZERO, dyncomp_machine::isa::RA)),
    ];
    let tmpl = Template {
        code,
        blocks: vec![
            block(
                0,
                1,
                TmplExit::CondBranch {
                    at: 0,
                    taken: 2,
                    fall: 1,
                },
            ),
            block(1, 2, TmplExit::Jump(3)),
            block(2, 3, TmplExit::Jump(3)),
            block(3, 5, TmplExit::Return),
        ],
        entry: 0,
    };
    let mut mem = Memory::with_capacity(1 << 20);
    let t = make_table(&mut mem, &[0]);
    let rc = region(tmpl, 1);
    let out = stitch(&rc, t, &mut mem, 0, &StitchOptions::default()).unwrap();
    let (r1, _) = run_stitched(&out.code, mem.clone(), &[1]);
    assert_eq!(r1, 101);
    let (r2, _) = run_stitched(&out.code, mem, &[0]);
    assert_eq!(r2, 102);
    // The tail (2 words) appears once: total = prologue 2 + branch 1 +
    // else 1 + tail 2 + then 1 + br-to-tail 1 = 8.
    assert_eq!(out.code.len(), 8, "shared tail stitched once");
}

#[test]
fn unroll_budget_guards_against_runaway() {
    // A very long chain with a tiny block budget.
    let mut mem = Memory::with_capacity(1 << 22);
    let values: Vec<u64> = (0..600).collect();
    let table = build_chain(&mut mem, &values);
    let rc = region(unrolled_template(), 1);
    let opts = StitchOptions {
        max_blocks: 100,
        ..Default::default()
    };
    let err = stitch(&rc, table, &mut mem, 0, &opts).unwrap_err();
    assert_eq!(err, StitchError::UnrollBudget);
}

#[test]
fn self_looping_chain_converges_by_dedup() {
    // A record whose `next` points at itself produces a stitched loop
    // (the (block, record) key repeats), not runaway growth.
    let mut mem = Memory::with_capacity(1 << 20);
    let table = mem.alloc(8).unwrap();
    let rec = mem.alloc(24).unwrap();
    mem.write_u64(table, rec).unwrap();
    mem.write_u64(rec, 1).unwrap(); // predicate: always continue
    mem.write_u64(rec + 8, 1).unwrap();
    mem.write_u64(rec + 16, rec).unwrap(); // next = self
    let rc = region(unrolled_template(), 1);
    let out = stitch(&rc, table, &mut mem, 0, &StitchOptions::default()).unwrap();
    assert!(
        out.code.len() < 20,
        "dedup closes the loop: {}",
        out.code.len()
    );
}

#[test]
fn far_linearized_table_entries() {
    // An unrolled loop with > 1023 distinct large per-iteration constants:
    // entries past the 14-bit displacement use the far path.
    let mut mem = Memory::with_capacity(1 << 24);
    let values: Vec<u64> = (0..1500u64).map(|i| 0x1_0000_0000u64 + i).collect();
    let t = build_chain(&mut mem, &values);
    let rc = region(unrolled_template(), 1);
    let out = stitch(&rc, t, &mut mem, 0, &StitchOptions::default()).unwrap();
    assert_eq!(out.stats.loop_iterations, 1500);
    assert!(out.lin_table_addr != 0);
    let want: u64 = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
    let mut vm = Vm::new(1 << 24);
    vm.mem = mem;
    vm.fuel = 50_000_000;
    let entry = vm.append_code(&out.code);
    vm.setup_call(entry, &[]).unwrap();
    assert_eq!(vm.run().unwrap(), Stop::Halted);
    assert_eq!(vm.reg(0), want);
}

#[test]
fn stitcher_cycles_accumulate() {
    let mut mem = Memory::with_capacity(1 << 20);
    let t = build_chain(&mut mem, &[1, 2, 3, 4, 5]);
    let rc = region(unrolled_template(), 1);
    let out = stitch(&rc, t, &mut mem, 0, &StitchOptions::default()).unwrap();
    assert!(out.stats.cycles > 0);
    // More iterations cost more stitcher cycles.
    let mut mem2 = Memory::with_capacity(1 << 20);
    let t2 = build_chain(&mut mem2, &[1]);
    let out2 = stitch(&rc, t2, &mut mem2, 0, &StitchOptions::default()).unwrap();
    assert!(out.stats.cycles > out2.stats.cycles);
    let _: Reg = 0;
}

// ---- Stitched::relocate edge cases -------------------------------------
// `relocate` is the install path for both the shared code cache and the
// tiered runtime's background installs, so its corners matter: blocks with
// nothing to patch, re-installation at the original base, and patches
// touching the very last code word.

/// A minimal hand-built `Stitched` (no table, no patches by default).
fn bare_stitched(code: Vec<u32>) -> crate::Stitched {
    crate::Stitched {
        code,
        lin_table_addr: 0,
        lin_words: vec![],
        lin_addr_patches: vec![],
        lin_far_addr_patches: vec![],
        exit_patches: vec![],
        plan_patches: vec![],
        stats: crate::StitchStats::default(),
        native_bytes: 0,
    }
}

#[test]
fn relocate_zero_patch_block_is_a_plain_copy() {
    let code = vec![
        word(Inst::op3(Op::Addq, 1, Operand::Lit(2), 1)),
        word(Inst::op3(Op::Mulq, 1, Operand::Reg(1), 0)),
    ];
    let s = bare_stitched(code.clone());
    let mut mem = Memory::with_capacity(1 << 16);
    let brk_before = mem.alloc(0).unwrap();
    let (out, lin) = s.relocate(1234, &mut mem).unwrap();
    assert_eq!(out, code, "no patches: relocation must be a verbatim copy");
    assert_eq!(lin, 0, "no table words: no table allocated");
    assert_eq!(mem.alloc(0).unwrap(), brk_before, "no memory consumed");
}

#[test]
fn relocate_at_same_base_reproduces_original_exit_branches() {
    // An exit branch at word 2 targeting absolute address 10, originally
    // stitched for base 100: disp = 10 - (100 + 2 + 1) = -93.
    let base = 100u32;
    let exit_at = 2u32;
    let target = 10u32;
    let disp = target as i64 - (base as i64 + exit_at as i64 + 1);
    let mut code = vec![
        word(Inst::op3(Op::Addq, 1, Operand::Lit(1), 1)),
        word(Inst::op3(Op::Addq, 1, Operand::Lit(1), 1)),
        word(Inst::branch(Op::Br, ZERO, disp as i32)),
    ];
    let mut s = bare_stitched(code.clone());
    s.exit_patches = vec![(exit_at, target)];
    let mut mem = Memory::with_capacity(1 << 16);
    let (out, _) = s.relocate(base, &mut mem).unwrap();
    assert_eq!(out, code, "same-base relocation must be the identity");
    // And a different base re-encodes the displacement correctly.
    let new_base = 500u32;
    let (out2, _) = s.relocate(new_base, &mut mem).unwrap();
    let disp2 = target as i64 - (new_base as i64 + exit_at as i64 + 1);
    code[exit_at as usize] = word(Inst::branch(Op::Br, ZERO, disp2 as i32));
    assert_eq!(out2, code);
}

#[test]
fn relocate_far_entry_patch_in_final_code_word() {
    // A far-entry Ldiw whose *address word* (p + 1) is the last word of
    // the code: the patch must land exactly on the final word without
    // running past the buffer.
    let code = vec![
        word(Inst::op3(Op::Addq, 1, Operand::Lit(0), 1)),
        0xdead_0000, // Ldiw first word (opcode irrelevant to relocate)
        0xffff_ffff, // second word: table address placeholder (final word)
    ];
    let mut s = bare_stitched(code);
    s.lin_words = vec![7, 11, 13];
    s.lin_far_addr_patches = vec![(1, 16)]; // slot 2: byte offset 16
    let mut mem = Memory::with_capacity(1 << 16);
    let (out, lin) = s.relocate(0, &mut mem).unwrap();
    assert_ne!(lin, 0, "table words present: a table must be allocated");
    assert_eq!(out.len(), 3);
    assert_eq!(
        out[2],
        (lin as u32).wrapping_add(16),
        "final word must hold table base + recorded offset"
    );
    // The freshly allocated table holds the recorded words.
    for (i, &w) in s.lin_words.iter().enumerate() {
        assert_eq!(mem.read_u64(lin + 8 * i as u64).unwrap(), w);
    }
    // A second relocation allocates a second, independent table.
    let (out_b, lin_b) = s.relocate(0, &mut mem).unwrap();
    assert_ne!(lin_b, lin);
    assert_eq!(out_b[2], (lin_b as u32).wrapping_add(16));
}

#[test]
fn relocate_near_table_patch_in_final_code_word() {
    // Same corner for the near (`lin_addr_patches`) form: second word of
    // the Ldiw is the final code word and receives the raw table base.
    let code = vec![0xbeef_0000, 0x0000_0000];
    let mut s = bare_stitched(code);
    s.lin_words = vec![42];
    s.lin_addr_patches = vec![0];
    let mut mem = Memory::with_capacity(1 << 16);
    let (out, lin) = s.relocate(64, &mut mem).unwrap();
    assert_eq!(out[1], lin as u32);
    assert_eq!(mem.read_u64(lin).unwrap(), 42);
}

#[test]
fn patch_lit_word_rejects_values_over_255() {
    // Regression: this used to truncate with `v as u8` (silently wrong
    // code in release builds); it must refuse instead.
    let w = word(Inst::op3(Op::Addq, 16, Operand::Lit(0), 0));
    assert_eq!(
        crate::patch_lit_word(w, 255).unwrap(),
        word(Inst::op3(Op::Addq, 16, Operand::Lit(255), 0))
    );
    for v in [256u64, 300, 70_000, u64::MAX] {
        let err = crate::patch_lit_word(w, v).unwrap_err();
        assert!(
            matches!(err, StitchError::BadTemplate(_)),
            "value {v}: {err}"
        );
    }
}

#[test]
fn patch_memdisp_word_rejects_offsets_beyond_displacement_range() {
    // Regression: this used to mask to 14 bits behind a `debug_assert`
    // (silently aliasing a wrong table slot in release builds).
    use dyncomp_machine::isa::limits::DISP_MAX;
    let w = word(Inst::mem(Op::Ldq, 1, 2, 0));
    let ok = crate::patch_memdisp_word(w, DISP_MAX).unwrap();
    assert_eq!(ok, word(Inst::mem(Op::Ldq, 1, 2, DISP_MAX as i16)));
    for off in [DISP_MAX + 1, DISP_MAX + 8, i32::MAX, -8] {
        let err = crate::patch_memdisp_word(w, off).unwrap_err();
        assert!(
            matches!(err, StitchError::BadTemplate(_)),
            "offset {off}: {err}"
        );
    }
}
