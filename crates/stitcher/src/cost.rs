//! The stitcher's deterministic cost model.
//!
//! The paper measured dynamic-compilation overhead with the Alpha's cycle
//! counter; our stitcher is host Rust, so each action is charged a
//! documented cost instead (see DESIGN.md). The values reflect the paper's
//! characterization of its own overheads: a directive-*interpreting*
//! stitcher with an intermediate constants table — per-directive decode
//! cost dominates, table traversal is pointer chasing, and instruction
//! copying is cheap per word.

/// Per-action stitcher costs, in simulated cycles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StitchCost {
    /// Decoding one directive (block header, hole, marker, …).
    pub directive: u64,
    /// Copying one code word into the output.
    pub copy_word: u64,
    /// Reading one constants-table slot (a dependent load chain).
    pub table_read: u64,
    /// Patching a hole whose value fits the 8-bit literal.
    pub hole_inline: u64,
    /// Patching a hole by constructing or loading a large constant.
    pub hole_big: u64,
    /// Appending one value to the linearized constants table.
    pub lin_append: u64,
    /// Resolving one constant branch (dead-code elimination decision).
    pub const_branch: u64,
    /// Entering/advancing/exiting an unrolled-loop record chain.
    pub loop_op: u64,
    /// Resolving one pc-relative branch fixup.
    pub branch_fixup: u64,
    /// Attempting a peephole rewrite at a hole.
    pub peephole_try: u64,
    /// Each instruction emitted by a peephole expansion.
    pub peephole_emit: u64,
    /// Dispatching to a precompiled stitch plan (one indirect load plus
    /// the applicability checks, replacing per-directive decode).
    pub plan_dispatch: u64,
    /// Copying one code word via a plan's bulk copy. Cheaper than
    /// [`StitchCost::copy_word`]: a straight `memcpy` with no directive
    /// interleaving.
    pub plan_copy_word: u64,
    /// Applying one plan patch (the table read is charged separately via
    /// [`StitchCost::table_read`]).
    pub plan_patch: u64,
}

impl Default for StitchCost {
    fn default() -> Self {
        StitchCost {
            directive: 40,
            copy_word: 10,
            table_read: 20,
            hole_inline: 30,
            hole_big: 60,
            lin_append: 20,
            const_branch: 45,
            loop_op: 60,
            branch_fixup: 35,
            peephole_try: 25,
            peephole_emit: 10,
            plan_dispatch: 12,
            plan_copy_word: 2,
            plan_patch: 10,
        }
    }
}

impl StitchCost {
    /// A cost model for the "merged set-up/stitcher" fast path the paper's
    /// §7 proposes as future work (used by the ablation bench): directives
    /// are compiled away, so decode and table-traversal costs shrink.
    pub fn fused() -> Self {
        StitchCost {
            directive: 2,
            copy_word: 3,
            table_read: 2,
            hole_inline: 4,
            hole_big: 12,
            lin_append: 6,
            const_branch: 4,
            loop_op: 6,
            branch_fixup: 6,
            peephole_try: 4,
            peephole_emit: 3,
            plan_dispatch: 2,
            plan_copy_word: 1,
            plan_patch: 3,
        }
    }
}
