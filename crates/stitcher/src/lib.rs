//! # dyncomp-stitcher
//!
//! The **stitcher** (§4 of *"Fast, Effective Dynamic Compilation"*, PLDI
//! 1996): the tiny dynamic compiler that instantiates pre-compiled
//! machine-code templates at run time.
//!
//! Given a region's [`RegionCode`] (template + directives, produced by the
//! static compiler) and the run-time constants table (filled by the
//! region's set-up code, in VM data memory), the stitcher:
//!
//! * copies template code blocks into fresh executable code, fixing up
//!   pc-relative branches;
//! * patches **holes** with constant values — inline when an integer fits
//!   the 8-bit operate literal, otherwise by constructing the value or
//!   loading it from a **linearized constants table** it builds (floats
//!   and pointers always go through the table, §4);
//! * resolves **constant branches**, stitching only the reachable side
//!   (run-time dead-code elimination);
//! * **fully unrolls** annotated loops by walking the per-iteration record
//!   chains, stitching one copy of the loop body per record;
//! * applies **value-based peephole optimizations**: multiplication by a
//!   constant becomes shifts/adds/subtracts, unsigned division and
//!   remainder by powers of two become shifts and masks.
//!
//! Because the stitcher is host code standing in for the paper's
//! Alpha-resident run time, its work is charged against the deterministic
//! [`StitchCost`] model rather than measured with a hardware counter.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod regactions;

pub use cost::StitchCost;

use dyncomp_ir::eval::Memory;
use dyncomp_ir::fxhash::FxHashMap;
use dyncomp_ir::SlotPath;
use dyncomp_machine::isa::{decode, encode, Format, Inst, Op, Operand, LIN, SCRATCH0, ZERO};
use dyncomp_machine::template::{HoleField, LoopMarker, RegionCode, StitchPlan, TmplExit};
use std::fmt;

/// Stitching options (ablations).
#[derive(Clone, Debug)]
pub struct StitchOptions {
    /// Apply value-based peephole optimizations (§4).
    pub peephole: bool,
    /// Build the linearized large-constants table; when off, large integer
    /// constants are constructed inline from immediates (more stitched
    /// instructions, no dedicated table loads).
    pub linearized_table: bool,
    /// Cost model.
    pub cost: StitchCost,
    /// Upper bound on stitched blocks (unrolling runaway protection).
    pub max_blocks: usize,
    /// Apply the §5 *register actions* extension, promoting up to this
    /// many constant-address memory locations into a register bank.
    /// **Only sound when the promoted memory is scratch** (dead outside
    /// the region): stores are rewritten without write-back.
    pub register_actions: Option<usize>,
    /// Use precompiled copy-and-patch stitch plans where the static
    /// compiler produced them (see
    /// [`dyncomp_machine::template::StitchPlan`]). Plans are bit-identical
    /// to the interpretive path; turning them off is an ablation/debugging
    /// aid. Ignored (treated as off) when `register_actions` is active,
    /// whose bookkeeping needs the word-by-word walk.
    pub plans: bool,
    /// Print register-action diagnostics to stderr (debugging aid for the
    /// §5 extension; off by default).
    pub debug_regactions: bool,
    /// Record every copy-and-patch plan patch applied into
    /// [`Stitched::plan_patches`] (consumed by the engine's tracing
    /// layer). Off by default; recording is host-side bookkeeping only and
    /// never changes stats or cycle charges.
    pub record_patches: bool,
}

impl Default for StitchOptions {
    fn default() -> Self {
        StitchOptions {
            peephole: true,
            linearized_table: true,
            cost: StitchCost::default(),
            max_blocks: 200_000,
            register_actions: None,
            plans: true,
            debug_regactions: false,
            record_patches: false,
        }
    }
}

/// One recorded copy-and-patch plan patch (filled only with
/// [`StitchOptions::record_patches`]; feeds `PlanPatch` trace events).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanPatchRecord {
    /// Output word position patched, relative to the instance base.
    pub at: u32,
    /// The constant value patched in.
    pub value: u64,
}

/// What the stitcher did (feeds Table 2 and Table 3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StitchStats {
    /// Instructions emitted into the stitched code.
    pub instructions_stitched: u32,
    /// Code words emitted (`Ldiw` counts two).
    pub words_emitted: u32,
    /// Holes patched inline into literal fields.
    pub holes_inline: u32,
    /// Holes satisfied via the linearized table or inline construction.
    pub holes_big: u32,
    /// Constant branches resolved (static branch elimination).
    pub const_branches_resolved: u32,
    /// Template blocks skipped as unreachable (dead-code elimination).
    pub blocks_skipped: u32,
    /// Loop iterations stitched (complete unrolling).
    pub loop_iterations: u32,
    /// Peephole strength reductions applied.
    pub strength_reductions: u32,
    /// Register-actions: constant-address loads removed.
    pub regaction_loads_removed: u32,
    /// Register-actions: constant-address stores rewritten to moves.
    pub regaction_stores_rewritten: u32,
    /// Register-actions: addresses promoted to the register bank.
    pub regaction_promoted: u32,
    /// Blocks stitched through a precompiled copy-and-patch plan.
    pub plan_hits: u32,
    /// Plan attempts that fell back to the interpretive path (oversized
    /// literal, far table entry, or a peephole-candidate hole).
    pub plan_misses: u32,
    /// Simulated stitcher cycles.
    pub cycles: u64,
}

/// The stitched, executable code for one region instance.
///
/// Besides the installable code words, this records everything needed to
/// re-install the instance elsewhere (another code address, another
/// session's memory) via [`Stitched::relocate`]: the linearized-table
/// contents and the positions of every base-dependent word. Stitched code
/// is position-independent except for (a) the `Ldiw` words holding the
/// linearized-table address and (b) the region-exit branches, whose
/// targets are absolute addresses in the enclosing function.
#[derive(Clone, Debug)]
pub struct Stitched {
    /// Code words, to be installed at the `base` passed to [`stitch`].
    pub code: Vec<u32>,
    /// Address of the linearized constants table in data memory (0 when
    /// unused).
    pub lin_table_addr: u64,
    /// The linearized constants table's contents, in slot order (empty
    /// when the instance needed no table).
    pub lin_words: Vec<u64>,
    /// Word positions of `Ldiw` instructions whose second word holds the
    /// linearized-table base address.
    pub lin_addr_patches: Vec<u32>,
    /// Word positions of far-entry `Ldiw`s whose second word holds the
    /// table base plus the recorded byte offset.
    pub lin_far_addr_patches: Vec<(u32, u32)>,
    /// Region-exit branches as `(word position, absolute target)`; their
    /// displacements depend on the installation base.
    pub exit_patches: Vec<(u32, u32)>,
    /// Counters.
    pub stats: StitchStats,
    /// Plan patches applied, in application order (empty unless
    /// [`StitchOptions::record_patches`] was set).
    pub plan_patches: Vec<PlanPatchRecord>,
    /// Host-native machine-code bytes translated from this instance
    /// (0 when no native backend translated it). Set by the engine so
    /// byte-budgeted caches govern both backends with one number.
    pub native_bytes: u64,
}

impl Stitched {
    /// Bytes this instance occupies when installed: code words, the
    /// linearized large-constants table it rebuilds at relocation, and
    /// any host-native translation of the instance. The unit
    /// byte-budgeted caches account in.
    pub fn footprint_bytes(&self) -> u64 {
        4 * self.code.len() as u64 + 8 * self.lin_words.len() as u64 + self.native_bytes
    }

    /// Re-create this instance for installation at `new_base`, with a
    /// fresh linearized constants table allocated and filled in `mem`:
    /// returns the patched code words and the new table address. This is
    /// how a process-wide code cache installs one session's stitched code
    /// into another session — a bulk copy plus O(patches) fix-ups, never
    /// a re-stitch.
    ///
    /// Cross-session reuse assumes the sessions are *replicas*: same
    /// program installed at the same addresses, and any pointer-typed
    /// run-time constants (table entries, promoted register-action
    /// addresses) referring to identically laid-out session memory. The
    /// keyed cache already assumes keys determine the stitched code; this
    /// extends that assumption across sessions.
    ///
    /// # Errors
    /// Table allocation failure, or an exit branch whose displacement no
    /// longer encodes from `new_base`.
    pub fn relocate(
        &self,
        new_base: u32,
        mem: &mut Memory,
    ) -> Result<(Vec<u32>, u64), StitchError> {
        let mut code = self.code.clone();
        let lin_addr = if self.lin_words.is_empty() {
            0
        } else {
            let addr = mem
                .alloc(8 * self.lin_words.len() as u64)
                .map_err(|e| StitchError::Table(e.to_string()))?;
            for (i, &v) in self.lin_words.iter().enumerate() {
                mem.write_u64(addr + 8 * i as u64, v)
                    .map_err(|e| StitchError::Table(e.to_string()))?;
            }
            addr
        };
        for &p in &self.lin_addr_patches {
            code[p as usize + 1] = lin_addr as u32;
        }
        for &(p, off) in &self.lin_far_addr_patches {
            code[p as usize + 1] = (lin_addr as u32).wrapping_add(off);
        }
        for &(p, target) in &self.exit_patches {
            let disp = i64::from(target) - (i64::from(new_base) + i64::from(p) + 1);
            let (w, _) = encode(&Inst::branch(Op::Br, ZERO, disp as i32)).map_err(|e| {
                StitchError::BadTemplate(format!("relocated exit branch does not encode: {e}"))
            })?;
            code[p as usize] = w;
        }
        Ok((code, lin_addr))
    }
}

/// Stitching failure.
#[derive(Debug, Clone, PartialEq)]
pub enum StitchError {
    /// Constants-table read failed.
    Table(String),
    /// The block budget was exhausted (runaway unrolling).
    UnrollBudget,
    /// The linearized table outgrew its displacement range.
    LinTableOverflow,
    /// A malformed template (decode failure, bad label).
    BadTemplate(String),
}

impl fmt::Display for StitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StitchError::Table(m) => write!(f, "constants table access failed: {m}"),
            StitchError::UnrollBudget => write!(f, "unroll budget exhausted while stitching"),
            StitchError::LinTableOverflow => write!(f, "linearized constants table overflow"),
            StitchError::BadTemplate(m) => write!(f, "malformed template: {m}"),
        }
    }
}

impl std::error::Error for StitchError {}

/// Stitch `rc`'s template into executable code.
///
/// `table` is the constants-table base address the set-up code produced;
/// `mem` is VM data memory (slot reads, linearized-table allocation);
/// `base` is the code address where the caller will install the result
/// (needed for pc-relative branches to the region's exit points).
///
/// # Errors
/// See [`StitchError`].
pub fn stitch(
    rc: &RegionCode,
    table: u64,
    mem: &mut Memory,
    base: u32,
    opts: &StitchOptions,
) -> Result<Stitched, StitchError> {
    let mut st = Stitcher {
        rc,
        table,
        mem,
        base,
        opts,
        out: Vec::new(),
        lin: Vec::new(),
        lin_dedup: FxHashMap::default(),
        stats: StitchStats::default(),
        done: FxHashMap::default(),
        fixups: Vec::new(),
        lin_ldiw_patches: Vec::new(),
        lin_far_patches: Vec::new(),
        exit_patches: Vec::new(),
        queue: Vec::new(),
        accesses: Vec::new(),
        reg_known: FxHashMap::default(),
        known_load_at: FxHashMap::default(),
        plan_patch_log: Vec::new(),
    };

    // Prologue: establish the linearized-table base register. The address
    // is unknown until stitching completes; patch afterwards.
    st.charge(st.opts.cost.directive);
    st.lin_ldiw_patches.push(st.out.len() as u32);
    st.emit(Inst::ldiw(LIN, 0))?;

    // Reserve the register-actions preamble (3 words per promoted
    // address; unneeded slots remain harmless moves).
    let nop = encode(&Inst::op3(Op::Bis, ZERO, Operand::Reg(ZERO), ZERO))
        .expect("nop")
        .0;
    let ra_slots = opts.register_actions.map(|k| {
        let at = st.out.len();
        for _ in 0..3 * k {
            st.out.push(nop);
            st.stats.words_emitted += 1;
            st.stats.instructions_stitched += 1;
        }
        at
    });

    let entry_key = (rc.template.entry, Vec::new());
    st.queue.push(entry_key);
    while let Some(key) = st.queue.pop() {
        if st.done.contains_key(&key) {
            continue; // already stitched; fixups resolve to it
        }
        st.stitch_chain(key)?;
    }
    st.resolve_fixups()?;

    // Allocate and fill the linearized table.
    let lin_addr = if st.lin.is_empty() {
        0
    } else {
        let addr = st
            .mem
            .alloc(8 * st.lin.len() as u64)
            .map_err(|e| StitchError::Table(e.to_string()))?;
        for (i, &v) in st.lin.iter().enumerate() {
            st.mem
                .write_u64(addr + 8 * i as u64, v)
                .map_err(|e| StitchError::Table(e.to_string()))?;
        }
        addr
    };
    for &p in &st.lin_ldiw_patches {
        st.out[p as usize + 1] = lin_addr as u32;
    }
    for &(p, off) in &st.lin_far_patches {
        st.out[p as usize + 1] = (lin_addr as u32).wrapping_add(off);
    }

    // §5 register actions: promote hot constant addresses.
    if let (Some(k), Some(slot_base)) = (opts.register_actions, ra_slots) {
        let accesses = std::mem::take(&mut st.accesses);
        if opts.debug_regactions {
            eprintln!("[regactions] {} const accesses recorded", accesses.len());
        }
        let (preamble, _rewritten, ra_stats) =
            crate::regactions::apply_register_actions(&mut st.out, &accesses, k);
        let mut at = slot_base;
        for i in &preamble {
            let (w, extra) = encode(i).map_err(|e| {
                StitchError::BadTemplate(format!("register-actions preamble does not encode: {e}"))
            })?;
            st.out[at] = w;
            at += 1;
            if let Some(x) = extra {
                st.out[at] = x;
                at += 1;
            }
        }
        st.stats.regaction_loads_removed = ra_stats.loads_removed + ra_stats.addr_loads_removed;
        st.stats.regaction_stores_rewritten = ra_stats.stores_rewritten;
        st.stats.regaction_promoted = ra_stats.promoted;
        st.charge(
            st.opts.cost.peephole_try * accesses.len() as u64
                + st.opts.cost.peephole_emit
                    * (ra_stats.loads_removed + ra_stats.stores_rewritten) as u64,
        );
    }

    // The paper deallocates the structured table after stitching; our
    // bump allocator has no free, but the semantics match: the stitched
    // code only references the linearized table.

    Ok(Stitched {
        code: st.out,
        lin_table_addr: lin_addr,
        lin_words: st.lin,
        lin_addr_patches: st.lin_ldiw_patches,
        lin_far_addr_patches: st.lin_far_patches,
        exit_patches: st.exit_patches,
        stats: st.stats,
        plan_patches: st.plan_patch_log,
        native_bytes: 0,
    })
}

/// Re-encode `word`'s literal operand with `v`, refusing out-of-range
/// values instead of truncating (the plan applicability check should have
/// rejected them; disagreement is a bug surfaced as an error, not silent
/// corruption).
pub(crate) fn patch_lit_word(word: u32, v: u64) -> Result<u32, StitchError> {
    if v > 255 {
        return Err(StitchError::BadTemplate(format!(
            "literal hole value {v} does not fit the 8-bit operate literal"
        )));
    }
    let inst = decode(word, None).map_err(|e| StitchError::BadTemplate(e.to_string()))?;
    let (w, _) = encode(&Inst {
        rb: Operand::Lit(v as u8),
        ..inst
    })
    .map_err(|e| StitchError::BadTemplate(e.to_string()))?;
    Ok(w)
}

/// Rewrite `word`'s memory displacement to the linearized-table offset
/// `off`, refusing offsets beyond the 14-bit displacement range instead
/// of masking them (callers that can reach far offsets must take the
/// far-entry sequence).
pub(crate) fn patch_memdisp_word(word: u32, off: i32) -> Result<u32, StitchError> {
    if off < 0 || !lin_near(off) {
        return Err(StitchError::BadTemplate(format!(
            "linearized-table offset {off} exceeds the 14-bit displacement range"
        )));
    }
    Ok((word & !0x3FFF) | (off as u32 & 0x3FFF))
}

/// Whether a table offset fits the memory-format displacement.
fn lin_near(off: i32) -> bool {
    off <= dyncomp_machine::isa::limits::DISP_MAX
}

/// A stitch point: template block + unrolled-loop record stack.
type Key = (u32, Vec<u64>);

struct Stitcher<'a> {
    rc: &'a RegionCode,
    table: u64,
    mem: &'a mut Memory,
    base: u32,
    opts: &'a StitchOptions,
    out: Vec<u32>,
    lin: Vec<u64>,
    lin_dedup: FxHashMap<u64, u32>,
    stats: StitchStats,
    /// Output offset of each stitched (block, context).
    done: FxHashMap<Key, u32>,
    /// Pending pc-relative fixups: `(branch word offset, target key)`.
    fixups: Vec<(u32, Key)>,
    lin_ldiw_patches: Vec<u32>,
    /// Far-entry `Ldiw` positions to patch with `lin_addr + offset`.
    lin_far_patches: Vec<(u32, u32)>,
    /// Region-exit branches: `(output word position, absolute target)`.
    exit_patches: Vec<(u32, u32)>,
    /// Branch targets waiting to be stitched.
    queue: Vec<Key>,
    /// Register-actions log: memory accesses with constant addresses.
    accesses: Vec<crate::regactions::ConstAccess>,
    /// Registers currently holding known constants (within one block).
    reg_known: FxHashMap<u8, u64>,
    /// Output position of the hole load that established each known reg.
    known_load_at: FxHashMap<u8, u32>,
    /// Applied plan patches (only with [`StitchOptions::record_patches`]).
    plan_patch_log: Vec<PlanPatchRecord>,
}

impl Stitcher<'_> {
    fn charge(&mut self, c: u64) {
        self.stats.cycles += c;
    }

    fn emit(&mut self, i: Inst) -> Result<(), StitchError> {
        let (w, extra) = encode(&i).map_err(|e| {
            StitchError::BadTemplate(format!("stitched instruction does not encode: {e}"))
        })?;
        self.out.push(w);
        self.stats.words_emitted += 1;
        self.stats.instructions_stitched += 1;
        if let Some(x) = extra {
            self.out.push(x);
            self.stats.words_emitted += 1;
        }
        Ok(())
    }

    fn abs_pos(&self) -> u32 {
        self.base + self.out.len() as u32
    }

    /// Resolve a slot path against the current record stack and read it.
    fn read_slot(&mut self, path: &SlotPath, ctx: &[u64]) -> Result<u64, StitchError> {
        self.charge(self.opts.cost.table_read);
        self.peek_slot(path, ctx)
    }

    /// [`Stitcher::read_slot`] without the cycle charge — for the plan
    /// applicability check, which must stay side-effect-free on a miss
    /// (the interpretive fallback re-reads and charges normally; the plan
    /// hit path charges [`StitchCost::table_read`] per patch itself).
    fn peek_slot(&self, path: &SlotPath, ctx: &[u64]) -> Result<u64, StitchError> {
        let addr = if path.is_static() {
            self.table + 8 * u64::from(path.0[0])
        } else {
            let depth = path.depth();
            if depth > ctx.len() {
                return Err(StitchError::Table(format!(
                    "slot {path} deeper than active loops ({})",
                    ctx.len()
                )));
            }
            ctx[depth - 1] + 8 * u64::from(path.leaf())
        };
        self.mem
            .read_u64(addr)
            .map_err(|e| StitchError::Table(e.to_string()))
    }

    /// Append to the linearized table (deduplicated); returns byte offset.
    /// Offsets beyond the 14-bit displacement range are handled by the
    /// callers with a far-entry sequence.
    fn lin_offset(&mut self, v: u64) -> Result<i32, StitchError> {
        if let Some(&off) = self.lin_dedup.get(&v) {
            return Ok(off as i32);
        }
        let off = 8 * self.lin.len() as u32;
        if self.lin.len() >= 1 << 20 {
            return Err(StitchError::LinTableOverflow);
        }
        self.charge(self.opts.cost.lin_append);
        self.lin.push(v);
        self.lin_dedup.insert(v, off);
        Ok(off as i32)
    }

    /// Emit `Ldiw r25, <lin_addr + off>` (patched once the table address
    /// is known) so a far table entry can be loaded via `0(r25)`.
    fn emit_far_base(&mut self, off: i32) -> Result<(), StitchError> {
        self.lin_far_patches
            .push((self.out.len() as u32, off as u32));
        self.emit(Inst::ldiw(SCRATCH0, 0))
    }

    /// Stitch a fall-through chain starting at `key`, queueing branch
    /// targets for later (iterative — unrolling can produce very long
    /// chains).
    fn stitch_chain(&mut self, key: Key) -> Result<(), StitchError> {
        let mut next = Some(key);
        while let Some(key) = next.take() {
            if self.done.contains_key(&key) {
                // Re-joining already stitched code: branch to it.
                let target = self.done[&key];
                self.charge(self.opts.cost.branch_fixup);
                let disp = target as i64 - (self.abs_pos() as i64 + 1);
                self.emit(Inst::branch(Op::Br, ZERO, disp as i32))?;
                return Ok(());
            }
            if self.done.len() >= self.opts.max_blocks {
                return Err(StitchError::UnrollBudget);
            }
            next = self.stitch_block(key)?;
        }
        Ok(())
    }

    /// Stitch one block; returns the next (fall-through) key, if any.
    fn stitch_block(&mut self, key: Key) -> Result<Option<Key>, StitchError> {
        let (label, mut ctx) = key.clone();
        self.done.insert(key, self.abs_pos());
        self.reg_known.clear();
        self.known_load_at.clear();

        let blk = self
            .rc
            .template
            .blocks
            .get(label as usize)
            .ok_or_else(|| StitchError::BadTemplate(format!("label {label}")))?
            .clone();

        // ---- copy-and-patch fast path ----
        // Register actions need the word-by-word walk for their
        // known-constant bookkeeping, so plans are bypassed entirely there.
        let mut branch_at_out: Option<u32> = None; // output pos of the CondBranch word
        let mut plan_hit = false;
        if self.opts.plans && self.opts.register_actions.is_none() {
            if let Some(plan) = &blk.plan {
                let out_start = self.out.len() as u32;
                plan_hit = self.try_plan(plan, &ctx)?;
                if plan_hit {
                    // Plan output is in place (one word per template word),
                    // so the exit branch's position is statically known.
                    if let TmplExit::CondBranch { at, .. } = blk.exit {
                        branch_at_out = Some(out_start + (at - blk.start));
                    }
                }
            }
        }

        // ---- interpretive path: copy code, patching holes ----
        if !plan_hit {
            self.charge(self.opts.cost.directive);
            let mut w = blk.start as usize;
            let code = &self.rc.template.code;
            let mut hole_idx = 0usize;
            while w < blk.end as usize {
                let word = code[w];
                let is_wide = Op::from_u8((word >> 24) as u8) == Some(Op::Ldiw);
                // Holes at this template offset?
                let hole = blk
                    .holes
                    .get(hole_idx)
                    .filter(|h| h.at == w as u32)
                    .cloned();
                if let Some(h) = hole {
                    hole_idx += 1;
                    self.charge(self.opts.cost.directive);
                    self.patch_hole(word, &h, &ctx)?;
                    w += 1;
                    continue;
                }
                // The CondBranch exit's branch word needs a fixup later.
                if let TmplExit::CondBranch { at, .. } = blk.exit {
                    if at == w as u32 {
                        branch_at_out = Some(self.out.len() as u32);
                    }
                }
                self.charge(self.opts.cost.copy_word);
                if self.opts.register_actions.is_some() {
                    self.track_access(word);
                }
                self.out.push(word);
                self.stats.words_emitted += 1;
                self.stats.instructions_stitched += 1;
                if is_wide {
                    self.out.push(code[w + 1]);
                    self.stats.words_emitted += 1;
                    self.charge(self.opts.cost.copy_word);
                    w += 1;
                }
                w += 1;
            }
        }

        // ---- marker (after the block's code) ----
        if let Some(m) = &blk.marker {
            self.charge(self.opts.cost.loop_op);
            match m {
                LoopMarker::Enter { root } => {
                    let head = self.read_slot(root, &ctx)?;
                    ctx.push(head);
                }
                LoopMarker::Restart { next_slot } => {
                    let cur = *ctx
                        .last()
                        .ok_or_else(|| StitchError::BadTemplate("restart outside loop".into()))?;
                    let next = self
                        .mem
                        .read_u64(cur + 8 * u64::from(*next_slot))
                        .map_err(|e| StitchError::Table(e.to_string()))?;
                    *ctx.last_mut().unwrap() = next;
                    self.stats.loop_iterations += 1;
                }
                LoopMarker::Exit => {
                    ctx.pop()
                        .ok_or_else(|| StitchError::BadTemplate("exit outside loop".into()))?;
                }
            }
        }

        // ---- exit ----
        match blk.exit.clone() {
            TmplExit::Jump(l) => Ok(Some((l, ctx))),
            TmplExit::CondBranch { taken, fall, .. } => {
                let at = branch_at_out
                    .ok_or_else(|| StitchError::BadTemplate("missing branch word".into()))?;
                self.fixups.push((at, (taken, ctx.clone())));
                // The taken side is stitched later from the queue; fall
                // through into the other side now.
                self.queue.push((taken, ctx.clone()));
                Ok(Some((fall, ctx)))
            }
            TmplExit::ConstBranch {
                slot,
                then_l,
                else_l,
            } => {
                self.charge(self.opts.cost.const_branch);
                self.stats.const_branches_resolved += 1;
                self.stats.blocks_skipped += 1;
                let v = self.read_slot(&slot, &ctx)?;
                Ok(Some((if v != 0 { then_l } else { else_l }, ctx)))
            }
            TmplExit::ConstSwitch {
                slot,
                cases,
                default,
            } => {
                self.charge(self.opts.cost.const_branch);
                self.stats.const_branches_resolved += 1;
                self.stats.blocks_skipped += cases.len() as u32;
                let v = self.read_slot(&slot, &ctx)? as i64;
                let target = cases
                    .iter()
                    .find(|(c, _)| *c == v)
                    .map(|(_, l)| *l)
                    .unwrap_or(default);
                Ok(Some((target, ctx)))
            }
            TmplExit::Return => Ok(None),
            TmplExit::ExitRegion { exit } => {
                self.charge(self.opts.cost.branch_fixup);
                let target = *self
                    .rc
                    .exit_pcs
                    .get(exit as usize)
                    .ok_or_else(|| StitchError::BadTemplate(format!("exit {exit}")))?;
                let disp = target as i64 - (self.abs_pos() as i64 + 1);
                self.exit_patches.push((self.out.len() as u32, target));
                self.emit(Inst::branch(Op::Br, ZERO, disp as i32))?;
                Ok(None)
            }
        }
    }

    /// Register-actions bookkeeping while copying a plain word: record
    /// loads/stores whose base register holds a known constant, and kill
    /// known-constant entries for overwritten registers.
    fn track_access(&mut self, word: u32) {
        let Ok(inst) = decode(word, None) else { return };
        let mut matched_base: Option<u8> = None;
        match inst.op {
            Op::Ldq | Op::Stq => {
                if let Operand::Reg(base) = inst.rb {
                    if let Some(&v) = self.reg_known.get(&base) {
                        matched_base = Some(base);
                        self.accesses.push(crate::regactions::ConstAccess {
                            at: self.out.len() as u32,
                            addr: v.wrapping_add(inst.imm as i64 as u64),
                            is_store: inst.op == Op::Stq,
                            via_load: self.known_load_at.get(&base).copied(),
                        });
                    }
                }
            }
            _ => {}
        }
        // Any *other* read of a known register means its address load has
        // consumers beyond promoted accesses: it must stay.
        let mut reads: Vec<u8> = Vec::new();
        match inst.op.format() {
            Format::Operate => {
                reads.push(inst.ra);
                if let Operand::Reg(r) = inst.rb {
                    reads.push(r);
                }
            }
            Format::Memory => {
                if let Operand::Reg(r) = inst.rb {
                    reads.push(r);
                }
                if matches!(inst.op, Op::Stb | Op::Stw | Op::Stl | Op::Stq | Op::Stt) {
                    reads.push(inst.ra);
                }
            }
            Format::Branch => reads.push(inst.ra),
            Format::Jump => {
                if let Operand::Reg(r) = inst.rb {
                    reads.push(r);
                }
            }
            Format::Special => {}
        }
        for r in reads {
            if Some(r) != matched_base && self.reg_known.contains_key(&r) {
                // Pin the load: clearing its record keeps it alive.
                self.known_load_at.remove(&r);
            }
        }
        // Kill overwritten registers.
        match inst.op.format() {
            Format::Operate => {
                self.reg_known.remove(&inst.rc);
                self.known_load_at.remove(&inst.rc);
            }
            Format::Memory => {
                if !matches!(inst.op, Op::Stb | Op::Stw | Op::Stl | Op::Stq | Op::Stt) {
                    self.reg_known.remove(&inst.ra);
                    self.known_load_at.remove(&inst.ra);
                }
            }
            Format::Branch | Format::Jump => {
                self.reg_known.remove(&inst.ra);
                self.known_load_at.remove(&inst.ra);
            }
            Format::Special => {
                self.reg_known.remove(&inst.rc);
                self.known_load_at.remove(&inst.rc);
            }
        }
        // A subroutine call clobbers every caller-saved register the
        // callee may touch; templates with calls (demand-driven inlining
        // leftovers) must not carry constant knowledge across one.
        if matches!(inst.op, Op::Jsr | Op::Jmp) {
            self.reg_known.clear();
            self.known_load_at.clear();
        }
    }

    /// Attempt a block's precompiled copy-and-patch plan. Returns `Ok(true)`
    /// on a hit (code emitted, stats charged); `Ok(false)` means the block
    /// must take the interpretive path, with no side effects beyond the
    /// dispatch charge and the miss counter.
    ///
    /// A plan applies when every patch stays in place: `Lit` values fit the
    /// 8-bit literal, `MemDisp` table offsets stay within displacement
    /// range, and (with peephole optimization on) no patch targets a
    /// strength-reduction candidate. The check predicts linearized-table
    /// offsets without inserting, so a miss leaves the table untouched for
    /// the interpretive fallback.
    fn try_plan(&mut self, plan: &StitchPlan, ctx: &[u64]) -> Result<bool, StitchError> {
        self.charge(self.opts.cost.plan_dispatch);
        if self.opts.peephole && plan.sr_candidate {
            self.stats.plan_misses += 1;
            return Ok(false);
        }

        // ---- applicability (side-effect-free) ----
        let mut values = Vec::with_capacity(plan.patches.len());
        let mut pending_lin: Vec<u64> = Vec::new(); // new table values, in order
        for p in &plan.patches {
            let v = self.peek_slot(&p.slot, ctx)?;
            match p.field {
                HoleField::Lit => {
                    if v > 255 {
                        self.stats.plan_misses += 1;
                        return Ok(false);
                    }
                }
                HoleField::MemDisp { .. } => {
                    // Predict the offset lin_offset() would assign.
                    let off = match self.lin_dedup.get(&v) {
                        Some(&o) => o as i32,
                        None => match pending_lin.iter().position(|&x| x == v) {
                            Some(i) => 8 * (self.lin.len() + i) as i32,
                            None => {
                                let o = 8 * (self.lin.len() + pending_lin.len()) as i32;
                                pending_lin.push(v);
                                o
                            }
                        },
                    };
                    if !lin_near(off) {
                        self.stats.plan_misses += 1;
                        return Ok(false);
                    }
                }
            }
            values.push(v);
        }

        // ---- hit: bulk copy, then patch in place ----
        self.stats.plan_hits += 1;
        let out_start = self.out.len();
        self.out.extend_from_slice(&plan.code);
        self.charge(self.opts.cost.plan_copy_word * plan.code.len() as u64);
        self.stats.words_emitted += plan.code.len() as u32;
        self.stats.instructions_stitched += plan.insts;
        for (p, &v) in plan.patches.iter().zip(&values) {
            self.charge(self.opts.cost.table_read + self.opts.cost.plan_patch);
            let at = out_start + p.at as usize;
            let word = self.out[at];
            match p.field {
                HoleField::Lit => {
                    // Decode + re-encode, exactly like the interpretive
                    // path, so the output stays bit-identical. The helper
                    // refuses values > 255 — if the applicability check
                    // ever disagrees with the patcher this errors instead
                    // of silently truncating.
                    self.out[at] = patch_lit_word(word, v)?;
                    self.stats.holes_inline += 1;
                }
                HoleField::MemDisp { .. } => {
                    let off = self.lin_offset(v)?;
                    // Checked rewrite: an offset the applicability check
                    // predicted near but is not errors instead of masking
                    // to 14 bits.
                    self.out[at] = patch_memdisp_word(word, off)?;
                    self.stats.holes_big += 1;
                }
            }
            if self.opts.record_patches {
                self.plan_patch_log.push(PlanPatchRecord {
                    at: at as u32,
                    value: v,
                });
            }
        }
        Ok(true)
    }

    /// Patch one hole into the instruction `word`.
    fn patch_hole(
        &mut self,
        word: u32,
        h: &dyncomp_machine::template::Hole,
        ctx: &[u64],
    ) -> Result<(), StitchError> {
        let v = self.read_slot(&h.slot, ctx)?;
        match h.field {
            HoleField::MemDisp { float } => {
                // The template already holds the load from r27; patch disp.
                let off = self.lin_offset(v)?;
                self.charge(self.opts.cost.hole_big);
                self.stats.holes_big += 1;
                let load_at = self.out.len() as u32;
                let near = lin_near(off);
                if near {
                    let patched = patch_memdisp_word(word, off)?;
                    self.out.push(patched);
                    self.stats.words_emitted += 1;
                    self.stats.instructions_stitched += 1;
                } else {
                    // Far entry: materialize the slot address, rebase the
                    // load onto it.
                    self.emit_far_base(off)?;
                    let inst =
                        decode(word, None).map_err(|e| StitchError::BadTemplate(e.to_string()))?;
                    self.emit(Inst {
                        rb: Operand::Reg(SCRATCH0),
                        imm: 0,
                        ..inst
                    })?;
                }
                if !float && self.opts.register_actions.is_some() {
                    // The destination register now holds a known constant
                    // (often an address) — register-actions fodder.
                    let dest = ((word >> 19) & 31) as u8;
                    self.reg_known.insert(dest, v);
                    if near {
                        // (Far pairs are never neutralized: the Ldiw spans
                        // two words.)
                        self.known_load_at.insert(dest, load_at);
                    }
                }
            }
            HoleField::Lit => {
                let inst =
                    decode(word, None).map_err(|e| StitchError::BadTemplate(e.to_string()))?;
                debug_assert_eq!(inst.op.format(), Format::Operate);
                // Peephole strength reduction first (§4): constant
                // multiplies and unsigned divides/mods rewrite entirely.
                if self.opts.peephole && self.try_strength_reduce(&inst, v)? {
                    return Ok(());
                }
                if v <= 255 {
                    self.charge(self.opts.cost.hole_inline);
                    self.stats.holes_inline += 1;
                    self.emit(Inst {
                        rb: Operand::Lit(v as u8),
                        ..inst
                    })?;
                } else {
                    self.charge(self.opts.cost.hole_big);
                    self.stats.holes_big += 1;
                    self.materialize_scratch(v)?;
                    self.emit(Inst {
                        rb: Operand::Reg(SCRATCH0),
                        ..inst
                    })?;
                }
            }
        }
        Ok(())
    }

    /// Bring `v` into the stitcher scratch register `r25`.
    fn materialize_scratch(&mut self, v: u64) -> Result<(), StitchError> {
        let sv = v as i64;
        if (-8192..=8191).contains(&sv) {
            self.emit(Inst::mem(Op::Lda, SCRATCH0, ZERO, sv as i16))?;
        } else if sv >= i32::MIN as i64 && sv <= i32::MAX as i64 {
            self.emit(Inst::ldiw(SCRATCH0, sv as i32))?;
        } else if self.opts.linearized_table {
            let off = self.lin_offset(v)?;
            if lin_near(off) {
                self.emit(Inst::mem(Op::Ldq, SCRATCH0, LIN, off as i16))?;
            } else {
                self.emit_far_base(off)?;
                self.emit(Inst::mem(Op::Ldq, SCRATCH0, SCRATCH0, 0))?;
            }
        } else {
            // Construct from 13-bit chunks (ablation path). The leading
            // chunk keeps its sign (arithmetic shift, no mask).
            let chunks = [
                sv >> 52,
                (sv >> 39) & 0x1FFF,
                (sv >> 26) & 0x1FFF,
                (sv >> 13) & 0x1FFF,
                sv & 0x1FFF,
            ];
            self.emit(Inst::mem(Op::Lda, SCRATCH0, ZERO, chunks[0] as i16))?;
            for &c in &chunks[1..] {
                self.emit(Inst::op3(Op::Sll, SCRATCH0, Operand::Lit(13), SCRATCH0))?;
                if c != 0 {
                    self.emit(Inst::mem(Op::Lda, SCRATCH0, SCRATCH0, c as i16))?;
                }
            }
        }
        Ok(())
    }

    /// §4 peephole: rewrite `mulq/divqu/remqu rX, #const` using the actual
    /// value. Returns true when a rewrite was emitted.
    fn try_strength_reduce(&mut self, inst: &Inst, v: u64) -> Result<bool, StitchError> {
        self.charge(self.opts.cost.peephole_try);
        let ra = inst.ra;
        let rc = inst.rc;
        match inst.op {
            Op::Mulq => {
                if v == 0 {
                    self.emit_sr(Inst::op3(Op::Bis, ZERO, Operand::Reg(ZERO), rc))?;
                    return Ok(true);
                }
                if v == 1 {
                    self.emit_sr(Inst::op3(Op::Bis, ra, Operand::Reg(ra), rc))?;
                    return Ok(true);
                }
                if v.is_power_of_two() {
                    let k = v.trailing_zeros() as u8;
                    self.emit_sr(Inst::op3(Op::Sll, ra, Operand::Lit(k), rc))?;
                    return Ok(true);
                }
                // 2^k - 1: shift and subtract.
                if (v + 1).is_power_of_two() {
                    let k = (v + 1).trailing_zeros() as u8;
                    self.emit_sr(Inst::op3(Op::Sll, ra, Operand::Lit(k), SCRATCH0))?;
                    self.emit_sr(Inst::op3(Op::Subq, SCRATCH0, Operand::Reg(ra), rc))?;
                    return Ok(true);
                }
                // Few set bits: shift/add decomposition. Guard against the
                // destination aliasing the source.
                if v.count_ones() <= 3 && rc != ra {
                    let mut bits: Vec<u32> = (0..64).filter(|b| v & (1 << b) != 0).collect();
                    let first = bits.remove(0);
                    self.emit_sr(Inst::op3(Op::Sll, ra, Operand::Lit(first as u8), rc))?;
                    for b in bits {
                        self.emit_sr(Inst::op3(Op::Sll, ra, Operand::Lit(b as u8), SCRATCH0))?;
                        self.emit_sr(Inst::op3(Op::Addq, rc, Operand::Reg(SCRATCH0), rc))?;
                    }
                    return Ok(true);
                }
                Ok(false)
            }
            Op::Divqu => {
                if v.is_power_of_two() {
                    let k = v.trailing_zeros() as u8;
                    self.emit_sr(Inst::op3(Op::Srl, ra, Operand::Lit(k), rc))?;
                    return Ok(true);
                }
                Ok(false)
            }
            Op::Remqu => {
                if v.is_power_of_two() {
                    let k = v.trailing_zeros();
                    if v - 1 <= 255 {
                        self.emit_sr(Inst::op3(Op::And, ra, Operand::Lit((v - 1) as u8), rc))?;
                    } else {
                        // x << (64-k) >> (64-k)
                        self.emit_sr(Inst::op3(Op::Sll, ra, Operand::Lit((64 - k) as u8), rc))?;
                        self.emit_sr(Inst::op3(Op::Srl, rc, Operand::Lit((64 - k) as u8), rc))?;
                    }
                    return Ok(true);
                }
                Ok(false)
            }
            _ => Ok(false),
        }
    }

    fn emit_sr(&mut self, i: Inst) -> Result<(), StitchError> {
        self.stats.strength_reductions += 1;
        self.charge(self.opts.cost.peephole_emit);
        self.emit(i)
    }

    fn resolve_fixups(&mut self) -> Result<(), StitchError> {
        for (at, key) in self.fixups.clone() {
            let target = *self
                .done
                .get(&key)
                .ok_or_else(|| StitchError::BadTemplate("unresolved branch target".into()))?;
            let pos = self.base + at;
            let disp = target as i64 - (pos as i64 + 1);
            let word = self.out[at as usize];
            let inst = decode(word, None).map_err(|e| StitchError::BadTemplate(e.to_string()))?;
            let (w, _) = encode(&Inst {
                imm: disp as i32,
                ..inst
            })
            .map_err(|e| StitchError::BadTemplate(e.to_string()))?;
            self.out[at as usize] = w;
            self.charge(self.opts.cost.branch_fixup);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests;
