//! Executable code arena: W^X mmap-backed pages.
//!
//! Each installed artifact gets its own mapping, created read-write,
//! filled by a single `memcpy`, then flipped to read-execute with
//! `mprotect` — writable and executable are never held simultaneously
//! (W^X). The mapping is unmapped on drop.
//!
//! Only compiled on x86-64 Linux: the stubs are x86-64 encodings and
//! the allocation path speaks raw `mmap(2)`/`mprotect(2)` (declared
//! here directly so the crate adds no dependencies). Other targets use
//! [`crate::available`] to decline the backend before reaching this
//! module.

#![allow(unsafe_code)]

use core::ffi::{c_int, c_void};

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn mprotect(addr: *mut c_void, len: usize, prot: c_int) -> c_int;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
}

const PROT_READ: c_int = 0x1;
const PROT_WRITE: c_int = 0x2;
const PROT_EXEC: c_int = 0x4;
const MAP_PRIVATE: c_int = 0x02;
const MAP_ANONYMOUS: c_int = 0x20;
const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

/// One executable mapping holding a translated instance.
pub struct ExecMap {
    base: *mut u8,
    len: usize,
}

// The mapping is plain memory owned by this handle; execution takes
// `&self` and the pages are immutable once sealed.
unsafe impl Send for ExecMap {}
unsafe impl Sync for ExecMap {}

impl ExecMap {
    /// Map `bytes` into fresh pages and seal them read-execute.
    /// Returns `None` if the kernel refuses the mapping or the protect
    /// flip (exhausted address space, W^X policy, locked-down seccomp).
    pub fn new(bytes: &[u8]) -> Option<ExecMap> {
        if bytes.is_empty() {
            return None;
        }
        let len = bytes.len();
        // SAFETY: anonymous private mapping with no requested address;
        // the kernel either returns fresh pages or MAP_FAILED.
        let base = unsafe {
            mmap(
                core::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if base == MAP_FAILED || base.is_null() {
            return None;
        }
        let base = base.cast::<u8>();
        // SAFETY: `base..base+len` is exactly the RW mapping above.
        unsafe {
            core::ptr::copy_nonoverlapping(bytes.as_ptr(), base, len);
        }
        // SAFETY: same mapping; on failure we unmap and report None.
        let sealed = unsafe { mprotect(base.cast(), len, PROT_READ | PROT_EXEC) };
        if sealed != 0 {
            // SAFETY: we own the mapping.
            unsafe {
                munmap(base.cast(), len);
            }
            return None;
        }
        Some(ExecMap { base, len })
    }

    /// Back-patch `bytes` into the sealed code at `offset`, preserving
    /// W^X: the mapping is flipped RX→RW, mutated, and flipped back to
    /// RX before control can re-enter it. Returns `false` (leaving the
    /// code untouched) if the patch would fall outside the mapping or
    /// either protection flip is refused.
    pub fn patch(&mut self, offset: usize, bytes: &[u8]) -> bool {
        let Some(end) = offset.checked_add(bytes.len()) else {
            return false;
        };
        if end > self.len || bytes.is_empty() {
            return false;
        }
        // SAFETY: we own the mapping; flipping it writable while no
        // generated code is running (the engine only patches between
        // dispatches, on this thread) upholds W^X over time.
        let writable = unsafe { mprotect(self.base.cast(), self.len, PROT_READ | PROT_WRITE) };
        if writable != 0 {
            return false;
        }
        // SAFETY: offset+len checked against the mapping above.
        unsafe {
            core::ptr::copy_nonoverlapping(bytes.as_ptr(), self.base.add(offset), bytes.len());
        }
        // SAFETY: same mapping; a refused reseal would leave W+!X pages,
        // so treat it as fatal for the whole backend by reporting false
        // after attempting to restore RX (the caller discards the map).
        let sealed = unsafe { mprotect(self.base.cast(), self.len, PROT_READ | PROT_EXEC) };
        sealed == 0
    }

    /// Entry point of the sealed code (offset 0).
    pub fn entry(&self) -> *const u8 {
        self.base
    }

    /// Mapping length in bytes (page-rounded by the kernel, reported
    /// as requested).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a live handle).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for ExecMap {
    fn drop(&mut self) {
        // SAFETY: the handle uniquely owns the mapping.
        unsafe {
            munmap(self.base.cast(), self.len);
        }
    }
}
