//! Pre-assembled x86-64 micro-stubs and the copy-and-patch writer.
//!
//! Each SimAlpha template operation lowers to a short chain of
//! *micro-stubs*: byte sequences assembled once, at build time, into the
//! `const` tables below. A stub carries at most one 32-bit little-endian
//! *hole* (a context-slot displacement or an immediate); translating an
//! instruction is a bulk copy of the stub bytes plus an O(holes) patch —
//! the same copy-and-patch shape the VM-side stitcher uses for SimAlpha
//! template words, lowered to host bytes.
//!
//! Register conventions inside generated code (all callee-saved, so the
//! C entry shim only pushes/pops three registers):
//!
//! * `r15` — pointer to the [`crate::NativeCtx`] context block,
//! * `r13` — base pointer of simulated data memory,
//! * `r12` — length of simulated data memory in bytes,
//! * `rax`/`rcx`/`rdx` — operand scratch (`a`, `b`, and spare),
//! * `xmm0`/`xmm1` — float operand scratch.

/// A pre-assembled byte template with at most one 32-bit LE hole.
#[derive(Clone, Copy)]
pub struct MicroStub {
    /// The stub bytes (hole bytes are zero placeholders).
    pub bytes: &'static [u8],
    /// Byte offset of the 4-byte hole, if the stub has one.
    pub hole: Option<usize>,
}

macro_rules! stub {
    ($name:ident = [$($b:expr),* $(,)?]) => {
        #[allow(missing_docs)]
        pub const $name: MicroStub = MicroStub { bytes: &[$($b),*], hole: None };
    };
    ($name:ident = [$($b:expr),* $(,)?] @ $h:expr) => {
        #[allow(missing_docs)]
        pub const $name: MicroStub = MicroStub { bytes: &[$($b),*], hole: Some($h) };
    };
}

// ---- context-slot moves (hole = disp32 off r15) ----
stub!(LD_SLOT_RAX = [0x49, 0x8B, 0x87, 0, 0, 0, 0] @ 3); // mov rax, [r15+d32]
stub!(LD_SLOT_RCX = [0x49, 0x8B, 0x8F, 0, 0, 0, 0] @ 3); // mov rcx, [r15+d32]
stub!(LD_SLOT_RDX = [0x49, 0x8B, 0x97, 0, 0, 0, 0] @ 3); // mov rdx, [r15+d32]
stub!(ST_RAX_SLOT = [0x49, 0x89, 0x87, 0, 0, 0, 0] @ 3); // mov [r15+d32], rax
stub!(ST_RDX_SLOT = [0x49, 0x89, 0x97, 0, 0, 0, 0] @ 3); // mov [r15+d32], rdx
stub!(MOVSD_X0_SLOT = [0xF2, 0x41, 0x0F, 0x10, 0x87, 0, 0, 0, 0] @ 5); // movsd xmm0,[r15+d32]
stub!(MOVSD_X1_SLOT = [0xF2, 0x41, 0x0F, 0x10, 0x8F, 0, 0, 0, 0] @ 5); // movsd xmm1,[r15+d32]
stub!(MOVSD_SLOT_X0 = [0xF2, 0x41, 0x0F, 0x11, 0x87, 0, 0, 0, 0] @ 5); // movsd [r15+d32],xmm0

// ---- immediates (hole = imm32) ----
stub!(MOV_ECX_IMM = [0xB9, 0, 0, 0, 0] @ 1); // mov ecx, imm32 (zero-extends)
stub!(MOV_EAX_IMM = [0xB8, 0, 0, 0, 0] @ 1); // mov eax, imm32 (zero-extends)
stub!(MOV_RAX_IMM32S = [0x48, 0xC7, 0xC0, 0, 0, 0, 0] @ 3); // mov rax, imm32 (sign-extends)
stub!(ADD_RAX_IMM32S = [0x48, 0x05, 0, 0, 0, 0] @ 2); // add rax, imm32 (sign-extends)

// ---- integer ALU cores (a in rax, b in rcx, result in rax) ----
stub!(ADD_RAX_RCX = [0x48, 0x01, 0xC8]);
stub!(SUB_RAX_RCX = [0x48, 0x29, 0xC8]);
stub!(IMUL_RAX_RCX = [0x48, 0x0F, 0xAF, 0xC1]);
stub!(AND_RAX_RCX = [0x48, 0x21, 0xC8]);
stub!(OR_RAX_RCX = [0x48, 0x09, 0xC8]);
stub!(XOR_RAX_RCX = [0x48, 0x31, 0xC8]);
stub!(NOT_RCX = [0x48, 0xF7, 0xD1]);
stub!(SHL_RAX_CL = [0x48, 0xD3, 0xE0]);
stub!(SHR_RAX_CL = [0x48, 0xD3, 0xE8]);
stub!(SAR_RAX_CL = [0x48, 0xD3, 0xF8]);
stub!(CMP_RAX_RCX = [0x48, 0x39, 0xC8]);
stub!(SETE_AL = [0x0F, 0x94, 0xC0]);
stub!(SETNE_AL = [0x0F, 0x95, 0xC0]);
stub!(SETL_AL = [0x0F, 0x9C, 0xC0]);
stub!(SETLE_AL = [0x0F, 0x9E, 0xC0]);
stub!(SETB_AL = [0x0F, 0x92, 0xC0]);
stub!(SETBE_AL = [0x0F, 0x96, 0xC0]);
stub!(SETA_AL = [0x0F, 0x97, 0xC0]);
stub!(SETAE_AL = [0x0F, 0x93, 0xC0]);
stub!(MOVZX_EAX_AL = [0x0F, 0xB6, 0xC0]);
stub!(MOVZX_EAX_AX = [0x0F, 0xB7, 0xC0]);
stub!(MOVSX_RAX_AL = [0x48, 0x0F, 0xBE, 0xC0]);
stub!(MOVSX_RAX_AX = [0x48, 0x0F, 0xBF, 0xC0]);
stub!(MOVSXD_RAX_EAX = [0x48, 0x63, 0xC0]);
stub!(MOV_EAX_EAX = [0x89, 0xC0]); // zero-extend low 32 bits
stub!(TEST_RAX_RAX = [0x48, 0x85, 0xC0]);
stub!(TEST_RCX_RCX = [0x48, 0x85, 0xC9]);
stub!(CMOVZ_RDX_RCX = [0x48, 0x0F, 0x44, 0xD1]);
stub!(CMOVNZ_RDX_RCX = [0x48, 0x0F, 0x45, 0xD1]);
stub!(CQO = [0x48, 0x99]);
stub!(IDIV_RCX = [0x48, 0xF7, 0xF9]);
stub!(DIV_RCX = [0x48, 0xF7, 0xF1]);
stub!(XOR_EDX_EDX = [0x31, 0xD2]);
stub!(MOV_RDX_RAX = [0x48, 0x89, 0xC2]); // bounds-check scratch (rcx may hold a store value)

/// Signed-divide operand check, part 2: `rcx == -1 && rax == i64::MIN`
/// falls through to the `je` (patched to the divide-fault blob by the
/// caller); any other operands skip ahead to the divide itself. The
/// trailing 4 hole bytes are the `je rel32` displacement.
///
/// ```text
///   cmp  rcx, -1            ; 48 83 F9 FF
///   jne  +19                ; 75 13  (skip movabs+cmp+je)
///   movabs rdx, 0x8000000000000000
///   cmp  rax, rdx           ; 48 39 D0
///   je   <div-fault>        ; 0F 84 <rel32 hole>
/// ```
pub const DIV_MIN_CHECK: MicroStub = MicroStub {
    bytes: &[
        0x48, 0x83, 0xF9, 0xFF, // cmp rcx, -1
        0x75, 0x13, // jne past the MIN test
        0x48, 0xBA, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x80, // movabs rdx, i64::MIN
        0x48, 0x39, 0xD0, // cmp rax, rdx
        0x0F, 0x84, 0, 0, 0, 0, // je rel32 -> divide-fault blob
    ],
    hole: Some(21),
};

// ---- simulated-memory access ([r13 + rax], r12 = length) ----
stub!(LDBU_CORE = [0x41, 0x0F, 0xB6, 0x44, 0x05, 0x00]); // movzx eax, byte [r13+rax]
stub!(LDB_CORE = [0x49, 0x0F, 0xBE, 0x44, 0x05, 0x00]); // movsx rax, byte [r13+rax]
stub!(LDWU_CORE = [0x41, 0x0F, 0xB7, 0x44, 0x05, 0x00]); // movzx eax, word [r13+rax]
stub!(LDW_CORE = [0x49, 0x0F, 0xBF, 0x44, 0x05, 0x00]); // movsx rax, word [r13+rax]
stub!(LDLU_CORE = [0x41, 0x8B, 0x44, 0x05, 0x00]); // mov eax, dword [r13+rax]
stub!(LDL_CORE = [0x49, 0x63, 0x44, 0x05, 0x00]); // movsxd rax, dword [r13+rax]
stub!(LDQ_CORE = [0x49, 0x8B, 0x44, 0x05, 0x00]); // mov rax, qword [r13+rax]
stub!(STB_CORE = [0x41, 0x88, 0x4C, 0x05, 0x00]); // mov byte [r13+rax], cl
stub!(STW_CORE = [0x66, 0x41, 0x89, 0x4C, 0x05, 0x00]); // mov word [r13+rax], cx
stub!(STL_CORE = [0x41, 0x89, 0x4C, 0x05, 0x00]); // mov dword [r13+rax], ecx
stub!(STQ_CORE = [0x49, 0x89, 0x4C, 0x05, 0x00]); // mov qword [r13+rax], rcx
stub!(CMP_RDX_R12 = [0x4C, 0x39, 0xE2]); // cmp rdx, r12

// ---- direct-threaded chaining ----
stub!(CMP_RAX_SLOT = [0x49, 0x3B, 0x87, 0, 0, 0, 0] @ 3); // cmp rax, [r15+d32]
stub!(MOV_RCX_TABLE = [0x48, 0x8B, 0x0C, 0xC2]); // mov rcx, [rdx+rax*8]
stub!(JMP_RAX = [0xFF, 0xE0]);
stub!(JMP_RCX = [0xFF, 0xE1]);
stub!(MOV_RAX_RCX = [0x48, 0x89, 0xC8]);
stub!(INC_SLOT = [0x49, 0x83, 0x87, 0, 0, 0, 0, 0x01] @ 3); // add qword [r15+d32], 1

// ---- float cores ----
stub!(ADDSD_X0_X1 = [0xF2, 0x0F, 0x58, 0xC1]);
stub!(SUBSD_X0_X1 = [0xF2, 0x0F, 0x5C, 0xC1]);
stub!(MULSD_X0_X1 = [0xF2, 0x0F, 0x59, 0xC1]);
stub!(DIVSD_X0_X1 = [0xF2, 0x0F, 0x5E, 0xC1]);
stub!(SQRTSD_X0_X0 = [0xF2, 0x0F, 0x51, 0xC0]);
stub!(UCOMISD_X0_X1 = [0x66, 0x0F, 0x2E, 0xC1]);
stub!(UCOMISD_X1_X0 = [0x66, 0x0F, 0x2E, 0xC8]);
stub!(XOR_EAX_EAX = [0x31, 0xC0]);
stub!(JP_SKIP_SETCC = [0x7A, 0x03]); // jp +3: skip one setcc (unordered keeps 0)
stub!(CVTSI2SD_X0_RAX = [0xF2, 0x48, 0x0F, 0x2A, 0xC0]);

/// Saturating `f64 -> i64` fix-up run after `cvttsd2si rax, xmm0`
/// (`xmm0` still holds the source). Hardware yields the sentinel
/// `0x8000_0000_0000_0000` for NaN and out-of-range inputs; SimAlpha's
/// `Cvttq` (Rust `as` semantics) wants NaN → 0 and +overflow → `i64::MAX`,
/// with −overflow (and a genuine `i64::MIN`) left as the sentinel.
///
/// ```text
///   cvttsd2si rax, xmm0     ; F2 48 0F 2C C0
///   movabs rcx, 0x8000000000000000
///   cmp  rax, rcx
///   jne  done               ; not the sentinel: in-range result
///   ucomisd xmm0, xmm0
///   jnp  notnan
///   xor  eax, eax           ; NaN -> 0
///   jmp  done
/// notnan:
///   xorpd xmm1, xmm1
///   ucomisd xmm0, xmm1
///   jb   done               ; negative overflow: keep i64::MIN
///   movabs rax, 0x7FFFFFFFFFFFFFFF
/// done:
/// ```
pub const CVTTQ_CORE: MicroStub = MicroStub {
    bytes: &[
        0xF2, 0x48, 0x0F, 0x2C, 0xC0, // cvttsd2si rax, xmm0
        0x48, 0xB9, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x80, // movabs rcx, i64::MIN
        0x48, 0x39, 0xC8, // cmp rax, rcx
        0x75, 0x1E, // jne done (+30)
        0x66, 0x0F, 0x2E, 0xC0, // ucomisd xmm0, xmm0
        0x7B, 0x04, // jnp notnan (+4)
        0x31, 0xC0, // xor eax, eax
        0xEB, 0x14, // jmp done (+20)
        0x66, 0x0F, 0x57, 0xC9, // notnan: xorpd xmm1, xmm1
        0x66, 0x0F, 0x2E, 0xC1, // ucomisd xmm0, xmm1
        0x72, 0x0A, // jb done (+10)
        0x48, 0xB8, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, // movabs rax, i64::MAX
    ],
    hole: None,
};

/// `freg` negation: flip bit 63 of `rax` (value bits already loaded).
///
/// ```text
///   movabs rcx, 0x8000000000000000
///   xor  rax, rcx
/// ```
pub const FNEG_CORE: MicroStub = MicroStub {
    bytes: &[
        0x48, 0xB9, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x80, // movabs rcx, 1<<63
        0x48, 0x31, 0xC8, // xor rax, rcx
    ],
    hole: None,
};

// ---- prologue / epilogue ----
stub!(PROLOGUE_PUSHES = [0x41, 0x57, 0x41, 0x55, 0x41, 0x54, 0x49, 0x89, 0xFF]); // push r15/r13/r12; mov r15, rdi
stub!(LD_R13_SLOT = [0x4D, 0x8B, 0xAF, 0, 0, 0, 0] @ 3); // mov r13, [r15+d32]
stub!(LD_R12_SLOT = [0x4D, 0x8B, 0xA7, 0, 0, 0, 0] @ 3); // mov r12, [r15+d32]
stub!(EPILOGUE = [0x41, 0x5C, 0x41, 0x5D, 0x41, 0x5F, 0xC3]); // pop r12/r13/r15; ret
stub!(ST_RAX_FAULT_ADDR_HOLE = [0x49, 0x89, 0x87, 0, 0, 0, 0] @ 3); // mov [r15+d32], rax

/// Condition codes for `jcc rel32` (`0x0F 0x80+cc`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Cc {
    B = 0x2,  // unsigned below / carry
    Ae = 0x3, // unsigned at-or-above
    Z = 0x4,
    Nz = 0x5,
    A = 0x7, // unsigned above
    S = 0x8, // sign (negative)
    Ns = 0x9,
    Le = 0xE,
    G = 0xF,
}

/// Copy-and-patch byte writer: copies micro-stubs into the output buffer
/// and patches their holes; relative-branch fields are recorded for the
/// translator's fix-up pass.
#[derive(Default)]
pub struct Asm {
    buf: Vec<u8>,
}

impl Asm {
    /// Current output offset.
    pub fn here(&self) -> usize {
        self.buf.len()
    }

    /// Finish, returning the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Copy a stub with no hole.
    pub fn copy(&mut self, s: MicroStub) {
        debug_assert!(s.hole.is_none());
        self.buf.extend_from_slice(s.bytes);
    }

    /// Copy a stub and patch its 32-bit hole with `v`.
    pub fn patch(&mut self, s: MicroStub, v: u32) {
        let at = self.buf.len();
        self.buf.extend_from_slice(s.bytes);
        let h = at + s.hole.expect("stub has a hole");
        self.buf[h..h + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Copy a stub with a rel32 hole, returning the hole's byte offset
    /// for the fix-up pass.
    pub fn patch_rel(&mut self, s: MicroStub) -> usize {
        let at = self.buf.len();
        self.buf.extend_from_slice(s.bytes);
        at + s.hole.expect("stub has a hole")
    }

    /// `jcc rel32` with a pending target; returns the hole offset.
    pub fn jcc(&mut self, cc: Cc) -> usize {
        self.buf.extend_from_slice(&[0x0F, 0x80 + cc as u8]);
        let h = self.buf.len();
        self.buf.extend_from_slice(&[0, 0, 0, 0]);
        h
    }

    /// `jmp rel32` with a pending target; returns the hole offset.
    pub fn jmp(&mut self) -> usize {
        self.buf.push(0xE9);
        let h = self.buf.len();
        self.buf.extend_from_slice(&[0, 0, 0, 0]);
        h
    }

    /// `add rdx, imm8` (the memory-access length for the bounds check).
    pub fn add_rdx_imm8(&mut self, v: u8) {
        self.buf.extend_from_slice(&[0x48, 0x83, 0xC2, v]);
    }

    /// `cmp qword [r15+slot], imm32` (fuel check).
    pub fn cmp_slot_imm32(&mut self, slot: u32, v: u32) {
        self.buf.extend_from_slice(&[0x49, 0x81, 0xBF]);
        self.buf.extend_from_slice(&slot.to_le_bytes());
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `sub qword [r15+slot], imm32`.
    pub fn sub_slot_imm32(&mut self, slot: u32, v: u32) {
        self.buf.extend_from_slice(&[0x49, 0x81, 0xAF]);
        self.buf.extend_from_slice(&slot.to_le_bytes());
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `add qword [r15+slot], imm32`.
    pub fn add_slot_imm32(&mut self, slot: u32, v: u32) {
        self.buf.extend_from_slice(&[0x49, 0x81, 0x87]);
        self.buf.extend_from_slice(&slot.to_le_bytes());
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `mov qword [r15+slot], imm32` (sign-extends; used for exit pc,
    /// status, and fault pc, all small non-negative values).
    pub fn mov_slot_imm32(&mut self, slot: u32, v: u32) {
        debug_assert!(v < i32::MAX as u32);
        self.buf.extend_from_slice(&[0x49, 0xC7, 0x87]);
        self.buf.extend_from_slice(&slot.to_le_bytes());
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `movabs rax, imm64` (chain-target host addresses).
    pub fn movabs_rax(&mut self, v: u64) {
        self.buf.extend_from_slice(&[0x48, 0xB8]);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `movabs rcx, imm64` (guard key constants).
    pub fn movabs_rcx(&mut self, v: u64) {
        self.buf.extend_from_slice(&[0x48, 0xB9]);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Emit `n` single-byte NOPs (reserved guard sleds, patched later).
    pub fn nops(&mut self, n: usize) {
        self.buf.resize(self.buf.len() + n, 0x90);
    }

    /// Patch a previously recorded rel32 hole to land on `target`.
    pub fn resolve(&mut self, hole: usize, target: usize) {
        let rel = target as i64 - (hole as i64 + 4);
        let rel = i32::try_from(rel).expect("instance fits rel32");
        self.buf[hole..hole + 4].copy_from_slice(&rel.to_le_bytes());
    }
}
