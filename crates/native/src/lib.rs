//! Host-native copy-and-patch backend for the SimAlpha VM.
//!
//! The stitcher produces SimAlpha instances — straight-line template
//! words with holes already patched. This crate lowers those instances
//! to real x86-64 machine code with the same copy-and-patch shape one
//! level down: each SimAlpha operation maps to a chain of pre-assembled
//! [`stubs`] (bulk byte copy + at most one 32-bit patch each), and the
//! result is sealed into a W^X executable arena ([`ExecMap`] on
//! supported hosts).
//!
//! The VM stays authoritative: it remains the cycle-accounting oracle
//! and the semantic reference, and every operation the translator does
//! not lower (indirect jumps, allocation, region traps, VM-defined
//! fault encodings) exits back to the interpreter at a precise pc. On a
//! fault-free run, registers, memory, cycles, and fuel are bit-identical
//! between the two backends; after a `VmError` the error itself is
//! identical while cycle/fuel counts may differ (the VM charges per
//! instruction, native per block — see [`translate`]).
//!
//! ## Context block ABI
//!
//! Generated code is `extern "C" fn(*mut NativeCtx)`. The context block
//! is a flat `#[repr(C)]` array of 8-byte slots so every stub addresses
//! state as `[r15 + disp32]`; writes to register 31 land in dedicated
//! discard slots, preserving the VM's hardwired-zero convention without
//! branches.

pub mod stubs;
pub mod translate;

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod arena;
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub use arena::ExecMap;

pub use translate::{translate, translate_with, Artifact, ChainSpec, GuardSpec, KeySlot};

use dyncomp_machine::Vm;
use std::collections::HashMap;
use std::fmt;

// ---- context-slot displacements (see `NativeCtx`) ----
/// Integer registers, 32 × 8 bytes.
pub const CTX_REGS: u32 = 0;
/// Float registers (as raw `f64` slots), 32 × 8 bytes.
pub const CTX_FREGS: u32 = 256;
/// Base pointer of simulated data memory.
pub const CTX_MEM_PTR: u32 = 512;
/// Length of simulated data memory in bytes.
pub const CTX_MEM_LEN: u32 = 520;
/// Accumulated simulated cycles.
pub const CTX_CYCLES: u32 = 528;
/// Remaining instruction budget.
pub const CTX_FUEL: u32 = 536;
/// SimAlpha pc to resume at on a clean exit.
pub const CTX_EXIT_PC: u32 = 544;
/// Exit status: see `NativeCtx::status`.
pub const CTX_STATUS: u32 = 552;
/// Faulting SimAlpha pc (divide faults).
pub const CTX_FAULT_PC: u32 = 560;
/// Faulting simulated address (memory faults).
pub const CTX_FAULT_ADDR: u32 = 568;
/// Write sink for integer register 31.
pub const CTX_IDISCARD: u32 = 576;
/// Write sink for float register 31.
pub const CTX_FDISCARD: u32 = 584;
/// Base pointer of the pc → host-entry dispatch table (8-byte slots).
pub const CTX_DISPATCH: u32 = 592;
/// Number of dispatch-table slots.
pub const CTX_DISPATCH_LEN: u32 = 600;
/// Direct transfers taken during this run (chained jumps and guard hits).
pub const CTX_CHAINED: u32 = 608;

/// The machine-state block generated code executes against.
///
/// Layout is frozen by the `CTX_*` displacements baked into the stubs;
/// the `ctx_layout` test pins every offset.
#[repr(C)]
#[derive(Clone)]
pub struct NativeCtx {
    /// Integer registers (slot 31 is kept 0; writes go to `idiscard`).
    pub regs: [u64; 32],
    /// Float registers (slot 31 is kept 0.0; writes go to `fdiscard`).
    pub fregs: [f64; 32],
    /// Base of the simulated memory image.
    pub mem_ptr: u64,
    /// Simulated memory length in bytes.
    pub mem_len: u64,
    /// Simulated cycle counter.
    pub cycles: u64,
    /// Remaining instruction budget.
    pub fuel: u64,
    /// Resume pc on clean exit.
    pub exit_pc: u64,
    /// 0 = clean exit, 2 = memory fault, 3 = divide fault.
    pub status: u64,
    /// Faulting pc for divide faults.
    pub fault_pc: u64,
    /// Faulting address for memory faults.
    pub fault_addr: u64,
    /// Discard slot for integer r31 writes.
    pub idiscard: u64,
    /// Discard slot for float f31 writes.
    pub fdiscard: u64,
    /// Dispatch-table base: slot `pc` holds the host address of the
    /// native block body for SimAlpha pc, or 0 when unchained.
    pub dispatch: u64,
    /// Dispatch-table length in slots.
    pub dispatch_len: u64,
    /// Direct transfers taken during this run.
    pub chained: u64,
}

/// Whether this build can execute translated code. Translation itself
/// ([`translate`]) runs anywhere; only install/run are host-gated.
pub fn available() -> bool {
    cfg!(all(target_arch = "x86_64", target_os = "linux"))
}

/// Why an artifact could not be installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstallError {
    /// The instance's first instruction has no native lowering, so
    /// dispatch would bounce straight back to the interpreter.
    EntryUnsupported,
    /// The host cannot provide an executable mapping (unsupported
    /// target, exhausted address space, or a W^X/mprotect refusal).
    Unavailable,
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::EntryUnsupported => write!(f, "instance entry has no native lowering"),
            InstallError::Unavailable => write!(f, "executable arena unavailable on this host"),
        }
    }
}

impl std::error::Error for InstallError {}

/// What happened when translated code ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Clean exit: resume the VM at `pc` (fuel shortfall, an operation
    /// that needs the interpreter, or a branch out of the instance).
    Exit {
        /// SimAlpha pc to resume at.
        pc: u32,
    },
    /// Simulated memory fault at `addr` (maps to `VmError::Mem`).
    MemFault {
        /// The out-of-bounds simulated address.
        addr: u64,
    },
    /// Divide fault at `pc` (maps to `VmError::DivideByZero`).
    DivFault {
        /// SimAlpha pc of the divide.
        pc: u32,
    },
    /// No instance is installed at the requested address.
    Missing,
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
struct Instance {
    map: ExecMap,
    /// pc → FFI entry-thunk offset (dispatchable leaders).
    entries: HashMap<u32, u32>,
    /// pc → block-body offset (in-native chain targets).
    blocks: Vec<(u32, u32)>,
    /// Exit pc (outside the instance) → shared exit-blob offset.
    exit_sites: Vec<(u32, u32)>,
    /// `EnterRegion` pc → reserved guard sled (offset, len).
    guards: HashMap<u32, (u32, u32)>,
}

/// How one patched chain link was made, with what's needed to undo it.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
enum LinkKind {
    /// A back-patched exit blob (`saved` = original head bytes).
    Exit {
        pc: u32,
        off: u32,
        saved: [u8; EXIT_PATCH_LEN],
    },
    /// A patched `EnterRegion` guard sled (severed back to NOPs).
    Guard { pc: u32, off: u32, len: u32 },
    /// A dispatch-table slot published for the owning instance.
    Table { pc: u32 },
}

/// One live chain link: severing removes every link whose `target` (or
/// holder, `from`) goes away — a stale chain never outlives its target.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
struct Link {
    from: u32,
    target: u32,
    kind: LinkKind,
}

/// Byte length of a back-patched exit blob head: `inc [r15+chained]`,
/// `movabs rax, target`, `jmp rax`.
const EXIT_PATCH_LEN: usize = 20;

/// Reconstruct the first [`EXIT_PATCH_LEN`] bytes of the pristine exit
/// blob for `pc`, exactly as `translate` emitted them — severing a link
/// restores these over the back-patch.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
fn exit_blob_head(pc: u32) -> [u8; EXIT_PATCH_LEN] {
    let mut a = stubs::Asm::default();
    a.mov_slot_imm32(CTX_EXIT_PC, pc);
    a.mov_slot_imm32(CTX_STATUS, 0);
    a.copy(stubs::EPILOGUE);
    let bytes = a.finish();
    let mut head = [0u8; EXIT_PATCH_LEN];
    head.copy_from_slice(&bytes[..EXIT_PATCH_LEN]);
    head
}

/// The set of installed native instances, keyed by the SimAlpha code
/// address their translation starts at, plus the direct-threading state:
/// the pc → host-entry dispatch table, the live chain links, and the
/// accumulated chained-transfer counter.
#[derive(Default)]
pub struct Backend {
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    instances: HashMap<u32, Instance>,
    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    instances: HashMap<u32, ()>,
    bytes: u64,
    /// pc → base for every dispatchable entry of every instance.
    entry_index: HashMap<u32, u32>,
    /// Dispatch table: slot `pc` = host block address or 0. Published
    /// only for chained instances.
    table: Vec<u64>,
    /// Published chain-target pc → owning base.
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    block_index: HashMap<u32, u32>,
    /// Instances whose chaining was requested (and not since severed).
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    chained_bases: std::collections::HashSet<u32>,
    /// Live links, for severing.
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    links: Vec<Link>,
    /// Already-patched exit sites, as (holder base, exit pc).
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    patched_exits: std::collections::HashSet<(u32, u32)>,
    /// Total direct transfers across all runs.
    chained: u64,
}

impl Backend {
    /// An empty backend.
    pub fn new() -> Backend {
        Backend::default()
    }

    /// Install a translated artifact for the instance at code address
    /// `base`, sealing its bytes into an executable mapping.
    ///
    /// # Errors
    /// [`InstallError::EntryUnsupported`] when the artifact's first
    /// instruction is interpreter-only; [`InstallError::Unavailable`]
    /// when the host cannot supply a W^X arena.
    pub fn install(&mut self, base: u32, artifact: &Artifact) -> Result<(), InstallError> {
        if !artifact.entry_supported {
            return Err(InstallError::EntryUnsupported);
        }
        self.install_any(base, artifact)
    }

    /// Install an artifact that may have an interpreter-only first
    /// instruction, as long as *some* block is natively dispatchable —
    /// the static-code instance dispatches at marked leaders, never at
    /// its base.
    ///
    /// # Errors
    /// [`InstallError::EntryUnsupported`] when no block lowered;
    /// [`InstallError::Unavailable`] when the host cannot supply a W^X
    /// arena.
    pub fn install_any(&mut self, base: u32, artifact: &Artifact) -> Result<(), InstallError> {
        if artifact.entries.is_empty() {
            return Err(InstallError::EntryUnsupported);
        }
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            let map = ExecMap::new(&artifact.bytes).ok_or(InstallError::Unavailable)?;
            // Replacing an instance severs every link through the old
            // mapping first.
            if self.instances.contains_key(&base) {
                self.remove(base);
            }
            self.bytes += map.len() as u64;
            for &(pc, _) in &artifact.entries {
                self.entry_index.insert(pc, base);
            }
            self.instances.insert(
                base,
                Instance {
                    map,
                    entries: artifact.entries.iter().copied().collect(),
                    blocks: artifact.block_offsets.clone(),
                    exit_sites: artifact.exit_sites.clone(),
                    guards: artifact
                        .guard_areas
                        .iter()
                        .map(|g| (g.pc, (g.offset, g.len)))
                        .collect(),
                },
            );
            Ok(())
        }
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        {
            let _ = base;
            Err(InstallError::Unavailable)
        }
    }

    /// Whether an instance is installed at `base`.
    pub fn has(&self, base: u32) -> bool {
        self.instances.contains_key(&base)
    }

    /// Drop the instance at `base` (e.g. when the VM code there is
    /// patched, evicted, quarantined, or shed by the byte budget),
    /// returning whether one was installed.
    ///
    /// Every chain link into the instance is severed *before* its pages
    /// are unmapped: back-patched exit blobs are restored to their
    /// original return-to-VM bytes, patched guards revert to NOP sleds,
    /// and its dispatch-table slots are nulled, so no stale direct jump
    /// can outlive the target.
    pub fn remove(&mut self, base: u32) -> bool {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            if !self.instances.contains_key(&base) {
                return false;
            }
            let (dead, live): (Vec<Link>, Vec<Link>) = std::mem::take(&mut self.links)
                .into_iter()
                .partition(|l| l.from == base || l.target == base);
            self.links = live;
            for link in dead {
                match link.kind {
                    LinkKind::Table { pc } => {
                        if link.from == base {
                            self.table[pc as usize] = 0;
                            self.block_index.remove(&pc);
                        }
                    }
                    LinkKind::Exit { pc, off, saved } => {
                        self.patched_exits.remove(&(link.from, pc));
                        if link.from != base {
                            if let Some(holder) = self.instances.get_mut(&link.from) {
                                holder.map.patch(off as usize, &saved);
                            }
                        }
                    }
                    LinkKind::Guard { pc, off, len } => {
                        if link.from != base {
                            if let Some(holder) = self.instances.get_mut(&link.from) {
                                if holder.map.patch(off as usize, &vec![0x90u8; len as usize]) {
                                    // The sled is pristine again: re-arm
                                    // it for a future region instance.
                                    holder.guards.insert(pc, (off, len));
                                }
                            }
                        }
                    }
                }
            }
            self.chained_bases.remove(&base);
            let old = self.instances.remove(&base).expect("checked above");
            self.entry_index.retain(|_, b| *b != base);
            self.bytes -= old.map.len() as u64;
            true
        }
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        {
            self.entry_index.retain(|_, b| *b != base);
            self.instances.remove(&base).is_some()
        }
    }

    /// Number of installed instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Total executable bytes currently mapped.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total direct (chained) transfers taken across all runs.
    pub fn chained(&self) -> u64 {
        self.chained
    }

    /// Whether `pc` is a dispatchable entry of some installed instance.
    pub fn has_entry(&self, pc: u32) -> bool {
        self.entry_index.contains_key(&pc)
    }

    /// The install base of the instance serving dispatches at `pc`.
    pub fn base_of(&self, pc: u32) -> Option<u32> {
        self.entry_index.get(&pc).copied()
    }

    /// Request direct threading for the instance at `base`: publish its
    /// block bodies in the dispatch table, then back-patch every exit
    /// blob — its own and those of already-chained instances — whose
    /// exit pc now has a published native continuation. Returns the
    /// number of new links patched (0 if `base` is not installed).
    pub fn chain(&mut self, base: u32) -> u32 {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            let Some(inst) = self.instances.get(&base) else {
                return 0;
            };
            // Publish chain targets: block bodies expect live r15/r13/r12,
            // which every chained transfer preserves.
            let entry = inst.map.entry() as u64;
            let publish: Vec<(u32, u64)> = inst
                .blocks
                .iter()
                .map(|&(pc, off)| (pc, entry + u64::from(off)))
                .collect();
            for (pc, addr) in publish {
                if self.table.len() <= pc as usize {
                    self.table.resize(pc as usize + 1, 0);
                }
                self.table[pc as usize] = addr;
                self.block_index.insert(pc, base);
                self.links.push(Link {
                    from: base,
                    target: base,
                    kind: LinkKind::Table { pc },
                });
            }
            self.chained_bases.insert(base);
            // Back-patch exit blobs that can now jump straight to a
            // published block: the new instance's own sites, plus every
            // already-chained instance's sites that land in it.
            let mut work: Vec<(u32, u32, u32, u64)> = Vec::new(); // (holder, pc, off, addr)
            for &holder in &self.chained_bases {
                let Some(inst) = self.instances.get(&holder) else {
                    continue;
                };
                for &(pc, off) in &inst.exit_sites {
                    if self.patched_exits.contains(&(holder, pc)) {
                        continue;
                    }
                    if holder != base && self.block_index.get(&pc) != Some(&base) {
                        continue; // only new links involve the new instance
                    }
                    if let Some(&addr) = self.table.get(pc as usize) {
                        if addr != 0 {
                            work.push((holder, pc, off, addr));
                        }
                    }
                }
            }
            let mut patched = 0u32;
            for (holder, pc, off, addr) in work {
                let target = self.block_index[&pc];
                let saved = exit_blob_head(pc);
                let mut patch = [0u8; EXIT_PATCH_LEN];
                patch[0..3].copy_from_slice(&[0x49, 0x83, 0x87]); // add qword [r15+d32], 1
                patch[3..7].copy_from_slice(&CTX_CHAINED.to_le_bytes());
                patch[7] = 0x01;
                patch[8..10].copy_from_slice(&[0x48, 0xB8]); // movabs rax, addr
                patch[10..18].copy_from_slice(&addr.to_le_bytes());
                patch[18..20].copy_from_slice(&[0xFF, 0xE0]); // jmp rax
                let holder_inst = self.instances.get_mut(&holder).expect("holder installed");
                if holder_inst.map.patch(off as usize, &patch) {
                    self.patched_exits.insert((holder, pc));
                    self.links.push(Link {
                        from: holder,
                        target,
                        kind: LinkKind::Exit { pc, off, saved },
                    });
                    patched += 1;
                }
            }
            patched
        }
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        {
            let _ = base;
            0
        }
    }

    /// Patch the reserved guard sled at `pc` inside the instance at
    /// `holder` into a monomorphic inline cache: compare the region keys
    /// against `keys` (frame slots relative to register `sp`), charge
    /// `cycles` + 1 fuel on a hit, and jump directly to the chained
    /// instance at `target` (its published base block). Any miss falls
    /// back to the VM's keyed trap, uncharged. Returns whether the sled
    /// was patched.
    pub fn patch_guard(
        &mut self,
        holder: u32,
        pc: u32,
        keys: &[(KeySlot, u64)],
        sp: u8,
        cycles: u64,
        target: u32,
    ) -> bool {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            let Some(&addr) = self.table.get(target as usize) else {
                return false;
            };
            if addr == 0 || self.block_index.get(&target) != Some(&target) {
                return false; // target must be a chained instance base
            }
            let Some(inst) = self.instances.get_mut(&holder) else {
                return false;
            };
            let Some(&(off, len)) = inst.guards.get(&pc) else {
                return false;
            };
            let code = translate::build_guard(keys, sp, cycles, addr);
            if code.len() > len as usize {
                return false;
            }
            if !inst.map.patch(off as usize, &code) {
                return false;
            }
            inst.guards.remove(&pc); // at most one live patch per sled
            self.links.push(Link {
                from: holder,
                target,
                kind: LinkKind::Guard { pc, off, len },
            });
            true
        }
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        {
            let _ = (holder, pc, keys, sp, cycles, target);
            false
        }
    }

    /// Run the instance installed at `at` against `vm`'s machine state.
    ///
    /// Registers, memory, cycles, and fuel are synced into a context
    /// block, the sealed code runs to an exit or fault, and the state is
    /// synced back. The caller maps the outcome: on [`RunOutcome::Exit`]
    /// set `vm.pc` and continue; faults translate to the corresponding
    /// `VmError`s; [`RunOutcome::Missing`] means dispatch raced an
    /// eviction and the caller should unmark and interpret.
    pub fn run(&mut self, at: u32, vm: &mut Vm) -> RunOutcome {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            let Some(&base) = self.entry_index.get(&at) else {
                return RunOutcome::Missing;
            };
            let Some(inst) = self.instances.get(&base) else {
                return RunOutcome::Missing;
            };
            let Some(&thunk) = inst.entries.get(&at) else {
                return RunOutcome::Missing;
            };
            let mem = vm.mem.bytes_mut();
            let mut ctx = NativeCtx {
                regs: vm.regs,
                fregs: vm.fregs,
                mem_ptr: mem.as_mut_ptr() as u64,
                mem_len: mem.len() as u64,
                cycles: vm.cycles,
                fuel: vm.fuel,
                exit_pc: 0,
                status: u64::MAX,
                fault_pc: 0,
                fault_addr: 0,
                idiscard: 0,
                fdiscard: 0,
                dispatch: self.table.as_ptr() as u64,
                dispatch_len: self.table.len() as u64,
                chained: 0,
            };
            ctx.regs[31] = 0;
            ctx.fregs[31] = 0.0;
            // SAFETY: the entry thunk points into a sealed RX mapping
            // whose bytes were produced by `translate` for this ABI; the
            // context outlives the call and the memory window is
            // exclusively borrowed from the VM for its duration.
            unsafe {
                let f: extern "C" fn(*mut NativeCtx) =
                    core::mem::transmute(inst.map.entry().add(thunk as usize));
                f(&mut ctx);
            }
            self.chained += ctx.chained;
            vm.regs = ctx.regs;
            vm.regs[31] = 0;
            vm.fregs = ctx.fregs;
            vm.fregs[31] = 0.0;
            vm.cycles = ctx.cycles;
            vm.fuel = ctx.fuel;
            match ctx.status {
                0 => RunOutcome::Exit {
                    pc: ctx.exit_pc as u32,
                },
                2 => RunOutcome::MemFault {
                    addr: ctx.fault_addr,
                },
                3 => RunOutcome::DivFault {
                    pc: ctx.fault_pc as u32,
                },
                s => unreachable!("native stub exited with unknown status {s}"),
            }
        }
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        {
            let _ = (at, vm);
            RunOutcome::Missing
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncomp_machine::isa::{encode, Inst, Op, Operand};
    use dyncomp_machine::{Stop, Vm, VmError};

    #[test]
    fn ctx_layout_matches_stub_displacements() {
        let c = NativeCtx {
            regs: [0; 32],
            fregs: [0.0; 32],
            mem_ptr: 0,
            mem_len: 0,
            cycles: 0,
            fuel: 0,
            exit_pc: 0,
            status: 0,
            fault_pc: 0,
            fault_addr: 0,
            idiscard: 0,
            fdiscard: 0,
            dispatch: 0,
            dispatch_len: 0,
            chained: 0,
        };
        let base = &c as *const NativeCtx as usize;
        let off = |p: usize| (p - base) as u32;
        assert_eq!(off(c.regs.as_ptr() as usize), CTX_REGS);
        assert_eq!(off(c.fregs.as_ptr() as usize), CTX_FREGS);
        assert_eq!(off(&c.mem_ptr as *const _ as usize), CTX_MEM_PTR);
        assert_eq!(off(&c.mem_len as *const _ as usize), CTX_MEM_LEN);
        assert_eq!(off(&c.cycles as *const _ as usize), CTX_CYCLES);
        assert_eq!(off(&c.fuel as *const _ as usize), CTX_FUEL);
        assert_eq!(off(&c.exit_pc as *const _ as usize), CTX_EXIT_PC);
        assert_eq!(off(&c.status as *const _ as usize), CTX_STATUS);
        assert_eq!(off(&c.fault_pc as *const _ as usize), CTX_FAULT_PC);
        assert_eq!(off(&c.fault_addr as *const _ as usize), CTX_FAULT_ADDR);
        assert_eq!(off(&c.idiscard as *const _ as usize), CTX_IDISCARD);
        assert_eq!(off(&c.fdiscard as *const _ as usize), CTX_FDISCARD);
        assert_eq!(off(&c.dispatch as *const _ as usize), CTX_DISPATCH);
        assert_eq!(off(&c.dispatch_len as *const _ as usize), CTX_DISPATCH_LEN);
        assert_eq!(off(&c.chained as *const _ as usize), CTX_CHAINED);
        assert_eq!(core::mem::size_of::<NativeCtx>(), 616);
    }

    fn words(insts: &[Inst]) -> Vec<u32> {
        let mut out = Vec::new();
        for i in insts {
            let (w, extra) = encode(i).expect("test instruction encodes");
            out.push(w);
            if let Some(x) = extra {
                out.push(x);
            }
        }
        out
    }

    /// Run `code` to completion on the interpreter and through the
    /// native backend (dispatching at pc 0), asserting the final
    /// machine states match bit for bit. Returns the common result.
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    fn differential(code: &[u32], prep: impl Fn(&mut Vm)) -> Result<Stop, VmError> {
        let mut reference = Vm::new(1 << 16);
        reference.append_code(code);
        prep(&mut reference);
        let mut native = reference.clone();

        let ref_result = reference.run();

        let artifact = translate(code, 0, &native.model);
        let mut backend = Backend::new();
        backend.install(0, &artifact).expect("install");
        native.mark_native(0);
        let native_result = loop {
            match native.run() {
                Ok(Stop::Native { at }) => match backend.run(at, &mut native) {
                    RunOutcome::Exit { pc } => {
                        if pc == at {
                            native.skip_native_once(at);
                        }
                        native.pc = pc;
                    }
                    RunOutcome::MemFault { addr } => {
                        break Err(VmError::Mem(dyncomp_ir::eval::EvalError::OutOfBounds {
                            addr,
                        }))
                    }
                    RunOutcome::DivFault { pc } => break Err(VmError::DivideByZero { pc }),
                    RunOutcome::Missing => panic!("instance vanished"),
                },
                other => break other,
            }
        };

        assert_eq!(ref_result, native_result, "stop/error mismatch");
        assert_eq!(reference.regs, native.regs, "integer registers diverge");
        let rbits: Vec<u64> = reference.fregs.iter().map(|f| f.to_bits()).collect();
        let nbits: Vec<u64> = native.fregs.iter().map(|f| f.to_bits()).collect();
        assert_eq!(rbits, nbits, "float registers diverge");
        if ref_result.is_ok() {
            assert_eq!(reference.cycles, native.cycles, "cycles diverge");
            assert_eq!(reference.fuel, native.fuel, "fuel diverges");
            assert_eq!(
                reference.mem.bytes_mut(),
                native.mem.bytes_mut(),
                "memory diverges"
            );
        }
        ref_result
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    mod host {
        use super::*;
        use dyncomp_ir::prng::SplitMix64;

        fn lit(l: u8) -> Operand {
            Operand::Lit(l)
        }
        fn r(n: u8) -> Operand {
            Operand::Reg(n)
        }

        #[test]
        fn arithmetic_and_compare_chain() {
            let code = words(&[
                Inst::ldiw(1, 1_000_003),
                Inst::ldiw(2, -7),
                Inst::op3(Op::Addq, 1, r(2), 3),
                Inst::op3(Op::Mulq, 3, lit(13), 4),
                Inst::op3(Op::Subq, 4, r(1), 5),
                Inst::op3(Op::Sll, 5, lit(7), 6),
                Inst::op3(Op::Sra, 2, lit(1), 7),
                Inst::op3(Op::Srl, 2, lit(1), 8),
                Inst::op3(Op::Ornot, 7, r(8), 9),
                Inst::op3(Op::Xor, 9, r(4), 10),
                Inst::op3(Op::Cmplt, 2, lit(0), 11),
                Inst::op3(Op::Cmpule, 8, r(7), 12),
                Inst::op3(Op::Cmoveq, 11, r(4), 13),
                Inst::op3(Op::Cmovne, 11, r(5), 14),
                Inst::op3(Op::Sextb, 6, r(31), 15),
                Inst::op3(Op::Zextw, 5, r(31), 16),
                Inst::op3(Op::Divq, 4, r(2), 17),
                Inst::op3(Op::Remqu, 4, lit(9), 18),
                Inst {
                    op: Op::Halt,
                    ra: 0,
                    rb: r(31),
                    rc: 0,
                    imm: 0,
                },
            ]);
            let result = differential(&code, |_| {});
            assert_eq!(result, Ok(Stop::Halted));
        }

        #[test]
        fn branch_loop_sums() {
            // r1 = 100; r2 = 0; loop { r2 += r1; r1 -= 1; if r1 > 0 loop }
            let code = words(&[
                Inst::ldiw(1, 100),
                Inst::op3(Op::Addq, 31, r(31), 2),
                Inst::op3(Op::Addq, 2, r(1), 2),
                Inst::op3(Op::Subq, 1, lit(1), 1),
                Inst::branch(Op::Bgt, 1, -3),
                Inst::branch(Op::Br, 26, 0),
                Inst {
                    op: Op::Halt,
                    ra: 0,
                    rb: r(31),
                    rc: 0,
                    imm: 0,
                },
            ]);
            let result = differential(&code, |_| {});
            assert_eq!(result, Ok(Stop::Halted));
        }

        #[test]
        fn memory_roundtrip_all_widths() {
            let code = words(&[
                Inst::ldiw(1, 4096),
                Inst::ldiw(2, -123456),
                Inst::mem(Op::Stq, 2, 1, 0),
                Inst::mem(Op::Stl, 2, 1, 8),
                Inst::mem(Op::Stw, 2, 1, 12),
                Inst::mem(Op::Stb, 2, 1, 14),
                Inst::mem(Op::Ldq, 3, 1, 0),
                Inst::mem(Op::Ldl, 4, 1, 8),
                Inst::mem(Op::Ldlu, 5, 1, 8),
                Inst::mem(Op::Ldw, 6, 1, 12),
                Inst::mem(Op::Ldwu, 7, 1, 12),
                Inst::mem(Op::Ldb, 8, 1, 14),
                Inst::mem(Op::Ldbu, 9, 1, 14),
                Inst::mem(Op::Lda, 10, 1, -16),
                Inst {
                    op: Op::Halt,
                    ra: 0,
                    rb: r(31),
                    rc: 0,
                    imm: 0,
                },
            ]);
            let result = differential(&code, |_| {});
            assert_eq!(result, Ok(Stop::Halted));
        }

        #[test]
        fn float_pipeline() {
            let code = words(&[
                Inst::ldiw(1, 41),
                Inst::op3(Op::Cvtqt, 1, r(31), 2),
                Inst::ldiw(3, 7),
                Inst::op3(Op::Cvtqt, 3, r(31), 4),
                Inst::op3(Op::Addt, 2, r(4), 5),
                Inst::op3(Op::Subt, 2, r(4), 6),
                Inst::op3(Op::Mult, 5, r(6), 7),
                Inst::op3(Op::Divt, 7, r(4), 8),
                Inst::op3(Op::Sqrtt, 31, r(8), 9),
                Inst::op3(Op::Fneg, 31, r(9), 10),
                Inst::op3(Op::Cmpteq, 9, r(10), 11),
                Inst::op3(Op::Cmptlt, 10, r(9), 12),
                Inst::op3(Op::Cmptle, 9, r(9), 13),
                Inst::op3(Op::Fmov, 31, r(9), 14),
                Inst::op3(Op::Fcmovne, 12, r(10), 14),
                Inst::op3(Op::Cvttq, 8, r(31), 15),
                Inst {
                    op: Op::Halt,
                    ra: 0,
                    rb: r(31),
                    rc: 0,
                    imm: 0,
                },
            ]);
            let result = differential(&code, |_| {});
            assert_eq!(result, Ok(Stop::Halted));
        }

        #[test]
        fn cvttq_edge_cases_match_interpreter() {
            // f16 (arg slot) is seeded by prep with NaN/±inf/MIN/huge.
            let probes: [f64; 6] = [
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                -9.223372036854776e18, // rounds to i64::MIN exactly
                9.3e18,                // positive overflow
                -4.25,
            ];
            for v in probes {
                let code = words(&[
                    Inst::op3(Op::Cvttq, 16, r(31), 1),
                    Inst {
                        op: Op::Halt,
                        ra: 0,
                        rb: r(31),
                        rc: 0,
                        imm: 0,
                    },
                ]);
                let result = differential(&code, |vm| vm.fregs[16] = v);
                assert_eq!(result, Ok(Stop::Halted), "probe {v}");
            }
        }

        #[test]
        fn divide_faults_match() {
            for (a, b) in [(5i32, 0i32), (i32::MIN, -1)] {
                let code = words(&[
                    Inst::ldiw(1, a),
                    Inst::op3(Op::Sll, 1, lit(32), 1), // scale toward i64::MIN
                    Inst::ldiw(2, b),
                    Inst::op3(Op::Divq, 1, r(2), 3),
                    Inst {
                        op: Op::Halt,
                        ra: 0,
                        rb: r(31),
                        rc: 0,
                        imm: 0,
                    },
                ]);
                let result = differential(&code, |_| {});
                assert!(
                    matches!(result, Err(VmError::DivideByZero { .. })),
                    "({a},{b}) -> {result:?}"
                );
            }
        }

        #[test]
        fn memory_faults_match() {
            // Null access and past-the-end access.
            for disp in [0i16, 4] {
                let code = words(&[
                    Inst::ldiw(1, if disp == 0 { 0 } else { (1 << 16) - 2 }),
                    Inst::mem(Op::Ldq, 2, 1, disp),
                    Inst {
                        op: Op::Halt,
                        ra: 0,
                        rb: r(31),
                        rc: 0,
                        imm: 0,
                    },
                ]);
                let result = differential(&code, |_| {});
                assert!(
                    matches!(result, Err(VmError::Mem(_))),
                    "disp {disp} -> {result:?}"
                );
            }
        }

        #[test]
        fn fuel_exhaustion_matches() {
            let code = words(&[
                Inst::ldiw(1, 1_000_000),
                Inst::op3(Op::Subq, 1, lit(1), 1),
                Inst::branch(Op::Bgt, 1, -2),
                Inst {
                    op: Op::Halt,
                    ra: 0,
                    rb: r(31),
                    rc: 0,
                    imm: 0,
                },
            ]);
            let result = differential(&code, |vm| vm.fuel = 1_000);
            assert_eq!(result, Err(VmError::OutOfFuel));
        }

        #[test]
        fn unsupported_entry_is_declined() {
            let code = words(&[
                Inst::jump(Op::Jmp, 26, 1),
                Inst {
                    op: Op::Halt,
                    ra: 0,
                    rb: r(31),
                    rc: 0,
                    imm: 0,
                },
            ]);
            let artifact = translate(&code, 0, &dyncomp_machine::CycleModel::default());
            assert!(!artifact.entry_supported);
            let mut backend = Backend::new();
            assert_eq!(
                backend.install(0, &artifact),
                Err(InstallError::EntryUnsupported)
            );
        }

        #[test]
        fn fuzz_straightline_ops_against_interpreter() {
            let mut rng = SplitMix64::new(0x5eed_0001);
            for case in 0..200 {
                let mut insts = Vec::new();
                // Seed a handful of registers with interesting values.
                for reg in 1..6u8 {
                    insts.push(Inst::ldiw(reg, rng.next_u64() as i32));
                }
                let safe_ops = [
                    Op::Addq,
                    Op::Subq,
                    Op::Mulq,
                    Op::And,
                    Op::Bis,
                    Op::Xor,
                    Op::Ornot,
                    Op::Sll,
                    Op::Srl,
                    Op::Sra,
                    Op::Cmpeq,
                    Op::Cmpne,
                    Op::Cmplt,
                    Op::Cmple,
                    Op::Cmpult,
                    Op::Cmpule,
                    Op::Sextb,
                    Op::Sextw,
                    Op::Sextl,
                    Op::Zextb,
                    Op::Zextw,
                    Op::Zextl,
                    Op::Cmoveq,
                    Op::Cmovne,
                ];
                for _ in 0..40 {
                    let op = safe_ops[rng.below(safe_ops.len() as u64) as usize];
                    let ra = rng.below(8) as u8;
                    let rb = if rng.chance(1, 2) {
                        Operand::Reg(rng.below(8) as u8)
                    } else {
                        Operand::Lit(rng.next_u64() as u8)
                    };
                    let rc = 1 + rng.below(7) as u8;
                    insts.push(Inst::op3(op, ra, rb, rc));
                }
                insts.push(Inst {
                    op: Op::Halt,
                    ra: 0,
                    rb: Operand::Reg(31),
                    rc: 0,
                    imm: 0,
                });
                let code = words(&insts);
                let result = differential(&code, |_| {});
                assert_eq!(result, Ok(Stop::Halted), "fuzz case {case}");
            }
        }
    }
}
