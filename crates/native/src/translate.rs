//! SimAlpha → x86-64 translation: block discovery, micro-stub chains,
//! and the rel32 fix-up pass.
//!
//! The input is a *verified* stitched instance (every word decodes,
//! branch targets are range-checked) installed at word address `base` of
//! the VM code space. Translation is pure byte generation — it runs on
//! any host; only installing the result into an executable arena is
//! architecture-gated (see [`crate::backend`]).
//!
//! ## Execution model
//!
//! The instance is split into basic blocks at branch targets and after
//! terminators. Each block's prologue charges the whole block's fuel and
//! cycles up front against the context block:
//!
//! * if remaining fuel is short, the block *bails out* before charging
//!   anything, returning to the VM at the block's own pc — the
//!   interpreter then re-executes from an identical machine state and
//!   produces the exact out-of-fuel error the oracle expects;
//! * conditional-branch cycle costs are charged as untaken; the taken
//!   path routes through a per-target thunk that adds the
//!   taken − untaken difference before jumping.
//!
//! On a fault-free run the native cycle and fuel accounting is therefore
//! **bit-identical** to the interpreter's. After a memory or divide
//! fault the counts may differ (the VM charges per instruction, native
//! per block); the session surfaces the same `VmError` either way, and
//! errors abort checksum streams in both backends.
//!
//! Unsupported operations (`Jmp`, `Jsr`, `Alloc`, `Halt`, and float
//! operates with a literal operand, which the VM defines as faults) end
//! their block and return to the VM at their own pc, uncharged: the
//! interpreter executes them with full fidelity and re-enters native
//! code at the next marked dispatch point.

use crate::stubs::{self as s, Asm, Cc};
use crate::{
    CTX_CHAINED, CTX_CYCLES, CTX_DISPATCH, CTX_DISPATCH_LEN, CTX_EXIT_PC, CTX_FAULT_PC,
    CTX_FDISCARD, CTX_FREGS, CTX_FUEL, CTX_IDISCARD, CTX_MEM_LEN, CTX_MEM_PTR, CTX_REGS,
    CTX_STATUS,
};
use dyncomp_machine::isa::{decode, Format, Inst, Op, Operand, Reg};
use dyncomp_machine::vm::CycleModel;
use std::collections::{BTreeMap, BTreeSet};

/// Where one region-key value lives, mirrored from the engine's key
/// descriptor. Only the *kind* matters at translate time (it sizes the
/// guard sled); the concrete constants arrive with the later patch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeySlot {
    /// Integer register.
    Reg(Reg),
    /// Float register (raw bits compare).
    FReg(Reg),
    /// Stack frame slot: `mem[SP + offset]`, 8 bytes.
    Frame(i32),
}

/// A patchable inline-cache site reserved at an `EnterRegion` pc.
#[derive(Clone, Debug)]
pub struct GuardSpec {
    /// The `EnterRegion` pc (word address).
    pub pc: u32,
    /// Key locations, in region-key order.
    pub keys: Vec<KeySlot>,
}

/// Direct-threading options for [`translate_with`]. The default (no
/// guards, `indirect` off) reproduces the plain single-entry artifact.
#[derive(Clone, Debug, Default)]
pub struct ChainSpec {
    /// Lower `Jmp`/`Jsr` through the context dispatch table instead of
    /// exiting to the VM.
    pub indirect: bool,
    /// `EnterRegion` pcs that get NOP-sled guard areas for later
    /// patching: monomorphic inline caches for keyed regions,
    /// unconditional retired-trap entries for unkeyed ones.
    pub guards: Vec<GuardSpec>,
    /// Extra pcs to force as block leaders. Chained control can only
    /// land on a block boundary (the fuel/cycle accounting is charged
    /// per block from its head), so pcs that other instances exit to —
    /// region exit continuations — must start a block even when the
    /// static control flow alone would leave them mid-block.
    pub leaders: Vec<u32>,
}

/// A reserved guard area inside an artifact: `len` NOP bytes at
/// `offset`, falling through to the exit blob for `pc`. [`crate::Backend`]
/// patches the sled in place; overwriting it with NOPs restores the
/// original unchained behaviour.
#[derive(Clone, Copy, Debug)]
pub struct GuardArea {
    /// The `EnterRegion` pc this sled fronts.
    pub pc: u32,
    /// Byte offset of the sled in the artifact.
    pub offset: u32,
    /// Sled length in bytes.
    pub len: u32,
}

/// A translated instance: host bytes plus coverage counters and the
/// chain-patch tables. Produced by [`translate`] / [`translate_with`];
/// executable only after [`crate::Backend::install`].
#[derive(Clone, Debug)]
pub struct Artifact {
    /// Position-independent host code (entry at offset 0).
    pub bytes: Vec<u8>,
    /// Whether the instance's first instruction lowered natively. When
    /// false, installing would bounce every dispatch straight back to
    /// the VM, so callers should decline the install.
    pub entry_supported: bool,
    /// SimAlpha instructions in the instance.
    pub instructions: u32,
    /// Of those, how many lowered to native stubs.
    pub covered: u32,
    /// Basic blocks emitted.
    pub blocks: u32,
    /// First word address covered (the install base).
    pub base: u32,
    /// One past the last word address covered.
    pub end: u32,
    /// pc → entry-thunk offset: FFI-callable entry (full prologue) for
    /// every block whose leader lowered natively, plus the base entry.
    pub entries: Vec<(u32, u32)>,
    /// pc → block-body offset: in-native continuation points (live
    /// `r15`/`r13`/`r12`), the targets chained jumps land on.
    pub block_offsets: Vec<(u32, u32)>,
    /// Exit pc (outside `base..end`) → shared exit-blob offset: the
    /// back-patchable chain sites.
    pub exit_sites: Vec<(u32, u32)>,
    /// Reserved `EnterRegion` guard sleds.
    pub guard_areas: Vec<GuardArea>,
}

/// Context-slot displacement holding integer register `r` for *reads*
/// (`r31` reads the real slot, which the discard convention keeps 0).
fn rslot(r: Reg) -> u32 {
    CTX_REGS + 8 * u32::from(r)
}

/// Context-slot displacement for *writes* of integer register `r`
/// (writes to `r31` are discarded, as in the VM).
fn wslot(r: Reg) -> u32 {
    if r == 31 {
        CTX_IDISCARD
    } else {
        CTX_REGS + 8 * u32::from(r)
    }
}

/// Read slot for float register `r`.
fn frslot(r: Reg) -> u32 {
    CTX_FREGS + 8 * u32::from(r)
}

/// Write slot for float register `r` (`f31` writes are discarded).
fn fwslot(r: Reg) -> u32 {
    if r == 31 {
        CTX_FDISCARD
    } else {
        CTX_FREGS + 8 * u32::from(r)
    }
}

/// Whether `inst` lowers to native stubs. Float operates with a literal
/// operand are VM-defined faults (`BadInstruction`), so they route to
/// the interpreter for the authoritative error. `Jmp`/`Jsr` lower only
/// when the chain spec enables dispatch-table indirection.
fn supported(inst: &Inst, indirect: bool) -> bool {
    use Op::*;
    match inst.op {
        Jmp | Jsr => indirect && matches!(inst.rb, Operand::Reg(_)),
        Alloc | Halt | EnterRegion | EndSetup => false,
        Addt | Subt | Mult | Divt | Cmpteq | Cmptlt | Cmptle | Sqrtt | Fmov | Fneg | Fcmovne => {
            matches!(inst.rb, Operand::Reg(_))
        }
        _ => true,
    }
}

/// Guard-sled byte budget for one key compare (worst case: the key
/// constant and the miss `jcc` per key, plus the frame-load address
/// arithmetic and bounds checks for `Frame` keys).
fn key_sled_len(k: &KeySlot) -> u32 {
    match k {
        KeySlot::Reg(_) | KeySlot::FReg(_) => 7 + 10 + 3 + 6,
        KeySlot::Frame(_) => 7 + 6 + 3 + 6 + 3 + 4 + 6 + 3 + 6 + 5 + 10 + 3 + 6,
    }
}

/// Total sled length for a guard over `keys`: fuel header + per-key
/// compares + the charge/jump tail.
pub(crate) fn guard_sled_len(keys: &[KeySlot]) -> u32 {
    let header = 11 + 6; // cmp fuel,1 ; jb miss
    let tail = 11 + 11 + 8 + 10 + 2; // sub fuel ; add cycles ; inc chained ; movabs rax ; jmp rax
    header + keys.iter().map(key_sled_len).sum::<u32>() + tail
}

/// Build the monomorphic inline-cache code for a guard sled: compare
/// every key location against its recorded constant, and on a full match
/// charge exactly what the VM's keyed `EnterRegion` path would (1 fuel,
/// `cycles` simulated cycles), bump the chained counter, and jump
/// straight to the region instance at host address `target_addr`. Any
/// mismatch — or any unreadable frame slot — falls to the sled's miss
/// exit, where the VM re-executes the trap from an identical state.
///
/// The result is at most [`guard_sled_len`] bytes; the caller pads the
/// remainder of the sled with the NOPs already there.
pub(crate) fn build_guard(
    keys: &[(KeySlot, u64)],
    sp: Reg,
    cycles: u64,
    target_addr: u64,
) -> Vec<u8> {
    let mut a = Asm::default();
    let mut miss: Vec<usize> = Vec::new();
    a.cmp_slot_imm32(CTX_FUEL, 1);
    miss.push(a.jcc(Cc::B));
    for (k, v) in keys {
        match *k {
            KeySlot::Reg(r) => {
                a.patch(s::LD_SLOT_RAX, rslot(r));
                a.movabs_rcx(*v);
                a.copy(s::CMP_RAX_RCX);
                miss.push(a.jcc(Cc::Nz));
            }
            KeySlot::FReg(r) => {
                a.patch(s::LD_SLOT_RAX, frslot(r));
                a.movabs_rcx(*v);
                a.copy(s::CMP_RAX_RCX);
                miss.push(a.jcc(Cc::Nz));
            }
            KeySlot::Frame(off) => {
                a.patch(s::LD_SLOT_RAX, rslot(sp));
                a.patch(s::ADD_RAX_IMM32S, off as u32);
                a.copy(s::TEST_RAX_RAX);
                miss.push(a.jcc(Cc::Z));
                a.copy(s::MOV_RDX_RAX);
                a.add_rdx_imm8(8);
                miss.push(a.jcc(Cc::B));
                a.copy(s::CMP_RDX_R12);
                miss.push(a.jcc(Cc::A));
                a.copy(s::LDQ_CORE);
                a.movabs_rcx(*v);
                a.copy(s::CMP_RAX_RCX);
                miss.push(a.jcc(Cc::Nz));
            }
        }
    }
    a.sub_slot_imm32(CTX_FUEL, 1);
    a.add_slot_imm32(
        CTX_CYCLES,
        u32::try_from(cycles).expect("trap cost fits u32"),
    );
    a.patch(s::INC_SLOT, CTX_CHAINED);
    a.movabs_rax(target_addr);
    a.copy(s::JMP_RAX);
    let end = a.here();
    for h in miss {
        a.resolve(h, end);
    }
    a.finish()
}

/// Pending rel32 destinations, resolved once every block, thunk, and
/// blob has an offset.
enum Fix {
    /// A basic block of this instance, by SimAlpha pc.
    Block(u32),
    /// A taken-branch thunk, by target pc.
    Thunk(u32),
    /// Clean exit to the VM, resuming at this pc.
    Exit(u32),
    /// The shared memory-fault blob (`rax` holds the address).
    MemFault,
    /// A divide-fault blob for this pc.
    DivFault(u32),
    /// The shared dynamic-exit blob (`rax` holds the resume pc).
    DynExit,
}

struct DInst {
    pc: u32,
    inst: Inst,
    len: u32,
}

/// Emit a jump to the clean-exit blob for `pc`, registering the blob.
fn exit_jump(a: &mut Asm, fixups: &mut Vec<(usize, Fix)>, exit_pcs: &mut BTreeSet<u32>, pc: u32) {
    exit_pcs.insert(pc);
    let h = a.jmp();
    fixups.push((h, Fix::Exit(pc)));
}

/// Translate a verified instance installed at word address `base` with
/// the default (unchained) spec.
pub fn translate(code: &[u32], base: u32, model: &CycleModel) -> Artifact {
    translate_with(code, base, model, &ChainSpec::default())
}

/// Translate a verified instance installed at word address `base`.
/// Deterministic: the same `(code, base, model, spec)` always yields the
/// same bytes, so artifact sizes can be accounted before any install.
pub fn translate_with(code: &[u32], base: u32, model: &CycleModel, spec: &ChainSpec) -> Artifact {
    let end = base + code.len() as u32;
    let indirect = spec.indirect;

    // Decode pass. `verify_code` ran before install, so decode failures
    // cannot occur on engine inputs; treat one defensively as an
    // unsupported terminator.
    let mut insts: Vec<DInst> = Vec::with_capacity(code.len());
    let mut idx_of: Vec<Option<usize>> = vec![None; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        let pc = base + i as u32;
        match decode(code[i], code.get(i + 1).copied()) {
            Ok(inst) => {
                let len = if inst.is_wide() { 2 } else { 1 };
                idx_of[i] = Some(insts.len());
                insts.push(DInst { pc, inst, len });
                i += len as usize;
            }
            Err(_) => {
                idx_of[i] = Some(insts.len());
                insts.push(DInst {
                    pc,
                    inst: Inst {
                        op: Op::Halt,
                        ra: 0,
                        rb: Operand::Reg(31),
                        rc: 0,
                        imm: 0,
                    },
                    len: 1,
                });
                i += 1;
            }
        }
    }
    let is_start =
        |pc: u32| -> bool { pc >= base && pc < end && idx_of[(pc - base) as usize].is_some() };

    // Leaders: the entry, every in-instance branch target, and the
    // instruction after every terminator.
    let mut leaders: BTreeSet<u32> = BTreeSet::new();
    leaders.insert(base);
    for &pc in &spec.leaders {
        if is_start(pc) {
            leaders.insert(pc);
        }
    }
    for d in &insts {
        let next = d.pc + d.len;
        let branch = d.inst.op.format() == Format::Branch;
        let jump = matches!(d.inst.op, Op::Jmp | Op::Jsr);
        if branch {
            let t = next.wrapping_add_signed(d.inst.imm);
            if is_start(t) {
                leaders.insert(t);
            }
        }
        if (branch || jump || !supported(&d.inst, indirect)) && next < end {
            leaders.insert(next);
        }
    }

    let mut a = Asm::default();
    let mut fixups: Vec<(usize, Fix)> = Vec::new();
    let mut block_off: BTreeMap<u32, usize> = BTreeMap::new();
    let mut thunk_targets: BTreeSet<u32> = BTreeSet::new();
    let mut exit_pcs: BTreeSet<u32> = BTreeSet::new();
    let mut div_pcs: BTreeSet<u32> = BTreeSet::new();
    let mut mem_fault = false;
    let mut covered = 0u32;
    let mut guard_areas: Vec<GuardArea> = Vec::new();
    let mut dyn_exit = false;

    // Entry shim: save callee-saved scratch, cache the context pointer
    // and the simulated-memory window.
    a.copy(s::PROLOGUE_PUSHES);
    a.patch(s::LD_R13_SLOT, CTX_MEM_PTR);
    a.patch(s::LD_R12_SLOT, CTX_MEM_LEN);

    let leader_list: Vec<u32> = leaders.iter().copied().collect();
    for &bpc in &leader_list {
        block_off.insert(bpc, a.here());
        let mut j = idx_of[(bpc - base) as usize].expect("leaders are instruction starts");

        // Scan the block: instructions up to (and including) a
        // terminator, or up to the next leader.
        let start_j = j;
        let mut body_end = insts.len();
        let mut term: Option<usize> = None;
        while j < insts.len() {
            let d = &insts[j];
            if j != start_j && leaders.contains(&d.pc) {
                body_end = j;
                break;
            }
            if d.inst.op.format() == Format::Branch
                || matches!(d.inst.op, Op::Jmp | Op::Jsr)
                || !supported(&d.inst, indirect)
            {
                term = Some(j);
                body_end = j + 1;
                break;
            }
            j += 1;
            body_end = j;
        }

        // Fuel and cycles for the whole block, charged up front.
        // Unsupported terminators are excluded: the VM executes them.
        let charged: Vec<usize> = (start_j..body_end)
            .filter(|&k| supported(&insts[k].inst, indirect))
            .collect();
        let n = charged.len() as u32;
        let cycles: u64 = charged
            .iter()
            .map(|&k| model.cost(insts[k].inst.op, false))
            .sum();
        if n > 0 {
            a.cmp_slot_imm32(CTX_FUEL, n);
            exit_pcs.insert(bpc);
            let h = a.jcc(Cc::B);
            fixups.push((h, Fix::Exit(bpc)));
            a.sub_slot_imm32(CTX_FUEL, n);
            if cycles > 0 {
                a.add_slot_imm32(
                    CTX_CYCLES,
                    u32::try_from(cycles).expect("block cost fits u32"),
                );
            }
        }

        for (k, d) in insts.iter().enumerate().take(body_end).skip(start_j) {
            if !supported(&d.inst, indirect) {
                // Reserve a patchable inline-cache sled in front of a
                // guarded `EnterRegion`; unpatched it is a NOP slide
                // into the ordinary exit.
                if d.inst.op == Op::EnterRegion {
                    if let Some(g) = spec.guards.iter().find(|g| g.pc == d.pc) {
                        let len = guard_sled_len(&g.keys);
                        guard_areas.push(GuardArea {
                            pc: d.pc,
                            offset: a.here() as u32,
                            len,
                        });
                        a.nops(len as usize);
                    }
                }
                exit_jump(&mut a, &mut fixups, &mut exit_pcs, d.pc);
                continue;
            }
            covered += 1;
            if Some(k) == term && matches!(d.inst.op, Op::Jmp | Op::Jsr) {
                lower_jump(&mut a, &mut fixups, d);
                dyn_exit = true;
            } else if Some(k) == term {
                lower_branch(
                    &mut a,
                    &mut fixups,
                    d,
                    end,
                    &leaders,
                    &mut thunk_targets,
                    &mut exit_pcs,
                );
            } else {
                lower(&mut a, &mut fixups, d, &mut mem_fault, &mut div_pcs);
            }
        }

        // A block that ran off the end of the instance (no terminator,
        // no following leader) resumes interpretation there.
        if term.is_none() && body_end == insts.len() {
            exit_jump(&mut a, &mut fixups, &mut exit_pcs, end);
        }
    }

    // Taken-branch thunks: charge the taken-minus-untaken difference,
    // then jump on (in-instance) or exit (region exits).
    let extra = model.branch_taken.saturating_sub(model.branch_untaken);
    let mut thunk_off: BTreeMap<u32, usize> = BTreeMap::new();
    for &t in &thunk_targets {
        thunk_off.insert(t, a.here());
        if extra > 0 {
            a.add_slot_imm32(CTX_CYCLES, u32::try_from(extra).expect("cost fits u32"));
        }
        let h = a.jmp();
        if leaders.contains(&t) {
            fixups.push((h, Fix::Block(t)));
        } else {
            exit_pcs.insert(t);
            fixups.push((h, Fix::Exit(t)));
        }
    }

    // Exit blobs: status 0, resume pc for the VM.
    let mut exit_off: BTreeMap<u32, usize> = BTreeMap::new();
    for &pc in &exit_pcs {
        exit_off.insert(pc, a.here());
        a.mov_slot_imm32(CTX_EXIT_PC, pc);
        a.mov_slot_imm32(CTX_STATUS, 0);
        a.copy(s::EPILOGUE);
    }

    // Fault blobs.
    let mem_fault_off = if mem_fault {
        let off = a.here();
        a.patch(s::ST_RAX_FAULT_ADDR_HOLE, crate::CTX_FAULT_ADDR);
        a.mov_slot_imm32(CTX_STATUS, 2);
        a.copy(s::EPILOGUE);
        Some(off)
    } else {
        None
    };
    let mut div_off: BTreeMap<u32, usize> = BTreeMap::new();
    for &pc in &div_pcs {
        div_off.insert(pc, a.here());
        a.mov_slot_imm32(CTX_FAULT_PC, pc);
        a.mov_slot_imm32(CTX_STATUS, 3);
        a.copy(s::EPILOGUE);
    }

    // Dynamic-exit blob for dispatch-table misses: `rax` holds the
    // (u32-truncated) jump target the VM should resume at.
    let dyn_exit_off = if dyn_exit {
        let off = a.here();
        a.patch(s::ST_RAX_SLOT, CTX_EXIT_PC);
        a.mov_slot_imm32(CTX_STATUS, 0);
        a.copy(s::EPILOGUE);
        Some(off)
    } else {
        None
    };

    // FFI entry thunks: a full prologue per supported leader, so the
    // engine can dispatch a marked pc anywhere in the instance — chained
    // jumps skip these and land on the block bodies directly.
    let leader_supported = |pc: u32| {
        supported(
            &insts[idx_of[(pc - base) as usize].expect("leader")].inst,
            indirect,
        )
    };
    let mut entries: Vec<(u32, u32)> = Vec::new();
    for &bpc in &leader_list {
        if !leader_supported(bpc) {
            continue;
        }
        if bpc == base {
            entries.push((bpc, 0));
            continue;
        }
        let off = a.here() as u32;
        a.copy(s::PROLOGUE_PUSHES);
        a.patch(s::LD_R13_SLOT, CTX_MEM_PTR);
        a.patch(s::LD_R12_SLOT, CTX_MEM_LEN);
        let h = a.jmp();
        fixups.push((h, Fix::Block(bpc)));
        entries.push((bpc, off));
    }
    // Guarded `EnterRegion` pcs get entry thunks into their sleds: once
    // a guard is patched (and the pc marked), a VM dispatch there runs
    // the inline cache natively too.
    for g in &guard_areas {
        let off = a.here() as u32;
        a.copy(s::PROLOGUE_PUSHES);
        a.patch(s::LD_R13_SLOT, CTX_MEM_PTR);
        a.patch(s::LD_R12_SLOT, CTX_MEM_LEN);
        let h = a.jmp();
        a.resolve(h, g.offset as usize);
        entries.push((g.pc, off));
    }

    // Fix-up pass: every recorded rel32 lands on its block, thunk, or
    // blob.
    for (hole, fix) in fixups {
        let target = match fix {
            Fix::Block(pc) => block_off[&pc],
            Fix::Thunk(pc) => thunk_off[&pc],
            Fix::Exit(pc) => exit_off[&pc],
            Fix::MemFault => mem_fault_off.expect("mem fault blob emitted"),
            Fix::DivFault(pc) => div_off[&pc],
            Fix::DynExit => dyn_exit_off.expect("dyn exit blob emitted"),
        };
        a.resolve(hole, target);
    }

    let entry_supported = insts
        .first()
        .map(|d| supported(&d.inst, indirect))
        .unwrap_or(false);
    let block_offsets: Vec<(u32, u32)> = block_off
        .iter()
        .filter(|&(&pc, _)| leader_supported(pc))
        .map(|(&pc, &off)| (pc, off as u32))
        .collect();
    let exit_sites: Vec<(u32, u32)> = exit_off
        .iter()
        .filter(|&(&pc, _)| pc < base || pc >= end)
        .map(|(&pc, &off)| (pc, off as u32))
        .collect();
    entries.sort_unstable();
    Artifact {
        bytes: a.finish(),
        entry_supported,
        instructions: insts.len() as u32,
        covered,
        blocks: leader_list.len() as u32,
        base,
        end,
        entries,
        block_offsets,
        exit_sites,
        guard_areas,
    }
}

/// Lower a `Jmp`/`Jsr` terminator through the context dispatch table:
/// read the target, write the link register, and either jump straight to
/// the target's native block (a *chained* transfer) or exit to the VM at
/// the target pc when the table has no entry for it.
fn lower_jump(a: &mut Asm, fixups: &mut Vec<(usize, Fix)>, d: &DInst) {
    let Operand::Reg(rb) = d.inst.rb else {
        unreachable!("jump formats decode a register operand")
    };
    let next = d.pc + d.len;
    // Target first: the link register may alias the target register.
    a.patch(s::LD_SLOT_RCX, rslot(rb));
    a.patch(s::MOV_EAX_IMM, next);
    a.patch(s::ST_RAX_SLOT, wslot(d.inst.ra));
    a.copy(s::MOV_RAX_RCX);
    a.copy(s::MOV_EAX_EAX); // the VM truncates jump targets to u32
    a.patch(s::CMP_RAX_SLOT, CTX_DISPATCH_LEN);
    fixups.push((a.jcc(Cc::Ae), Fix::DynExit));
    a.patch(s::LD_SLOT_RDX, CTX_DISPATCH);
    a.copy(s::MOV_RCX_TABLE);
    a.copy(s::TEST_RCX_RCX);
    fixups.push((a.jcc(Cc::Z), Fix::DynExit));
    a.patch(s::INC_SLOT, CTX_CHAINED);
    a.copy(s::JMP_RCX);
}

/// Lower a block terminator that is a branch (conditional or
/// unconditional).
fn lower_branch(
    a: &mut Asm,
    fixups: &mut Vec<(usize, Fix)>,
    d: &DInst,
    end: u32,
    leaders: &BTreeSet<u32>,
    thunk_targets: &mut BTreeSet<u32>,
    exit_pcs: &mut BTreeSet<u32>,
) {
    use Op::*;
    let next = d.pc + d.len;
    let target = next.wrapping_add_signed(d.inst.imm);
    match d.inst.op {
        Br | Bsr => {
            // Link register, then jump (cost already charged as taken).
            a.patch(s::MOV_EAX_IMM, next);
            a.patch(s::ST_RAX_SLOT, wslot(d.inst.ra));
            if leaders.contains(&target) {
                let h = a.jmp();
                fixups.push((h, Fix::Block(target)));
            } else {
                exit_jump(a, fixups, exit_pcs, target);
            }
        }
        Beq | Bne | Blt | Ble | Bgt | Bge => {
            a.patch(s::LD_SLOT_RAX, rslot(d.inst.ra));
            a.copy(s::TEST_RAX_RAX);
            let cc = match d.inst.op {
                Beq => Cc::Z,
                Bne => Cc::Nz,
                Blt => Cc::S,
                Bge => Cc::Ns,
                Ble => Cc::Le,
                Bgt => Cc::G,
                _ => unreachable!(),
            };
            thunk_targets.insert(target);
            let h = a.jcc(cc);
            fixups.push((h, Fix::Thunk(target)));
            // Fall through to the next block (emitted immediately after)
            // or exit if the branch was the instance's last instruction.
            if next >= end {
                exit_jump(a, fixups, exit_pcs, next);
            }
        }
        _ => unreachable!("terminator is a branch"),
    }
}

/// Lower one straight-line instruction into its micro-stub chain.
fn lower(
    a: &mut Asm,
    fixups: &mut Vec<(usize, Fix)>,
    d: &DInst,
    mem_fault: &mut bool,
    div_pcs: &mut BTreeSet<u32>,
) {
    use Op::*;
    let Inst {
        op,
        ra,
        rb,
        rc,
        imm,
    } = d.inst;

    // b-operand into rcx (integer forms).
    let b_rcx = |a: &mut Asm| match rb {
        Operand::Reg(r) => a.patch(s::LD_SLOT_RCX, rslot(r)),
        Operand::Lit(l) => a.patch(s::MOV_ECX_IMM, u32::from(l)),
    };
    // Memory base register (memory formats always decode a register).
    let base_reg = || match rb {
        Operand::Reg(r) => r,
        Operand::Lit(_) => unreachable!("memory formats have no literal base"),
    };
    // rax = base + disp, bounds-checked for `size` bytes; faults carry
    // the address in rax.
    let addr_check =
        |a: &mut Asm, fixups: &mut Vec<(usize, Fix)>, mem_fault: &mut bool, size: u8| {
            a.patch(s::LD_SLOT_RAX, rslot(base_reg()));
            if imm != 0 {
                a.patch(s::ADD_RAX_IMM32S, imm as u32);
            }
            *mem_fault = true;
            a.copy(s::TEST_RAX_RAX);
            fixups.push((a.jcc(Cc::Z), Fix::MemFault));
            // rdx as scratch: stores stage their value in rcx.
            a.copy(s::MOV_RDX_RAX);
            a.add_rdx_imm8(size);
            fixups.push((a.jcc(Cc::B), Fix::MemFault));
            a.copy(s::CMP_RDX_R12);
            fixups.push((a.jcc(Cc::A), Fix::MemFault));
        };

    match op {
        // ---- integer operate ----
        Addq | Subq | Mulq | And | Bis | Xor | Ornot | Sll | Srl | Sra => {
            a.patch(s::LD_SLOT_RAX, rslot(ra));
            b_rcx(a);
            match op {
                Addq => a.copy(s::ADD_RAX_RCX),
                Subq => a.copy(s::SUB_RAX_RCX),
                Mulq => a.copy(s::IMUL_RAX_RCX),
                And => a.copy(s::AND_RAX_RCX),
                Bis => a.copy(s::OR_RAX_RCX),
                Xor => a.copy(s::XOR_RAX_RCX),
                Ornot => {
                    a.copy(s::NOT_RCX);
                    a.copy(s::OR_RAX_RCX);
                }
                Sll => a.copy(s::SHL_RAX_CL),
                Srl => a.copy(s::SHR_RAX_CL),
                Sra => a.copy(s::SAR_RAX_CL),
                _ => unreachable!(),
            }
            a.patch(s::ST_RAX_SLOT, wslot(rc));
        }
        Cmpeq | Cmpne | Cmplt | Cmple | Cmpult | Cmpule => {
            a.patch(s::LD_SLOT_RAX, rslot(ra));
            b_rcx(a);
            a.copy(s::CMP_RAX_RCX);
            a.copy(match op {
                Cmpeq => s::SETE_AL,
                Cmpne => s::SETNE_AL,
                Cmplt => s::SETL_AL,
                Cmple => s::SETLE_AL,
                Cmpult => s::SETB_AL,
                Cmpule => s::SETBE_AL,
                _ => unreachable!(),
            });
            a.copy(s::MOVZX_EAX_AL);
            a.patch(s::ST_RAX_SLOT, wslot(rc));
        }
        Sextb | Sextw | Sextl | Zextb | Zextw | Zextl => {
            a.patch(s::LD_SLOT_RAX, rslot(ra));
            a.copy(match op {
                Sextb => s::MOVSX_RAX_AL,
                Sextw => s::MOVSX_RAX_AX,
                Sextl => s::MOVSXD_RAX_EAX,
                Zextb => s::MOVZX_EAX_AL,
                Zextw => s::MOVZX_EAX_AX,
                Zextl => s::MOV_EAX_EAX,
                _ => unreachable!(),
            });
            a.patch(s::ST_RAX_SLOT, wslot(rc));
        }
        Cmoveq | Cmovne => {
            a.patch(s::LD_SLOT_RAX, rslot(ra));
            b_rcx(a);
            a.patch(s::LD_SLOT_RDX, rslot(rc));
            a.copy(s::TEST_RAX_RAX);
            a.copy(if op == Cmoveq {
                s::CMOVZ_RDX_RCX
            } else {
                s::CMOVNZ_RDX_RCX
            });
            a.patch(s::ST_RDX_SLOT, wslot(rc));
        }
        Divq | Remq => {
            a.patch(s::LD_SLOT_RAX, rslot(ra));
            b_rcx(a);
            div_pcs.insert(d.pc);
            a.copy(s::TEST_RCX_RCX);
            fixups.push((a.jcc(Cc::Z), Fix::DivFault(d.pc)));
            fixups.push((a.patch_rel(s::DIV_MIN_CHECK), Fix::DivFault(d.pc)));
            a.copy(s::CQO);
            a.copy(s::IDIV_RCX);
            if op == Divq {
                a.patch(s::ST_RAX_SLOT, wslot(rc));
            } else {
                a.patch(s::ST_RDX_SLOT, wslot(rc));
            }
        }
        Divqu | Remqu => {
            a.patch(s::LD_SLOT_RAX, rslot(ra));
            b_rcx(a);
            div_pcs.insert(d.pc);
            a.copy(s::TEST_RCX_RCX);
            fixups.push((a.jcc(Cc::Z), Fix::DivFault(d.pc)));
            a.copy(s::XOR_EDX_EDX);
            a.copy(s::DIV_RCX);
            if op == Divqu {
                a.patch(s::ST_RAX_SLOT, wslot(rc));
            } else {
                a.patch(s::ST_RDX_SLOT, wslot(rc));
            }
        }
        // ---- memory ----
        Lda => {
            a.patch(s::LD_SLOT_RAX, rslot(base_reg()));
            if imm != 0 {
                a.patch(s::ADD_RAX_IMM32S, imm as u32);
            }
            a.patch(s::ST_RAX_SLOT, wslot(ra));
        }
        Ldbu | Ldb | Ldwu | Ldw | Ldlu | Ldl | Ldq => {
            let size = match op {
                Ldbu | Ldb => 1,
                Ldwu | Ldw => 2,
                Ldlu | Ldl => 4,
                Ldq => 8,
                _ => unreachable!(),
            };
            addr_check(a, fixups, mem_fault, size);
            a.copy(match op {
                Ldbu => s::LDBU_CORE,
                Ldb => s::LDB_CORE,
                Ldwu => s::LDWU_CORE,
                Ldw => s::LDW_CORE,
                Ldlu => s::LDLU_CORE,
                Ldl => s::LDL_CORE,
                Ldq => s::LDQ_CORE,
                _ => unreachable!(),
            });
            a.patch(s::ST_RAX_SLOT, wslot(ra));
        }
        Stb | Stw | Stl | Stq => {
            a.patch(s::LD_SLOT_RCX, rslot(ra));
            let size = match op {
                Stb => 1,
                Stw => 2,
                Stl => 4,
                Stq => 8,
                _ => unreachable!(),
            };
            addr_check(a, fixups, mem_fault, size);
            a.copy(match op {
                Stb => s::STB_CORE,
                Stw => s::STW_CORE,
                Stl => s::STL_CORE,
                Stq => s::STQ_CORE,
                _ => unreachable!(),
            });
        }
        Ldt => {
            addr_check(a, fixups, mem_fault, 8);
            a.copy(s::LDQ_CORE);
            a.patch(s::ST_RAX_SLOT, fwslot(ra));
        }
        Stt => {
            a.patch(s::LD_SLOT_RCX, frslot(ra));
            addr_check(a, fixups, mem_fault, 8);
            a.copy(s::STQ_CORE);
        }
        // ---- float operate ----
        Addt | Subt | Mult | Divt => {
            let Operand::Reg(b) = rb else { unreachable!() };
            a.patch(s::MOVSD_X0_SLOT, frslot(ra));
            a.patch(s::MOVSD_X1_SLOT, frslot(b));
            a.copy(match op {
                Addt => s::ADDSD_X0_X1,
                Subt => s::SUBSD_X0_X1,
                Mult => s::MULSD_X0_X1,
                Divt => s::DIVSD_X0_X1,
                _ => unreachable!(),
            });
            a.patch(s::MOVSD_SLOT_X0, fwslot(rc));
        }
        Cmpteq => {
            let Operand::Reg(b) = rb else { unreachable!() };
            a.patch(s::MOVSD_X0_SLOT, frslot(ra));
            a.patch(s::MOVSD_X1_SLOT, frslot(b));
            a.copy(s::XOR_EAX_EAX);
            a.copy(s::UCOMISD_X0_X1);
            a.copy(s::JP_SKIP_SETCC); // unordered: result stays 0
            a.copy(s::SETE_AL);
            a.patch(s::ST_RAX_SLOT, wslot(rc));
        }
        Cmptlt | Cmptle => {
            let Operand::Reg(b) = rb else { unreachable!() };
            a.patch(s::MOVSD_X0_SLOT, frslot(ra));
            a.patch(s::MOVSD_X1_SLOT, frslot(b));
            a.copy(s::XOR_EAX_EAX);
            // Reversed compare: a < b  ⇔  b above a; unordered clears.
            a.copy(s::UCOMISD_X1_X0);
            a.copy(if op == Cmptlt {
                s::SETA_AL
            } else {
                s::SETAE_AL
            });
            a.patch(s::ST_RAX_SLOT, wslot(rc));
        }
        Sqrtt => {
            let Operand::Reg(b) = rb else { unreachable!() };
            a.patch(s::MOVSD_X0_SLOT, frslot(b));
            a.copy(s::SQRTSD_X0_X0);
            a.patch(s::MOVSD_SLOT_X0, fwslot(rc));
        }
        Cvtqt => {
            a.patch(s::LD_SLOT_RAX, rslot(ra));
            a.copy(s::CVTSI2SD_X0_RAX);
            a.patch(s::MOVSD_SLOT_X0, fwslot(rc));
        }
        Cvttq => {
            a.patch(s::MOVSD_X0_SLOT, frslot(ra));
            a.copy(s::CVTTQ_CORE);
            a.patch(s::ST_RAX_SLOT, wslot(rc));
        }
        Fmov => {
            let Operand::Reg(b) = rb else { unreachable!() };
            a.patch(s::LD_SLOT_RAX, frslot(b));
            a.patch(s::ST_RAX_SLOT, fwslot(rc));
        }
        Fneg => {
            let Operand::Reg(b) = rb else { unreachable!() };
            a.patch(s::LD_SLOT_RAX, frslot(b));
            a.copy(s::FNEG_CORE);
            a.patch(s::ST_RAX_SLOT, fwslot(rc));
        }
        Fcmovne => {
            let Operand::Reg(b) = rb else { unreachable!() };
            a.patch(s::LD_SLOT_RAX, rslot(ra));
            a.patch(s::LD_SLOT_RCX, frslot(b));
            a.patch(s::LD_SLOT_RDX, frslot(rc));
            a.copy(s::TEST_RAX_RAX);
            a.copy(s::CMOVNZ_RDX_RCX);
            a.patch(s::ST_RDX_SLOT, fwslot(rc));
        }
        // ---- specials ----
        Ldiw => {
            a.patch(s::MOV_RAX_IMM32S, imm as u32);
            a.patch(s::ST_RAX_SLOT, wslot(rc));
        }
        Br | Bsr | Beq | Bne | Blt | Ble | Bgt | Bge => {
            unreachable!("branches are block terminators")
        }
        Jmp | Jsr | Alloc | Halt | EnterRegion | EndSetup => {
            unreachable!("unsupported ops never reach lower()")
        }
    }
}
