//! # dyncomp-frontend
//!
//! **MiniC**: a C-subset front end carrying the programmer annotations of
//! *"Fast, Effective Dynamic Compilation"* (PLDI 1996), §2:
//!
//! * `dynamicRegion key(k…) (v…) { … }` — delimit a dynamic region, name
//!   its run-time-constant variables and (optionally) the cache key;
//! * `unrolled for (…)` — ask for complete loop unrolling;
//! * `dynamic* p`, `p dynamic-> f`, `a dynamic[i]` — mark a dereference
//!   whose result is *not* constant even though the pointer is (for
//!   partially-constant data structures).
//!
//! The language covers the unstructured C the paper stresses — `switch`
//! with fall-through, `break`/`continue`, `goto` — plus structs, pointers,
//! arrays, doubles and function calls. The same source lowers either with
//! annotations honored (dynamic compilation) or ignored (the §5 static
//! baseline): see [`LowerOptions`].
//!
//! ## Example
//!
//! ```
//! use dyncomp_frontend::{compile, LowerOptions};
//!
//! let lowered = compile(
//!     "int addmul(int k, int x) {
//!          dynamicRegion (k) { return x * k + k; }
//!      }",
//!     &LowerOptions::default(),
//! )?;
//! let f = &lowered.module.funcs[dyncomp_ir::FuncId(0)];
//! assert_eq!(f.name, "addmul");
//! assert_eq!(f.regions.len(), 1);
//! # Ok::<(), dyncomp_frontend::FrontendError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod types;

pub use lower::{lower, LowerError, LowerOptions, Lowered};
pub use parser::{parse, ParseError};
pub use types::{CType, TypeTable};

use std::fmt;

/// Any front-end failure: lexing/parsing or lowering.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// Syntax error.
    Parse(ParseError),
    /// Semantic / lowering error.
    Lower(LowerError),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Parse(e) => e.fmt(f),
            FrontendError::Lower(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}

impl From<LowerError> for FrontendError {
    fn from(e: LowerError) -> Self {
        FrontendError::Lower(e)
    }
}

/// Parse and lower MiniC source to an IR module (not yet SSA).
///
/// # Errors
/// Returns the first syntax or semantic error.
pub fn compile(src: &str, opts: &LowerOptions) -> Result<Lowered, FrontendError> {
    let prog = parse(src)?;
    Ok(lower(&prog, opts)?)
}

#[cfg(test)]
mod tests;
