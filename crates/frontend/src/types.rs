//! MiniC semantic types: sizes, alignment, struct layout.
//!
//! MiniC uses an ILP64-flavoured model: `int`, `long` and pointers are all
//! 8 bytes (the simalpha word), `short` is 2 and `char` is 1. Struct
//! fields are aligned to their natural alignment, structs to their widest
//! field.

use crate::ast::{BaseType, TypeName};
use std::collections::HashMap;
use std::fmt;

/// A resolved MiniC type.
#[derive(Clone, Debug, PartialEq)]
pub enum CType {
    /// `void` (function returns only).
    Void,
    /// Integer with width and signedness.
    Int {
        /// Width in bytes.
        size: u8,
        /// Signed?
        signed: bool,
    },
    /// `double`.
    Double,
    /// Pointer to a pointee type.
    Ptr(Box<CType>),
    /// Fixed-size array.
    Array(Box<CType>, u64),
    /// Struct by index into the [`TypeTable`].
    Struct(usize),
}

impl CType {
    /// The canonical `int`.
    pub fn int() -> CType {
        CType::Int {
            size: 8,
            signed: true,
        }
    }

    /// The canonical `unsigned`.
    pub fn unsigned() -> CType {
        CType::Int {
            size: 8,
            signed: false,
        }
    }

    /// Whether this is any integer type.
    pub fn is_integer(&self) -> bool {
        matches!(self, CType::Int { .. })
    }

    /// Whether this is a signed integer.
    pub fn is_signed(&self) -> bool {
        matches!(self, CType::Int { signed: true, .. })
    }

    /// Whether this is a pointer (or array, which decays).
    pub fn is_pointer_like(&self) -> bool {
        matches!(self, CType::Ptr(_) | CType::Array(..))
    }

    /// The pointee of a pointer, or element type of an array.
    pub fn pointee(&self) -> Option<&CType> {
        match self {
            CType::Ptr(t) => Some(t),
            CType::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Array-to-pointer decay.
    pub fn decay(&self) -> CType {
        match self {
            CType::Array(t, _) => CType::Ptr(t.clone()),
            other => other.clone(),
        }
    }
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CType::Void => write!(f, "void"),
            CType::Int { size, signed } => {
                write!(f, "{}int{}", if *signed { "" } else { "u" }, size * 8)
            }
            CType::Double => write!(f, "double"),
            CType::Ptr(t) => write!(f, "{t}*"),
            CType::Array(t, n) => write!(f, "{t}[{n}]"),
            CType::Struct(i) => write!(f, "struct#{i}"),
        }
    }
}

/// A struct's layout.
#[derive(Clone, Debug, PartialEq)]
pub struct StructLayout {
    /// Tag name.
    pub name: String,
    /// Fields in order: name, type, byte offset.
    pub fields: Vec<(String, CType, u64)>,
    /// Total size (padded to alignment).
    pub size: u64,
    /// Alignment.
    pub align: u64,
}

/// Registry of struct definitions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TypeTable {
    structs: Vec<StructLayout>,
    by_name: HashMap<String, usize>,
}

/// Type-resolution error.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}

impl std::error::Error for TypeError {}

impl TypeTable {
    /// Empty table.
    pub fn new() -> Self {
        TypeTable::default()
    }

    /// Resolve a syntactic [`TypeName`] (plus optional array suffix).
    ///
    /// # Errors
    /// Fails on references to undefined structs.
    pub fn resolve(&self, t: &TypeName, array: Option<u64>) -> Result<CType, TypeError> {
        let mut ty = match &t.base {
            BaseType::Void => CType::Void,
            BaseType::Int { size, signed } => CType::Int {
                size: *size,
                signed: *signed,
            },
            BaseType::Double => CType::Double,
            BaseType::Struct(name) => {
                let idx = self
                    .by_name
                    .get(name)
                    .ok_or_else(|| TypeError(format!("undefined struct `{name}`")))?;
                CType::Struct(*idx)
            }
        };
        for _ in 0..t.ptrs {
            ty = CType::Ptr(Box::new(ty));
        }
        if let Some(n) = array {
            ty = CType::Array(Box::new(ty), n);
        }
        Ok(ty)
    }

    /// Pre-declare a struct tag (size unknown until
    /// [`TypeTable::define_struct`]), so pointer fields may reference
    /// structs defined later (or themselves).
    pub fn declare_struct(&mut self, name: &str) -> usize {
        if let Some(&i) = self.by_name.get(name) {
            return i;
        }
        let idx = self.structs.len();
        self.structs.push(StructLayout {
            name: name.to_string(),
            fields: Vec::new(),
            size: 0, // 0 marks "declared but not defined"
            align: 1,
        });
        self.by_name.insert(name.to_string(), idx);
        idx
    }

    /// Define a struct; fields are laid out with natural alignment.
    ///
    /// # Errors
    /// Fails on duplicate tags or unsized fields.
    pub fn define_struct(
        &mut self,
        name: &str,
        fields: Vec<(String, CType)>,
    ) -> Result<usize, TypeError> {
        if let Some(&i) = self.by_name.get(name) {
            if self.structs[i].size != 0 || !self.structs[i].fields.is_empty() {
                return Err(TypeError(format!("duplicate struct `{name}`")));
            }
            // Fill in a pre-declared tag.
            let mut laid = Vec::new();
            let mut offset = 0u64;
            let mut align = 1u64;
            for (fname, fty) in fields {
                let fa = self.align_of(&fty)?;
                let fs = self.size_of(&fty)?;
                offset = (offset + fa - 1) & !(fa - 1);
                laid.push((fname, fty, offset));
                offset += fs;
                align = align.max(fa);
            }
            let size = (offset + align - 1) & !(align - 1);
            self.structs[i] = StructLayout {
                name: name.to_string(),
                fields: laid,
                size: size.max(1),
                align,
            };
            return Ok(i);
        }
        let mut laid = Vec::new();
        let mut offset = 0u64;
        let mut align = 1u64;
        for (fname, fty) in fields {
            let fa = self.align_of(&fty)?;
            let fs = self.size_of(&fty)?;
            offset = (offset + fa - 1) & !(fa - 1);
            laid.push((fname, fty, offset));
            offset += fs;
            align = align.max(fa);
        }
        let size = (offset + align - 1) & !(align - 1);
        let idx = self.structs.len();
        self.structs.push(StructLayout {
            name: name.to_string(),
            fields: laid,
            size: size.max(1),
            align,
        });
        self.by_name.insert(name.to_string(), idx);
        Ok(idx)
    }

    /// Size in bytes.
    ///
    /// # Errors
    /// Fails for `void`.
    pub fn size_of(&self, t: &CType) -> Result<u64, TypeError> {
        Ok(match t {
            CType::Void => return Err(TypeError("sizeof(void)".into())),
            CType::Int { size, .. } => u64::from(*size),
            CType::Double | CType::Ptr(_) => 8,
            CType::Array(e, n) => self.size_of(e)? * n,
            CType::Struct(i) => {
                let s = &self.structs[*i];
                if s.size == 0 {
                    return Err(TypeError(format!(
                        "struct `{}` used by value before its definition",
                        s.name
                    )));
                }
                s.size
            }
        })
    }

    /// Alignment in bytes.
    ///
    /// # Errors
    /// Fails for `void`.
    pub fn align_of(&self, t: &CType) -> Result<u64, TypeError> {
        Ok(match t {
            CType::Void => return Err(TypeError("alignof(void)".into())),
            CType::Int { size, .. } => u64::from(*size),
            CType::Double | CType::Ptr(_) => 8,
            CType::Array(e, _) => self.align_of(e)?,
            CType::Struct(i) => self.structs[*i].align,
        })
    }

    /// Look up a field: returns `(offset, type)`.
    ///
    /// # Errors
    /// Fails when `t` is not a struct or lacks the field.
    pub fn field(&self, t: &CType, name: &str) -> Result<(u64, CType), TypeError> {
        let CType::Struct(i) = t else {
            return Err(TypeError(format!("member access on non-struct {t}")));
        };
        let s = &self.structs[*i];
        s.fields
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, ty, off)| (*off, ty.clone()))
            .ok_or_else(|| TypeError(format!("struct `{}` has no field `{name}`", s.name)))
    }

    /// Struct layout by index.
    pub fn layout(&self, i: usize) -> &StructLayout {
        &self.structs[i]
    }

    /// Struct index by tag name.
    pub fn struct_by_name(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_layout_natural_alignment() {
        let mut tt = TypeTable::new();
        let s = tt
            .define_struct(
                "mix",
                vec![
                    (
                        "c".into(),
                        CType::Int {
                            size: 1,
                            signed: true,
                        },
                    ),
                    (
                        "x".into(),
                        CType::Int {
                            size: 8,
                            signed: true,
                        },
                    ),
                    (
                        "w".into(),
                        CType::Int {
                            size: 2,
                            signed: false,
                        },
                    ),
                ],
            )
            .unwrap();
        let l = tt.layout(s);
        assert_eq!(l.fields[0].2, 0);
        assert_eq!(l.fields[1].2, 8, "8-byte field aligns to 8");
        assert_eq!(l.fields[2].2, 16);
        assert_eq!(l.size, 24, "struct padded to 8-byte alignment");
        assert_eq!(l.align, 8);
    }

    #[test]
    fn nested_struct_and_field_lookup() {
        let mut tt = TypeTable::new();
        let inner = tt
            .define_struct(
                "inner",
                vec![("a".into(), CType::int()), ("b".into(), CType::int())],
            )
            .unwrap();
        let outer = tt
            .define_struct(
                "outer",
                vec![
                    (
                        "pre".into(),
                        CType::Int {
                            size: 4,
                            signed: true,
                        },
                    ),
                    ("in".into(), CType::Struct(inner)),
                ],
            )
            .unwrap();
        let (off, ty) = tt.field(&CType::Struct(outer), "in").unwrap();
        assert_eq!(off, 8);
        assert_eq!(ty, CType::Struct(inner));
        assert_eq!(tt.size_of(&CType::Struct(outer)).unwrap(), 24);
        assert!(tt.field(&CType::Struct(outer), "nope").is_err());
    }

    #[test]
    fn array_sizes_and_decay() {
        let tt = TypeTable::new();
        let a = CType::Array(Box::new(CType::Double), 10);
        assert_eq!(tt.size_of(&a).unwrap(), 80);
        assert_eq!(a.decay(), CType::Ptr(Box::new(CType::Double)));
        assert!(a.is_pointer_like());
    }

    #[test]
    fn resolve_pointers_and_structs() {
        let mut tt = TypeTable::new();
        tt.define_struct("s", vec![("x".into(), CType::int())])
            .unwrap();
        let tn = TypeName {
            base: BaseType::Struct("s".into()),
            ptrs: 2,
        };
        let t = tt.resolve(&tn, None).unwrap();
        assert_eq!(
            t,
            CType::Ptr(Box::new(CType::Ptr(Box::new(CType::Struct(0)))))
        );
        assert!(tt
            .resolve(
                &TypeName {
                    base: BaseType::Struct("nope".into()),
                    ptrs: 0
                },
                None
            )
            .is_err());
    }

    #[test]
    fn duplicate_struct_rejected() {
        let mut tt = TypeTable::new();
        tt.define_struct("s", vec![]).unwrap();
        assert!(tt.define_struct("s", vec![]).is_err());
    }
}
