//! MiniC lexer.

use std::fmt;

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    // Keywords.
    /// `int`
    KwInt,
    /// `unsigned`
    KwUnsigned,
    /// `signed`
    KwSigned,
    /// `char`
    KwChar,
    /// `short`
    KwShort,
    /// `long`
    KwLong,
    /// `double`
    KwDouble,
    /// `void`
    KwVoid,
    /// `struct`
    KwStruct,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `do`
    KwDo,
    /// `for`
    KwFor,
    /// `switch`
    KwSwitch,
    /// `case`
    KwCase,
    /// `default`
    KwDefault,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// `return`
    KwReturn,
    /// `goto`
    KwGoto,
    /// `sizeof`
    KwSizeof,
    /// `dynamicRegion` (§2 annotation)
    KwDynamicRegion,
    /// `key` (§2 annotation)
    KwKey,
    /// `unrolled` (§2 annotation)
    KwUnrolled,
    /// `dynamic` (§2 annotation on dereferences)
    KwDynamic,
    // Punctuation / operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `?`
    Question,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `=`
    Eq,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
    /// `*=`
    StarEq,
    /// `/=`
    SlashEq,
    /// `%=`
    PercentEq,
    /// `&=`
    AmpEq,
    /// `|=`
    PipeEq,
    /// `^=`
    CaretEq,
    /// `<<=`
    ShlEq,
    /// `>>=`
    ShrEq,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::Float(v) => write!(f, "float `{v}`"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Lexing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Description.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenize MiniC source.
///
/// # Errors
/// Fails on unterminated comments, malformed numbers or stray characters.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let (mut line, mut col) = (1u32, 1u32);

    macro_rules! err {
        ($($a:tt)*) => { return Err(LexError { msg: format!($($a)*), line, col }) };
    }

    let keyword = |s: &str| -> Option<Tok> {
        Some(match s {
            "int" => Tok::KwInt,
            "unsigned" => Tok::KwUnsigned,
            "signed" => Tok::KwSigned,
            "char" => Tok::KwChar,
            "short" => Tok::KwShort,
            "long" => Tok::KwLong,
            "double" => Tok::KwDouble,
            "float" => Tok::KwDouble, // MiniC floats are doubles
            "void" => Tok::KwVoid,
            "struct" => Tok::KwStruct,
            "if" => Tok::KwIf,
            "else" => Tok::KwElse,
            "while" => Tok::KwWhile,
            "do" => Tok::KwDo,
            "for" => Tok::KwFor,
            "switch" => Tok::KwSwitch,
            "case" => Tok::KwCase,
            "default" => Tok::KwDefault,
            "break" => Tok::KwBreak,
            "continue" => Tok::KwContinue,
            "return" => Tok::KwReturn,
            "goto" => Tok::KwGoto,
            "sizeof" => Tok::KwSizeof,
            "dynamicRegion" => Tok::KwDynamicRegion,
            "key" => Tok::KwKey,
            "unrolled" => Tok::KwUnrolled,
            "dynamic" => Tok::KwDynamic,
            _ => return None,
        })
    };

    while i < bytes.len() {
        let c = bytes[i];
        let (tline, tcol) = (line, col);
        let mut push = |tok: Tok| {
            out.push(Token {
                tok,
                line: tline,
                col: tcol,
            })
        };
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        err!("unterminated block comment");
                    }
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                    col += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                match keyword(&word) {
                    Some(k) => push(k),
                    None => push(Tok::Ident(word)),
                }
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                if c == '0' && bytes.get(i + 1).is_some_and(|&c| c == 'x' || c == 'X') {
                    i += 2;
                    col += 2;
                    let hstart = i;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                        col += 1;
                    }
                    let hex: String = bytes[hstart..i].iter().collect();
                    if hex.is_empty() {
                        err!("malformed hex literal");
                    }
                    let v = u64::from_str_radix(&hex, 16).map_err(|e| LexError {
                        msg: format!("bad hex literal: {e}"),
                        line,
                        col,
                    })?;
                    push(Tok::Int(v as i64));
                    continue;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
                if i < bytes.len()
                    && bytes[i] == '.'
                    && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    col += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                        col += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == 'e' || bytes[i] == 'E') {
                    is_float = true;
                    i += 1;
                    col += 1;
                    if i < bytes.len() && (bytes[i] == '+' || bytes[i] == '-') {
                        i += 1;
                        col += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                        col += 1;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    let v = text.parse::<f64>().map_err(|e| LexError {
                        msg: format!("bad float: {e}"),
                        line,
                        col,
                    })?;
                    push(Tok::Float(v));
                } else {
                    let v = text.parse::<i64>().map_err(|e| LexError {
                        msg: format!("bad integer: {e}"),
                        line,
                        col,
                    })?;
                    push(Tok::Int(v));
                }
            }
            _ => {
                // Multi-char operators, longest first.
                let rest: String = bytes[i..bytes.len().min(i + 3)].iter().collect();
                let table: &[(&str, Tok)] = &[
                    ("<<=", Tok::ShlEq),
                    (">>=", Tok::ShrEq),
                    ("->", Tok::Arrow),
                    ("++", Tok::PlusPlus),
                    ("--", Tok::MinusMinus),
                    ("<<", Tok::Shl),
                    (">>", Tok::Shr),
                    ("<=", Tok::Le),
                    (">=", Tok::Ge),
                    ("==", Tok::EqEq),
                    ("!=", Tok::Ne),
                    ("&&", Tok::AndAnd),
                    ("||", Tok::OrOr),
                    ("+=", Tok::PlusEq),
                    ("-=", Tok::MinusEq),
                    ("*=", Tok::StarEq),
                    ("/=", Tok::SlashEq),
                    ("%=", Tok::PercentEq),
                    ("&=", Tok::AmpEq),
                    ("|=", Tok::PipeEq),
                    ("^=", Tok::CaretEq),
                    ("(", Tok::LParen),
                    (")", Tok::RParen),
                    ("{", Tok::LBrace),
                    ("}", Tok::RBrace),
                    ("[", Tok::LBracket),
                    ("]", Tok::RBracket),
                    (";", Tok::Semi),
                    (",", Tok::Comma),
                    (":", Tok::Colon),
                    ("?", Tok::Question),
                    (".", Tok::Dot),
                    ("+", Tok::Plus),
                    ("-", Tok::Minus),
                    ("*", Tok::Star),
                    ("/", Tok::Slash),
                    ("%", Tok::Percent),
                    ("&", Tok::Amp),
                    ("|", Tok::Pipe),
                    ("^", Tok::Caret),
                    ("~", Tok::Tilde),
                    ("!", Tok::Bang),
                    ("<", Tok::Lt),
                    (">", Tok::Gt),
                    ("=", Tok::Eq),
                ];
                let mut matched = false;
                for (s, t) in table {
                    if rest.starts_with(s) {
                        push(t.clone());
                        i += s.len();
                        col += s.len() as u32;
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    err!("unexpected character `{c}`");
                }
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("int x unrolled dynamicRegion dynamic key"),
            vec![
                Tok::KwInt,
                Tok::Ident("x".into()),
                Tok::KwUnrolled,
                Tok::KwDynamicRegion,
                Tok::KwDynamic,
                Tok::KwKey,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("0 42 0x1F 3.5 1e3 2.5e-2"),
            vec![
                Tok::Int(0),
                Tok::Int(42),
                Tok::Int(31),
                Tok::Float(3.5),
                Tok::Float(1000.0),
                Tok::Float(0.025),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            kinds("a->b <<= >> >= = == != ++x"),
            vec![
                Tok::Ident("a".into()),
                Tok::Arrow,
                Tok::Ident("b".into()),
                Tok::ShlEq,
                Tok::Shr,
                Tok::Ge,
                Tok::Eq,
                Tok::EqEq,
                Tok::Ne,
                Tok::PlusPlus,
                Tok::Ident("x".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n /* block \n comment */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn stray_character_errors() {
        assert!(lex("a @ b").is_err());
    }
}
