//! End-to-end front-end tests: compile MiniC, run in the reference
//! interpreter, check results; verify SSA-converted output.

use crate::{compile, LowerOptions};
use dyncomp_ir::eval::{EvalOutcome, Evaluator};
use dyncomp_ir::{FuncId, Module};

fn build(src: &str) -> Module {
    compile(src, &LowerOptions::default())
        .expect("compiles")
        .module
}

fn build_ssa(src: &str) -> Module {
    let mut m = build(src);
    for f in m.funcs.iter_mut() {
        dyncomp_ir::ssa::construct_ssa(f);
        dyncomp_ir::verify::verify(f).expect("verifies");
    }
    m
}

fn run(m: &Module, func: &str, args: &[u64]) -> u64 {
    let fid = m.func_by_name(func).expect("function exists");
    let mut ev = Evaluator::new(m);
    match ev.call(fid, args).expect("runs") {
        EvalOutcome::Return(v) => v.unwrap_or(0),
    }
}

#[test]
fn factorial_iterative() {
    let m =
        build("int fact(int n) { int r = 1; while (n > 1) { r = r * n; n = n - 1; } return r; }");
    assert_eq!(run(&m, "fact", &[6]), 720);
    assert_eq!(run(&m, "fact", &[1]), 1);
    assert_eq!(run(&m, "fact", &[0]), 1);
}

#[test]
fn factorial_recursive() {
    let m = build("int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }");
    assert_eq!(run(&m, "fact", &[10]), 3628800);
}

#[test]
fn for_loop_and_compound_assign() {
    let m =
        build("int tri(int n) { int s = 0; int i; for (i = 1; i <= n; i++) s += i; return s; }");
    assert_eq!(run(&m, "tri", &[10]), 55);
}

#[test]
fn do_while_runs_at_least_once() {
    let m = build("int f(int n) { int c = 0; do { c++; } while (n-- > 5); return c; }");
    assert_eq!(run(&m, "f", &[0]), 1);
    assert_eq!(run(&m, "f", &[7]), 3);
}

#[test]
fn switch_fallthrough_semantics() {
    let src = r#"
        int classify(int b) {
            int a = 0;
            switch (b) {
                case 1: a = a + 1;
                case 2: a = a + 10; break;
                case 3: a = a + 100; goto out;
                default: a = a + 1000;
            }
            a = a + 10000;
            out: return a;
        }
    "#;
    let m = build(src);
    assert_eq!(run(&m, "classify", &[1]), 10011, "case 1 falls into case 2");
    assert_eq!(run(&m, "classify", &[2]), 10010);
    assert_eq!(run(&m, "classify", &[3]), 100, "goto skips the tail");
    assert_eq!(run(&m, "classify", &[9]), 11000);
}

#[test]
fn goto_loop() {
    let src = r#"
        int f(int n) {
            int s = 0;
            top:
            if (n <= 0) return s;
            s += n;
            n -= 1;
            goto top;
        }
    "#;
    let m = build_ssa(src);
    assert_eq!(run(&m, "f", &[4]), 10);
}

#[test]
fn pointers_and_structs() {
    let src = r#"
        struct Node { int val; struct Node *next; };
        int sum(struct Node *head) {
            int s = 0;
            while (head) { s += head->val; head = head->next; }
            return s;
        }
    "#;
    let m = build_ssa(src);
    let fid = m.func_by_name("sum").unwrap();
    let mut ev = Evaluator::new(&m);
    // Build 3 -> 4 -> 5 in memory.
    let n3 = ev.mem.alloc(16).unwrap();
    let n4 = ev.mem.alloc(16).unwrap();
    let n5 = ev.mem.alloc(16).unwrap();
    ev.mem.write_u64(n3, 3).unwrap();
    ev.mem.write_u64(n3 + 8, n4).unwrap();
    ev.mem.write_u64(n4, 4).unwrap();
    ev.mem.write_u64(n4 + 8, n5).unwrap();
    ev.mem.write_u64(n5, 5).unwrap();
    ev.mem.write_u64(n5 + 8, 0).unwrap();
    assert_eq!(ev.call(fid, &[n3]).unwrap(), EvalOutcome::Return(Some(12)));
}

#[test]
fn global_arrays_and_indexing() {
    let src = r#"
        int tbl[5] = {2, 3, 5, 7, 11};
        int nth(int i) { return tbl[i]; }
        int total() {
            int s = 0;
            int i;
            for (i = 0; i < 5; i++) s += tbl[i];
            return s;
        }
    "#;
    let m = build_ssa(src);
    assert_eq!(run(&m, "nth", &[3]), 7);
    assert_eq!(run(&m, "total", &[]), 28);
}

#[test]
fn local_array_is_frame_allocated() {
    let src = r#"
        int f(int n) {
            int buf[8];
            int i;
            for (i = 0; i < 8; i++) buf[i] = i * n;
            return buf[3] + buf[7];
        }
    "#;
    let m = build_ssa(src);
    assert_eq!(run(&m, "f", &[2]), 6 + 14);
}

#[test]
fn address_of_local() {
    let src = r#"
        void bump(int *p) { *p = *p + 1; }
        int f(int x) { int v = x; bump(&v); bump(&v); return v; }
    "#;
    let m = build_ssa(src);
    assert_eq!(run(&m, "f", &[5]), 7);
}

#[test]
fn short_circuit_does_not_evaluate_rhs() {
    let src = r#"
        int hits = 0;
        int touch() { hits = hits + 1; return 1; }
        int f(int a) {
            int r = a && touch();
            return hits * 10 + r;
        }
        int g(int a) {
            int r = a || touch();
            return hits * 10 + r;
        }
    "#;
    let m = build_ssa(src);
    assert_eq!(run(&m, "f", &[0]), 0, "&& short-circuits");
    assert_eq!(
        run(&m, "f", &[3]),
        11,
        "&& evaluates rhs and normalizes to 1"
    );
    assert_eq!(run(&m, "g", &[5]), 1, "|| short-circuits");
    assert_eq!(run(&m, "g", &[0]), 11);
}

#[test]
fn ternary_and_unary_ops() {
    let m = build_ssa("int f(int a, int b) { return (a > b ? a : b) + !a + ~0 + -b; }");
    // a=3,b=5: max=5, !3=0, ~0=-1, -5 => 5+0-1-5 = -1
    assert_eq!(run(&m, "f", &[3, 5]) as i64, -1);
}

#[test]
fn unsigned_semantics() {
    let src = r#"
        unsigned du(unsigned a, unsigned b) { return a / b; }
        int lt(unsigned a, unsigned b) { return a < b; }
        unsigned sh(unsigned a) { return a >> 1; }
    "#;
    let m = build_ssa(src);
    assert_eq!(run(&m, "du", &[u64::MAX, 2]), u64::MAX / 2);
    assert_eq!(run(&m, "lt", &[u64::MAX, 1]), 0, "unsigned compare");
    assert_eq!(run(&m, "sh", &[u64::MAX]), u64::MAX >> 1, "logical shift");
}

#[test]
fn signed_semantics() {
    let src = "int ds(int a, int b) { return a / b; } int sh(int a) { return a >> 1; }";
    let m = build_ssa(src);
    assert_eq!(run(&m, "ds", &[(-7i64) as u64, 2]) as i64, -3);
    assert_eq!(
        run(&m, "sh", &[(-8i64) as u64]) as i64,
        -4,
        "arithmetic shift"
    );
}

#[test]
fn doubles_and_conversions() {
    let src = r#"
        double scale(double x, int k) { return x * k + 0.5; }
        int trunc_it(double x) { return (int) x; }
        double mean(double a, double b) { return (a + b) / 2.0; }
    "#;
    let m = build_ssa(src);
    let out = run(&m, "scale", &[2.5f64.to_bits(), 4]);
    assert_eq!(f64::from_bits(out), 10.5);
    assert_eq!(run(&m, "trunc_it", &[9.75f64.to_bits()]), 9);
    let out = run(&m, "mean", &[1.0f64.to_bits(), 2.0f64.to_bits()]);
    assert_eq!(f64::from_bits(out), 1.5);
}

#[test]
fn narrow_types_truncate() {
    let src = r#"
        struct B { char c; short s; };
        int f() {
            struct B b;
            b.c = 300;       // truncates to 44
            b.s = 70000;     // truncates to 4464
            return b.c * 100000 + b.s;
        }
        int g(char c) { c = c + 1; return c; }
    "#;
    let m = build_ssa(src);
    assert_eq!(run(&m, "f", &[]), 44 * 100000 + 4464);
    assert_eq!(run(&m, "g", &[127]) as i64, -128, "char wraps at 127");
}

#[test]
fn pointer_arithmetic_scales() {
    let src = r#"
        int second(int *p) { return *(p + 1); }
        int diff(int *a, int *b) { return b - a; }
    "#;
    let m = build_ssa(src);
    let fid = m.func_by_name("second").unwrap();
    let mut ev = Evaluator::new(&m);
    let arr = ev.mem.alloc(24).unwrap();
    ev.mem.write_u64(arr, 10).unwrap();
    ev.mem.write_u64(arr + 8, 20).unwrap();
    assert_eq!(ev.call(fid, &[arr]).unwrap(), EvalOutcome::Return(Some(20)));
    let fid2 = m.func_by_name("diff").unwrap();
    assert_eq!(
        ev.call(fid2, &[arr, arr + 24]).unwrap(),
        EvalOutcome::Return(Some(3))
    );
}

#[test]
fn intrinsics() {
    let src = r#"
        int f(int a, int b) { return max(a, b) * 100 + min(a, b) + abs(0 - a); }
        double r(double x) { return sqrt(x); }
        int use_alloc(int n) {
            int *p = (int*) alloc(n * 8);
            p[0] = 42; p[1] = 58;
            return p[0] + p[1];
        }
    "#;
    let m = build_ssa(src);
    assert_eq!(run(&m, "f", &[3, 9]), 906);
    assert_eq!(f64::from_bits(run(&m, "r", &[16.0f64.to_bits()])), 4.0);
    assert_eq!(run(&m, "use_alloc", &[4]), 100);
}

#[test]
fn region_metadata_recorded() {
    let src = r#"
        int f(int k, int x) {
            int pre = x + 1;
            dynamicRegion key(k) (k) {
                int set;
                int acc = 0;
                unrolled for (set = 0; set < k; set++) { acc += x; }
                return acc + pre;
            }
        }
    "#;
    let lowered = compile(src, &LowerOptions::default()).unwrap();
    let f = &lowered.module.funcs[FuncId(0)];
    assert_eq!(f.regions.len(), 1);
    let r = &f.regions[dyncomp_ir::RegionId(0)];
    assert_eq!(r.const_roots.len(), 1);
    assert_eq!(r.key_roots, r.const_roots);
    assert!(r.blocks.len() >= 4, "region covers loop blocks");
    assert!(r.blocks.contains(r.entry));
    // Exactly one unrolled header, inside the region.
    let headers: Vec<_> = f
        .iter_blocks()
        .filter(|(_, b)| b.unrolled_header)
        .map(|(id, _)| id)
        .collect();
    assert_eq!(headers.len(), 1);
    assert!(r.blocks.contains(headers[0]));
}

#[test]
fn static_mode_ignores_annotations() {
    let src = r#"
        int f(int k, int x) {
            int v = x;
            dynamicRegion (k) {
                int i; int acc = 0;
                unrolled for (i = 0; i < k; i++) acc += dynamic* (&v);
                return acc;
            }
        }
    "#;
    let lowered = compile(
        src,
        &LowerOptions {
            honor_annotations: false,
            tiered_fallback: false,
        },
    )
    .unwrap();
    let f = &lowered.module.funcs[FuncId(0)];
    assert!(f.regions.is_empty());
    assert!(f.iter_blocks().all(|(_, b)| !b.unrolled_header));
    // And it still computes the right thing.
    assert_eq!(run(&lowered.module, "f", &[3, 7]), 21);
}

#[test]
fn dynamic_region_runs_in_reference_interpreter() {
    // Regions without specialization are just code; the evaluator executes
    // them transparently.
    let src = r#"
        int f(int k, int x) {
            dynamicRegion (k) {
                return k * x + k;
            }
        }
    "#;
    let m = build_ssa(src);
    assert_eq!(run(&m, "f", &[3, 10]), 33);
}

#[test]
fn annotation_errors() {
    let e = compile(
        "int f(int x) { dynamicRegion (nope) { return x; } }",
        &LowerOptions::default(),
    );
    assert!(e.is_err(), "unknown annotated variable");

    let e = compile(
        "int f() { int a[4]; dynamicRegion (a) { return a[0]; } }",
        &LowerOptions::default(),
    );
    assert!(e.is_err(), "frame-allocated annotated variable");

    let e = compile(
        "int f(int k) { dynamicRegion (k) { dynamicRegion (k) { return k; } } }",
        &LowerOptions::default(),
    );
    assert!(e.is_err(), "nested regions rejected");

    let e = compile(
        "int f(int k) { unrolled for (;;) {} return 0; }",
        &LowerOptions::default(),
    );
    assert!(e.is_err(), "unrolled outside region / without condition");

    let e = compile(
        "int f(int k) { if (k) goto in; dynamicRegion (k) { in: return 1; } return 0; }",
        &LowerOptions::default(),
    );
    assert!(e.is_err(), "goto into a region rejected");
}

#[test]
fn semantic_errors() {
    for (src, what) in [
        ("int f() { return g(); }", "undefined function"),
        ("int f(int x) { return *x; }", "deref of non-pointer"),
        ("int f() { return y; }", "unknown identifier"),
        ("int f() { break; }", "break outside loop"),
        ("int f() { goto nowhere; }", "undefined label"),
        (
            "struct S { int a; }; int f(struct S s) { return s.a; }",
            "struct by value",
        ),
        ("int f(int a) { return max(a); }", "intrinsic arity"),
        ("int f(int a, int b) { return f(a); }", "call arity"),
    ] {
        assert!(
            compile(src, &LowerOptions::default()).is_err(),
            "expected error for: {what}"
        );
    }
}

#[test]
fn call_error_paths_are_typed() {
    use crate::lower::LowerError;
    use crate::FrontendError;

    // Undefined callee: a typed error naming both ends of the edge.
    let e = compile("int f() { return g(7); }", &LowerOptions::default()).unwrap_err();
    match e {
        FrontendError::Lower(LowerError::UndefinedFunction { func, name }) => {
            assert_eq!(func, "f");
            assert_eq!(name, "g");
        }
        other => panic!("expected UndefinedFunction, got {other:?}"),
    }
    // Display keeps the historical message shape.
    let e = compile("int f() { return g(7); }", &LowerOptions::default()).unwrap_err();
    assert!(
        e.to_string().contains("call to undefined function `g`"),
        "{e}"
    );

    // Arity mismatch (forward reference, so the signature comes from the
    // pre-pass that `retype_calls()` later relies on).
    let e = compile(
        "int f(int a) { return h(a, a, a); } int h(int x, int y) { return x + y; }",
        &LowerOptions::default(),
    )
    .unwrap_err();
    match e {
        FrontendError::Lower(LowerError::ArityMismatch {
            func,
            name,
            expected,
            got,
        }) => {
            assert_eq!((func.as_str(), name.as_str()), ("f", "h"));
            assert_eq!((expected, got), (2, 3));
        }
        other => panic!("expected ArityMismatch, got {other:?}"),
    }
}

#[test]
fn retype_calls_is_consistent_after_lowering() {
    // Forward references force the lowerer to retype calls after all
    // functions exist; `verify_module` checks exactly that consistency.
    let src = r#"
        double f(int n) { return half(n) + 1.0; }
        double half(int d) { return d / 2.0; }
        int g() { return count(3); }
        int count(int n) { return n; }
    "#;
    let lowered = compile(src, &LowerOptions::default()).unwrap();
    dyncomp_ir::verify::verify_module(&lowered.module).unwrap();
    // A deliberately staled call type must be rejected.
    let mut m = lowered.module;
    let fid = m.func_by_name("f").unwrap();
    let f = &mut m.funcs[fid];
    for i in f.insts.ids().collect::<Vec<_>>() {
        if matches!(f.kind(i), dyncomp_ir::InstKind::Call { .. }) {
            f.insts[i].ty = dyncomp_ir::Ty::Int; // stale: callee returns Float
        }
    }
    assert!(dyncomp_ir::verify::verify_module(&m).is_err());
}

#[test]
fn all_lowered_functions_pass_ssa_verification() {
    // A grab-bag program exercising most constructs at once.
    let src = r#"
        struct P { int x; int y; double w; };
        int g1 = 7;
        double half(double d) { return d / 2.0; }
        int busy(struct P *p, int n) {
            int acc = 0;
            int i;
            for (i = 0; i < n; i++) {
                switch (i % 3) {
                    case 0: acc += p->x; break;
                    case 1: acc += p->y;
                    default: acc += g1;
                }
                if (acc > 100 && i < n - 1) continue;
                acc ^= i << 2;
            }
            return acc + (int) half((double) acc);
        }
    "#;
    let _ = build_ssa(src);
}

#[test]
fn cache_lookup_example_compiles_and_runs() {
    // §2's running example, end to end in the reference interpreter
    // (unspecialized semantics).
    let src = r#"
        struct setStructure { unsigned tag; };
        struct cacheLine { struct setStructure **sets; };
        struct Cache {
            unsigned blockSize;
            unsigned numLines;
            struct cacheLine **lines;
            int associativity;
        };
        int cacheLookup(unsigned addr, struct Cache *cache) {
            dynamicRegion (cache) {
                unsigned blockSize = cache->blockSize;
                unsigned numLines = cache->numLines;
                unsigned tag = addr / (blockSize * numLines);
                unsigned line = (addr / blockSize) % numLines;
                struct setStructure **setArray = cache->lines[line]->sets;
                int assoc = cache->associativity;
                int set;
                unrolled for (set = 0; set < assoc; set++) {
                    if (setArray[set] dynamic-> tag == tag)
                        return 1;
                }
                return 0;
            }
        }
    "#;
    let m = build_ssa(src);
    let fid = m.func_by_name("cacheLookup").unwrap();
    let mut ev = Evaluator::new(&m);

    // Cache: 4 lines, 16-byte blocks, 2-way.
    let (num_lines, block_size, assoc) = (4u64, 16u64, 2u64);
    let mut set_ptrs = Vec::new();
    for _ in 0..num_lines {
        let mut sets = Vec::new();
        for _ in 0..assoc {
            let s = ev.mem.alloc(8).unwrap();
            ev.mem.write_u64(s, u64::MAX).unwrap(); // empty tag
            sets.push(s);
        }
        let sets_arr = ev.mem.alloc(8 * assoc).unwrap();
        for (i, s) in sets.iter().enumerate() {
            ev.mem.write_u64(sets_arr + 8 * i as u64, *s).unwrap();
        }
        let linerec = ev.mem.alloc(8).unwrap();
        ev.mem.write_u64(linerec, sets_arr).unwrap();
        set_ptrs.push((linerec, sets));
    }
    let lines_arr = ev.mem.alloc(8 * num_lines).unwrap();
    for (i, (l, _)) in set_ptrs.iter().enumerate() {
        ev.mem.write_u64(lines_arr + 8 * i as u64, *l).unwrap();
    }
    let cache = ev.mem.alloc(32).unwrap();
    ev.mem.write_u64(cache, block_size).unwrap();
    ev.mem.write_u64(cache + 8, num_lines).unwrap();
    ev.mem.write_u64(cache + 16, lines_arr).unwrap();
    ev.mem.write_u64(cache + 24, assoc).unwrap();

    let addr = 0x1234u64;
    // Miss first.
    assert_eq!(
        ev.call(fid, &[addr, cache]).unwrap(),
        EvalOutcome::Return(Some(0))
    );
    // Install the tag in the right line's set 1, then hit.
    let tag = addr / (block_size * num_lines);
    let line = (addr / block_size) % num_lines;
    let set1 = set_ptrs[line as usize].1[1];
    ev.mem.write_u64(set1, tag).unwrap();
    assert_eq!(
        ev.call(fid, &[addr, cache]).unwrap(),
        EvalOutcome::Return(Some(1))
    );
}

#[test]
fn do_while_and_continue_inside_region() {
    let src = r#"
        int f(int k, int n) {
            int total = 0;
            dynamicRegion (k) {
                int i = 0;
                do {
                    i++;
                    if (i % 2 == 0) continue;
                    total += k;
                } while (i < n);
            }
            return total;
        }
    "#;
    let m = build_ssa(src);
    // n=5: odd i in 1..=5 -> 3 times k
    assert_eq!(run(&m, "f", &[7, 5]), 21);
    assert_eq!(run(&m, "f", &[7, 0]), 7, "do-while body runs once");
}

#[test]
fn pointer_to_pointer_and_mixed_chains() {
    let src = r#"
        struct Inner { int v; };
        struct Outer { struct Inner *in; struct Outer *next; };
        int chase(struct Outer **start) {
            struct Outer *p = *start;
            int s = 0;
            while (p) {
                s += p->in->v;
                p = p->next;
            }
            return s;
        }
    "#;
    let m = build_ssa(src);
    let fid = m.func_by_name("chase").unwrap();
    let mut ev = Evaluator::new(&m);
    let i1 = ev.mem.alloc(8).unwrap();
    ev.mem.write_u64(i1, 5).unwrap();
    let i2 = ev.mem.alloc(8).unwrap();
    ev.mem.write_u64(i2, 9).unwrap();
    let o2 = ev.mem.alloc(16).unwrap();
    ev.mem.write_u64(o2, i2).unwrap();
    ev.mem.write_u64(o2 + 8, 0).unwrap();
    let o1 = ev.mem.alloc(16).unwrap();
    ev.mem.write_u64(o1, i1).unwrap();
    ev.mem.write_u64(o1 + 8, o2).unwrap();
    let cell = ev.mem.alloc(8).unwrap();
    ev.mem.write_u64(cell, o1).unwrap();
    assert_eq!(
        ev.call(fid, &[cell]).unwrap(),
        EvalOutcome::Return(Some(14))
    );
}

#[test]
fn struct_with_inline_array_field() {
    let src = r#"
        struct Buf { int len; int data[4]; };
        int f(int a, int b) {
            struct Buf buf;
            buf.len = 2;
            buf.data[0] = a;
            buf.data[1] = b;
            int s = 0;
            int i;
            for (i = 0; i < buf.len; i++) s += buf.data[i];
            return s;
        }
    "#;
    let m = build_ssa(src);
    assert_eq!(run(&m, "f", &[30, 12]), 42);
}

#[test]
fn nested_struct_member_chain() {
    let src = r#"
        struct P { int x; int y; };
        struct R { struct P lo; struct P hi; };
        int area(int x0, int y0, int x1, int y1) {
            struct R r;
            r.lo.x = x0; r.lo.y = y0;
            r.hi.x = x1; r.hi.y = y1;
            return (r.hi.x - r.lo.x) * (r.hi.y - r.lo.y);
        }
    "#;
    let m = build_ssa(src);
    assert_eq!(run(&m, "area", &[1, 2, 5, 7]), 20);
}

#[test]
fn compound_assignment_on_memory_lvalues() {
    let src = r#"
        struct C { int n; };
        int f(struct C *c, int *arr) {
            c->n += 5;
            arr[1] *= 3;
            arr[c->n % 2] -= 1;
            return c->n + arr[0] + arr[1];
        }
    "#;
    let m = build_ssa(src);
    let fid = m.func_by_name("f").unwrap();
    let mut ev = Evaluator::new(&m);
    let c = ev.mem.alloc(8).unwrap();
    ev.mem.write_u64(c, 2).unwrap();
    let arr = ev.mem.alloc(16).unwrap();
    ev.mem.write_u64(arr, 10).unwrap();
    ev.mem.write_u64(arr + 8, 4).unwrap();
    // c->n = 7; arr[1] = 12; arr[7%2=1] = 11; total = 7 + 10 + 11
    assert_eq!(
        ev.call(fid, &[c, arr]).unwrap(),
        EvalOutcome::Return(Some(28))
    );
}

#[test]
fn hex_literals_and_bit_tricks() {
    let src = r#"
        unsigned popcount8(unsigned v) {
            v = v - ((v >> 1) & 0x55);
            v = (v & 0x33) + ((v >> 2) & 0x33);
            return (v + (v >> 4)) & 0x0F;
        }
    "#;
    let m = build_ssa(src);
    for v in 0..=255u64 {
        assert_eq!(run(&m, "popcount8", &[v]), v.count_ones() as u64, "v={v}");
    }
}

#[test]
fn deeply_nested_switch_in_switch() {
    let src = r#"
        int f(int a, int b) {
            switch (a) {
                case 0:
                    switch (b) {
                        case 0: return 1;
                        default: return 2;
                    }
                case 1: return 3;
                default:
                    switch (b) {
                        case 5: return 4;
                    }
                    return 5;
            }
        }
    "#;
    let m = build_ssa(src);
    assert_eq!(run(&m, "f", &[0, 0]), 1);
    assert_eq!(run(&m, "f", &[0, 9]), 2);
    assert_eq!(run(&m, "f", &[1, 0]), 3);
    assert_eq!(run(&m, "f", &[7, 5]), 4);
    assert_eq!(run(&m, "f", &[7, 6]), 5);
}

#[test]
fn multiple_regions_lower_with_distinct_metadata() {
    let src = r#"
        int f(int a, int b, int x) {
            int r1 = 0;
            int r2 = 0;
            dynamicRegion (a) { r1 = a * x; }
            dynamicRegion key(b) (b) { r2 = b + x; }
            return r1 + r2;
        }
    "#;
    let lowered = compile(src, &LowerOptions::default()).unwrap();
    let f = &lowered.module.funcs[FuncId(0)];
    assert_eq!(f.regions.len(), 2);
    let r0 = &f.regions[dyncomp_ir::RegionId(0)];
    let r1 = &f.regions[dyncomp_ir::RegionId(1)];
    assert!(r0.key_roots.is_empty());
    assert_eq!(r1.key_roots.len(), 1);
    // Region block sets are disjoint.
    for b in r0.blocks.iter() {
        assert!(!r1.blocks.contains(b), "{b} in both regions");
    }
    assert_eq!(run(&lowered.module, "f", &[3, 4, 10]), 30 + 14);
}

#[test]
fn parse_errors_carry_accurate_positions() {
    use crate::FrontendError;
    let src = "int f(int x) {\n    return x +;\n}";
    match compile(src, &LowerOptions::default()) {
        Err(FrontendError::Parse(e)) => {
            assert_eq!(e.line, 2, "{e}");
            assert!(e.col >= 14, "{e}");
        }
        other => panic!("expected parse error, got {other:?}"),
    }

    let src = "int f() {\n  int x = 1;\n  @\n}";
    let e = compile(src, &LowerOptions::default()).unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("3:"), "lex error names line 3: {msg}");
}

#[test]
fn error_messages_name_the_problem() {
    let cases = [
        ("int f() { return g(); }", "g"),
        ("int f() { return y; }", "y"),
        ("int f() { goto nowhere; return 0; }", "nowhere"),
        (
            "int f(int x) { dynamicRegion (nope) { return x; } }",
            "nope",
        ),
    ];
    for (src, needle) in cases {
        let msg = compile(src, &LowerOptions::default())
            .unwrap_err()
            .to_string();
        assert!(
            msg.contains(needle),
            "message {msg:?} should mention {needle:?}"
        );
    }
}
