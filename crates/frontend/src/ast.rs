//! MiniC abstract syntax.

/// A named base type plus pointer depth (arrays live in declarators).
#[derive(Clone, Debug, PartialEq)]
pub struct TypeName {
    /// The base type.
    pub base: BaseType,
    /// Number of `*`s.
    pub ptrs: u8,
}

impl TypeName {
    /// A plain (non-pointer) base type.
    pub fn plain(base: BaseType) -> Self {
        TypeName { base, ptrs: 0 }
    }
}

/// Base types.
#[derive(Clone, Debug, PartialEq)]
pub enum BaseType {
    /// `void`
    Void,
    /// Integer with byte width and signedness (`int` = 8 bytes signed in
    /// MiniC's ILP64-style model).
    Int {
        /// Width in bytes (1, 2, 4 or 8).
        size: u8,
        /// Signed?
        signed: bool,
    },
    /// `double`
    Double,
    /// `struct <name>`
    Struct(String),
}

/// Binary operators at the source level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinAop {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnAop {
    /// `-`
    Neg,
    /// `~`
    BitNot,
    /// `!`
    LogNot,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Variable reference.
    Ident(String),
    /// Unary operation.
    Un(UnAop, Box<Expr>),
    /// `*e` — pointer dereference; `dynamic` per the §2 annotation.
    Deref {
        /// Pointer expression.
        expr: Box<Expr>,
        /// `dynamic*` annotation.
        dynamic: bool,
    },
    /// `&e` — address of an lvalue.
    AddrOf(Box<Expr>),
    /// Binary operation (including short-circuit `&&`/`||`).
    Bin(BinAop, Box<Expr>, Box<Expr>),
    /// `lhs = rhs` or compound `lhs op= rhs`.
    Assign {
        /// Compound operator, if any.
        op: Option<BinAop>,
        /// Assignment target (an lvalue).
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
    },
    /// Function or intrinsic call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `base[index]`; `dynamic` per §2 (`a dynamic[i]`).
    Index {
        /// Array/pointer expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// `dynamic[...]` annotation.
        dynamic: bool,
    },
    /// `base.field` or `base->field`; `dynamic` per §2 (`p dynamic-> f`).
    Member {
        /// Struct or pointer-to-struct expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// `->` (true) vs `.` (false).
        arrow: bool,
        /// `dynamic->` annotation.
        dynamic: bool,
    },
    /// `(type) expr`.
    Cast(TypeName, Box<Expr>),
    /// `sizeof(type)`.
    SizeOf(TypeName),
    /// `c ? t : e`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `e++` / `e--` (value is the pre-increment value).
    PostIncDec {
        /// Target lvalue.
        lhs: Box<Expr>,
        /// `++` (true) or `--` (false).
        inc: bool,
    },
    /// `++e` / `--e` (value is the post-increment value).
    PreIncDec {
        /// Target lvalue.
        lhs: Box<Expr>,
        /// `++` (true) or `--` (false).
        inc: bool,
    },
}

/// One item in a `switch` body (flat, preserving fall-through).
#[derive(Clone, Debug, PartialEq)]
pub enum SwitchItem {
    /// `case N:` — `None` is `default:`.
    Label(Option<i64>),
    /// A statement.
    Stmt(Stmt),
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// Local declaration.
    Decl {
        /// Declared type.
        ty: TypeName,
        /// Name.
        name: String,
        /// Array length, if an array declarator.
        array: Option<u64>,
        /// Initializer.
        init: Option<Expr>,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if`/`else`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while`.
    While(Expr, Box<Stmt>),
    /// `do … while`.
    DoWhile(Box<Stmt>, Expr),
    /// `for`, possibly annotated `unrolled` (§2).
    For {
        /// Initializer statement.
        init: Option<Box<Stmt>>,
        /// Loop condition (required when `unrolled`).
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Box<Stmt>,
        /// `unrolled for` annotation.
        unrolled: bool,
    },
    /// `switch` with flat body (fall-through preserved).
    Switch(Expr, Vec<SwitchItem>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `return`.
    Return(Option<Expr>),
    /// `goto label`.
    Goto(String),
    /// `label: stmt`.
    Label(String, Box<Stmt>),
    /// `dynamicRegion key(kvars) (cvars) { … }` (§2). The key variables
    /// are implicitly constants as well.
    DynamicRegion {
        /// Annotated run-time constant variables.
        consts: Vec<String>,
        /// Cache-key variables.
        keys: Vec<String>,
        /// Region body.
        body: Box<Stmt>,
    },
}

/// A top-level declaration.
#[derive(Clone, Debug, PartialEq)]
pub enum Top {
    /// `struct S { ... };`
    Struct {
        /// Struct tag.
        name: String,
        /// Fields: type, name, optional array length.
        fields: Vec<(TypeName, String, Option<u64>)>,
    },
    /// Global variable.
    Global {
        /// Declared type.
        ty: TypeName,
        /// Name.
        name: String,
        /// Array length, if any.
        array: Option<u64>,
        /// Scalar or array initializer values.
        init: Vec<Expr>,
    },
    /// Function definition.
    Func {
        /// Return type.
        ret: TypeName,
        /// Name.
        name: String,
        /// Parameters.
        params: Vec<(TypeName, String)>,
        /// Body (a block).
        body: Stmt,
    },
}

/// A parsed translation unit.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Program {
    /// Top-level items in source order.
    pub tops: Vec<Top>,
}
