//! MiniC recursive-descent parser.

use crate::ast::*;
use crate::lexer::{lex, LexError, Tok, Token};
use std::fmt;

/// Parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            msg: e.msg,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parse a MiniC translation unit.
///
/// # Errors
/// Returns the first syntax error with its position.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        self.toks
            .get(self.pos + 1)
            .map(|t| &t.tok)
            .unwrap_or(&Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        let t = &self.toks[self.pos];
        Err(ParseError {
            msg: msg.into(),
            line: t.line,
            col: t.col,
        })
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {tok}, found {}", self.peek()))
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    // ---- types ----

    fn at_type_start(&self) -> bool {
        matches!(
            self.peek(),
            Tok::KwInt
                | Tok::KwUnsigned
                | Tok::KwSigned
                | Tok::KwChar
                | Tok::KwShort
                | Tok::KwLong
                | Tok::KwDouble
                | Tok::KwVoid
                | Tok::KwStruct
        )
    }

    fn base_type(&mut self) -> Result<BaseType, ParseError> {
        let mut signed = true;
        let mut saw_sign = false;
        loop {
            match self.peek() {
                Tok::KwUnsigned => {
                    signed = false;
                    saw_sign = true;
                    self.bump();
                }
                Tok::KwSigned => {
                    signed = true;
                    saw_sign = true;
                    self.bump();
                }
                _ => break,
            }
        }
        let b = match self.peek().clone() {
            Tok::KwChar => {
                self.bump();
                BaseType::Int { size: 1, signed }
            }
            Tok::KwShort => {
                self.bump();
                self.eat(&Tok::KwInt);
                BaseType::Int { size: 2, signed }
            }
            Tok::KwLong => {
                self.bump();
                self.eat(&Tok::KwLong);
                self.eat(&Tok::KwInt);
                BaseType::Int { size: 8, signed }
            }
            Tok::KwInt => {
                self.bump();
                BaseType::Int { size: 8, signed }
            }
            Tok::KwDouble => {
                self.bump();
                BaseType::Double
            }
            Tok::KwVoid => {
                self.bump();
                BaseType::Void
            }
            Tok::KwStruct => {
                self.bump();
                BaseType::Struct(self.ident()?)
            }
            _ if saw_sign => BaseType::Int { size: 8, signed },
            other => return self.err(format!("expected type, found {other}")),
        };
        Ok(b)
    }

    fn type_name(&mut self) -> Result<TypeName, ParseError> {
        let base = self.base_type()?;
        let mut ptrs = 0u8;
        while self.eat(&Tok::Star) {
            ptrs += 1;
        }
        Ok(TypeName { base, ptrs })
    }

    // ---- top level ----

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut tops = Vec::new();
        while *self.peek() != Tok::Eof {
            tops.push(self.top()?);
        }
        Ok(Program { tops })
    }

    fn top(&mut self) -> Result<Top, ParseError> {
        // struct definition?
        if *self.peek() == Tok::KwStruct {
            if let Tok::Ident(_) = self.peek2() {
                // Lookahead for '{' after the tag => definition.
                if self.toks.get(self.pos + 2).map(|t| &t.tok) == Some(&Tok::LBrace) {
                    return self.struct_def();
                }
            }
        }
        let ty = self.type_name()?;
        let name = self.ident()?;
        if *self.peek() == Tok::LParen {
            self.func_def(ty, name)
        } else {
            self.global_decl(ty, name)
        }
    }

    fn struct_def(&mut self) -> Result<Top, ParseError> {
        self.expect(Tok::KwStruct)?;
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&Tok::RBrace) {
            let base = self.base_type()?;
            loop {
                let mut ptrs = 0u8;
                while self.eat(&Tok::Star) {
                    ptrs += 1;
                }
                let fname = self.ident()?;
                let array = if self.eat(&Tok::LBracket) {
                    let n = self.int_lit()?;
                    self.expect(Tok::RBracket)?;
                    Some(n as u64)
                } else {
                    None
                };
                fields.push((
                    TypeName {
                        base: base.clone(),
                        ptrs,
                    },
                    fname,
                    array,
                ));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::Semi)?;
        }
        self.expect(Tok::Semi)?;
        Ok(Top::Struct { name, fields })
    }

    fn int_lit(&mut self) -> Result<i64, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(v)
            }
            other => self.err(format!("expected integer literal, found {other}")),
        }
    }

    fn global_decl(&mut self, ty: TypeName, name: String) -> Result<Top, ParseError> {
        let array = if self.eat(&Tok::LBracket) {
            let n = self.int_lit()?;
            self.expect(Tok::RBracket)?;
            Some(n as u64)
        } else {
            None
        };
        let mut init = Vec::new();
        if self.eat(&Tok::Eq) {
            if self.eat(&Tok::LBrace) {
                while !self.eat(&Tok::RBrace) {
                    init.push(self.assignment()?);
                    if !self.eat(&Tok::Comma) {
                        self.expect(Tok::RBrace)?;
                        break;
                    }
                }
            } else {
                init.push(self.assignment()?);
            }
        }
        self.expect(Tok::Semi)?;
        Ok(Top::Global {
            ty,
            name,
            array,
            init,
        })
    }

    fn func_def(&mut self, ret: TypeName, name: String) -> Result<Top, ParseError> {
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            if *self.peek() == Tok::KwVoid && *self.peek2() == Tok::RParen {
                self.bump();
                self.expect(Tok::RParen)?;
            } else {
                loop {
                    let pt = self.type_name()?;
                    let pn = self.ident()?;
                    params.push((pt, pn));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RParen)?;
            }
        }
        let body = self.block()?;
        Ok(Top::Func {
            ret,
            name,
            params,
            body,
        })
    }

    // ---- statements ----

    fn block(&mut self) -> Result<Stmt, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(Stmt::Block(stmts))
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::LBrace => self.block(),
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen)?;
                let c = self.expr()?;
                self.expect(Tok::RParen)?;
                let t = Box::new(self.stmt()?);
                let e = if self.eat(&Tok::KwElse) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If(c, t, e))
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(Tok::LParen)?;
                let c = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(Stmt::While(c, Box::new(self.stmt()?)))
            }
            Tok::KwDo => {
                self.bump();
                let body = Box::new(self.stmt()?);
                self.expect(Tok::KwWhile)?;
                self.expect(Tok::LParen)?;
                let c = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::DoWhile(body, c))
            }
            Tok::KwUnrolled => {
                self.bump();
                if *self.peek() != Tok::KwFor {
                    return self.err("`unrolled` must be followed by `for`");
                }
                self.for_stmt(true)
            }
            Tok::KwFor => self.for_stmt(false),
            Tok::KwSwitch => {
                self.bump();
                self.expect(Tok::LParen)?;
                let scrut = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::LBrace)?;
                let mut items = Vec::new();
                while !self.eat(&Tok::RBrace) {
                    match self.peek().clone() {
                        Tok::KwCase => {
                            self.bump();
                            let neg = self.eat(&Tok::Minus);
                            let mut v = self.int_lit()?;
                            if neg {
                                v = -v;
                            }
                            self.expect(Tok::Colon)?;
                            items.push(SwitchItem::Label(Some(v)));
                        }
                        Tok::KwDefault => {
                            self.bump();
                            self.expect(Tok::Colon)?;
                            items.push(SwitchItem::Label(None));
                        }
                        _ => items.push(SwitchItem::Stmt(self.stmt()?)),
                    }
                }
                Ok(Stmt::Switch(scrut, items))
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Break)
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Continue)
            }
            Tok::KwReturn => {
                self.bump();
                if self.eat(&Tok::Semi) {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Tok::KwGoto => {
                self.bump();
                let l = self.ident()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Goto(l))
            }
            Tok::KwDynamicRegion => {
                self.bump();
                let mut keys = Vec::new();
                if self.eat(&Tok::KwKey) {
                    self.expect(Tok::LParen)?;
                    if !self.eat(&Tok::RParen) {
                        loop {
                            keys.push(self.ident()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(Tok::RParen)?;
                    }
                }
                self.expect(Tok::LParen)?;
                let mut consts = Vec::new();
                if !self.eat(&Tok::RParen) {
                    loop {
                        consts.push(self.ident()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RParen)?;
                }
                let body = Box::new(self.block()?);
                Ok(Stmt::DynamicRegion { consts, keys, body })
            }
            Tok::Ident(name) if *self.peek2() == Tok::Colon => {
                self.bump();
                self.bump();
                Ok(Stmt::Label(name, Box::new(self.stmt()?)))
            }
            _ if self.at_type_start() => self.decl_stmt(),
            _ => {
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn decl_stmt(&mut self) -> Result<Stmt, ParseError> {
        let base = self.base_type()?;
        let mut decls = Vec::new();
        loop {
            let mut ptrs = 0u8;
            while self.eat(&Tok::Star) {
                ptrs += 1;
            }
            let name = self.ident()?;
            let array = if self.eat(&Tok::LBracket) {
                let n = self.int_lit()?;
                self.expect(Tok::RBracket)?;
                Some(n as u64)
            } else {
                None
            };
            let init = if self.eat(&Tok::Eq) {
                Some(self.assignment()?)
            } else {
                None
            };
            decls.push(Stmt::Decl {
                ty: TypeName {
                    base: base.clone(),
                    ptrs,
                },
                name,
                array,
                init,
            });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::Semi)?;
        Ok(if decls.len() == 1 {
            decls.pop().unwrap()
        } else {
            Stmt::Block(decls)
        })
    }

    fn for_stmt(&mut self, unrolled: bool) -> Result<Stmt, ParseError> {
        self.expect(Tok::KwFor)?;
        self.expect(Tok::LParen)?;
        let init = if self.eat(&Tok::Semi) {
            None
        } else if self.at_type_start() {
            Some(Box::new(self.decl_stmt()?))
        } else {
            let e = self.expr()?;
            self.expect(Tok::Semi)?;
            Some(Box::new(Stmt::Expr(e)))
        };
        let cond = if *self.peek() == Tok::Semi {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(Tok::Semi)?;
        let step = if *self.peek() == Tok::RParen {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(Tok::RParen)?;
        let body = Box::new(self.stmt()?);
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
            unrolled,
        })
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.conditional()?;
        let op = match self.peek() {
            Tok::Eq => None,
            Tok::PlusEq => Some(BinAop::Add),
            Tok::MinusEq => Some(BinAop::Sub),
            Tok::StarEq => Some(BinAop::Mul),
            Tok::SlashEq => Some(BinAop::Div),
            Tok::PercentEq => Some(BinAop::Rem),
            Tok::AmpEq => Some(BinAop::BitAnd),
            Tok::PipeEq => Some(BinAop::BitOr),
            Tok::CaretEq => Some(BinAop::BitXor),
            Tok::ShlEq => Some(BinAop::Shl),
            Tok::ShrEq => Some(BinAop::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assignment()?;
        Ok(Expr::Assign {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn conditional(&mut self) -> Result<Expr, ParseError> {
        let c = self.binary(0)?;
        if self.eat(&Tok::Question) {
            let t = self.expr()?;
            self.expect(Tok::Colon)?;
            let e = self.conditional()?;
            Ok(Expr::Cond(Box::new(c), Box::new(t), Box::new(e)))
        } else {
            Ok(c)
        }
    }

    fn bin_op_prec(tok: &Tok) -> Option<(BinAop, u8)> {
        Some(match tok {
            Tok::OrOr => (BinAop::LogOr, 1),
            Tok::AndAnd => (BinAop::LogAnd, 2),
            Tok::Pipe => (BinAop::BitOr, 3),
            Tok::Caret => (BinAop::BitXor, 4),
            Tok::Amp => (BinAop::BitAnd, 5),
            Tok::EqEq => (BinAop::Eq, 6),
            Tok::Ne => (BinAop::Ne, 6),
            Tok::Lt => (BinAop::Lt, 7),
            Tok::Gt => (BinAop::Gt, 7),
            Tok::Le => (BinAop::Le, 7),
            Tok::Ge => (BinAop::Ge, 7),
            Tok::Shl => (BinAop::Shl, 8),
            Tok::Shr => (BinAop::Shr, 8),
            Tok::Plus => (BinAop::Add, 9),
            Tok::Minus => (BinAop::Sub, 9),
            Tok::Star => (BinAop::Mul, 10),
            Tok::Slash => (BinAop::Div, 10),
            Tok::Percent => (BinAop::Rem, 10),
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = Self::bin_op_prec(self.peek()) {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn is_type_cast_ahead(&self) -> bool {
        // '(' followed by a type keyword means a cast.
        *self.peek() == Tok::LParen
            && matches!(
                self.peek2(),
                Tok::KwInt
                    | Tok::KwUnsigned
                    | Tok::KwSigned
                    | Tok::KwChar
                    | Tok::KwShort
                    | Tok::KwLong
                    | Tok::KwDouble
                    | Tok::KwVoid
                    | Tok::KwStruct
            )
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Un(UnAop::Neg, Box::new(self.unary()?)))
            }
            Tok::Tilde => {
                self.bump();
                Ok(Expr::Un(UnAop::BitNot, Box::new(self.unary()?)))
            }
            Tok::Bang => {
                self.bump();
                Ok(Expr::Un(UnAop::LogNot, Box::new(self.unary()?)))
            }
            Tok::Star => {
                self.bump();
                Ok(Expr::Deref {
                    expr: Box::new(self.unary()?),
                    dynamic: false,
                })
            }
            Tok::KwDynamic if *self.peek2() == Tok::Star => {
                self.bump();
                self.bump();
                Ok(Expr::Deref {
                    expr: Box::new(self.unary()?),
                    dynamic: true,
                })
            }
            Tok::Amp => {
                self.bump();
                Ok(Expr::AddrOf(Box::new(self.unary()?)))
            }
            Tok::PlusPlus => {
                self.bump();
                Ok(Expr::PreIncDec {
                    lhs: Box::new(self.unary()?),
                    inc: true,
                })
            }
            Tok::MinusMinus => {
                self.bump();
                Ok(Expr::PreIncDec {
                    lhs: Box::new(self.unary()?),
                    inc: false,
                })
            }
            Tok::KwSizeof => {
                self.bump();
                self.expect(Tok::LParen)?;
                let t = self.type_name()?;
                self.expect(Tok::RParen)?;
                Ok(Expr::SizeOf(t))
            }
            Tok::LParen if self.is_type_cast_ahead() => {
                self.bump();
                let t = self.type_name()?;
                self.expect(Tok::RParen)?;
                Ok(Expr::Cast(t, Box::new(self.unary()?)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek().clone() {
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    e = Expr::Index {
                        base: Box::new(e),
                        index: Box::new(idx),
                        dynamic: false,
                    };
                }
                Tok::Dot => {
                    self.bump();
                    let f = self.ident()?;
                    e = Expr::Member {
                        base: Box::new(e),
                        field: f,
                        arrow: false,
                        dynamic: false,
                    };
                }
                Tok::Arrow => {
                    self.bump();
                    let f = self.ident()?;
                    e = Expr::Member {
                        base: Box::new(e),
                        field: f,
                        arrow: true,
                        dynamic: false,
                    };
                }
                Tok::KwDynamic => {
                    // `p dynamic-> f` and `a dynamic[ i ]` (§2).
                    match self.peek2().clone() {
                        Tok::Arrow => {
                            self.bump();
                            self.bump();
                            let f = self.ident()?;
                            e = Expr::Member {
                                base: Box::new(e),
                                field: f,
                                arrow: true,
                                dynamic: true,
                            };
                        }
                        Tok::LBracket => {
                            self.bump();
                            self.bump();
                            let idx = self.expr()?;
                            self.expect(Tok::RBracket)?;
                            e = Expr::Index {
                                base: Box::new(e),
                                index: Box::new(idx),
                                dynamic: true,
                            };
                        }
                        _ => break,
                    }
                }
                Tok::PlusPlus => {
                    self.bump();
                    e = Expr::PostIncDec {
                        lhs: Box::new(e),
                        inc: true,
                    };
                }
                Tok::MinusMinus => {
                    self.bump();
                    e = Expr::PostIncDec {
                        lhs: Box::new(e),
                        inc: false,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::IntLit(v))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::FloatLit(v))
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.assignment()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(Tok::RParen)?;
                    }
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_cache_lookup_example() {
        // The paper's §2 running example, verbatim modulo declarations.
        let src = r#"
            struct setStructure { unsigned tag; };
            struct cacheLine { struct setStructure **sets; };
            struct Cache {
                unsigned blockSize;
                unsigned numLines;
                struct cacheLine **lines;
                int associativity;
            };
            int cacheLookup(void *addr, struct Cache *cache) {
                dynamicRegion (cache) {
                    unsigned blockSize = cache->blockSize;
                    unsigned numLines = cache->numLines;
                    unsigned tag = (unsigned) addr / (blockSize * numLines);
                    unsigned line = ((unsigned) addr / blockSize) % numLines;
                    struct setStructure **setArray = cache->lines[line]->sets;
                    int assoc = cache->associativity;
                    int set;
                    unrolled for (set = 0; set < assoc; set++) {
                        if (setArray[set] dynamic-> tag == tag)
                            return 1;
                    }
                    return 0;
                }
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.tops.len(), 4);
        let Top::Func { name, body, .. } = &prog.tops[3] else {
            panic!("expected func")
        };
        assert_eq!(name, "cacheLookup");
        let Stmt::Block(stmts) = body else { panic!() };
        let Stmt::DynamicRegion { consts, keys, body } = &stmts[0] else {
            panic!("expected dynamicRegion, got {:?}", stmts[0])
        };
        assert_eq!(consts, &["cache"]);
        assert!(keys.is_empty());
        // The unrolled loop with the dynamic-> annotation is in there.
        let Stmt::Block(inner) = body.as_ref() else {
            panic!()
        };
        let unrolled = inner.iter().find_map(|s| match s {
            Stmt::For {
                unrolled: true,
                body,
                ..
            } => Some(body),
            _ => None,
        });
        let loop_body = unrolled.expect("unrolled for parsed");
        let Stmt::Block(lb) = loop_body.as_ref() else {
            panic!()
        };
        let Stmt::If(cond, ..) = &lb[0] else { panic!() };
        let Expr::Bin(BinAop::Eq, lhs, _) = cond else {
            panic!()
        };
        let Expr::Member {
            arrow: true,
            dynamic: true,
            ..
        } = lhs.as_ref()
        else {
            panic!("dynamic-> parsed as dynamic member access")
        };
    }

    #[test]
    fn keyed_region() {
        let src = "int f(int c) { dynamicRegion key(c) (c) { return c; } }";
        let prog = parse(src).unwrap();
        let Top::Func { body, .. } = &prog.tops[0] else {
            panic!()
        };
        let Stmt::Block(b) = body else { panic!() };
        let Stmt::DynamicRegion { consts, keys, .. } = &b[0] else {
            panic!()
        };
        assert_eq!(keys, &["c"]);
        assert_eq!(consts, &["c"]);
    }

    #[test]
    fn switch_with_fallthrough_and_goto() {
        let src = r#"
            int f(int a, int b) {
                if (a) { goto L; }
                switch (b) {
                    case 1: a = 1;
                    case 2: a = 2; break;
                    case 3: a = 3; goto L;
                    default: a = 9;
                }
                a = a + 1;
                L: return a;
            }
        "#;
        let prog = parse(src).unwrap();
        let Top::Func { body, .. } = &prog.tops[0] else {
            panic!()
        };
        let Stmt::Block(b) = body else { panic!() };
        let Stmt::Switch(_, items) = &b[1] else {
            panic!("switch")
        };
        let labels: Vec<_> = items
            .iter()
            .filter_map(|i| match i {
                SwitchItem::Label(l) => Some(*l),
                _ => None,
            })
            .collect();
        assert_eq!(labels, vec![Some(1), Some(2), Some(3), None]);
        assert!(matches!(b[3], Stmt::Label(..)));
    }

    #[test]
    fn precedence() {
        let e = parse("int f() { return 1 + 2 * 3 << 1 < 4 == 5 && 6; }").unwrap();
        let Top::Func { body, .. } = &e.tops[0] else {
            panic!()
        };
        let Stmt::Block(b) = body else { panic!() };
        let Stmt::Return(Some(Expr::Bin(BinAop::LogAnd, lhs, _))) = &b[0] else {
            panic!("&& binds loosest")
        };
        let Expr::Bin(BinAop::Eq, l2, _) = lhs.as_ref() else {
            panic!("== next")
        };
        let Expr::Bin(BinAop::Lt, l3, _) = l2.as_ref() else {
            panic!("< next")
        };
        let Expr::Bin(BinAop::Shl, l4, _) = l3.as_ref() else {
            panic!("<< next")
        };
        let Expr::Bin(BinAop::Add, _, r5) = l4.as_ref() else {
            panic!("+ next")
        };
        assert!(matches!(r5.as_ref(), Expr::Bin(BinAop::Mul, ..)));
    }

    #[test]
    fn casts_and_sizeof() {
        let p = parse("int f(void* p) { return (int) p + sizeof(struct S) + (unsigned) 3; }");
        // struct S undefined is a *type* error caught at lowering, not parse.
        assert!(p.is_ok());
        let p = parse("double g(int x) { return (double) x; }").unwrap();
        let Top::Func { body, .. } = &p.tops[0] else {
            panic!()
        };
        let Stmt::Block(b) = body else { panic!() };
        assert!(matches!(&b[0], Stmt::Return(Some(Expr::Cast(..)))));
    }

    #[test]
    fn declarations_with_multiple_declarators() {
        let p = parse("int f() { int a = 1, b = 2; return a + b; }").unwrap();
        let Top::Func { body, .. } = &p.tops[0] else {
            panic!()
        };
        let Stmt::Block(b) = body else { panic!() };
        let Stmt::Block(decls) = &b[0] else {
            panic!("comma decls split into a block")
        };
        assert_eq!(decls.len(), 2);
    }

    #[test]
    fn global_with_array_initializer() {
        let p = parse("int tbl[4] = {1, 2, 3, 4}; int x = 9;").unwrap();
        let Top::Global { array, init, .. } = &p.tops[0] else {
            panic!()
        };
        assert_eq!(*array, Some(4));
        assert_eq!(init.len(), 4);
        let Top::Global {
            array: None,
            init: i2,
            ..
        } = &p.tops[1]
        else {
            panic!()
        };
        assert_eq!(i2.len(), 1);
    }

    #[test]
    fn error_reports_position() {
        let e = parse("int f() { return ); }").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.msg.contains("expected expression"));
    }

    #[test]
    fn ternary_and_incdec() {
        let p = parse("int f(int x) { x++; --x; return x ? x : 0; }").unwrap();
        let Top::Func { body, .. } = &p.tops[0] else {
            panic!()
        };
        let Stmt::Block(b) = body else { panic!() };
        assert!(matches!(
            &b[0],
            Stmt::Expr(Expr::PostIncDec { inc: true, .. })
        ));
        assert!(matches!(
            &b[1],
            Stmt::Expr(Expr::PreIncDec { inc: false, .. })
        ));
        assert!(matches!(&b[2], Stmt::Return(Some(Expr::Cond(..)))));
    }

    #[test]
    fn dynamic_star_unary() {
        let p = parse("int f(int* p) { return dynamic* p; }").unwrap();
        let Top::Func { body, .. } = &p.tops[0] else {
            panic!()
        };
        let Stmt::Block(b) = body else { panic!() };
        assert!(matches!(
            &b[0],
            Stmt::Return(Some(Expr::Deref { dynamic: true, .. }))
        ));
    }

    #[test]
    fn dynamic_index() {
        let p = parse("int f(int* a, int i) { return a dynamic[ i ]; }").unwrap();
        let Top::Func { body, .. } = &p.tops[0] else {
            panic!()
        };
        let Stmt::Block(b) = body else { panic!() };
        assert!(matches!(
            &b[0],
            Stmt::Return(Some(Expr::Index { dynamic: true, .. }))
        ));
    }
}
