//! Lowering from MiniC AST to the `dyncomp-ir` three-address CFG.
//!
//! Annotations lower as follows (§2 of the paper):
//!
//! * `dynamicRegion (v…) { … }` — the body becomes a single-entry block
//!   range recorded in [`dyncomp_ir::DynRegion`]; the values of the
//!   annotated variables at region entry become the region's constant
//!   roots; `key(…)` variables are additionally recorded as cache keys.
//! * `unrolled for` — the loop's header block is flagged
//!   `unrolled_header`.
//! * `dynamic*p`, `p dynamic-> f`, `a dynamic[i]` — the emitted load
//!   carries `dynamic: true` so the constants analysis never treats the
//!   loaded value as invariant.
//!
//! With [`LowerOptions::honor_annotations`] off, the same source lowers as
//! plain C (the statically compiled baseline of §5's measurements).

use crate::ast::*;
use crate::types::{CType, TypeTable};
use dyncomp_ir::{
    BinOp, BlockId, DynRegion, FuncId, Function, Global, GlobalId, IdSet, InstId, InstKind,
    Intrinsic, MemSize, Module, Signedness, Terminator, Ty, UnOp, VarId, VarInfo,
};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Lowering configuration.
#[derive(Clone, Copy, Debug)]
pub struct LowerOptions {
    /// Honor `dynamicRegion`/`unrolled`/`dynamic` annotations. When false
    /// the program lowers as plain C (the static baseline).
    pub honor_annotations: bool,
    /// Also lower a statically compiled *fallback copy* of every dynamic
    /// region body, guarded by an opaque [`Intrinsic::TierProbe`] branch.
    /// The tiered engine redirects a cold `EnterRegion` trap to the
    /// fallback while set-up + stitching run on a background worker. Only
    /// meaningful with `honor_annotations`; off by default (the default
    /// lowering stays byte-identical to the untiered compiler).
    pub tiered_fallback: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions {
            honor_annotations: true,
            tiered_fallback: false,
        }
    }
}

/// Lowering failure.
///
/// The call-path failures are typed so callers (and tests) can match on
/// them rather than scrape message strings; everything else is collected
/// under [`LowerError::Other`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// A call names a function that is defined nowhere in the program
    /// (and is not an intrinsic).
    UndefinedFunction {
        /// Function being lowered when the call was found.
        func: String,
        /// The undefined callee's name.
        name: String,
    },
    /// A call passes the wrong number of arguments for its callee's
    /// declared signature.
    ArityMismatch {
        /// Function being lowered when the call was found.
        func: String,
        /// The callee's name.
        name: String,
        /// Declared parameter count.
        expected: usize,
        /// Argument count at the call site.
        got: usize,
    },
    /// Any other lowering failure (type errors, unknown identifiers,
    /// malformed annotations, unsupported constructs).
    Other(String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::UndefinedFunction { func, name } => write!(
                f,
                "lowering error: in `{func}`: call to undefined function `{name}`"
            ),
            LowerError::ArityMismatch {
                func,
                name,
                expected,
                got,
            } => write!(
                f,
                "lowering error: in `{func}`: `{name}` expects {expected} arguments, got {got}"
            ),
            LowerError::Other(m) => write!(f, "lowering error: {m}"),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<crate::types::TypeError> for LowerError {
    fn from(e: crate::types::TypeError) -> Self {
        LowerError::Other(e.0)
    }
}

/// The lowered module together with its type table.
#[derive(Debug)]
pub struct Lowered {
    /// The IR module (not yet in SSA form).
    pub module: Module,
    /// Struct layouts, for host-side data construction.
    pub types: TypeTable,
}

/// Lower a parsed program.
///
/// # Errors
/// Reports type errors, unknown identifiers, unsupported constructs and
/// malformed annotations.
pub fn lower(prog: &Program, opts: &LowerOptions) -> Result<Lowered, LowerError> {
    let mut types = TypeTable::new();
    let mut module = Module::new();
    let mut globals: HashMap<String, (GlobalId, CType)> = HashMap::new();
    let mut funcs: HashMap<String, (FuncId, CType, Vec<CType>)> = HashMap::new();

    // Pass 0: declare struct tags (allows self-referential pointer fields).
    for top in &prog.tops {
        if let Top::Struct { name, .. } = top {
            types.declare_struct(name);
        }
    }

    // Pass 1: structs, globals, function signatures.
    for top in &prog.tops {
        match top {
            Top::Struct { name, fields } => {
                let mut fs = Vec::new();
                for (tn, fname, array) in fields {
                    fs.push((fname.clone(), types.resolve(tn, *array)?));
                }
                types.define_struct(name, fs)?;
            }
            Top::Global {
                ty,
                name,
                array,
                init,
            } => {
                let cty = types.resolve(ty, *array)?;
                let size = types.size_of(&cty)?;
                let align = types.align_of(&cty)?;
                let mut bytes = Vec::new();
                let elem = match &cty {
                    CType::Array(e, _) => (**e).clone(),
                    other => other.clone(),
                };
                let esize = types.size_of(&elem)? as usize;
                for e in init {
                    let v = const_expr(e, &elem)?;
                    bytes.extend_from_slice(&v.to_le_bytes()[..esize]);
                }
                if bytes.len() as u64 > size {
                    return Err(LowerError::Other(format!(
                        "too many initializers for `{name}`"
                    )));
                }
                let gid = module.globals.push(Global {
                    name: name.clone(),
                    size,
                    init: bytes,
                    align,
                });
                if globals.insert(name.clone(), (gid, cty)).is_some() {
                    return Err(LowerError::Other(format!("duplicate global `{name}`")));
                }
            }
            Top::Func {
                ret, name, params, ..
            } => {
                let rty = types.resolve(ret, None)?;
                let ptys: Vec<CType> = params
                    .iter()
                    .map(|(t, _)| types.resolve(t, None))
                    .collect::<Result<_, _>>()?;
                for p in &ptys {
                    if matches!(p, CType::Struct(_) | CType::Array(..)) {
                        return Err(LowerError::Other(format!(
                            "function `{name}`: struct/array parameters by value are not supported"
                        )));
                    }
                }
                let ir_params: Vec<Ty> = ptys.iter().map(ty_of).collect();
                let fid = module.funcs.push(Function::new(
                    name.clone(),
                    ir_params,
                    match rty {
                        CType::Void => Ty::None,
                        ref t => ty_of(t),
                    },
                ));
                if funcs.insert(name.clone(), (fid, rty, ptys)).is_some() {
                    return Err(LowerError::Other(format!("duplicate function `{name}`")));
                }
            }
        }
    }

    // Pass 2: function bodies.
    for top in &prog.tops {
        let Top::Func {
            name, params, body, ..
        } = top
        else {
            continue;
        };
        let (fid, _, ptys) = funcs[name].clone();
        let mut func =
            std::mem::replace(&mut module.funcs[fid], Function::new("", vec![], Ty::None));
        {
            let mut lw = FnLowerer {
                types: &types,
                globals: &globals,
                funcs: &funcs,
                opts,
                f: &mut func,
                cur: BlockId(0),
                scopes: vec![HashMap::new()],
                loop_stack: vec![],
                labels: HashMap::new(),
                defined_labels: HashSet::new(),
                region_depth: 0,
                label_region: HashMap::new(),
                frame_names: HashSet::new(),
                ret_ty: funcs[name].1.clone(),
                suppress_annotations: false,
                label_ns: String::new(),
            };
            lw.cur = lw.f.entry;
            lw.collect_frame_names(body, params);
            lw.lower_params(params, &ptys)?;
            lw.stmt(body)?;
            lw.finish()?;
        }
        module.funcs[fid] = func;
    }
    module.retype_calls();
    Ok(Lowered { module, types })
}

/// Evaluate a constant initializer expression.
fn const_expr(e: &Expr, ty: &CType) -> Result<u64, LowerError> {
    Ok(match e {
        Expr::IntLit(v) => {
            if *ty == CType::Double {
                (*v as f64).to_bits()
            } else {
                *v as u64
            }
        }
        Expr::FloatLit(v) => {
            if *ty == CType::Double {
                v.to_bits()
            } else {
                *v as i64 as u64
            }
        }
        Expr::Un(UnAop::Neg, inner) => {
            let v = const_expr(inner, ty)?;
            if *ty == CType::Double {
                (-f64::from_bits(v)).to_bits()
            } else {
                (v as i64).wrapping_neg() as u64
            }
        }
        _ => {
            return Err(LowerError::Other(
                "global initializers must be literal constants".into(),
            ))
        }
    })
}

fn ty_of(t: &CType) -> Ty {
    match t {
        CType::Double => Ty::Float,
        CType::Void => Ty::None,
        _ => Ty::Int,
    }
}

fn mem_size(types: &TypeTable, t: &CType) -> Result<MemSize, LowerError> {
    Ok(match types.size_of(t).map_err(LowerError::from)? {
        1 => MemSize::B1,
        2 => MemSize::B2,
        4 => MemSize::B4,
        8 => MemSize::B8,
        n => {
            return Err(LowerError::Other(format!(
                "cannot load/store {n}-byte object directly"
            )))
        }
    })
}

#[derive(Clone)]
struct LocalInfo {
    var: VarId,
    ty: CType,
}

/// An lvalue: either a renameable variable or a memory location.
enum LValue {
    Var(VarId, CType),
    Mem {
        addr: InstId,
        ty: CType,
        dynamic: bool,
    },
}

struct LoopCtx {
    break_to: BlockId,
    continue_to: BlockId,
}

struct FnLowerer<'a> {
    types: &'a TypeTable,
    globals: &'a HashMap<String, (GlobalId, CType)>,
    funcs: &'a HashMap<String, (FuncId, CType, Vec<CType>)>,
    opts: &'a LowerOptions,
    f: &'a mut Function,
    cur: BlockId,
    scopes: Vec<HashMap<String, LocalInfo>>,
    loop_stack: Vec<LoopCtx>,
    labels: HashMap<String, BlockId>,
    defined_labels: HashSet<String>,
    region_depth: u32,
    label_region: HashMap<String, u32>,
    frame_names: HashSet<String>,
    ret_ty: CType,
    /// Set while lowering a tiered fallback copy of a region body: the
    /// copy is plain static code, so `unrolled`/`dynamic` annotations and
    /// nested `dynamicRegion`s inside it are ignored rather than honored.
    suppress_annotations: bool,
    /// Label namespace prefix, non-empty while lowering a fallback copy so
    /// the duplicated body's labels don't collide with the original's.
    label_ns: String,
}

impl FnLowerer<'_> {
    // ---- plumbing ----

    fn emit(&mut self, kind: InstKind) -> InstId {
        self.f.append(self.cur, kind)
    }

    fn iconst(&mut self, v: i64) -> InstId {
        self.emit(InstKind::Const(dyncomp_ir::Const::Int(v)))
    }

    /// Whether dynamic-compilation annotations are honored at this point:
    /// globally enabled and not inside a tiered fallback copy.
    fn honor(&self) -> bool {
        self.opts.honor_annotations && !self.suppress_annotations
    }

    /// The label key for source label `l` in the current label namespace.
    fn label_key(&self, l: &str) -> String {
        if self.label_ns.is_empty() {
            l.to_string()
        } else {
            format!("{}{}", self.label_ns, l)
        }
    }

    fn new_block(&mut self) -> BlockId {
        self.f.add_block()
    }

    fn terminate(&mut self, t: Terminator) {
        if matches!(self.f.blocks[self.cur].term, Terminator::Unreachable) {
            self.f.blocks[self.cur].term = t;
        }
        // Otherwise the block already ended (e.g. code after return):
        // subsequent code goes to a fresh unreachable block.
    }

    fn start_block(&mut self, b: BlockId) {
        self.cur = b;
    }

    fn jump_to_new(&mut self) -> BlockId {
        let b = self.new_block();
        self.terminate(Terminator::Jump(b));
        self.start_block(b);
        b
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, LowerError> {
        Err(LowerError::Other(format!(
            "in `{}`: {}",
            self.f.name,
            msg.into()
        )))
    }

    // ---- setup ----

    fn collect_frame_names(&mut self, body: &Stmt, params: &[(TypeName, String)]) {
        fn walk_expr(e: &Expr, out: &mut HashSet<String>) {
            match e {
                Expr::AddrOf(inner) => {
                    if let Expr::Ident(n) = inner.as_ref() {
                        out.insert(n.clone());
                    }
                    walk_expr(inner, out);
                }
                Expr::Un(_, a) | Expr::Cast(_, a) | Expr::Deref { expr: a, .. } => {
                    walk_expr(a, out)
                }
                Expr::Bin(_, a, b) => {
                    walk_expr(a, out);
                    walk_expr(b, out);
                }
                Expr::Assign { lhs, rhs, .. } => {
                    walk_expr(lhs, out);
                    walk_expr(rhs, out);
                }
                Expr::Call { args, .. } => args.iter().for_each(|a| walk_expr(a, out)),
                Expr::Index { base, index, .. } => {
                    walk_expr(base, out);
                    walk_expr(index, out);
                }
                Expr::Member { base, .. } => walk_expr(base, out),
                Expr::Cond(a, b, c) => {
                    walk_expr(a, out);
                    walk_expr(b, out);
                    walk_expr(c, out);
                }
                Expr::PostIncDec { lhs, .. } | Expr::PreIncDec { lhs, .. } => walk_expr(lhs, out),
                Expr::IntLit(_) | Expr::FloatLit(_) | Expr::Ident(_) | Expr::SizeOf(_) => {}
            }
        }
        fn walk_stmt(s: &Stmt, out: &mut HashSet<String>) {
            match s {
                Stmt::Block(v) => v.iter().for_each(|s| walk_stmt(s, out)),
                Stmt::Decl { init: Some(e), .. } => walk_expr(e, out),
                Stmt::Expr(e) => walk_expr(e, out),
                Stmt::If(c, t, e) => {
                    walk_expr(c, out);
                    walk_stmt(t, out);
                    if let Some(e) = e {
                        walk_stmt(e, out);
                    }
                }
                Stmt::While(c, b) => {
                    walk_expr(c, out);
                    walk_stmt(b, out);
                }
                Stmt::DoWhile(b, c) => {
                    walk_stmt(b, out);
                    walk_expr(c, out);
                }
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    ..
                } => {
                    if let Some(i) = init {
                        walk_stmt(i, out);
                    }
                    if let Some(c) = cond {
                        walk_expr(c, out);
                    }
                    if let Some(s) = step {
                        walk_expr(s, out);
                    }
                    walk_stmt(body, out);
                }
                Stmt::Switch(e, items) => {
                    walk_expr(e, out);
                    for i in items {
                        if let SwitchItem::Stmt(s) = i {
                            walk_stmt(s, out);
                        }
                    }
                }
                Stmt::Return(Some(e)) => walk_expr(e, out),
                Stmt::Label(_, s) => walk_stmt(s, out),
                Stmt::DynamicRegion { body, .. } => walk_stmt(body, out),
                _ => {}
            }
        }
        let mut out = HashSet::new();
        walk_stmt(body, &mut out);
        let _ = params;
        self.frame_names = out;
    }

    fn lower_params(
        &mut self,
        params: &[(TypeName, String)],
        ptys: &[CType],
    ) -> Result<(), LowerError> {
        for (i, ((_, name), cty)) in params.iter().zip(ptys).enumerate() {
            if self.frame_names.contains(name) {
                return self.err(format!("cannot take the address of parameter `{name}`"));
            }
            let var = self.f.vars.push(VarInfo {
                name: name.clone(),
                ty: ty_of(cty),
                frame_size: None,
            });
            let p = self.emit(InstKind::Param(i as u32));
            self.emit(InstKind::SetVar(var, p));
            self.scopes.last_mut().unwrap().insert(
                name.clone(),
                LocalInfo {
                    var,
                    ty: cty.clone(),
                },
            );
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), LowerError> {
        // Implicit return at the end of the function.
        if matches!(self.f.blocks[self.cur].term, Terminator::Unreachable) {
            let t = match self.ret_ty {
                CType::Void => Terminator::Return(None),
                CType::Double => {
                    let z = self.emit(InstKind::Const(dyncomp_ir::Const::Float(0.0)));
                    Terminator::Return(Some(z))
                }
                _ => {
                    let z = self.iconst(0);
                    Terminator::Return(Some(z))
                }
            };
            self.terminate(t);
        }
        for l in self.labels.keys() {
            if !self.defined_labels.contains(l) {
                return Err(LowerError::Other(format!("undefined label `{l}`")));
            }
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<LocalInfo> {
        for s in self.scopes.iter().rev() {
            if let Some(i) = s.get(name) {
                return Some(i.clone());
            }
        }
        None
    }

    // ---- statements ----

    fn stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        match s {
            Stmt::Block(v) => {
                self.scopes.push(HashMap::new());
                for s in v {
                    self.stmt(s)?;
                }
                self.scopes.pop();
            }
            Stmt::Decl {
                ty,
                name,
                array,
                init,
            } => {
                let cty = self.types.resolve(ty, *array)?;
                let is_frame = array.is_some()
                    || matches!(cty, CType::Struct(_) | CType::Array(..))
                    || self.frame_names.contains(name);
                let frame_size = if is_frame {
                    Some(self.types.size_of(&cty)?)
                } else {
                    None
                };
                let var = self.f.vars.push(VarInfo {
                    name: name.clone(),
                    ty: ty_of(&cty),
                    frame_size,
                });
                self.scopes.last_mut().unwrap().insert(
                    name.clone(),
                    LocalInfo {
                        var,
                        ty: cty.clone(),
                    },
                );
                if let Some(e) = init {
                    if matches!(cty, CType::Struct(_) | CType::Array(..)) {
                        return self.err(format!(
                            "initializer on aggregate `{name}` is not supported"
                        ));
                    }
                    let (v, vty) = self.expr(e)?;
                    let v = self.coerce(v, &vty, &cty)?;
                    if is_frame {
                        // Address-taken scalar: initialize through memory.
                        let addr = self.emit(InstKind::FrameAddr(var));
                        let size = mem_size(self.types, &cty)?;
                        let float = cty == CType::Double;
                        self.emit(InstKind::Store {
                            size,
                            addr,
                            val: v,
                            float,
                        });
                    } else {
                        self.emit(InstKind::SetVar(var, v));
                    }
                }
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
            }
            Stmt::If(c, t, e) => {
                let cond = self.cond_value(c)?;
                let bt = self.new_block();
                let be = self.new_block();
                let join = self.new_block();
                self.terminate(Terminator::Branch {
                    cond,
                    then_b: bt,
                    else_b: be,
                });
                self.start_block(bt);
                self.stmt(t)?;
                self.terminate(Terminator::Jump(join));
                self.start_block(be);
                if let Some(e) = e {
                    self.stmt(e)?;
                }
                self.terminate(Terminator::Jump(join));
                self.start_block(join);
            }
            Stmt::While(c, body) => {
                let header = self.jump_to_new();
                let bbody = self.new_block();
                let exit = self.new_block();
                let cond = self.cond_value(c)?;
                self.terminate(Terminator::Branch {
                    cond,
                    then_b: bbody,
                    else_b: exit,
                });
                self.loop_stack.push(LoopCtx {
                    break_to: exit,
                    continue_to: header,
                });
                self.start_block(bbody);
                self.stmt(body)?;
                self.terminate(Terminator::Jump(header));
                self.loop_stack.pop();
                self.start_block(exit);
            }
            Stmt::DoWhile(body, c) => {
                let bbody = self.jump_to_new();
                let check = self.new_block();
                let exit = self.new_block();
                self.loop_stack.push(LoopCtx {
                    break_to: exit,
                    continue_to: check,
                });
                self.stmt(body)?;
                self.terminate(Terminator::Jump(check));
                self.loop_stack.pop();
                self.start_block(check);
                let cond = self.cond_value(c)?;
                self.terminate(Terminator::Branch {
                    cond,
                    then_b: bbody,
                    else_b: exit,
                });
                self.start_block(exit);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                unrolled,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let header = self.jump_to_new();
                if *unrolled && self.honor() {
                    if cond.is_none() {
                        return self.err("unrolled for-loop requires a condition");
                    }
                    if self.region_depth == 0 {
                        return self.err("unrolled loop outside a dynamicRegion");
                    }
                    self.f.blocks[header].unrolled_header = true;
                }
                let bbody = self.new_block();
                let bstep = self.new_block();
                let exit = self.new_block();
                match cond {
                    Some(c) => {
                        let cv = self.cond_value(c)?;
                        self.terminate(Terminator::Branch {
                            cond: cv,
                            then_b: bbody,
                            else_b: exit,
                        });
                    }
                    None => self.terminate(Terminator::Jump(bbody)),
                }
                self.loop_stack.push(LoopCtx {
                    break_to: exit,
                    continue_to: bstep,
                });
                self.start_block(bbody);
                self.stmt(body)?;
                self.terminate(Terminator::Jump(bstep));
                self.loop_stack.pop();
                self.start_block(bstep);
                if let Some(s) = step {
                    self.expr(s)?;
                }
                self.terminate(Terminator::Jump(header));
                self.start_block(exit);
                self.scopes.pop();
            }
            Stmt::Switch(scrut, items) => {
                let (v, vty) = self.expr(scrut)?;
                if !vty.is_integer() {
                    return self.err("switch scrutinee must be an integer");
                }
                // One block per label position; statements flow between.
                let exit = self.new_block();
                let mut case_blocks: Vec<(Option<i64>, BlockId)> = Vec::new();
                for item in items {
                    if let SwitchItem::Label(l) = item {
                        case_blocks.push((*l, self.new_block()));
                    }
                }
                let default = case_blocks
                    .iter()
                    .find(|(l, _)| l.is_none())
                    .map(|(_, b)| *b)
                    .unwrap_or(exit);
                let cases: Vec<(i64, BlockId)> = case_blocks
                    .iter()
                    .filter_map(|(l, b)| l.map(|v| (v, *b)))
                    .collect();
                self.terminate(Terminator::Switch {
                    val: v,
                    cases,
                    default,
                });
                self.loop_stack.push(LoopCtx {
                    break_to: exit,
                    continue_to: self
                        .loop_stack
                        .last()
                        .map(|l| l.continue_to)
                        .unwrap_or(exit),
                });
                let mut next_case = 0usize;
                // Code before the first label is unreachable; start there
                // anyway in a scratch block.
                let scratch = self.new_block();
                self.start_block(scratch);
                for item in items {
                    match item {
                        SwitchItem::Label(_) => {
                            let b = case_blocks[next_case].1;
                            next_case += 1;
                            self.terminate(Terminator::Jump(b)); // fall-through
                            self.start_block(b);
                        }
                        SwitchItem::Stmt(s) => self.stmt(s)?,
                    }
                }
                self.terminate(Terminator::Jump(exit));
                self.loop_stack.pop();
                self.start_block(exit);
            }
            Stmt::Break => {
                let Some(l) = self.loop_stack.last() else {
                    return self.err("break outside loop/switch");
                };
                let t = l.break_to;
                self.terminate(Terminator::Jump(t));
                let dead = self.new_block();
                self.start_block(dead);
            }
            Stmt::Continue => {
                let Some(l) = self.loop_stack.last() else {
                    return self.err("continue outside loop");
                };
                let t = l.continue_to;
                self.terminate(Terminator::Jump(t));
                let dead = self.new_block();
                self.start_block(dead);
            }
            Stmt::Return(e) => {
                let t = match e {
                    Some(e) => {
                        let (v, vty) = self.expr(e)?;
                        let rt = self.ret_ty.clone();
                        let v = self.coerce(v, &vty, &rt)?;
                        Terminator::Return(Some(v))
                    }
                    None => Terminator::Return(None),
                };
                self.terminate(t);
                let dead = self.new_block();
                self.start_block(dead);
            }
            Stmt::Goto(l) => {
                let key = self.label_key(l);
                let depth = self.region_depth;
                if let Some(&d) = self.label_region.get(&key) {
                    if d != depth {
                        return self.err(format!("goto `{l}` crosses a dynamicRegion boundary"));
                    }
                } else {
                    self.label_region.insert(key.clone(), depth);
                }
                let b = *self
                    .labels
                    .entry(key)
                    .or_insert_with(|| self.f.blocks.push(dyncomp_ir::Block::new()));
                self.terminate(Terminator::Jump(b));
                let dead = self.new_block();
                self.start_block(dead);
            }
            Stmt::Label(l, inner) => {
                let key = self.label_key(l);
                if self.defined_labels.contains(&key) {
                    return self.err(format!("duplicate label `{l}`"));
                }
                let depth = self.region_depth;
                if let Some(&d) = self.label_region.get(&key) {
                    if d != depth {
                        return self.err(format!(
                            "label `{l}` targeted from across a dynamicRegion boundary"
                        ));
                    }
                } else {
                    self.label_region.insert(key.clone(), depth);
                }
                self.defined_labels.insert(key.clone());
                let b = *self
                    .labels
                    .entry(key)
                    .or_insert_with(|| self.f.blocks.push(dyncomp_ir::Block::new()));
                self.terminate(Terminator::Jump(b));
                self.start_block(b);
                self.stmt(inner)?;
            }
            Stmt::DynamicRegion { consts, keys, body } => {
                if !self.honor() {
                    // Static baseline (or tiered fallback copy): lower as a
                    // plain block.
                    self.stmt(body)?;
                    return Ok(());
                }
                if self.region_depth > 0 {
                    return self.err("nested dynamicRegions are not supported");
                }
                // Region roots: values of annotated variables at entry.
                let mut root_ids = Vec::new();
                for name in consts
                    .iter()
                    .chain(keys.iter().filter(|k| !consts.contains(k)))
                {
                    let Some(info) = self.lookup(name) else {
                        return self.err(format!("annotated variable `{name}` is not in scope"));
                    };
                    if self.f.vars[info.var].frame_size.is_some() {
                        return self.err(format!(
                            "annotated variable `{name}` is frame-allocated; only scalar \
                             variables can be run-time constants"
                        ));
                    }
                    root_ids.push((name.clone(), self.emit(InstKind::GetVar(info.var))));
                }
                let key_ids: Vec<InstId> = keys
                    .iter()
                    .map(|k| {
                        root_ids
                            .iter()
                            .find(|(n, _)| n == k)
                            .map(|(_, v)| *v)
                            .unwrap()
                    })
                    .collect();
                // Tiered lowering guards the region with an opaque probe
                // branching to a statically compiled fallback copy of the
                // body. Fallback and join blocks are created *before* the
                // region's blocks so the region's contiguous block index
                // range excludes them.
                let guard = if self.opts.tiered_fallback {
                    let probe_arg = self.iconst(self.f.regions.len() as i64);
                    let probe = self.emit(InstKind::CallIntrinsic {
                        which: Intrinsic::TierProbe,
                        args: vec![probe_arg],
                    });
                    Some((probe, self.new_block(), self.new_block()))
                } else {
                    None
                };
                let entry = self.new_block();
                match guard {
                    Some((probe, fallback, _)) => self.terminate(Terminator::Branch {
                        cond: probe,
                        then_b: entry,
                        else_b: fallback,
                    }),
                    None => self.terminate(Terminator::Jump(entry)),
                }
                self.start_block(entry);
                let first_region_block = entry;
                self.region_depth = 1;
                self.stmt(body)?;
                self.region_depth = 0;
                let exit = self.new_block();
                self.terminate(Terminator::Jump(exit));
                // All blocks created from `entry` up to (not including)
                // `exit` belong to the region. Cross-boundary gotos are
                // rejected above, so the index range is exact.
                let mut blocks = IdSet::with_domain(self.f.blocks.len());
                for i in first_region_block.index()..exit.index() {
                    blocks.insert(BlockId::from_index(i));
                }
                self.f.regions.push(DynRegion {
                    entry,
                    blocks,
                    const_roots: root_ids.iter().map(|(_, v)| *v).collect(),
                    key_roots: key_ids,
                });
                self.start_block(exit);
                if let Some((_, fallback, join)) = guard {
                    // Lower the fallback copy: the same body as plain static
                    // code (annotations suppressed), with labels renamed into
                    // a per-region namespace so the duplicate body doesn't
                    // collide with the original's labels.
                    self.terminate(Terminator::Jump(join));
                    self.start_block(fallback);
                    let ns = format!("$fb{}$", self.f.regions.len() - 1);
                    let saved_ns = std::mem::replace(&mut self.label_ns, ns);
                    self.suppress_annotations = true;
                    let r = self.stmt(body);
                    self.suppress_annotations = false;
                    self.label_ns = saved_ns;
                    r?;
                    self.terminate(Terminator::Jump(join));
                    self.start_block(join);
                }
            }
        }
        Ok(())
    }

    /// Lower an expression used as a branch condition to a truthy value.
    fn cond_value(&mut self, e: &Expr) -> Result<InstId, LowerError> {
        let (v, ty) = self.expr(e)?;
        self.truthy(v, &ty)
    }

    // ---- expressions ----

    fn expr(&mut self, e: &Expr) -> Result<(InstId, CType), LowerError> {
        match e {
            Expr::IntLit(v) => Ok((self.iconst(*v), CType::int())),
            Expr::FloatLit(v) => Ok((
                self.emit(InstKind::Const(dyncomp_ir::Const::Float(*v))),
                CType::Double,
            )),
            Expr::SizeOf(t) => {
                let ty = self.types.resolve(t, None)?;
                let s = self.types.size_of(&ty)?;
                Ok((self.iconst(s as i64), CType::unsigned()))
            }
            Expr::Ident(_) | Expr::Deref { .. } | Expr::Index { .. } | Expr::Member { .. } => {
                let lv = self.lvalue(e)?;
                self.load_lvalue(lv)
            }
            Expr::AddrOf(inner) => {
                let lv = self.lvalue(inner)?;
                match lv {
                    LValue::Mem { addr, ty, .. } => Ok((addr, CType::Ptr(Box::new(ty)))),
                    LValue::Var(v, ty) => {
                        if self.f.vars[v].frame_size.is_some() {
                            Ok((self.emit(InstKind::FrameAddr(v)), CType::Ptr(Box::new(ty))))
                        } else {
                            self.err("cannot take the address of a register variable")
                        }
                    }
                }
            }
            Expr::Un(op, a) => {
                let (v, ty) = self.expr(a)?;
                match op {
                    UnAop::Neg => {
                        if ty == CType::Double {
                            Ok((self.emit(InstKind::Un(UnOp::FNeg, v)), CType::Double))
                        } else {
                            Ok((self.emit(InstKind::Un(UnOp::Neg, v)), promote(&ty)))
                        }
                    }
                    UnAop::BitNot => {
                        if !ty.is_integer() {
                            return self.err("~ requires an integer");
                        }
                        Ok((self.emit(InstKind::Un(UnOp::Not, v)), promote(&ty)))
                    }
                    UnAop::LogNot => {
                        let c = self.truthy(v, &ty)?;
                        Ok((self.emit(InstKind::Un(UnOp::LogNot, c)), CType::int()))
                    }
                }
            }
            Expr::Cast(tn, inner) => {
                let target = self.types.resolve(tn, None)?;
                let (v, ty) = self.expr(inner)?;
                let v = self.coerce(v, &ty, &target)?;
                Ok((v, target))
            }
            Expr::Bin(BinAop::LogAnd, a, b) => self.short_circuit(a, b, true),
            Expr::Bin(BinAop::LogOr, a, b) => self.short_circuit(a, b, false),
            Expr::Bin(op, a, b) => {
                let (va, ta) = self.expr(a)?;
                let (vb, tb) = self.expr(b)?;
                self.binary(*op, va, ta, vb, tb)
            }
            Expr::Assign { op, lhs, rhs } => {
                let lv = self.lvalue(lhs)?;
                let lty = lv_type(&lv).clone();
                let (rv, rty) = self.expr(rhs)?;
                let value = match op {
                    None => self.coerce(rv, &rty, &lty)?,
                    Some(bop) => {
                        let (cur, cty) = self.load_lvalue_ref(&lv)?;
                        let (res, resty) = self.binary(*bop, cur, cty, rv, rty)?;
                        self.coerce(res, &resty, &lty)?
                    }
                };
                self.store_lvalue(&lv, value)?;
                Ok((value, lty))
            }
            Expr::Call { name, args } => self.call(name, args),
            Expr::Cond(c, t, e) => {
                let cond = self.cond_value(c)?;
                let bt = self.new_block();
                let be = self.new_block();
                let join = self.new_block();
                let tmp = self.f.vars.push(VarInfo {
                    name: "$cond".into(),
                    ty: Ty::Int, // fixed up below if float
                    frame_size: None,
                });
                self.terminate(Terminator::Branch {
                    cond,
                    then_b: bt,
                    else_b: be,
                });
                self.start_block(bt);
                let (tv, tty) = self.expr(t)?;
                self.emit(InstKind::SetVar(tmp, tv));
                self.terminate(Terminator::Jump(join));
                self.start_block(be);
                let (ev, ety) = self.expr(e)?;
                let ev = self.coerce(ev, &ety, &tty)?;
                self.emit(InstKind::SetVar(tmp, ev));
                self.terminate(Terminator::Jump(join));
                self.start_block(join);
                if tty == CType::Double {
                    self.f.vars[tmp].ty = Ty::Float;
                }
                Ok((self.emit(InstKind::GetVar(tmp)), tty))
            }
            Expr::PostIncDec { lhs, inc } => {
                let lv = self.lvalue(lhs)?;
                let (old, ty) = self.load_lvalue_ref(&lv)?;
                let updated = self.inc_dec(old, &ty, *inc)?;
                self.store_lvalue(&lv, updated)?;
                Ok((old, ty))
            }
            Expr::PreIncDec { lhs, inc } => {
                let lv = self.lvalue(lhs)?;
                let (old, ty) = self.load_lvalue_ref(&lv)?;
                let updated = self.inc_dec(old, &ty, *inc)?;
                self.store_lvalue(&lv, updated)?;
                Ok((updated, ty))
            }
        }
    }

    fn inc_dec(&mut self, v: InstId, ty: &CType, inc: bool) -> Result<InstId, LowerError> {
        let step: i64 = match ty {
            CType::Ptr(p) => self.types.size_of(p)? as i64,
            CType::Double => {
                let one = self.emit(InstKind::Const(dyncomp_ir::Const::Float(1.0)));
                let op = if inc { BinOp::FAdd } else { BinOp::FSub };
                return Ok(self.emit(InstKind::Bin(op, v, one)));
            }
            _ => 1,
        };
        let c = self.iconst(step);
        let op = if inc { BinOp::Add } else { BinOp::Sub };
        Ok(self.emit(InstKind::Bin(op, v, c)))
    }

    fn truthy(&mut self, v: InstId, ty: &CType) -> Result<InstId, LowerError> {
        if *ty == CType::Double {
            let z = self.emit(InstKind::Const(dyncomp_ir::Const::Float(0.0)));
            let eq = self.emit(InstKind::Bin(BinOp::FCmpEq, v, z));
            Ok(self.emit(InstKind::Un(UnOp::LogNot, eq)))
        } else {
            Ok(v)
        }
    }

    fn short_circuit(
        &mut self,
        a: &Expr,
        b: &Expr,
        is_and: bool,
    ) -> Result<(InstId, CType), LowerError> {
        let tmp = self.f.vars.push(VarInfo {
            name: "$sc".into(),
            ty: Ty::Int,
            frame_size: None,
        });
        let (va, ta) = self.expr(a)?;
        let ca = self.truthy(va, &ta)?;
        let na = self.emit(InstKind::Un(UnOp::LogNot, ca));
        let nna = self.emit(InstKind::Un(UnOp::LogNot, na)); // normalize to 0/1
        self.emit(InstKind::SetVar(tmp, nna));
        let evalb = self.new_block();
        let join = self.new_block();
        if is_and {
            self.terminate(Terminator::Branch {
                cond: nna,
                then_b: evalb,
                else_b: join,
            });
        } else {
            self.terminate(Terminator::Branch {
                cond: nna,
                then_b: join,
                else_b: evalb,
            });
        }
        self.start_block(evalb);
        let (vb, tb) = self.expr(b)?;
        let cb = self.truthy(vb, &tb)?;
        let nb = self.emit(InstKind::Un(UnOp::LogNot, cb));
        let nnb = self.emit(InstKind::Un(UnOp::LogNot, nb));
        self.emit(InstKind::SetVar(tmp, nnb));
        self.terminate(Terminator::Jump(join));
        self.start_block(join);
        Ok((self.emit(InstKind::GetVar(tmp)), CType::int()))
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> Result<(InstId, CType), LowerError> {
        // Intrinsics first.
        let intrinsic = match name {
            "alloc" => Some(Intrinsic::Alloc),
            "max" => Some(Intrinsic::Max),
            "min" => Some(Intrinsic::Min),
            "abs" => Some(Intrinsic::Abs),
            "sqrt" => Some(Intrinsic::Sqrt),
            _ => None,
        };
        if let Some(which) = intrinsic {
            if args.len() != which.arity() {
                return self.err(format!("`{name}` takes {} arguments", which.arity()));
            }
            let mut vals = Vec::new();
            for a in args {
                let (v, ty) = self.expr(a)?;
                let want = if which == Intrinsic::Sqrt {
                    CType::Double
                } else {
                    CType::int()
                };
                vals.push(self.coerce(v, &ty, &want)?);
            }
            let ret = match which {
                Intrinsic::Sqrt => CType::Double,
                Intrinsic::Alloc => CType::Ptr(Box::new(CType::Void)),
                _ => CType::int(),
            };
            return Ok((
                self.emit(InstKind::CallIntrinsic { which, args: vals }),
                ret,
            ));
        }
        let Some((fid, rty, ptys)) = self.funcs.get(name).cloned() else {
            return Err(LowerError::UndefinedFunction {
                func: self.f.name.clone(),
                name: name.to_string(),
            });
        };
        if args.len() != ptys.len() {
            return Err(LowerError::ArityMismatch {
                func: self.f.name.clone(),
                name: name.to_string(),
                expected: ptys.len(),
                got: args.len(),
            });
        }
        let mut vals = Vec::new();
        for (a, pty) in args.iter().zip(&ptys) {
            let (v, ty) = self.expr(a)?;
            vals.push(self.coerce(v, &ty, pty)?);
        }
        Ok((
            self.emit(InstKind::Call {
                callee: fid,
                args: vals,
            }),
            rty,
        ))
    }

    fn binary(
        &mut self,
        op: BinAop,
        va: InstId,
        ta: CType,
        vb: InstId,
        tb: CType,
    ) -> Result<(InstId, CType), LowerError> {
        use BinAop::*;
        // Pointer arithmetic.
        let ta = ta.decay();
        let tb = tb.decay();
        if let (Add | Sub, CType::Ptr(p), t) = (op, &ta, &tb) {
            if t.is_integer() {
                let sz = self.types.size_of(p)?;
                let szc = self.iconst(sz as i64);
                let scaled = self.emit(InstKind::Bin(BinOp::Mul, vb, szc));
                let o = if op == Add { BinOp::Add } else { BinOp::Sub };
                return Ok((self.emit(InstKind::Bin(o, va, scaled)), ta.clone()));
            }
        }
        if let (Add, t, CType::Ptr(p)) = (op, &ta, &tb) {
            if t.is_integer() {
                let sz = self.types.size_of(p)?;
                let szc = self.iconst(sz as i64);
                let scaled = self.emit(InstKind::Bin(BinOp::Mul, va, szc));
                return Ok((self.emit(InstKind::Bin(BinOp::Add, vb, scaled)), tb.clone()));
            }
        }
        if let (Sub, CType::Ptr(p), CType::Ptr(_)) = (op, &ta, &tb) {
            let sz = self.types.size_of(p)?;
            let diff = self.emit(InstKind::Bin(BinOp::Sub, va, vb));
            let szc = self.iconst(sz as i64);
            return Ok((
                self.emit(InstKind::Bin(BinOp::DivS, diff, szc)),
                CType::int(),
            ));
        }

        // Float arithmetic / comparison.
        if ta == CType::Double || tb == CType::Double {
            let fa = self.coerce(va, &ta, &CType::Double)?;
            let fb = self.coerce(vb, &tb, &CType::Double)?;
            let (o, swap, is_cmp) = match op {
                Add => (BinOp::FAdd, false, false),
                Sub => (BinOp::FSub, false, false),
                Mul => (BinOp::FMul, false, false),
                Div => (BinOp::FDiv, false, false),
                Eq => (BinOp::FCmpEq, false, true),
                Ne => (BinOp::FCmpEq, false, true), // negated below
                Lt => (BinOp::FCmpLt, false, true),
                Le => (BinOp::FCmpLe, false, true),
                Gt => (BinOp::FCmpLt, true, true),
                Ge => (BinOp::FCmpLe, true, true),
                _ => return self.err("invalid float operation"),
            };
            let (x, y) = if swap { (fb, fa) } else { (fa, fb) };
            let mut r = self.emit(InstKind::Bin(o, x, y));
            if op == Ne {
                r = self.emit(InstKind::Un(UnOp::LogNot, r));
            }
            return Ok((r, if is_cmp { CType::int() } else { CType::Double }));
        }

        // Integer / pointer.
        let unsigned = !ta.is_signed() && ta.is_integer()
            || !tb.is_signed() && tb.is_integer()
            || ta.is_pointer_like()
            || tb.is_pointer_like();
        let (o, swap) = match op {
            Add => (BinOp::Add, false),
            Sub => (BinOp::Sub, false),
            Mul => (BinOp::Mul, false),
            Div => (if unsigned { BinOp::DivU } else { BinOp::DivS }, false),
            Rem => (if unsigned { BinOp::RemU } else { BinOp::RemS }, false),
            BitAnd => (BinOp::And, false),
            BitOr => (BinOp::Or, false),
            BitXor => (BinOp::Xor, false),
            Shl => (BinOp::Shl, false),
            Shr => (
                if ta.is_signed() {
                    BinOp::ShrS
                } else {
                    BinOp::ShrU
                },
                false,
            ),
            Eq => (BinOp::CmpEq, false),
            Ne => (BinOp::CmpNe, false),
            Lt => (
                if unsigned {
                    BinOp::CmpLtU
                } else {
                    BinOp::CmpLtS
                },
                false,
            ),
            Le => (
                if unsigned {
                    BinOp::CmpLeU
                } else {
                    BinOp::CmpLeS
                },
                false,
            ),
            Gt => (
                if unsigned {
                    BinOp::CmpLtU
                } else {
                    BinOp::CmpLtS
                },
                true,
            ),
            Ge => (
                if unsigned {
                    BinOp::CmpLeU
                } else {
                    BinOp::CmpLeS
                },
                true,
            ),
            LogAnd | LogOr => unreachable!("short-circuit handled earlier"),
        };
        let (x, y) = if swap { (vb, va) } else { (va, vb) };
        let is_cmp = matches!(op, Eq | Ne | Lt | Le | Gt | Ge);
        let rty = if is_cmp {
            CType::int()
        } else if ta.is_pointer_like() {
            ta.clone()
        } else if unsigned {
            CType::unsigned()
        } else {
            promote(&ta)
        };
        Ok((self.emit(InstKind::Bin(o, x, y)), rty))
    }

    /// Coerce `v: from` to type `to`.
    fn coerce(&mut self, v: InstId, from: &CType, to: &CType) -> Result<InstId, LowerError> {
        let from = from.decay();
        match (&from, to) {
            (CType::Double, CType::Double) => Ok(v),
            (CType::Double, t) if t.is_integer() || t.is_pointer_like() => {
                Ok(self.emit(InstKind::Un(UnOp::FloatToInt, v)))
            }
            (f, CType::Double) if f.is_integer() || f.is_pointer_like() => {
                Ok(self.emit(InstKind::Un(UnOp::IntToFloat, v)))
            }
            (_, CType::Int { size, signed }) if *size < 8 => {
                let op = if *signed {
                    UnOp::Sext(size * 8)
                } else {
                    UnOp::Zext(size * 8)
                };
                Ok(self.emit(InstKind::Un(op, v)))
            }
            _ => Ok(v), // same-width int/pointer conversions are free
        }
    }

    // ---- lvalues ----

    fn lvalue(&mut self, e: &Expr) -> Result<LValue, LowerError> {
        match e {
            Expr::Ident(name) => {
                if let Some(info) = self.lookup(name) {
                    if self.f.vars[info.var].frame_size.is_some() {
                        let addr = self.emit(InstKind::FrameAddr(info.var));
                        return Ok(LValue::Mem {
                            addr,
                            ty: info.ty,
                            dynamic: false,
                        });
                    }
                    return Ok(LValue::Var(info.var, info.ty));
                }
                if let Some((gid, gty)) = self.globals.get(name).cloned() {
                    let addr = self.emit(InstKind::GlobalAddr(gid));
                    return Ok(LValue::Mem {
                        addr,
                        ty: gty,
                        dynamic: false,
                    });
                }
                self.err(format!("unknown identifier `{name}`"))
            }
            Expr::Deref { expr, dynamic } => {
                let (v, ty) = self.expr(expr)?;
                let Some(p) = ty.decay().pointee().cloned() else {
                    return self.err(format!("cannot dereference non-pointer ({ty})"));
                };
                Ok(LValue::Mem {
                    addr: v,
                    ty: p,
                    dynamic: *dynamic && self.honor(),
                })
            }
            Expr::Index {
                base,
                index,
                dynamic,
            } => {
                let (bv, bty) = self.expr_or_array_addr(base)?;
                let Some(elem) = bty.decay().pointee().cloned() else {
                    return self.err(format!("cannot index non-pointer ({bty})"));
                };
                let (iv, _) = self.expr(index)?;
                let sz = self.types.size_of(&elem)?;
                let szc = self.iconst(sz as i64);
                let scaled = self.emit(InstKind::Bin(BinOp::Mul, iv, szc));
                let addr = self.emit(InstKind::Bin(BinOp::Add, bv, scaled));
                Ok(LValue::Mem {
                    addr,
                    ty: elem,
                    dynamic: *dynamic && self.honor(),
                })
            }
            Expr::Member {
                base,
                field,
                arrow,
                dynamic,
            } => {
                let (base_addr, sty) = if *arrow {
                    let (v, ty) = self.expr(base)?;
                    let Some(p) = ty.decay().pointee().cloned() else {
                        return self.err(format!("-> on non-pointer ({ty})"));
                    };
                    (v, p)
                } else {
                    match self.lvalue(base)? {
                        LValue::Mem { addr, ty, .. } => (addr, ty),
                        LValue::Var(..) => return self.err("member access on a register variable"),
                    }
                };
                let (off, fty) = self.types.field(&sty, field)?;
                let offc = self.iconst(off as i64);
                let addr = self.emit(InstKind::Bin(BinOp::Add, base_addr, offc));
                Ok(LValue::Mem {
                    addr,
                    ty: fty,
                    dynamic: *dynamic && self.honor(),
                })
            }
            _ => self.err("expression is not an lvalue"),
        }
    }

    /// Evaluate an expression, but yield the *address* for array-typed
    /// lvalues (array-to-pointer decay).
    fn expr_or_array_addr(&mut self, e: &Expr) -> Result<(InstId, CType), LowerError> {
        // Only lvalue expressions can have array type.
        if matches!(
            e,
            Expr::Ident(_) | Expr::Deref { .. } | Expr::Index { .. } | Expr::Member { .. }
        ) {
            let lv = self.lvalue(e)?;
            if let LValue::Mem {
                addr,
                ty: CType::Array(elem, _),
                ..
            } = &lv
            {
                return Ok((*addr, CType::Ptr(elem.clone())));
            }
            return self.load_lvalue(lv);
        }
        self.expr(e)
    }

    fn load_lvalue(&mut self, lv: LValue) -> Result<(InstId, CType), LowerError> {
        let (v, t) = self.load_lvalue_ref(&lv)?;
        Ok((v, t))
    }

    fn load_lvalue_ref(&mut self, lv: &LValue) -> Result<(InstId, CType), LowerError> {
        match lv {
            LValue::Var(v, ty) => Ok((self.emit(InstKind::GetVar(*v)), ty.clone())),
            LValue::Mem { addr, ty, dynamic } => match ty {
                CType::Array(elem, _) => {
                    // Decay: the "value" of an array lvalue is its address.
                    Ok((*addr, CType::Ptr(elem.clone())))
                }
                CType::Struct(_) => self.err("cannot load a whole struct"),
                _ => {
                    let size = mem_size(self.types, ty)?;
                    let sign = if ty.is_signed() {
                        Signedness::Signed
                    } else {
                        Signedness::Unsigned
                    };
                    let float = *ty == CType::Double;
                    let v = self.emit(InstKind::Load {
                        size,
                        sign,
                        addr: *addr,
                        dynamic: *dynamic,
                        float,
                    });
                    Ok((v, ty.clone()))
                }
            },
        }
    }

    fn store_lvalue(&mut self, lv: &LValue, value: InstId) -> Result<(), LowerError> {
        match lv {
            LValue::Var(v, ty) => {
                // Maintain the invariant that narrow variables hold their
                // extended value.
                let value = match ty {
                    CType::Int { size, signed } if *size < 8 => {
                        let op = if *signed {
                            UnOp::Sext(size * 8)
                        } else {
                            UnOp::Zext(size * 8)
                        };
                        self.emit(InstKind::Un(op, value))
                    }
                    _ => value,
                };
                self.emit(InstKind::SetVar(*v, value));
                Ok(())
            }
            LValue::Mem { addr, ty, .. } => {
                if matches!(ty, CType::Struct(_) | CType::Array(..)) {
                    return self.err("cannot assign whole structs/arrays");
                }
                let size = mem_size(self.types, ty)?;
                let float = *ty == CType::Double;
                self.emit(InstKind::Store {
                    size,
                    addr: *addr,
                    val: value,
                    float,
                });
                Ok(())
            }
        }
    }
}

fn lv_type(lv: &LValue) -> &CType {
    match lv {
        LValue::Var(_, t) => t,
        LValue::Mem { ty, .. } => ty,
    }
}

/// Integer promotion: narrow integers compute as full-width `int`.
fn promote(t: &CType) -> CType {
    match t {
        CType::Int { size, signed } if *size < 8 => CType::Int {
            size: 8,
            signed: *signed,
        },
        other => other.clone(),
    }
}
