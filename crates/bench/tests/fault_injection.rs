//! Background-worker fault injection: a panicking stitch job must never
//! abort the session. The worker catches the panic (`catch_unwind`), the
//! job resolves as `Failed`, the region is pinned to its statically
//! compiled fallback copy permanently, a `BgFailed` event is traced, and
//! the session's results stay bit-identical to a synchronous run.

use dyncomp::measure::run_session;
use dyncomp::{
    Compiler, EngineOptions, EventKind, FailureKind, FaultPlan, FaultPoint, Injection, Session,
    TieredOptions, TraceOptions,
};
use dyncomp_bench::kernels::calculator;
use std::sync::Arc;

/// A fault plan panicking the first background stitch job for `region`.
fn panic_plan(region: u16) -> FaultPlan {
    FaultPlan {
        seed: 0,
        injections: vec![Injection {
            region: Some(region),
            ..Injection::new(FaultPoint::WorkerPanic)
        }],
    }
}

fn traced_tiered(faults: Option<FaultPlan>) -> EngineOptions {
    EngineOptions {
        trace: Some(TraceOptions::default()),
        tiered: Some(TieredOptions {
            workers: 2,
            ..TieredOptions::default()
        }),
        faults,
        ..EngineOptions::default()
    }
}

/// Run the calculator workload on a session we can inspect afterwards.
fn run_inspectable(options: EngineOptions) -> (u64, Session) {
    let setup = calculator::setup(80);
    let program = Arc::new(Compiler::tiered().compile(setup.src).expect("compiles"));
    let mut session = Session::with_options(Arc::clone(&program), options);
    let prepared = (setup.prepare)(&mut session);
    let mut checksum = 0u64;
    for i in 0..setup.iterations {
        let args = (setup.args)(i, &prepared);
        let r = session
            .call(setup.func, &args)
            .expect("session must survive background failures");
        checksum = checksum.wrapping_mul(1099511628211).wrapping_add(r);
    }
    (checksum, session)
}

#[test]
fn background_worker_panic_does_not_abort_the_session() {
    let setup = calculator::setup(80);
    let sync_prog = Arc::new(Compiler::new().compile(setup.src).expect("compiles"));
    let sync = run_session(&sync_prog, &setup, EngineOptions::default()).expect("runs");

    let (checksum, session) = run_inspectable(traced_tiered(Some(panic_plan(0))));
    assert_eq!(
        checksum, sync.checksum,
        "results must be bit-identical despite the worker panic"
    );

    // The region is pinned to the static fallback forever: no installs,
    // every entry runs the fallback copy.
    assert!(session.region_pinned(0), "region pinned after panic");
    let msg = session
        .last_background_failure()
        .expect("failure message recorded");
    assert!(
        msg.contains("injected background stitch panic"),
        "panic payload surfaced: {msg}"
    );
    let report = session.region_report(0);
    assert_eq!(report.bg_installs, 0, "nothing installed from a dead path");
    assert_eq!(
        report.stitches, 0,
        "no synchronous re-stitch either: pinned"
    );
    assert!(
        report.fallback_runs >= setup.iterations,
        "every entry served by the fallback ({} runs)",
        report.fallback_runs
    );

    // The health log attributes the failure to the fault plan.
    let health = session.health();
    assert_eq!(health.total_failures, 1);
    assert_eq!(health.faults_injected, 1);
    let rec = &health.failures[0];
    assert_eq!(rec.region, 0);
    assert!(rec.injected, "failure marked as plan-injected");
    assert_eq!(rec.kind, FailureKind::Background { panicked: true });

    // The trace records exactly one BgFailed with panicked=true, stamped
    // on the session clock, and the aggregates agree with the reports.
    let t = session.trace().expect("tracing on");
    let panics = t
        .events()
        .filter(|e| matches!(e.kind, EventKind::BgFailed { panicked: true, .. }))
        .count();
    assert_eq!(panics, 1, "one failed job, one BgFailed event");
    assert_eq!(t.profiles()[0].bg_failed, 1);
    session.trace_self_check().expect("attribution still exact");
}

#[test]
fn panic_free_control_run_installs_background_code() {
    // Same workload without injection: the background path works, the
    // region is not pinned, and no failure is recorded.
    let (checksum, session) = run_inspectable(traced_tiered(None));
    let setup = calculator::setup(80);
    let sync_prog = Arc::new(Compiler::new().compile(setup.src).expect("compiles"));
    let sync = run_session(&sync_prog, &setup, EngineOptions::default()).expect("runs");
    assert_eq!(checksum, sync.checksum);
    assert!(!session.region_pinned(0));
    assert_eq!(session.last_background_failure(), None);
    let report = session.region_report(0);
    assert!(report.bg_installs > 0, "background install landed");
    let t = session.trace().expect("tracing on");
    assert_eq!(t.profiles()[0].bg_failed, 0);
    session.trace_self_check().expect("attribution exact");
}
