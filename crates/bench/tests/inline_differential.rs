//! Differential gate for demand-driven inlining.
//!
//! For every kernel — the paper's five plus the two cross-function
//! inlining workloads — the dynamic version must produce bit-identical
//! checksums with the pass off and on (each measurement additionally
//! cross-checks against the static baseline inside the harness). The
//! paper kernels keep all work inside one function, so inlining must
//! find no demand there and leave the compiled artifact — and therefore
//! the committed `BENCH_table2.json` — byte-identical.

use dyncomp::{measure_kernel_full, measure_kernel_with, Compiler, EngineOptions, KernelSetup};
use dyncomp_bench::kernels::{calculator, dispatch, protomsg, queryexec, smatmul, sorter, spmv};
use dyncomp_bench::{render_table2_json, run_all, Scale};

const DEPTH: u32 = 2;

/// Checksums (and for the paper kernels, cycles) with inlining off vs on.
fn differential(setup: &KernelSetup<'_>, expect_sites: bool) {
    let off = measure_kernel_with(setup, EngineOptions::default()).unwrap();
    let on = measure_kernel_full(
        setup,
        &Compiler::with_inline_depth(DEPTH),
        EngineOptions::default(),
    )
    .unwrap();
    assert_eq!(
        off.checksum, on.checksum,
        "inlining changed {}'s results",
        setup.func
    );
    if !expect_sites {
        // No demand: the pass must be a perfect no-op, cycles included.
        assert_eq!(off.dynamic_cycles, on.dynamic_cycles, "{}", setup.func);
        assert_eq!(off.stitch_cycles, on.stitch_cycles, "{}", setup.func);
    } else {
        assert!(
            on.dynamic_cycles < off.dynamic_cycles,
            "{}: inlining must improve cycles ({} vs {})",
            setup.func,
            on.dynamic_cycles,
            off.dynamic_cycles
        );
    }
}

#[test]
fn paper_kernels_checksums_unchanged_by_inlining() {
    differential(&calculator::setup(60), false);
    differential(&smatmul::setup(8, 16, 8), false);
    differential(&spmv::setup(12, 3, 20), false);
    differential(&dispatch::setup(10, 50), false);
    differential(&sorter::setup(40, 4, 5), false);
}

#[test]
fn inline_workloads_checksums_unchanged_and_cycles_improve() {
    differential(&protomsg::setup(8, 40), true);
    differential(&queryexec::setup(6, 30, 5), true);
}

/// The paper kernels contain no region-crossing calls, so even with the
/// pass enabled the compiled artifact must be word-for-word identical —
/// this is what keeps the committed `BENCH_table2.json` byte-stable.
#[test]
fn paper_kernel_artifacts_identical_with_pass_enabled() {
    for (name, src) in [
        ("calculator", calculator::SRC),
        ("smatmul", smatmul::SRC),
        ("spmv", spmv::SRC),
        ("dispatch", dispatch::SRC),
        ("sorter", sorter::SRC),
    ] {
        let p0 = Compiler::new().compile(src).unwrap();
        let p2 = Compiler::with_inline_depth(DEPTH).compile(src).unwrap();
        assert!(p2.inline_sites.is_empty(), "{name}: unexpected demand");
        assert_eq!(
            p0.compiled.code, p2.compiled.code,
            "{name}: enabling the pass changed the compiled artifact"
        );
    }
}

/// The default compiler (depth 0) must keep the Table 2 rows exactly
/// reproducible — the smoke-scale analogue of CI's paper-scale
/// `table2 --check BENCH_table2.json` drift gate.
#[test]
fn default_mode_table2_rows_are_deterministic() {
    let a = render_table2_json(&run_all(Scale::Smoke).unwrap());
    let b = render_table2_json(&run_all(Scale::Smoke).unwrap());
    assert_eq!(a, b);
}
