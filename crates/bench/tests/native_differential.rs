//! VM-differential oracle for the host-native backend: every paper
//! kernel, in every execution mode, must produce **bit-identical**
//! checksums and simulated cycles with [`EngineOptions::native`] on and
//! off — the native backend is a pure host-speed substitution, with the
//! VM as the cycle oracle.
//!
//! The expected checksums are additionally pinned to the committed
//! `BENCH_table2_smoke.json`, so a native-backend regression cannot
//! hide behind a matching-but-wrong pair of runs.
//!
//! On hosts without the backend (non-x86-64) the native half runs on
//! the VM too and the differential degenerates to a self-check; the
//! pinned-checksum assertions still hold.

use dyncomp::{run_session_differential, Compiler, EngineOptions, KernelSetup, TieredOptions};
use dyncomp_bench::kernels::{calculator, dispatch, protomsg, queryexec, smatmul, sorter, spmv};
use std::sync::Arc;

/// The smoke-scale Table 2 configurations, in `BENCH_table2_smoke.json`
/// row order.
fn smoke_setups() -> Vec<(&'static str, KernelSetup<'static>)> {
    vec![
        ("calculator", calculator::setup(80)),
        ("smatmul", smatmul::setup(8, 16, 8)),
        ("spmv 12x12", spmv::setup(12, 3, 20)),
        ("spmv 8x8", spmv::setup(8, 2, 20)),
        ("dispatch", dispatch::setup(10, 60)),
        ("sorter 4-key", sorter::setup(40, 4, 5)),
        ("sorter 12-key", sorter::setup(40, 12, 5)),
    ]
}

/// Checksums pinned in the committed smoke reference, parsed with a
/// string scan (the workspace takes no JSON dependency).
fn committed_checksums() -> Vec<u64> {
    let doc = include_str!("../../../BENCH_table2_smoke.json");
    let mut out = Vec::new();
    for part in doc.split("\"checksum\": ").skip(1) {
        let digits: String = part.chars().take_while(char::is_ascii_digit).collect();
        out.push(digits.parse::<u64>().expect("checksum field is a u64"));
    }
    out
}

fn tiered_options(speculate: bool) -> EngineOptions {
    EngineOptions {
        tiered: Some(TieredOptions {
            workers: 1,
            speculate,
            ..TieredOptions::default()
        }),
        ..EngineOptions::default()
    }
}

/// One mode's sweep over all seven smoke configurations: run the
/// differential (which itself asserts checksum and cycle equality
/// between the backends) and pin the agreed checksum to the committed
/// reference.
fn sweep(mode: &str, options: &EngineOptions, tiered_artifact: bool) {
    let expected = committed_checksums();
    assert_eq!(expected.len(), 7, "smoke reference has seven rows");
    let mut native_served = 0u64;
    for ((name, setup), want) in smoke_setups().into_iter().zip(expected) {
        let compiler = if tiered_artifact {
            Compiler::tiered()
        } else {
            Compiler::new()
        };
        let program = Arc::new(compiler.compile(setup.src).expect("kernel compiles"));
        let d = run_session_differential(&program, &setup, options.clone())
            .unwrap_or_else(|e| panic!("{name} ({mode}): {e}"));
        assert_eq!(
            d.native.outcome.checksum, want,
            "{name} ({mode}): native checksum drifted from BENCH_table2_smoke.json"
        );
        assert!(
            d.native.native.enabled,
            "{name} ({mode}): native half must request the backend"
        );
        native_served += d.native.native.entries;
    }
    // On supported hosts the backend must actually serve dispatches
    // across the sweep — a silently-disabled backend would make the
    // differential vacuous.
    if cfg!(all(target_arch = "x86_64", target_os = "linux")) {
        assert!(
            native_served > 0,
            "({mode}): native backend never dispatched on a supported host"
        );
    }
}

#[test]
fn sync_mode_matches_oracle_and_reference() {
    // Chaining is on by default: this is the chained-mode sweep.
    sweep("sync", &EngineOptions::default(), false);
}

#[test]
fn unchained_mode_matches_oracle_and_reference() {
    // `--no-native-chain` ablation: the per-instance dispatch path must
    // still match the oracle and the committed reference on its own.
    let options = EngineOptions {
        native_chain: false,
        ..EngineOptions::default()
    };
    sweep("unchained", &options, false);
}

#[test]
fn tiered_mode_matches_oracle_and_reference() {
    sweep("tiered", &tiered_options(false), true);
}

#[test]
fn speculate_mode_matches_oracle_and_reference() {
    sweep("speculate", &tiered_options(true), true);
}

/// The cross-function inlining workloads — whose opened regions span
/// call boundaries — must match the oracle in both chain modes, and the
/// two modes must agree with each other (chaining is a pure host-speed
/// substitution; every simulated quantity is identical).
#[test]
fn inline_workloads_match_oracle_in_both_chain_modes() {
    for (name, setup) in [
        ("protomsg", protomsg::setup(8, 40)),
        ("queryexec", queryexec::setup(6, 30, 5)),
    ] {
        let program = Arc::new(
            Compiler::with_inline_depth(2)
                .compile(setup.src)
                .expect("kernel compiles"),
        );
        let chained = run_session_differential(&program, &setup, EngineOptions::default())
            .unwrap_or_else(|e| panic!("{name} (chained): {e}"));
        let unchained_opts = EngineOptions {
            native_chain: false,
            ..EngineOptions::default()
        };
        let unchained = run_session_differential(&program, &setup, unchained_opts)
            .unwrap_or_else(|e| panic!("{name} (unchained): {e}"));
        assert_eq!(
            chained.native.outcome.checksum, unchained.native.outcome.checksum,
            "{name}: chain mode changed the checksum"
        );
        assert_eq!(
            chained.native.outcome.total_cycles, unchained.native.outcome.total_cycles,
            "{name}: chain mode changed simulated cycles"
        );
    }
}

/// The tentpole's observable effect: with chaining on, the sorter's
/// VM-dispatched native entries collapse to roughly its iteration count
/// (control stays native across the comparator's exit-and-re-enter
/// loop), while the unchained session re-dispatches every comparison.
#[test]
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
fn chained_sorter_collapses_vm_dispatches() {
    let setup = sorter::setup(40, 4, 5);
    let program = Arc::new(Compiler::new().compile(setup.src).expect("compiles"));
    let d = run_session_differential(&program, &setup, EngineOptions::default()).expect("runs");
    let unchained_opts = EngineOptions {
        native_chain: false,
        ..EngineOptions::default()
    };
    let u = run_session_differential(&program, &setup, unchained_opts).expect("runs");
    let (chained, unchained) = (d.native.native, u.native.native);
    assert!(
        chained.chained > 0,
        "sorter must chain transfers: {chained:?}"
    );
    assert!(
        chained.entries * 50 < unchained.entries,
        "chaining must collapse VM dispatches ({} vs {})",
        chained.entries,
        unchained.entries
    );
}

/// The native backend installs real instances and reports coverage on a
/// supported host: counters in the report line up with what a session
/// did, not just with the oracle.
#[test]
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
fn native_report_counts_installs_and_coverage() {
    let setup = calculator::setup(80);
    let program = Arc::new(Compiler::new().compile(setup.src).expect("compiles"));
    let options = EngineOptions {
        native: true,
        ..EngineOptions::default()
    };
    let run = dyncomp::run_session_timed(&program, &setup, options).expect("runs");
    let n = run.native;
    assert!(n.enabled && n.active, "backend stays active: {n:?}");
    assert!(n.installs > 0, "at least one instance installs: {n:?}");
    assert!(n.entries > 0, "dispatches are served: {n:?}");
    assert!(n.bytes > 0, "arena holds installed bytes: {n:?}");
    assert!(
        n.covered_instructions > 0 && n.covered_instructions <= n.translated_instructions,
        "coverage counters are sane: {n:?}"
    );
}
