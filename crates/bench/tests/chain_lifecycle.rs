//! Lifecycle of direct-threaded native chains: instances that have been
//! chained into the dispatch web must be severable at any point —
//! keyed-cache eviction, quarantine, and byte-budget degradation all
//! tear down live chain targets mid-session — and the session must keep
//! computing bit-identical results through the slower surviving paths,
//! with no genuine fault ever recorded.
//!
//! The workload is a keyed specialization entered from a loop, so every
//! call bounces between the region instance and the enclosing static
//! code: exactly the pattern the chaining layer collapses (and therefore
//! the pattern whose links the teardown paths must sever correctly).

use dyncomp::{Compiler, EngineOptions, FaultPlan, FaultPoint, Injection, RecoveryPolicy, Session};
use std::sync::Arc;

/// A keyed region entered eight times per call: the enclosing loop makes
/// every `sweep` call re-dispatch into native code repeatedly, tripping
/// the bounce heuristic and chaining region exits, function returns, and
/// (guards permitting) region entries.
const KEYED_SWEEP: &str = "int poly(int c, int x) {
    dynamicRegion key(c) (c) {
        return c * x * x + c * x + c;
    }
}
int sweep(int c, int n) {
    int acc = 0;
    int i;
    for (i = 0; i < n; i++) {
        acc = acc * 31 + poly(c, 10 + i);
    }
    return acc;
}";

/// Drive `sweep` over `keys` distinct key values, three rounds each, so
/// chained instances are re-entered after later keys have installed (and
/// possibly evicted or severed) other instances.
fn drive(session: &mut Session, keys: u64) -> u64 {
    let mut checksum = 0u64;
    for _round in 0..3u64 {
        for c in 1..=keys {
            let r = session
                .call("sweep", &[c, 8])
                .expect("severed sessions must still answer");
            checksum = checksum.wrapping_mul(1099511628211).wrapping_add(r);
        }
    }
    checksum
}

fn run(options: EngineOptions, keys: u64) -> (u64, Session) {
    let program = Arc::new(Compiler::tiered().compile(KEYED_SWEEP).expect("compiles"));
    let mut session = Session::with_options(program, options);
    let checksum = drive(&mut session, keys);
    (checksum, session)
}

fn native_options() -> EngineOptions {
    EngineOptions {
        native: true,
        ..EngineOptions::default()
    }
}

/// On a supported host the workload must actually chain — otherwise the
/// teardown assertions below would pass vacuously.
fn assert_chained(session: &Session, what: &str) {
    if cfg!(all(target_arch = "x86_64", target_os = "linux")) {
        let n = session.native_report();
        assert!(n.active, "{what}: backend active: {n:?}");
        assert!(
            n.chained > 0,
            "{what}: the loop workload must chain before teardown: {n:?}"
        );
    }
}

/// Keyed-cache eviction severs the evicted instance's chains: with a
/// two-entry cache and four keys cycling, every round evicts live chain
/// targets, later rounds re-stitch and re-chain the same keys at fresh
/// bases, and no stale link ever outlives its target.
#[test]
fn chain_then_evict_keeps_results_identical() {
    let (clean, _) = run(EngineOptions::default(), 4);
    let options = EngineOptions {
        keyed_cache_capacity: Some(2),
        ..native_options()
    };
    let (checksum, session) = run(options, 4);
    assert_eq!(checksum, clean, "eviction-severed chains change no result");
    assert!(
        session.region_report(0).evictions > 0,
        "four keys through a two-entry cache must evict"
    );
    let health = session.health();
    assert_eq!(health.faults_injected, 0, "no plan armed");
    assert!(
        health.failures.is_empty(),
        "severing is routine bookkeeping, not a fault: {:?}",
        health.failures
    );
    assert_chained(&session, "evict");
}

/// Quarantine severs every chained instance of the condemned region:
/// the first key installs and chains, injected set-up traps on later
/// keys push the region over the quarantine threshold, and from then on
/// the static fallback copy serves — bit-identically.
#[test]
fn chain_then_quarantine_keeps_results_identical() {
    let (clean, _) = run(EngineOptions::default(), 6);
    let options = EngineOptions {
        faults: Some(FaultPlan {
            seed: 1,
            injections: vec![Injection {
                max_fires: u32::MAX,
                ..Injection::new(FaultPoint::SetupVmTrap)
            }],
        }),
        recovery: RecoveryPolicy {
            max_retries: 0,
            quarantine_after: 2,
            ..RecoveryPolicy::default()
        },
        ..native_options()
    };
    let (checksum, session) = run(options, 6);
    assert_eq!(
        checksum, clean,
        "quarantine-severed chains change no result"
    );
    let health = session.health();
    assert_eq!(health.quarantined, vec![0], "region 0 quarantined");
    assert!(
        health.failures.iter().all(|f| f.injected),
        "every recorded failure is injected, none genuine: {:?}",
        health.failures
    );
    assert!(
        session.region_report(0).fallback_runs > 0,
        "post-quarantine keys run the fallback copy"
    );
    assert_chained(&session, "quarantine");
}

/// Byte-budget degradation (ladder level 2) severs the region's native
/// instances: the budget is sized so early keys install and chain, a
/// later install crosses the full budget, and the remaining keys run
/// the fallback copy — bit-identically, with no failure recorded (the
/// ladder is policy, not a fault).
#[test]
fn chain_then_budget_degrade_keeps_results_identical() {
    let (clean, probe) = run(native_options(), 8);
    let installed = probe.health().code_bytes_installed;
    let (vm_clean, _) = run(EngineOptions::default(), 8);
    assert_eq!(clean, vm_clean, "native backend changes no result");

    let options = EngineOptions {
        recovery: RecoveryPolicy {
            code_budget_bytes: Some(installed / 2),
            ..RecoveryPolicy::default()
        },
        ..native_options()
    };
    let (checksum, session) = run(options, 8);
    assert_eq!(checksum, clean, "budget-severed chains change no result");
    let health = session.health();
    assert_eq!(health.degradation_level, 2, "half the footprint exhausts");
    assert!(
        health.failures.is_empty(),
        "degradation is policy, not a fault: {:?}",
        health.failures
    );
    assert!(
        session.region_report(0).fallback_runs > 0,
        "past-budget keys run the fallback copy"
    );
    assert_chained(&session, "budget");
}
