//! The artifact/session determinism suite: many sessions over one shared
//! `Arc<Program>` must be *bit-identical* — same results, same per-session
//! simulated cycle counts, same region reports — whether they run on one
//! thread or eight. The simulated machine is fully deterministic; the
//! artifact/session split must not leak any host-side nondeterminism
//! (thread scheduling, allocation addresses) into simulated state.

use dyncomp::{run_session, Compiler, EngineOptions, KernelSetup, Program, SessionOutcome};
use dyncomp_bench::kernels::{calculator, dispatch, smatmul, sorter, spmv};
use std::sync::Arc;

const THREADS: usize = 8;

/// All five paper kernels at smoke scale.
fn workloads() -> Vec<(&'static str, KernelSetup<'static>)> {
    vec![
        ("calculator", calculator::setup(40)),
        ("smatmul", smatmul::setup(8, 16, 8)),
        ("spmv", spmv::setup(12, 3, 10)),
        ("dispatch", dispatch::setup(10, 30)),
        ("sorter", sorter::setup(40, 4, 3)),
    ]
}

/// Run one session per thread concurrently; return every outcome.
fn run_threaded(
    program: &Arc<Program>,
    setup: &KernelSetup<'_>,
    options: &EngineOptions,
) -> Vec<SessionOutcome> {
    let mut outcomes: Vec<Option<SessionOutcome>> = (0..THREADS).map(|_| None).collect();
    std::thread::scope(|s| {
        for slot in outcomes.iter_mut() {
            s.spawn(|| {
                *slot = Some(run_session(program, setup, options.clone()).expect("session runs"));
            });
        }
    });
    outcomes
        .into_iter()
        .map(|o| o.expect("slot filled"))
        .collect()
}

/// 8 threads × shared `Arc<Program>`, default options: every session is
/// bit-identical to the single-threaded run on all five paper kernels —
/// checksum, simulated cycle counts, and full per-region reports.
#[test]
fn eight_threads_bit_identical_to_single_threaded() {
    for (name, setup) in workloads() {
        let program = Arc::new(Compiler::new().compile(setup.src).expect("compiles"));
        let reference =
            run_session(&program, &setup, EngineOptions::default()).expect("reference runs");
        let outcomes = run_threaded(&program, &setup, &EngineOptions::default());
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(
                *o, reference,
                "{name}: session {i} of {THREADS} diverged from the single-threaded run"
            );
        }
    }
}

/// The same holds with the shared stitched-code cache enabled *for the
/// results*: cycle counts may differ between sessions (whoever stitches
/// first pays set-up; later sessions pay the cheaper install), but every
/// session must still compute identical checksums.
#[test]
fn shared_cache_preserves_results_across_threads() {
    for (name, setup) in workloads() {
        let program = Arc::new(Compiler::new().compile(setup.src).expect("compiles"));
        let reference =
            run_session(&program, &setup, EngineOptions::default()).expect("reference runs");
        let options = EngineOptions {
            shared_cache: Some(Arc::new(dyncomp::SharedCodeCache::default())),
            ..EngineOptions::default()
        };
        let outcomes = run_threaded(&program, &setup, &options);
        let mut total_stitches = 0u64;
        let mut total_shared_hits = 0u64;
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(
                o.checksum, reference.checksum,
                "{name}: session {i} computed a different result under the shared cache"
            );
            for r in &o.reports {
                total_stitches += u64::from(r.stitches);
                total_shared_hits += r.shared_hits;
            }
        }
        let reference_stitches: u64 = reference
            .reports
            .iter()
            .map(|r| u64::from(r.stitches))
            .sum();
        // Reuse must actually happen: eight sessions need strictly fewer
        // stitches than eight independent runs would perform.
        assert!(
            total_stitches < THREADS as u64 * reference_stitches,
            "{name}: no cross-session reuse ({total_stitches} stitches, \
             {total_shared_hits} shared hits)"
        );
        assert!(
            total_shared_hits > 0,
            "{name}: expected at least one shared-cache hit"
        );
    }
}

/// Tiered mode must not weaken the determinism guarantee: background
/// stitch workers make wall-clock progress, but install visibility is
/// decided on virtual clocks, so eight threaded sessions with tiering
/// (and speculation) are still bit-identical to the single-threaded run —
/// checksums, cycle counts, and full reports including tiered counters.
#[test]
fn eight_threads_bit_identical_with_tiering() {
    for (name, setup) in workloads() {
        let program = Arc::new(Compiler::tiered().compile(setup.src).expect("compiles"));
        for speculate in [false, true] {
            let options = EngineOptions {
                tiered: Some(dyncomp::TieredOptions {
                    workers: 2,
                    speculate,
                    ..dyncomp::TieredOptions::default()
                }),
                ..EngineOptions::default()
            };
            let reference = run_session(&program, &setup, options.clone()).expect("reference runs");
            let outcomes = run_threaded(&program, &setup, &options);
            for (i, o) in outcomes.iter().enumerate() {
                assert_eq!(
                    *o, reference,
                    "{name} (speculate={speculate}): tiered session {i} of {THREADS} \
                     diverged from the single-threaded run"
                );
            }
        }
    }
}
