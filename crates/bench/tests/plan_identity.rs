//! The copy-and-patch stitch-plan path must be **bit-identical** to the
//! interpretive directive-walking path: for each of the paper's five
//! kernels, running the full workload with plans on and off must produce
//! the same call results and the exact same stitched code words for every
//! region instance. Plans only change *how fast* the stitcher produces
//! code, never the code.

use dyncomp::{Compiler, Engine, EngineOptions};
use dyncomp_bench::kernels::{calculator, dispatch, smatmul, sorter, spmv};
use dyncomp_stitcher::StitchOptions;

/// Per-kernel workload: source, entry function, heap preparation, and the
/// argument vector for each call.
type Prepare = Box<dyn Fn(&mut Engine) -> Vec<u64>>;
type Calls = Box<dyn Fn(u64, &[u64]) -> Vec<u64>>;

struct Workload {
    name: &'static str,
    src: &'static str,
    func: &'static str,
    prepare: Prepare,
    calls: Calls,
    n_calls: u64,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "calculator",
            src: calculator::SRC,
            func: "calc",
            prepare: Box::new(|e| vec![calculator::build_program(e)]),
            calls: Box::new(|i, p| vec![p[0], 3 + i, 7 + 2 * i]),
            n_calls: 6,
        },
        Workload {
            name: "smatmul",
            src: smatmul::SRC,
            func: "smatmul",
            prepare: Box::new(|e| {
                let (src, dst, len) = smatmul::build_matrices(e, 8, 16);
                vec![src, dst, len]
            }),
            calls: Box::new(|i, p| vec![i + 1, p[2], p[0], p[1]]),
            n_calls: 5,
        },
        Workload {
            name: "spmv",
            src: spmv::SRC,
            func: "spmv",
            prepare: Box::new(|e| {
                let m = spmv::gen_matrix(16, 3, 42);
                let (mp, xp, yp) = spmv::build(e, &m);
                vec![mp, xp, yp]
            }),
            calls: Box::new(|_, p| vec![p[0], p[1], p[2]]),
            n_calls: 3,
        },
        Workload {
            name: "dispatcher",
            src: dispatch::SRC,
            func: "dispatch",
            prepare: Box::new(|e| {
                let t = dispatch::gen_guards(10, 11);
                vec![dispatch::build(e, &t)]
            }),
            calls: Box::new(|i, p| vec![p[0], 13 + i, 2]),
            n_calls: 6,
        },
        Workload {
            name: "sorter",
            src: sorter::SRC,
            func: "sortrecs",
            prepare: Box::new(|e| {
                let recs = sorter::gen_records(40, 4, 5);
                let (spec, master, work, n) = sorter::build(e, &recs);
                vec![spec, master, work, n]
            }),
            calls: Box::new(|_, p| vec![p[0], p[1], p[2], p[3]]),
            n_calls: 2,
        },
    ]
}

/// Stitched history for every region: `(key, code words)` per instance,
/// plus the call results and the plan hit/miss totals.
#[allow(clippy::type_complexity)]
fn run(w: &Workload, plans: bool) -> (Vec<u64>, Vec<Vec<(Vec<u64>, Vec<u32>)>>, u32, u32) {
    let program = Compiler::new().compile(w.src).expect("compiles");
    let options = EngineOptions {
        stitch: StitchOptions {
            plans,
            ..StitchOptions::default()
        },
        ..EngineOptions::default()
    };
    let mut engine = Engine::with_options(&program, options);
    let prepared = (w.prepare)(&mut engine);
    let mut results = Vec::new();
    for i in 0..w.n_calls {
        let args = (w.calls)(i, &prepared);
        results.push(engine.call(w.func, &args).expect("runs"));
    }
    let mut instances = Vec::new();
    let (mut hits, mut misses) = (0, 0);
    for r in 0..program.region_count() {
        instances.push(
            engine
                .stitched_instances(r)
                .into_iter()
                .map(|(k, c)| (k.to_vec(), c.to_vec()))
                .collect::<Vec<_>>(),
        );
        let stats = engine.region_report(r).stitch_stats;
        hits += stats.plan_hits;
        misses += stats.plan_misses;
    }
    (results, instances, hits, misses)
}

#[test]
fn plan_path_bit_identical_across_paper_kernels() {
    for w in workloads() {
        let (res_plan, inst_plan, hits, _misses) = run(&w, true);
        let (res_interp, inst_interp, ihits, imisses) = run(&w, false);
        assert_eq!(
            res_plan, res_interp,
            "{}: call results differ with plans on",
            w.name
        );
        assert_eq!(
            inst_plan.len(),
            inst_interp.len(),
            "{}: region count differs",
            w.name
        );
        for (r, (a, b)) in inst_plan.iter().zip(&inst_interp).enumerate() {
            assert_eq!(
                a, b,
                "{}: region {} stitched instances differ (keys or code words)",
                w.name, r
            );
        }
        assert!(
            hits > 0,
            "{}: expected at least one plan hit (got 0)",
            w.name
        );
        assert_eq!(
            (ihits, imisses),
            (0, 0),
            "{}: plans-off run must never touch the plan path",
            w.name
        );
    }
}

/// Keyed region whose key value is patched straight into the code: small
/// keys fit the 8-bit inline literal (and hit the recorded plan), larger
/// ones must fail the plan's applicability check and take the
/// interpretive path.
const ADVERSARIAL_LIT_SRC: &str = r#"
    int f(int k, int x) {
        dynamicRegion key(k) (k) {
            return x + k;
        }
    }
"#;

#[test]
fn plan_path_bit_identical_on_adversarial_literals() {
    // Crosses the 8-bit literal boundary (the old plan patcher truncated
    // `v as u8`), plus full-width and sign-bit-set values.
    let keys: [u64; 8] = [3, 200, 255, 256, 300, 70_000, 1 << 40, u64::MAX];
    let w = Workload {
        name: "adversarial literals",
        src: ADVERSARIAL_LIT_SRC,
        func: "f",
        prepare: Box::new(|_| vec![]),
        calls: Box::new(move |i, _| vec![keys[i as usize], 10]),
        n_calls: keys.len() as u64,
    };
    let (res_plan, inst_plan, hits, misses) = run(&w, true);
    let (res_interp, inst_interp, _, _) = run(&w, false);
    assert_eq!(res_plan, res_interp, "results differ with plans on");
    assert_eq!(inst_plan, inst_interp, "stitched code differs");
    // Expected semantics, independently: x + k wrapping.
    for (i, &k) in keys.iter().enumerate() {
        assert_eq!(res_plan[i], k.wrapping_add(10), "key {k}");
    }
    assert!(hits > 0, "small keys should hit the plan");
    assert!(
        misses > 0,
        "out-of-range keys must miss the plan, not truncate"
    );
}

#[test]
fn plan_path_bit_identical_beyond_displacement_range() {
    // A sparse matrix with well over 1024 distinct float values pushes
    // linearized-table offsets past the 14-bit displacement range
    // (±8 KiB), forcing the far-entry sequence — the old memdisp patcher
    // masked such offsets to 14 bits.
    let w = Workload {
        name: "far table offsets",
        src: spmv::SRC,
        func: "spmv",
        prepare: Box::new(|e| {
            let m = spmv::gen_matrix(56, 28, 13);
            assert!(
                m.val.len() > 1100,
                "need >1024 distinct table values, got {}",
                m.val.len()
            );
            let (mp, xp, yp) = spmv::build(e, &m);
            vec![mp, xp, yp]
        }),
        calls: Box::new(|_, p| vec![p[0], p[1], p[2]]),
        n_calls: 2,
    };
    let (res_plan, inst_plan, _, _) = run(&w, true);
    let (res_interp, inst_interp, _, _) = run(&w, false);
    assert_eq!(res_plan, res_interp, "results differ with plans on");
    assert_eq!(inst_plan, inst_interp, "stitched code differs");
}
