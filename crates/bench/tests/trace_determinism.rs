//! Trace determinism: the observability layer must be a pure observer.
//!
//! * Tracing the same workload twice yields **byte-identical** JSONL and
//!   Chrome documents (events carry simulated cycle stamps, never wall
//!   clocks, thread ids, or addresses).
//! * Tiered traces are stamped from the session / virtual-worker clocks,
//!   so they are identical across *host* thread counts, and — whenever at
//!   most one job is ever in flight — across virtual worker counts too.
//! * Turning tracing on does not perturb measurement: the Table 2 rows
//!   (and the committed `BENCH_table2_smoke.json`) are bit-identical with
//!   tracing enabled and disabled.

use dyncomp::measure::{run_session_profiled, KernelSetup, ProfiledSession};
use dyncomp::{Compiler, EngineOptions, Program, TieredOptions, TraceOptions};
use dyncomp_bench::kernels::{calculator, dispatch, smatmul, sorter, spmv};
use dyncomp_bench::{render_table2_json, run_all, run_all_with, Scale};
use std::sync::Arc;

fn traced() -> EngineOptions {
    EngineOptions {
        trace: Some(TraceOptions::default()),
        ..EngineOptions::default()
    }
}

fn tiered(workers: usize, speculate: bool) -> EngineOptions {
    EngineOptions {
        trace: Some(TraceOptions::default()),
        tiered: Some(TieredOptions {
            workers,
            speculate,
            ..TieredOptions::default()
        }),
        ..EngineOptions::default()
    }
}

/// The five paper kernels at smoke sizes, with programs compiled for the
/// requested lowering (tiered needs static fallback copies).
fn kernels(tiered: bool) -> Vec<(&'static str, Arc<Program>, KernelSetup<'static>)> {
    let setups = vec![
        ("calculator", calculator::setup(80)),
        ("smatmul", smatmul::setup(8, 16, 8)),
        ("spmv", spmv::setup(12, 3, 20)),
        ("dispatch", dispatch::setup(10, 60)),
        ("sorter", sorter::setup(40, 4, 5)),
    ];
    setups
        .into_iter()
        .map(|(name, setup)| {
            let compiler = if tiered {
                Compiler::tiered()
            } else {
                Compiler::new()
            };
            let program = Arc::new(compiler.compile(setup.src).expect("compiles"));
            (name, program, setup)
        })
        .collect()
}

fn profiled(
    program: &Arc<Program>,
    setup: &KernelSetup<'_>,
    options: EngineOptions,
) -> ProfiledSession {
    run_session_profiled(program, setup, options).expect("runs and passes self-check")
}

#[test]
fn tracing_twice_is_byte_identical() {
    for (name, program, setup) in kernels(false) {
        let a = profiled(&program, &setup, traced());
        let b = profiled(&program, &setup, traced());
        assert_eq!(a.jsonl, b.jsonl, "{name}: JSONL differs across runs");
        assert_eq!(
            a.chrome, b.chrome,
            "{name}: Chrome JSON differs across runs"
        );
        assert_eq!(a.outcome.checksum, b.outcome.checksum, "{name}: checksum");
        assert_eq!(a.dropped, 0, "{name}: smoke traces must fit the ring");
    }
}

#[test]
fn tiered_tracing_twice_is_byte_identical() {
    for (name, program, setup) in kernels(true) {
        for options in [tiered(2, false), tiered(2, true)] {
            let a = profiled(&program, &setup, options.clone());
            let b = profiled(&program, &setup, options.clone());
            assert_eq!(a.jsonl, b.jsonl, "{name}: tiered JSONL differs");
            assert_eq!(a.chrome, b.chrome, "{name}: tiered Chrome differs");
            assert_eq!(a.outcome.checksum, b.outcome.checksum, "{name}");
        }
    }
}

#[test]
fn single_region_traces_invariant_across_virtual_worker_counts() {
    // With one dynamic region there is never more than one job in flight,
    // so the virtual-worker assignment is forced and the trace must not
    // depend on the pool width.
    for (name, program, setup) in kernels(true) {
        if program.region_count() != 1 {
            continue;
        }
        let base = profiled(&program, &setup, tiered(1, false));
        for workers in [2, 4] {
            let wide = profiled(&program, &setup, tiered(workers, false));
            assert_eq!(
                base.jsonl, wide.jsonl,
                "{name}: trace depends on virtual worker count ({workers})"
            );
        }
    }
}

#[test]
fn traces_invariant_across_host_threads() {
    // Stamps come from simulated clocks, so eight host threads tracing
    // the same workload concurrently must all render the same bytes —
    // including under speculation, where many jobs overlap.
    let setup_src = smatmul::setup(8, 16, 8).src;
    let program = Arc::new(Compiler::tiered().compile(setup_src).expect("compiles"));
    let reference = {
        let setup = smatmul::setup(8, 16, 8);
        profiled(&program, &setup, tiered(2, true))
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let program = Arc::clone(&program);
                scope.spawn(move || {
                    let setup = smatmul::setup(8, 16, 8);
                    let p = run_session_profiled(&program, &setup, tiered(2, true))
                        .expect("runs and passes self-check");
                    (p.jsonl, p.chrome, p.outcome.checksum)
                })
            })
            .collect();
        for h in handles {
            let (jsonl, chrome, checksum) = h.join().expect("no panic");
            assert_eq!(jsonl, reference.jsonl, "JSONL differs across host threads");
            assert_eq!(
                chrome, reference.chrome,
                "Chrome differs across host threads"
            );
            assert_eq!(checksum, reference.outcome.checksum);
        }
    });
}

#[test]
fn tracing_does_not_perturb_table2() {
    let plain = run_all(Scale::Smoke).expect("untraced run");
    let observed = run_all_with(Scale::Smoke, traced()).expect("traced run");
    let plain_json = render_table2_json(&plain);
    let traced_json = render_table2_json(&observed);
    assert_eq!(
        plain_json, traced_json,
        "tracing changed the Table 2 measurements"
    );
    let committed = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_table2_smoke.json"
    ))
    .expect("committed smoke artifact present");
    assert_eq!(
        traced_json, committed,
        "traced smoke run drifted from the committed BENCH_table2_smoke.json"
    );
}

#[test]
fn self_check_passes_across_modes_with_equal_checksums() {
    // Attribution self-check (trace sums == report counters) for every
    // kernel in sync, tiered, and tiered+speculative modes; all modes
    // must agree on the results.
    for ((name, sync_prog, setup), (_, tiered_prog, _)) in
        kernels(false).into_iter().zip(kernels(true))
    {
        let sync = profiled(&sync_prog, &setup, traced());
        let bg = profiled(&tiered_prog, &setup, tiered(2, false));
        let spec = profiled(&tiered_prog, &setup, tiered(2, true));
        assert_eq!(sync.outcome.checksum, bg.outcome.checksum, "{name}: tiered");
        assert_eq!(
            sync.outcome.checksum, spec.outcome.checksum,
            "{name}: speculative"
        );
    }
}
