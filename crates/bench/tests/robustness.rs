//! Policy-driven recovery under injected faults: quarantine pins failing
//! regions to their static fallback copy, the byte-budget degradation
//! ladder sheds stitching work, the bounded failure ring keeps records
//! for every failing region, and the shared cache respects a resident
//! byte budget — all while results stay bit-identical to fault-free
//! runs.

use dyncomp::{
    Compiler, EngineOptions, FailureKind, FaultPlan, FaultPoint, Injection, RecoveryPolicy,
    Session, SharedCodeCache, TieredOptions,
};
use std::sync::Arc;

const POLY: &str = "int poly(int c, int x) {
    dynamicRegion key(c) (c) {
        return c * x * x + c * x + c;
    }
}";

/// Drive `poly` over `keys` distinct key values, three calls each
/// (exercising both the cold path and keyed-cache re-entries).
fn drive(session: &mut Session, keys: u64) -> u64 {
    let mut checksum = 0u64;
    for rep in 0..3u64 {
        for c in 1..=keys {
            let r = session
                .call("poly", &[c, 10 + rep])
                .expect("faulted sessions must still answer");
            checksum = checksum.wrapping_mul(1099511628211).wrapping_add(r);
        }
    }
    checksum
}

fn run(options: EngineOptions, keys: u64) -> (u64, Session) {
    // Compiled with a static fallback copy so recovery has somewhere to
    // degrade to, but run on an ordinary synchronous session.
    let program = Arc::new(Compiler::tiered().compile(POLY).expect("compiles"));
    let mut session = Session::with_options(program, options);
    let checksum = drive(&mut session, keys);
    (checksum, session)
}

#[test]
fn quarantine_pins_failing_region_to_fallback() {
    let (clean, clean_session) = run(EngineOptions::default(), 6);

    // Every set-up attempt traps; no retries; two failures quarantine.
    let options = EngineOptions {
        faults: Some(FaultPlan {
            seed: 1,
            injections: vec![Injection {
                max_fires: u32::MAX,
                ..Injection::new(FaultPoint::SetupVmTrap)
            }],
        }),
        recovery: RecoveryPolicy {
            max_retries: 0,
            quarantine_after: 2,
            ..RecoveryPolicy::default()
        },
        ..EngineOptions::default()
    };
    let (checksum, session) = run(options, 6);
    assert_eq!(checksum, clean, "fallback path computes identical results");

    let health = session.health();
    assert_eq!(health.quarantined, vec![0], "region 0 quarantined");
    assert_eq!(
        health.faults_injected, 2,
        "injection stops at quarantine (the degraded path is trusted)"
    );
    assert!(health
        .failures
        .iter()
        .all(|f| f.kind == FailureKind::Setup && f.injected));

    let report = session.region_report(0);
    assert_eq!(
        report.stitches, 1,
        "one stitch survived before quarantine (first entry retries past \
         its single failure)"
    );
    assert!(
        report.fallback_runs > 0,
        "later cold keys served by the fallback copy"
    );
    assert_eq!(report.faults_injected, 2);
    assert_eq!(clean_session.region_report(0).fallback_runs, 0);
}

#[test]
fn failure_ring_keeps_records_for_every_failing_region() {
    // Regression for the single-slot `last_background_failure`: with two
    // regions failing in the background, both must appear in the log.
    let src = "int f(int a, int x) {
        dynamicRegion key(a) (a) { return a * x + a; }
    }
    int g(int b, int x) {
        dynamicRegion key(b) (b) { return b * x - b; }
    }";
    let program = Arc::new(Compiler::tiered().compile(src).expect("compiles"));
    let mut session = Session::with_options(
        Arc::clone(&program),
        EngineOptions {
            tiered: Some(TieredOptions {
                workers: 2,
                ..TieredOptions::default()
            }),
            faults: Some(FaultPlan::single(FaultPoint::WorkerPanic, 2)),
            ..EngineOptions::default()
        },
    );
    // Constant keys so the second entry resolves the (panicking) job.
    let mut checksum = 0u64;
    for i in 1..=4u64 {
        let a = session.call("f", &[3, 100 + i]).expect("f survives");
        let b = session.call("g", &[5, 200 + i]).expect("g survives");
        checksum = checksum
            .wrapping_mul(1099511628211)
            .wrapping_add(a)
            .wrapping_mul(1099511628211)
            .wrapping_add(b);
    }

    // Fault-free reference on a plain session.
    let mut clean = Session::with_options(Arc::clone(&program), EngineOptions::default());
    let mut expect = 0u64;
    for i in 1..=4u64 {
        let a = clean.call("f", &[3, 100 + i]).expect("runs");
        let b = clean.call("g", &[5, 200 + i]).expect("runs");
        expect = expect
            .wrapping_mul(1099511628211)
            .wrapping_add(a)
            .wrapping_mul(1099511628211)
            .wrapping_add(b);
    }
    assert_eq!(checksum, expect);

    let health = session.health();
    let failed_regions: Vec<u16> = health.failures.iter().map(|f| f.region).collect();
    assert!(
        failed_regions.contains(&0) && failed_regions.contains(&1),
        "both regions' failures retained, not just the last: {failed_regions:?}"
    );
    assert!(health.failures.iter().all(|f| {
        f.injected
            && f.kind == FailureKind::Background { panicked: true }
            && f.message.contains("injected background stitch panic")
    }));
    assert!(session.region_pinned(0) && session.region_pinned(1));
}

#[test]
fn code_budget_degrades_to_fallback_with_identical_results() {
    let (clean, clean_session) = run(EngineOptions::default(), 12);
    let clean_report = clean_session.region_report(0);
    assert_eq!(clean_report.stitches, 12, "one instance per key, no budget");

    // Enough budget for a few instances, then the ladder takes over.
    let budget = 4 * u64::from(clean_report.stitch_stats.words_emitted / 12 * 4);
    let options = EngineOptions {
        recovery: RecoveryPolicy {
            code_budget_bytes: Some(budget),
            ..RecoveryPolicy::default()
        },
        ..EngineOptions::default()
    };
    let (checksum, session) = run(options, 12);
    assert_eq!(checksum, clean, "degraded session computes the same");

    let health = session.health();
    assert_eq!(health.degradation_level, 2, "budget exhausted");
    assert_eq!(health.code_budget_bytes, Some(budget));
    assert!(health.code_bytes_installed >= budget);

    let report = session.region_report(0);
    assert!(
        report.stitches < clean_report.stitches,
        "budget stopped installs early ({} of {})",
        report.stitches,
        clean_report.stitches
    );
    assert!(
        report.fallback_runs > 0,
        "past-budget keys run the fallback"
    );
}

#[test]
fn shared_cache_byte_budget_evicts_under_pressure() {
    let program = Arc::new(Compiler::tiered().compile(POLY).expect("compiles"));
    // One shard, tiny byte budget: only a couple of instances resident.
    let mut probe = Session::with_options(Arc::clone(&program), EngineOptions::default());
    let _ = probe.call("poly", &[1, 10]).expect("runs");
    let instance_bytes = 4 * u64::from(probe.region_report(0).stitch_stats.words_emitted);
    let budget = instance_bytes * 2 + instance_bytes / 2;
    let cache = Arc::new(SharedCodeCache::with_byte_budget(1, 64, Some(budget)));

    let options = || EngineOptions {
        shared_cache: Some(Arc::clone(&cache)),
        ..EngineOptions::default()
    };
    let mut writer = Session::with_options(Arc::clone(&program), options());
    let from_writer = drive(&mut writer, 8);
    let (clean, _) = run(EngineOptions::default(), 8);
    assert_eq!(from_writer, clean, "byte-budgeted cache changes no result");

    assert!(cache.bytes() <= budget, "resident bytes respect the budget");
    assert!(
        cache.stats().evictions > 0,
        "publishing 8 instances into a ~2-instance budget evicts"
    );

    // A second session gets a hit for a resident survivor (the writer
    // published keys in order, so the highest keys are most recent).
    let mut reader = Session::with_options(Arc::clone(&program), options());
    let r = reader.call("poly", &[8, 10]).expect("runs");
    assert_eq!(r, 8 * 100 + 8 * 10 + 8);
    assert_eq!(
        reader.region_report(0).shared_hits,
        1,
        "survivor served from the shared cache, not re-stitched"
    );
    assert_eq!(reader.region_report(0).stitches, 0);
}

#[test]
fn native_arena_exhaustion_degrades_to_vm_backend() {
    let (clean, _) = run(EngineOptions::default(), 8);

    // Two injected arena exhaustions: those installs are declined with a
    // `backend-unavailable` health entry, the instances run on the VM,
    // and every result is bit-identical. The fault fires before the
    // availability check, so this holds on every host architecture.
    let options = EngineOptions {
        native: true,
        faults: Some(FaultPlan::single(FaultPoint::NativeArenaExhausted, 2)),
        ..EngineOptions::default()
    };
    let (checksum, session) = run(options, 8);
    assert_eq!(checksum, clean, "exhausted arena changes no result");

    let health = session.health();
    assert_eq!(health.faults_injected, 2, "both injections fired");
    let recorded: Vec<_> = health
        .failures
        .iter()
        .filter(|f| f.kind == FailureKind::BackendUnavailable)
        .collect();
    assert_eq!(recorded.len(), 2, "one health entry per declined install");
    assert!(recorded
        .iter()
        .all(|f| f.injected && f.message.contains("native-arena exhaustion")));

    // The backend itself is not disabled: after the injections run out,
    // later installs proceed (on hosts that support the backend).
    let report = session.native_report();
    assert!(report.enabled);
    if cfg!(all(target_arch = "x86_64", target_os = "linux")) {
        assert!(
            report.active,
            "arena exhaustion must not disable the backend"
        );
        assert!(report.installs > 0, "post-injection installs proceed");
    }
}

#[test]
fn byte_budget_accounts_native_stub_bytes() {
    let (clean, vm_session) = run(EngineOptions::default(), 12);
    let vm_bytes = vm_session.health().code_bytes_installed;

    // Chaining off: the exact-surplus equality below pins the unchained
    // accounting, where every backend byte is a budget-charged install.
    // (The chained mode adds a whole-static-code snapshot that shows up
    // in `NativeReport::bytes` but is deliberately not budget-charged —
    // it is baseline code, not an optimized install.)
    let native_options = EngineOptions {
        native: true,
        native_chain: false,
        ..EngineOptions::default()
    };
    let (checksum, native_session) = run(native_options, 12);
    assert_eq!(checksum, clean, "native backend changes no result");
    let native_bytes = native_session.health().code_bytes_installed;

    if cfg!(all(target_arch = "x86_64", target_os = "linux")) {
        // Installed stub bytes count against the same budget as the
        // stitched code words — exactly, not approximately.
        assert!(native_bytes > vm_bytes, "{native_bytes} vs {vm_bytes}");
        assert_eq!(
            native_bytes - vm_bytes,
            native_session.native_report().bytes,
            "the surplus is exactly the installed stub bytes"
        );

        // A budget sized for the VM-only footprint therefore exhausts
        // early under the native backend: the ladder sheds installs and
        // past-budget keys run the fallback, results unchanged.
        let options = EngineOptions {
            native: true,
            native_chain: false,
            recovery: RecoveryPolicy {
                code_budget_bytes: Some(vm_bytes),
                ..RecoveryPolicy::default()
            },
            ..EngineOptions::default()
        };
        let (budgeted, budget_session) = run(options, 12);
        assert_eq!(budgeted, clean, "degraded session computes the same");
        assert_eq!(budget_session.health().degradation_level, 2);
        let report = budget_session.region_report(0);
        assert!(
            report.stitches < 12,
            "budget stopped installs early ({} of 12)",
            report.stitches
        );
        assert!(report.fallback_runs > 0);

        // Published instances carry their native footprint, so byte-
        // budgeted shared-cache shards govern both backends.
        let program = Arc::new(Compiler::tiered().compile(POLY).expect("compiles"));
        let resident = |native: bool| {
            let cache = Arc::new(SharedCodeCache::new(1, 64));
            let mut s = Session::with_options(
                Arc::clone(&program),
                EngineOptions {
                    native,
                    shared_cache: Some(Arc::clone(&cache)),
                    ..EngineOptions::default()
                },
            );
            drive(&mut s, 4);
            cache.bytes()
        };
        assert!(
            resident(true) > resident(false),
            "published footprints include native stub bytes"
        );
    } else {
        assert_eq!(native_bytes, vm_bytes, "no backend, no extra bytes");
    }
}
