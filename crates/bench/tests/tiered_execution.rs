//! Tiered-execution correctness and determinism suite.
//!
//! * Tiered runs compute bit-identical checksums to synchronous runs on
//!   every kernel (the fallback copy and the stitched code are the same
//!   program).
//! * Checksums are identical across 1/2/4-worker configurations, and full
//!   reports are identical across repeated runs of the same configuration
//!   (the virtual-clock overlap model is host-independent).
//! * Speculation pre-stitches smatmul's scalar sweep.

use dyncomp::measure::{run_session, KernelSetup, SessionOutcome};
use dyncomp::{Compiler, EngineOptions, TieredOptions};
use dyncomp_bench::kernels::{calculator, dispatch, smatmul, sorter, spmv};
use std::sync::Arc;

fn tiered_options(workers: usize, speculate: bool) -> EngineOptions {
    EngineOptions {
        tiered: Some(TieredOptions {
            workers,
            speculate,
            ..TieredOptions::default()
        }),
        ..EngineOptions::default()
    }
}

/// All kernels at smoke scale: (name, setup).
fn kernels() -> Vec<(&'static str, KernelSetup<'static>)> {
    vec![
        ("calculator", calculator::setup(60)),
        ("smatmul", smatmul::setup(12, 16, 12)),
        ("spmv", spmv::setup(24, 4, 40)),
        ("dispatch", dispatch::setup(10, 80)),
        ("sorter", sorter::setup(48, 4, 4)),
    ]
}

fn run(setup: &KernelSetup<'_>, tiered: bool, options: EngineOptions) -> SessionOutcome {
    let compiler = if tiered {
        Compiler::tiered()
    } else {
        Compiler::new()
    };
    let program = Arc::new(compiler.compile(setup.src).expect("compiles"));
    run_session(&program, setup, options).expect("runs")
}

#[test]
fn tiered_checksums_match_synchronous() {
    for (name, setup) in kernels() {
        let sync = run(&setup, false, EngineOptions::default());
        for speculate in [false, true] {
            let tiered = run(&setup, true, tiered_options(1, speculate));
            assert_eq!(
                sync.checksum, tiered.checksum,
                "{name}: tiered (speculate={speculate}) checksum differs from synchronous"
            );
        }
    }
}

#[test]
fn tiered_checksums_identical_across_worker_counts() {
    for (name, setup) in kernels() {
        let runs: Vec<SessionOutcome> = [1, 2, 4]
            .iter()
            .map(|&w| run(&setup, true, tiered_options(w, true)))
            .collect();
        assert_eq!(
            runs[0].checksum, runs[1].checksum,
            "{name}: 1-worker vs 2-worker checksum"
        );
        assert_eq!(
            runs[1].checksum, runs[2].checksum,
            "{name}: 2-worker vs 4-worker checksum"
        );
    }
}

#[test]
fn tiered_reports_deterministic_across_runs() {
    for (name, setup) in kernels() {
        for speculate in [false, true] {
            let a = run(&setup, true, tiered_options(2, speculate));
            let b = run(&setup, true, tiered_options(2, speculate));
            assert_eq!(
                a, b,
                "{name} (speculate={speculate}): repeated tiered runs differ"
            );
        }
    }
}

#[test]
fn tiered_runs_fallback_then_installs() {
    // The calculator region is unkeyed with substantial set-up: the first
    // entries must run the fallback copy, a later entry installs the
    // background stitch, and the trap is then patched away.
    let setup = calculator::setup(60);
    let out = run(&setup, true, tiered_options(1, false));
    let r = &out.reports[0];
    assert!(r.fallback_runs > 0, "no fallback runs: {r:?}");
    assert_eq!(r.bg_installs, 1, "expected one background install: {r:?}");
    assert_eq!(r.stitches, 0, "synchronous stitch in tiered mode: {r:?}");
    assert!(
        r.bg_setup_cycles > 0 && r.bg_stitch_cycles > 0,
        "background cycles unaccounted: {r:?}"
    );
    // Background cycles never leak into the synchronous accounting.
    assert_eq!(r.setup_cycles, 0);
    assert_eq!(r.stitch_cycles, 0);
}

#[test]
fn speculation_prestitches_key_sweeps() {
    // smatmul sweeps keys 1..=n: after the stride predictor locks on,
    // almost every key should be installed from a speculative stitch.
    let setup = smatmul::setup(12, 16, 12);
    let plain = run(&setup, true, tiered_options(1, false));
    let spec = run(&setup, true, tiered_options(1, true));
    let p = &plain.reports[0];
    let s = &spec.reports[0];
    // Without speculation no key ever repeats, so demand stitches are
    // never picked up: every entry runs the fallback.
    assert_eq!(p.spec_installs, 0);
    assert!(
        s.spec_installs >= 8,
        "speculation installed too few instances: {s:?}"
    );
    assert!(
        s.fallback_runs < p.fallback_runs,
        "speculation did not reduce fallback runs: spec {s:?} plain {p:?}"
    );
}

#[test]
fn tiered_mode_without_fallback_copy_stays_synchronous() {
    // A program compiled without tiered lowering has no fallback copies;
    // tiered engine options must degrade to plain synchronous stitching.
    let setup = calculator::setup(40);
    let sync = run(&setup, false, EngineOptions::default());
    let program = Arc::new(Compiler::new().compile(setup.src).expect("compiles"));
    let out = run_session(&program, &setup, tiered_options(2, true)).expect("runs");
    assert_eq!(sync.checksum, out.checksum);
    let r = &out.reports[0];
    assert_eq!(r.fallback_runs, 0);
    assert_eq!(r.bg_installs, 0);
    assert!(r.stitches > 0);
}
