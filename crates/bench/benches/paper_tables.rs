//! Host-side benches over the reproduction's hot paths.
//!
//! The *scientific* numbers (Table 2/3) come from simulated cycles via the
//! `table2`/`table3` binaries; these benches measure the host-side cost of
//! the reproduction itself: static compilation, the analyses, stitching
//! throughput, and simulated execution (static vs dynamic). The workspace
//! builds offline (no Criterion), so this is a plain `harness = false`
//! binary with a warmup + median-of-samples timing loop.

use dyncomp::{Compiler, Engine, EngineOptions};
use dyncomp_analysis::{analyze_region, AnalysisConfig};
use dyncomp_bench::kernels::{calculator, dispatch, smatmul, sorter, spmv};
use dyncomp_frontend::{compile as fe_compile, LowerOptions};
use dyncomp_ir::RegionId;
use std::hint::black_box;
use std::time::Instant;

/// Run `f` repeatedly; report the median per-iteration time in ns.
fn bench<R>(label: &str, iters: u32, mut f: impl FnMut() -> R) {
    for _ in 0..3 {
        black_box(f());
    }
    let mut samples = Vec::with_capacity(15);
    for _ in 0..15 {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        samples.push(t0.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!("{label:<44} {median:>12.0} ns/iter");
}

/// Table 2 per-kernel simulated execution: one warm invocation, static vs
/// dynamic. Host wall time tracks simulated cycles, so the speedups here
/// mirror the cycle-level speedups.
#[allow(clippy::type_complexity)]
fn bench_table2_kernels() {
    println!("-- table2_execution --");
    let cases: Vec<(&str, &str, Box<dyn Fn(&mut Engine) -> Vec<u64>>)> = vec![
        (
            "calculator",
            calculator::SRC,
            Box::new(|e| {
                let p = calculator::build_program(e);
                vec![p, 7, 3]
            }),
        ),
        (
            "dispatcher",
            dispatch::SRC,
            Box::new(|e| {
                let t = dispatch::gen_guards(10, 11);
                vec![dispatch::build(e, &t), 13, 2]
            }),
        ),
        (
            "spmv",
            spmv::SRC,
            Box::new(|e| {
                let m = spmv::gen_matrix(24, 4, 42);
                let (mp, xp, yp) = spmv::build(e, &m);
                vec![mp, xp, yp]
            }),
        ),
    ];
    let funcs = ["calc", "dispatch", "spmv"];
    for ((name, src, prep), func) in cases.into_iter().zip(funcs) {
        for dynamic in [false, true] {
            let compiler = if dynamic {
                Compiler::new()
            } else {
                Compiler::static_baseline()
            };
            let program = compiler.compile(src).expect("compiles");
            let mut engine = Engine::new(&program);
            let args = prep(&mut engine);
            engine.call(func, &args).expect("warm-up"); // stitch happens here
            let kind = if dynamic { "dynamic" } else { "static" };
            bench(&format!("{name}/{kind}"), 20, || {
                engine.call(func, black_box(&args)).unwrap()
            });
        }
    }
}

/// Static-compiler throughput: the full pipeline on the paper kernels.
fn bench_static_compile() {
    println!("-- static_compile --");
    for (name, src) in [
        ("calculator", calculator::SRC),
        ("smatmul", smatmul::SRC),
        ("spmv", spmv::SRC),
        ("dispatcher", dispatch::SRC),
        ("sorter", sorter::SRC),
    ] {
        bench(name, 5, || Compiler::new().compile(black_box(src)).unwrap());
    }
}

/// The §3.1 analyses alone (run-time constants + reachability fixpoint).
fn bench_analysis() {
    println!("-- analysis --");
    for (name, src) in [
        ("calculator", calculator::SRC),
        ("spmv", spmv::SRC),
        ("sorter", sorter::SRC),
    ] {
        let mut m = fe_compile(src, &LowerOptions::default()).unwrap().module;
        let fid = m
            .funcs
            .iter_enumerated()
            .find(|(_, f)| !f.regions.is_empty())
            .map(|(id, _)| id)
            .unwrap();
        let f = &mut m.funcs[fid];
        dyncomp_ir::ssa::construct_ssa(f);
        dyncomp_ir::cfg::split_critical_edges(f);
        f.canonicalize_region_roots();
        let f = m.funcs[fid].clone();
        bench(name, 10, || {
            analyze_region(black_box(&f), RegionId(0), &AnalysisConfig::default())
        });
    }
}

/// Stitcher throughput: dynamic compiles per second (first-entry path:
/// set-up execution + stitching + installation).
fn bench_stitching() {
    println!("-- stitch_first_entry --");
    let program = Compiler::new().compile(calculator::SRC).unwrap();
    bench("calculator_region", 5, || {
        let mut engine = Engine::with_options(&program, EngineOptions::default());
        let p = calculator::build_program(&mut engine);
        engine.call("calc", &[p, 7, 3]).unwrap()
    });
}

fn main() {
    bench_table2_kernels();
    bench_static_compile();
    bench_analysis();
    bench_stitching();
}
