//! Criterion benches over the reproduction's hot paths.
//!
//! The *scientific* numbers (Table 2/3) come from simulated cycles via the
//! `table2`/`table3` binaries; these benches measure the host-side cost of
//! the reproduction itself: static compilation, the analyses, stitching
//! throughput, and simulated execution (static vs dynamic), one Criterion
//! group per regenerated artifact.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dyncomp::{Compiler, Engine, EngineOptions};
use dyncomp_analysis::{analyze_region, AnalysisConfig};
use dyncomp_bench::kernels::{calculator, dispatch, smatmul, sorter, spmv};
use dyncomp_frontend::{compile as fe_compile, LowerOptions};
use dyncomp_ir::RegionId;
use std::hint::black_box;

/// Table 2 per-kernel simulated execution: one warm invocation, static vs
/// dynamic. Host wall time tracks simulated cycles, so the speedups here
/// mirror the cycle-level speedups.
#[allow(clippy::type_complexity)]
fn bench_table2_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_execution");
    let cases: Vec<(&str, &str, Box<dyn Fn(&mut Engine) -> Vec<u64>>)> = vec![
        (
            "calculator",
            calculator::SRC,
            Box::new(|e| {
                let p = calculator::build_program(e);
                vec![p, 7, 3]
            }),
        ),
        (
            "dispatcher",
            dispatch::SRC,
            Box::new(|e| {
                let t = dispatch::gen_guards(10, 11);
                vec![dispatch::build(e, &t), 13, 2]
            }),
        ),
        (
            "spmv",
            spmv::SRC,
            Box::new(|e| {
                let m = spmv::gen_matrix(24, 4, 42);
                let (mp, xp, yp) = spmv::build(e, &m);
                vec![mp, xp, yp]
            }),
        ),
    ];
    let funcs = ["calc", "dispatch", "spmv"];
    for ((name, src, prep), func) in cases.into_iter().zip(funcs) {
        for dynamic in [false, true] {
            let compiler = if dynamic {
                Compiler::new()
            } else {
                Compiler::static_baseline()
            };
            let program = compiler.compile(src).expect("compiles");
            let mut engine = Engine::new(&program);
            let args = prep(&mut engine);
            engine.call(func, &args).expect("warm-up"); // stitch happens here
            let label = if dynamic {
                format!("{name}/dynamic")
            } else {
                format!("{name}/static")
            };
            g.bench_function(label, |b| {
                b.iter(|| black_box(engine.call(func, black_box(&args)).unwrap()));
            });
        }
    }
    g.finish();
}

/// Static-compiler throughput: the full pipeline on the paper kernels.
fn bench_static_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("static_compile");
    for (name, src) in [
        ("calculator", calculator::SRC),
        ("smatmul", smatmul::SRC),
        ("spmv", spmv::SRC),
        ("dispatcher", dispatch::SRC),
        ("sorter", sorter::SRC),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(Compiler::new().compile(black_box(src)).unwrap()));
        });
    }
    g.finish();
}

/// The §3.1 analyses alone (run-time constants + reachability fixpoint).
fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    for (name, src) in [
        ("calculator", calculator::SRC),
        ("spmv", spmv::SRC),
        ("sorter", sorter::SRC),
    ] {
        let mut m = fe_compile(src, &LowerOptions::default()).unwrap().module;
        let fid = m
            .funcs
            .iter_enumerated()
            .find(|(_, f)| !f.regions.is_empty())
            .map(|(id, _)| id)
            .unwrap();
        let f = &mut m.funcs[fid];
        dyncomp_ir::ssa::construct_ssa(f);
        dyncomp_ir::cfg::split_critical_edges(f);
        f.canonicalize_region_roots();
        let f = m.funcs[fid].clone();
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(analyze_region(
                    black_box(&f),
                    RegionId(0),
                    &AnalysisConfig::default(),
                ))
            });
        });
    }
    g.finish();
}

/// Stitcher throughput: dynamic compiles per second (first-entry path:
/// set-up execution + stitching + installation).
fn bench_stitching(c: &mut Criterion) {
    let mut g = c.benchmark_group("stitch_first_entry");
    let program = Compiler::new().compile(calculator::SRC).unwrap();
    g.bench_function("calculator_region", |b| {
        b.iter_batched(
            || {
                let mut engine = Engine::with_options(&program, EngineOptions::default());
                let p = calculator::build_program(&mut engine);
                (engine, p)
            },
            |(mut engine, p)| black_box(engine.call("calc", &[p, 7, 3]).unwrap()),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table2_kernels,
    bench_static_compile,
    bench_analysis,
    bench_stitching
);
criterion_main!(benches);
