//! Warm-up latency analysis: what tiered execution buys before the
//! stitched code pays for itself.
//!
//! For each kernel this module runs the statically compiled baseline and
//! three dynamic configurations — synchronous (the paper's model), tiered,
//! and tiered + speculative — with per-invocation cycle traces, and
//! reports:
//!
//! * **time to first result** — cycles of invocation 1. Synchronous mode
//!   stalls the first invocation on set-up + stitching; tiered mode runs
//!   the statically compiled fallback immediately.
//! * **time to first fast execution** — cumulative cycles up to and
//!   including the first invocation that beats the static baseline (i.e.
//!   actually ran stitched code).
//! * **effective breakeven** — the least `n` with
//!   `Σ mode(1..=n) ≤ Σ static(1..=n)`: the empirical point where the
//!   dynamic configuration has paid for itself. (Table 2's breakeven is
//!   the asymptotic-formula equivalent for the synchronous mode.)
//!
//! The results are rendered as `BENCH_warmup.json` by the `warmup` binary.

use dyncomp::measure::{run_session_trace, KernelSetup, SessionTrace};
use dyncomp::{Compiler, EngineOptions, Error, TieredOptions};
use std::sync::Arc;

use crate::json_str;

/// One kernel × mode warm-up row.
#[derive(Clone, Debug)]
pub struct WarmupRow {
    /// Kernel name.
    pub kernel: &'static str,
    /// `"sync"`, `"tiered"` or `"tiered+spec"`.
    pub mode: &'static str,
    /// Invocations measured.
    pub iterations: u64,
    /// Cycles of invocation 1 in this mode.
    pub time_to_first_result: u64,
    /// 1-based index of the first invocation cheaper than the static
    /// baseline's same invocation (`None`: never happened).
    pub first_fast_call: Option<u64>,
    /// Cumulative cycles up to and including that invocation.
    pub time_to_first_fast: Option<u64>,
    /// Least `n` where the mode's cumulative cycles drop to or below the
    /// static baseline's (`None`: not within the measured invocations).
    pub effective_breakeven: Option<u64>,
    /// Fallback-copy runs (tiered modes).
    pub fallback_runs: u64,
    /// Background installs (tiered modes).
    pub bg_installs: u64,
    /// Speculative installs (tiered + speculation).
    pub spec_installs: u64,
    /// Result checksum (must match the static baseline).
    pub checksum: u64,
}

impl WarmupRow {
    /// Render as one `BENCH_warmup.json` object.
    pub fn json_object(&self) -> String {
        let opt = |v: Option<u64>| v.map_or("null".to_string(), |x| x.to_string());
        format!(
            concat!(
                "{{\"kernel\": {}, \"mode\": {}, \"iterations\": {}, ",
                "\"time_to_first_result\": {}, \"first_fast_call\": {}, ",
                "\"time_to_first_fast\": {}, \"effective_breakeven\": {}, ",
                "\"fallback_runs\": {}, \"bg_installs\": {}, ",
                "\"spec_installs\": {}, \"checksum\": {}}}"
            ),
            json_str(self.kernel),
            json_str(self.mode),
            self.iterations,
            self.time_to_first_result,
            opt(self.first_fast_call),
            opt(self.time_to_first_fast),
            opt(self.effective_breakeven),
            self.fallback_runs,
            self.bg_installs,
            self.spec_installs,
            self.checksum,
        )
    }

    /// Render as one line of the human-readable report.
    pub fn table_row(&self) -> String {
        let opt = |v: Option<u64>| v.map_or("never".to_string(), |x| x.to_string());
        format!(
            "{:<18} {:<12} | {:>12} | {:>6} | {:>12} | {:>9} | {:>4} fb {:>4} bg {:>4} spec",
            self.kernel,
            self.mode,
            self.time_to_first_result,
            opt(self.first_fast_call),
            opt(self.time_to_first_fast),
            opt(self.effective_breakeven),
            self.fallback_runs,
            self.bg_installs,
            self.spec_installs,
        )
    }
}

/// The report header matching [`WarmupRow::table_row`].
pub fn warmup_header() -> String {
    format!(
        "{:<18} {:<12} | {:>12} | {:>6} | {:>12} | {:>9} | tiered counters",
        "Kernel", "Mode", "1st result", "1st<st", "1st-fast cum", "breakeven",
    )
}

fn tiered_engine(workers: usize, speculate: bool) -> EngineOptions {
    EngineOptions {
        tiered: Some(TieredOptions {
            workers,
            speculate,
            ..TieredOptions::default()
        }),
        ..EngineOptions::default()
    }
}

fn row(
    kernel: &'static str,
    mode: &'static str,
    static_trace: &SessionTrace,
    trace: &SessionTrace,
) -> WarmupRow {
    assert_eq!(
        static_trace.checksum, trace.checksum,
        "{kernel}/{mode}: checksum diverged from the static baseline"
    );
    let mut first_fast_call = None;
    let mut time_to_first_fast = None;
    let mut effective_breakeven = None;
    let mut cum = 0u64;
    let mut cum_static = 0u64;
    for (i, (&c, &s)) in trace
        .per_call_cycles
        .iter()
        .zip(static_trace.per_call_cycles.iter())
        .enumerate()
    {
        cum += c;
        cum_static += s;
        if first_fast_call.is_none() && c < s {
            first_fast_call = Some(i as u64 + 1);
            time_to_first_fast = Some(cum);
        }
        if effective_breakeven.is_none() && cum <= cum_static {
            effective_breakeven = Some(i as u64 + 1);
        }
    }
    let sum = |f: &dyn Fn(&dyncomp::RegionReport) -> u64| trace.reports.iter().map(f).sum();
    WarmupRow {
        kernel,
        mode,
        iterations: trace.per_call_cycles.len() as u64,
        time_to_first_result: trace.per_call_cycles.first().copied().unwrap_or(0),
        first_fast_call,
        time_to_first_fast,
        effective_breakeven,
        fallback_runs: sum(&|r| r.fallback_runs),
        bg_installs: sum(&|r| r.bg_installs),
        spec_installs: sum(&|r| r.spec_installs),
        checksum: trace.checksum,
    }
}

/// Measure one kernel in all three dynamic modes (plus the static
/// baseline they are compared against). `workers` is the tiered worker
/// count.
///
/// # Errors
/// Compilation or execution failure in any configuration.
pub fn measure_warmup(
    kernel: &'static str,
    setup: &KernelSetup<'_>,
    workers: usize,
) -> Result<Vec<WarmupRow>, Error> {
    let static_prog = Arc::new(Compiler::static_baseline().compile(setup.src)?);
    let static_trace = run_session_trace(&static_prog, setup, EngineOptions::default())?;

    let sync_prog = Arc::new(Compiler::new().compile(setup.src)?);
    let tiered_prog = Arc::new(Compiler::tiered().compile(setup.src)?);

    let sync = run_session_trace(&sync_prog, setup, EngineOptions::default())?;
    let tiered = run_session_trace(&tiered_prog, setup, tiered_engine(workers, false))?;
    let spec = run_session_trace(&tiered_prog, setup, tiered_engine(workers, true))?;

    Ok(vec![
        row(kernel, "sync", &static_trace, &sync),
        row(kernel, "tiered", &static_trace, &tiered),
        row(kernel, "tiered+spec", &static_trace, &spec),
    ])
}

/// Run the full warm-up suite at the given scale.
///
/// # Errors
/// Propagates the first kernel failure.
pub fn run_warmup(scale: crate::Scale) -> Result<Vec<WarmupRow>, Error> {
    use crate::kernels::{calculator, dispatch, smatmul, sorter, spmv};
    let workers = 1;
    let sets: Vec<(&'static str, KernelSetup<'static>)> = match scale {
        crate::Scale::Smoke => vec![
            ("calculator", calculator::setup(80)),
            ("smatmul", smatmul::setup(8, 16, 8)),
            ("spmv 12x12", spmv::setup(12, 3, 20)),
            ("dispatch", dispatch::setup(10, 60)),
            ("sorter 4-key", sorter::setup(40, 4, 5)),
        ],
        crate::Scale::Paper => vec![
            ("calculator", calculator::setup(2000)),
            ("smatmul", smatmul::setup(100, 800, 100)),
            ("spmv 200x200", spmv::setup(200, 10, 300)),
            ("dispatch", dispatch::setup(10, 2000)),
            ("sorter 4-key", sorter::setup(500, 4, 20)),
        ],
    };
    let mut rows = Vec::new();
    for (name, setup) in &sets {
        rows.extend(measure_warmup(name, setup, workers)?);
    }
    Ok(rows)
}

/// Render the rows as the `BENCH_warmup.json` document.
pub fn render_warmup_json(rows: &[WarmupRow]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&row.json_object());
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}
