//! # dyncomp-bench
//!
//! The evaluation of the PLDI'96 reproduction: the paper's five kernels
//! (§5, Tables 2 and 3), the register-actions experiment, and the
//! ablations DESIGN.md calls out.
//!
//! Each kernel module provides the annotated MiniC source, reproducible
//! workload generators, host-side reference implementations for
//! cross-checking, and a `measure` function producing a [`KernelResult`]
//! with the Table 2 quantities. The binaries (`table2`, `table3`,
//! `regactions`, `ablation`) print the regenerated tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod kernels {
    //! The paper's five benchmark kernels, plus the two cross-function
    //! workloads exercising demand-driven inlining.
    pub mod calculator;
    pub mod dispatch;
    pub mod protomsg;
    pub mod queryexec;
    pub mod smatmul;
    pub mod sorter;
    pub mod spmv;
}

pub mod jsonv;
pub mod warmup;

pub use dyncomp::KernelMeasurement;

use dyncomp::{EngineOptions, Error};

/// One measured Table 2 row.
#[derive(Clone, Debug)]
pub struct KernelResult {
    /// Benchmark name (Table 2's first column).
    pub name: &'static str,
    /// Run-time-constant configuration description.
    pub config: String,
    /// The paper's breakeven unit for this kernel.
    pub unit: &'static str,
    /// Units per measured iteration (e.g. records per sort), for
    /// converting the breakeven point into the paper's unit.
    pub unit_scale: u64,
    /// The measured quantities.
    pub measurement: KernelMeasurement,
}

impl KernelResult {
    /// Render as one row of the Table 2 report.
    pub fn table2_row(&self) -> String {
        let m = &self.measurement;
        let breakeven = match m.breakeven {
            Some(b) => format!("{} {}", b * self.unit_scale.max(1), self.unit),
            None => "never".to_string(),
        };
        format!(
            "{:<42} | {:<46} | {:>5.1}x ({:.0}/{:.0}) | {:<26} | {:>7.1}k / {:>7.1}k | {:>6.0} ({})",
            self.name,
            self.config,
            m.speedup,
            m.static_cycles,
            m.dynamic_cycles,
            breakeven,
            m.setup_cycles as f64 / 1000.0,
            m.stitch_cycles as f64 / 1000.0,
            m.cycles_per_stitched_instruction,
            m.instructions_stitched,
        )
    }

    /// Render as one `BENCH_table2.json` object (hand-rolled JSON — the
    /// workspace takes no external dependencies).
    pub fn json_object(&self) -> String {
        let m = &self.measurement;
        let f = |v: f64| {
            if v.is_finite() {
                format!("{v:.4}")
            } else {
                "null".to_string()
            }
        };
        let breakeven = match m.breakeven {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        };
        let breakeven_units = match m.breakeven {
            Some(b) => (b * self.unit_scale.max(1)).to_string(),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"name\": {}, \"config\": {}, \"unit\": {}, \"iterations\": {}, ",
                "\"static_cycles\": {}, \"dynamic_cycles\": {}, \"speedup\": {}, ",
                "\"breakeven\": {}, \"breakeven_units\": {}, ",
                "\"setup_cycles\": {}, \"stitch_cycles\": {}, ",
                "\"instructions_stitched\": {}, ",
                "\"cycles_per_stitched_instruction\": {}, \"checksum\": {}}}"
            ),
            json_str(self.name),
            json_str(&self.config),
            json_str(self.unit),
            m.iterations,
            f(m.static_cycles),
            f(m.dynamic_cycles),
            f(m.speedup),
            breakeven,
            breakeven_units,
            m.setup_cycles,
            m.stitch_cycles,
            m.instructions_stitched,
            f(m.cycles_per_stitched_instruction),
            m.checksum,
        )
    }

    /// Render as one row of the Table 3 report.
    pub fn table3_row(&self) -> String {
        let marks = self.measurement.optimizations().checkmarks();
        let cell = |b: bool| if b { "  ✓  " } else { "     " };
        format!(
            "{:<42} |{}|{}|{}|{}|{}|{}|",
            self.name,
            cell(marks[0]),
            cell(marks[1]),
            cell(marks[2]),
            cell(marks[3]),
            cell(marks[4]),
            cell(marks[5]),
        )
    }
}

/// Problem sizing for the table harnesses.
#[derive(Clone, Copy, Debug)]
pub enum Scale {
    /// Tiny sizes for CI / debug-build smoke runs.
    Smoke,
    /// The paper's §5 configurations (run in release builds).
    Paper,
}

/// Run every Table 2 row at the given scale.
///
/// # Errors
/// Propagates the first kernel failure.
pub fn run_all(scale: Scale) -> Result<Vec<KernelResult>, Error> {
    run_all_with(scale, EngineOptions::default())
}

/// [`run_all`] under explicit engine options — used by the tracing drift
/// gate (tracing is observation-only, so rows must be identical with it
/// on or off) and by the tiered/speculative harnesses.
///
/// # Errors
/// Propagates the first kernel failure.
pub fn run_all_with(scale: Scale, options: EngineOptions) -> Result<Vec<KernelResult>, Error> {
    let o = &options;
    let mut rows = Vec::new();
    match scale {
        Scale::Smoke => {
            rows.push(kernels::calculator::measure_with(80, o.clone())?);
            rows.push(kernels::smatmul::measure_with(8, 16, 8, o.clone())?);
            rows.push(kernels::spmv::measure_with(12, 3, 20, o.clone())?);
            rows.push(kernels::spmv::measure_with(8, 2, 20, o.clone())?);
            rows.push(kernels::dispatch::measure_with(10, 60, o.clone())?);
            rows.push(kernels::sorter::measure_with(40, 4, 5, o.clone())?);
            rows.push(kernels::sorter::measure_with(40, 12, 5, o.clone())?);
        }
        Scale::Paper => {
            rows.push(kernels::calculator::measure_with(2000, o.clone())?);
            rows.push(kernels::smatmul::measure_with(100, 800, 100, o.clone())?);
            rows.push(kernels::spmv::measure_with(200, 10, 300, o.clone())?);
            rows.push(kernels::spmv::measure_with(96, 5, 300, o.clone())?);
            rows.push(kernels::dispatch::measure_with(10, 2000, o.clone())?);
            rows.push(kernels::sorter::measure_with(500, 4, 20, o.clone())?);
            rows.push(kernels::sorter::measure_with(500, 12, 20, o.clone())?);
        }
    }
    Ok(rows)
}

/// Escape a string for a JSON literal (shared by the bench binaries —
/// the workspace takes no external JSON dependency).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render every row as the machine-readable `BENCH_table2.json` document
/// (a top-level array, one object per Table 2 row).
pub fn render_table2_json(rows: &[KernelResult]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&row.json_object());
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// The Table 2 header line.
pub fn table2_header() -> String {
    format!(
        "{:<42} | {:<46} | {:<16} | {:<26} | {:<19} | {}",
        "Benchmark",
        "Run-time Constant Configurations",
        "Speedup (st/dyn)",
        "Breakeven Point",
        "Overhead setup/stitch",
        "Cycles/Instr Stitched (count)",
    )
}

/// The Table 3 header line.
pub fn table3_header() -> String {
    format!(
        "{:<42} |{}|{}|{}|{}|{}|{}|",
        "Benchmark", "ConstF", "BrElim", "LdElim", " DCE ", "Unroll", "StrRed",
    )
}
