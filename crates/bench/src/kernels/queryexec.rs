//! Inlining workload 2: the query-compiler row filter.
//!
//! A query plan — how many predicates, each testing one row *field*
//! against a constant with one comparison *operator* — is the run-time
//! constant; the table rows are not. Predicate evaluation lives in a
//! separate `pred` helper called from the per-row matcher's dynamic
//! region, so the region crosses a function boundary once per predicate:
//! without demand-driven inlining each stitched row test performs one
//! template call and a runtime operator `switch` per predicate; with
//! `--inline-depth` the helper is pulled into the region, each operator
//! `switch` resolves at stitch time, and the comparison constants fold
//! to immediates — flat compare-and-branch code, one per predicate.
//!
//! `matchrow` returns the row's *selectivity prefix* — how many leading
//! predicates it satisfies before the first failure — so the scan's
//! checksum reflects every evaluated predicate, not just accepted rows.

use crate::KernelResult;
use dyncomp::{Compiler, Error, KernelSetup, Program, Session};
use dyncomp_ir::prng::SplitMix64;
use std::borrow::Borrow;

/// Operators: 0 `==`, 1 `!=`, 2 `<`, 3 `>`, 4 divisible-by, 5 mask-set.
pub const SRC: &str = r#"
    struct Query { int n; int *op; int *field; int *k; };
    int pred(int op, int v, int k) {
        int r = 0;
        switch (op) {
            case 0: r = v == k; break;
            case 1: r = v != k; break;
            case 2: r = v < k; break;
            case 3: r = v > k; break;
            case 4: r = v % k == 0; break;
            default: r = (v & k) == k; break;
        }
        return r;
    }
    int matchrow(struct Query *q, int *row) {
        dynamicRegion (q) {
            int i;
            unrolled for (i = 0; i < q->n; i++) {
                if (pred(q->op[i], row dynamic[ q->field[i] ], q->k[i]) == 0)
                    return i;
            }
            return q->n;
        }
    }
    int runquery(struct Query *q, int **rows, int n) {
        int score = 0;
        int i;
        for (i = 0; i < n; i++) score = score + matchrow(q, rows[i]);
        return score;
    }
"#;

/// A reproducible query plan over `width`-field rows.
pub struct Query {
    /// Operator per predicate (0..=5).
    pub op: Vec<i64>,
    /// Row field tested per predicate.
    pub field: Vec<i64>,
    /// Comparison constant per predicate.
    pub k: Vec<i64>,
}

/// Generate an `n`-predicate plan covering all six operators, ordered
/// loose-to-selective (`>`, `<`, mask, divisible, `!=`, `==`) so rows
/// evaluate several predicates before short-circuiting out.
pub fn gen_query(n: u64, width: u64, seed: u64) -> Query {
    let mut rng = SplitMix64::new(seed);
    const ORDER: [i64; 6] = [3, 2, 5, 4, 1, 0];
    let mut q = Query {
        op: vec![],
        field: vec![],
        k: vec![],
    };
    for i in 0..n {
        let op = ORDER[(i % 6) as usize];
        q.op.push(op);
        q.field.push(rng.range_i64(0, width as i64 - 1));
        q.k.push(match op {
            0 | 1 => rng.range_i64(0, 31), // eq / ne
            2 => rng.range_i64(24, 31),    // v < k: usually true
            3 => rng.range_i64(1, 6),      // v > k: usually true
            4 => rng.range_i64(1, 3),      // divisible-by
            _ => 1 << rng.range_i64(0, 3), // single mask bit
        });
    }
    q
}

/// Generate `n` reproducible `width`-field rows (non-negative values keep
/// `%` and `&` semantics identical on host and VM).
pub fn gen_rows(n: u64, width: u64, seed: u64) -> Vec<Vec<i64>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| (0..width).map(|_| rng.range_i64(0, 31)).collect())
        .collect()
}

/// Host-side reference scan: sum over rows of the selectivity prefix.
pub fn reference(q: &Query, rows: &[Vec<i64>]) -> i64 {
    let mut score = 0i64;
    for row in rows {
        let mut prefix = q.op.len() as i64;
        for i in 0..q.op.len() {
            let (v, k) = (row[q.field[i] as usize], q.k[i]);
            let m = match q.op[i] {
                0 => v == k,
                1 => v != k,
                2 => v < k,
                3 => v > k,
                4 => v % k == 0,
                _ => (v & k) == k,
            };
            if !m {
                prefix = i as i64;
                break;
            }
        }
        score += prefix;
    }
    score
}

/// Install the plan and rows; returns `(query, rows, n)`.
pub fn build<P: Borrow<Program>>(
    engine: &mut Session<P>,
    q: &Query,
    rows: &[Vec<i64>],
) -> (u64, u64, u64) {
    let mut h = engine.heap();
    let op = h.array_i64(&q.op).unwrap();
    let field = h.array_i64(&q.field).unwrap();
    let k = h.array_i64(&q.k).unwrap();
    let query = h.record(&[q.op.len() as u64, op, field, k]).unwrap();
    let mut ptrs = Vec::new();
    for r in rows {
        ptrs.push(h.array_i64(r).unwrap());
    }
    let rows_a = h.array_u64(&ptrs).unwrap();
    (query, rows_a, ptrs.len() as u64)
}

/// Row width used by the harness configurations.
pub const WIDTH: u64 = 8;

/// The query workload: `iterations` full scans of `n_rows` reproducible
/// rows under an `n_preds`-predicate plan.
pub fn setup(n_preds: u64, n_rows: u64, iterations: u64) -> KernelSetup<'static> {
    KernelSetup {
        src: SRC,
        func: "runquery",
        iterations,
        prepare: Box::new(move |e: &mut Session| {
            let q = gen_query(n_preds, WIDTH, 23);
            let rows = gen_rows(n_rows, WIDTH, 29);
            let (query, rows_a, n) = build(e, &q, &rows);
            vec![query, rows_a, n]
        }),
        args: Box::new(|_, p| vec![p[0], p[1], p[2]]),
    }
}

/// Measure `iterations` scans of `n_rows` rows under an
/// `n_preds`-predicate plan, with an explicit dynamic-side compiler (the
/// inline-ablation hook) and engine options.
pub fn measure_full(
    n_preds: u64,
    n_rows: u64,
    iterations: u64,
    compiler: &Compiler,
    options: dyncomp::EngineOptions,
) -> Result<KernelResult, Error> {
    let m = dyncomp::measure_kernel_full(&setup(n_preds, n_rows, iterations), compiler, options)?;
    Ok(KernelResult {
        name: "Query-compiler row filter",
        config: format!("6 operators; {n_preds} predicates over {n_rows} rows"),
        unit: "rows filtered",
        unit_scale: n_rows,
        measurement: m,
    })
}

/// [`measure_full`] with the default (non-inlining) dynamic compiler.
pub fn measure_with(
    n_preds: u64,
    n_rows: u64,
    iterations: u64,
    options: dyncomp::EngineOptions,
) -> Result<KernelResult, Error> {
    measure_full(n_preds, n_rows, iterations, &Compiler::new(), options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncomp::{Compiler, Engine};

    #[test]
    fn filter_matches_host_reference_in_every_mode() {
        let q = gen_query(6, WIDTH, 23);
        let rows = gen_rows(40, WIDTH, 29);
        let want = reference(&q, &rows);
        let max = 6 * rows.len() as i64;
        assert!(want > max / 4, "degenerate plan: rows exit immediately");
        assert!(want < max, "degenerate plan: every row passes everything");
        for compiler in [
            Compiler::static_baseline(),
            Compiler::new(),
            Compiler::with_inline_depth(2),
        ] {
            let p = compiler.compile(SRC).unwrap();
            let mut e = Engine::new(&p);
            let (query, rows_a, n) = build(&mut e, &q, &rows);
            let got = e.call("runquery", &[query, rows_a, n]).unwrap() as i64;
            assert_eq!(got, want);
        }
    }

    #[test]
    fn inlining_creates_exactly_one_site() {
        let p = Compiler::with_inline_depth(2).compile(SRC).unwrap();
        assert_eq!(p.inline_sites.len(), 1);
        assert_eq!(p.inline_sites[0].callee_name, "pred");
    }

    #[test]
    fn inlined_measurement_beats_template_calls() {
        let plain = measure_with(6, 30, 5, dyncomp::EngineOptions::default()).unwrap();
        let inlined = measure_full(
            6,
            30,
            5,
            &Compiler::with_inline_depth(2),
            dyncomp::EngineOptions::default(),
        )
        .unwrap();
        assert_eq!(plain.measurement.checksum, inlined.measurement.checksum);
        assert!(
            inlined.measurement.dynamic_cycles < plain.measurement.dynamic_cycles,
            "inlined {} vs plain {}",
            inlined.measurement.dynamic_cycles,
            plain.measurement.dynamic_cycles
        );
        let o = inlined.measurement.optimizations();
        assert!(o.static_branch_elimination, "operator switches resolved");
        assert!(o.complete_loop_unrolling);
    }
}
