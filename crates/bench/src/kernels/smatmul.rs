//! Table 2, row 2: scalar–matrix multiply (adapted from ʻC's benchmark,
//! as in the paper).
//!
//! The matrix is multiplied by every scalar `1..=n_scalars`; the region is
//! *keyed* by the scalar, so each scalar gets its own specialized multiply
//! routine — the paper's "separate code generated dynamically for each
//! distinct combination of values of the key variables". The win is
//! strength reduction: `element * scalar` becomes shifts/adds chosen for
//! the actual scalar, plus the constant trip count as an immediate.

use crate::KernelResult;
use dyncomp::{Error, KernelSetup, Program, Session};
use std::borrow::Borrow;

/// The kernel: `dst[i] = src[i] * s` over a flattened matrix.
pub const SRC: &str = r#"
    int smatmul(int s, int n, int *src, int *dst) {
        dynamicRegion key(s) (s, n) {
            int i;
            for (i = 0; i < n; i++) {
                dst dynamic[ i ] = src dynamic[ i ] * s;
            }
            return dst dynamic[ n - 1 ];
        }
    }
"#;

/// Build `rows × cols` source/destination matrices; returns
/// `(src, dst, len)`.
pub fn build_matrices<P: Borrow<Program>>(
    engine: &mut Session<P>,
    rows: u64,
    cols: u64,
) -> (u64, u64, u64) {
    let len = rows * cols;
    let data: Vec<i64> = (0..len).map(|i| (i as i64 % 97) - 48).collect();
    let mut h = engine.heap();
    let src = h.array_i64(&data).unwrap();
    let dst = h.alloc(8 * len).unwrap();
    (src, dst, len)
}

/// The smatmul workload: every scalar `1..=n_scalars` against a
/// `rows × cols` matrix (one keyed stitch per scalar).
pub fn setup(rows: u64, cols: u64, n_scalars: u64) -> KernelSetup<'static> {
    KernelSetup {
        src: SRC,
        func: "smatmul",
        iterations: n_scalars,
        prepare: Box::new(move |e: &mut Session| {
            let (src, dst, len) = build_matrices(e, rows, cols);
            vec![src, dst, len]
        }),
        args: Box::new(|i, p| vec![i + 1, p[2], p[0], p[1]]),
    }
}

/// Measure `n_scalars` full multiplications of a `rows × cols` matrix.
pub fn measure(rows: u64, cols: u64, n_scalars: u64) -> Result<KernelResult, Error> {
    measure_with(rows, cols, n_scalars, dyncomp::EngineOptions::default())
}

/// [`measure`] under explicit engine options (tracing harnesses).
pub fn measure_with(
    rows: u64,
    cols: u64,
    n_scalars: u64,
    options: dyncomp::EngineOptions,
) -> Result<KernelResult, Error> {
    let m = dyncomp::measure_kernel_with(&setup(rows, cols, n_scalars), options)?;
    Ok(KernelResult {
        name: "Scalar-matrix multiply",
        config: format!("{rows}x{cols} matrix, multiplied by all scalars 1..{n_scalars}"),
        unit: "individual multiplications",
        unit_scale: rows * cols,
        measurement: m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncomp::{Compiler, Engine};

    #[test]
    fn multiplies_correctly_per_scalar() {
        let p = Compiler::new().compile(SRC).unwrap();
        let mut e = Engine::new(&p);
        let (src, dst, len) = build_matrices(&mut e, 3, 4);
        for s in [1u64, 2, 7] {
            e.call("smatmul", &[s, len, src, dst]).unwrap();
            for i in 0..len {
                let a = e.heap().get_u64(src + 8 * i).unwrap() as i64;
                let b = e.heap().get_u64(dst + 8 * i).unwrap() as i64;
                assert_eq!(b, a * s as i64, "s={s} i={i}");
            }
        }
        // One stitched instance per scalar key.
        assert_eq!(e.region_report(0).stitches, 3);
    }

    #[test]
    fn small_measurement_strength_reduces() {
        let r = measure(4, 8, 6).unwrap();
        let m = &r.measurement;
        assert!(m.stitch.strength_reductions > 0, "{:?}", m.stitch);
        let o = m.optimizations();
        assert!(o.constant_folding);
        assert!(o.strength_reduction);
        assert!(!o.complete_loop_unrolling, "the element loop is dynamic");
    }
}
