//! Inlining workload 1: the protocol/message field decoder.
//!
//! The wire layout — how many fields, each field's decode *kind* and
//! parameter — is the run-time constant (a session negotiates its layout
//! once, then decodes many messages). The per-field decoder lives in a
//! separate `decode` helper, so the hot loop crosses a function boundary
//! inside the dynamic region: without demand-driven inlining the stitched
//! code performs one template call and one runtime `switch` per field;
//! with `--inline-depth` the callee body is pulled into the region, each
//! field's kind `switch` resolves at stitch time, and the decode
//! parameters fold to immediates — the speedup *requires* inlining.

use crate::KernelResult;
use dyncomp::{Compiler, Error, KernelSetup, Program, Session};
use dyncomp_ir::prng::SplitMix64;
use std::borrow::Borrow;

/// Decode kinds: 0 raw, 1 biased, 2 scaled, 3 byte-extract, 4 masked,
/// 5 threshold flag.
pub const SRC: &str = r#"
    struct Layout { int n; int *kind; int *param; };
    int decode(int kind, int val, int param) {
        int r = 0;
        switch (kind) {
            case 0: r = val; break;
            case 1: r = val + param; break;
            case 2: r = val * param; break;
            case 3: r = (val >> param) & 255; break;
            case 4: r = val & param; break;
            default: r = val < param; break;
        }
        return r;
    }
    int decode_msg(struct Layout *l, int *msg) {
        dynamicRegion (l) {
            int acc = 0;
            int i;
            unrolled for (i = 0; i < l->n; i++) {
                acc = acc + decode(l->kind[i], msg[i], l->param[i]);
            }
            return acc;
        }
    }
"#;

/// Messages rotated through per iteration (prepared once in VM memory).
pub const MSG_ROTATION: u64 = 8;

/// A reproducible wire layout.
pub struct Layout {
    /// Decode kind per field (0..=5).
    pub kind: Vec<i64>,
    /// Decode parameter per field.
    pub param: Vec<i64>,
}

/// Generate an `n`-field layout covering all six decode kinds.
pub fn gen_layout(n: u64, seed: u64) -> Layout {
    let mut rng = SplitMix64::new(seed);
    let mut l = Layout {
        kind: vec![],
        param: vec![],
    };
    for i in 0..n {
        l.kind.push((i % 6) as i64);
        // Shift kinds need a bit count; small positives suit every kind.
        l.param.push(rng.range_i64(1, 16));
    }
    l
}

/// Generate one reproducible `n`-field message (non-negative values keep
/// shift/mask semantics identical on host and VM).
pub fn gen_msg(n: u64, seed: u64) -> Vec<i64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.range_i64(0, 1024)).collect()
}

/// Host-side reference decoder.
pub fn reference(l: &Layout, msg: &[i64]) -> i64 {
    let mut acc = 0i64;
    for (i, &v) in msg.iter().enumerate().take(l.kind.len()) {
        let p = l.param[i];
        acc = acc.wrapping_add(match l.kind[i] {
            0 => v,
            1 => v + p,
            2 => v * p,
            3 => (v >> p) & 255,
            4 => v & p,
            _ => i64::from(v < p),
        });
    }
    acc
}

/// Install the layout table; returns the `Layout*`.
pub fn build<P: Borrow<Program>>(engine: &mut Session<P>, l: &Layout) -> u64 {
    let mut h = engine.heap();
    let kind = h.array_i64(&l.kind).unwrap();
    let param = h.array_i64(&l.param).unwrap();
    h.record(&[l.kind.len() as u64, kind, param]).unwrap()
}

/// The decoder workload: `iterations` message decodes against a
/// reproducible `n_fields`-field layout, rotating over [`MSG_ROTATION`]
/// distinct messages.
pub fn setup(n_fields: u64, iterations: u64) -> KernelSetup<'static> {
    KernelSetup {
        src: SRC,
        func: "decode_msg",
        iterations,
        prepare: Box::new(move |e: &mut Session| {
            let l = gen_layout(n_fields, 17);
            let mut p = vec![build(e, &l)];
            for m in 0..MSG_ROTATION {
                let msg = gen_msg(n_fields, 100 + m);
                p.push(e.heap().array_i64(&msg).unwrap());
            }
            p
        }),
        args: Box::new(|i, p| vec![p[0], p[1 + (i % MSG_ROTATION) as usize]]),
    }
}

/// Measure `iterations` decodes of `n_fields`-field messages under an
/// explicit dynamic-side compiler (the inline-ablation hook) and engine
/// options.
pub fn measure_full(
    n_fields: u64,
    iterations: u64,
    compiler: &Compiler,
    options: dyncomp::EngineOptions,
) -> Result<KernelResult, Error> {
    let m = dyncomp::measure_kernel_full(&setup(n_fields, iterations), compiler, options)?;
    Ok(KernelResult {
        name: "Protocol message field decoder",
        config: format!("6 decode kinds; {n_fields}-field wire layout"),
        unit: "messages decoded",
        unit_scale: 1,
        measurement: m,
    })
}

/// [`measure_full`] with the default (non-inlining) dynamic compiler.
pub fn measure_with(
    n_fields: u64,
    iterations: u64,
    options: dyncomp::EngineOptions,
) -> Result<KernelResult, Error> {
    measure_full(n_fields, iterations, &Compiler::new(), options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncomp::{Compiler, Engine};

    #[test]
    fn decode_matches_host_reference_in_every_mode() {
        let l = gen_layout(9, 17);
        for compiler in [
            Compiler::static_baseline(),
            Compiler::new(),
            Compiler::with_inline_depth(2),
        ] {
            let p = compiler.compile(SRC).unwrap();
            let mut e = Engine::new(&p);
            let layout = build(&mut e, &l);
            for seed in 0..4 {
                let msg = gen_msg(9, 200 + seed);
                let m = e.heap().array_i64(&msg).unwrap();
                let got = e.call("decode_msg", &[layout, m]).unwrap() as i64;
                assert_eq!(got, reference(&l, &msg), "seed {seed}");
            }
        }
    }

    #[test]
    fn inlining_creates_exactly_one_site() {
        let p = Compiler::with_inline_depth(2).compile(SRC).unwrap();
        assert_eq!(p.inline_sites.len(), 1);
        assert_eq!(p.inline_sites[0].callee_name, "decode");
    }

    #[test]
    fn inlined_measurement_beats_template_calls() {
        let plain = measure_with(8, 40, dyncomp::EngineOptions::default()).unwrap();
        let inlined = measure_full(
            8,
            40,
            &Compiler::with_inline_depth(2),
            dyncomp::EngineOptions::default(),
        )
        .unwrap();
        assert_eq!(plain.measurement.checksum, inlined.measurement.checksum);
        assert!(
            inlined.measurement.dynamic_cycles < plain.measurement.dynamic_cycles,
            "inlined {} vs plain {}",
            inlined.measurement.dynamic_cycles,
            plain.measurement.dynamic_cycles
        );
        let o = inlined.measurement.optimizations();
        assert!(o.static_branch_elimination, "kind switches resolved");
        assert!(o.complete_loop_unrolling);
    }
}
