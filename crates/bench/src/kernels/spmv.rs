//! Table 2, rows 3–4: sparse matrix–vector multiply.
//!
//! The sparse matrix — its dimensions, sparsity structure *and* values —
//! is the run-time constant (the paper's "patterns of sparsity can be
//! run-time constant"). Dynamic compilation fully unrolls both the row
//! loop and each row's element loop, eliminates the `rowptr`/`col` index
//! loads (they become immediate offsets into the dense vector), and
//! patches the matrix values through the linearized constants table
//! (floats never fit immediates, §4).

use crate::KernelResult;
use dyncomp::{Error, KernelSetup, Program, Session};
use dyncomp_ir::prng::SplitMix64;
use std::borrow::Borrow;

/// CSR sparse matrix–vector multiply; returns a scaled-integer checksum of
/// the result so both compilations can be cross-checked.
pub const SRC: &str = r#"
    struct Sparse { int n; int *rowptr; int *col; double *val; };
    int spmv(struct Sparse *m, double *x, double *y) {
        dynamicRegion (m) {
            int chk = 0;
            int i;
            int j;
            unrolled for (i = 0; i < m->n; i++) {
                double acc = 0.0;
                unrolled for (j = m->rowptr[i]; j < m->rowptr[i + 1]; j++) {
                    acc = acc + m->val[j] * x dynamic[ m->col[j] ];
                }
                y dynamic[ i ] = acc;
                chk = chk + (int) (acc * 16.0);
            }
            return chk;
        }
    }
"#;

/// A reproducible random CSR matrix with ~`per_row` entries per row.
pub struct Csr {
    /// Dimension (square).
    pub n: u64,
    /// Row pointers (n+1).
    pub rowptr: Vec<i64>,
    /// Column indices.
    pub col: Vec<i64>,
    /// Values.
    pub val: Vec<f64>,
}

/// Generate the matrix.
pub fn gen_matrix(n: u64, per_row: u64, seed: u64) -> Csr {
    let mut rng = SplitMix64::new(seed);
    let mut rowptr = vec![0i64];
    let mut col = Vec::new();
    let mut val = Vec::new();
    for _ in 0..n {
        let mut cols: Vec<i64> = (0..per_row).map(|_| rng.below(n) as i64).collect();
        cols.sort_unstable();
        cols.dedup();
        for c in cols {
            col.push(c);
            val.push(rng.range_f64(-2.0, 2.0));
        }
        rowptr.push(col.len() as i64);
    }
    Csr {
        n,
        rowptr,
        col,
        val,
    }
}

/// Install the matrix and a dense vector in VM memory; returns
/// `(matrix_ptr, x_ptr, y_ptr)`.
pub fn build<P: Borrow<Program>>(engine: &mut Session<P>, m: &Csr) -> (u64, u64, u64) {
    let x: Vec<f64> = (0..m.n).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut h = engine.heap();
    let rowptr = h.array_i64(&m.rowptr).unwrap();
    let col = h.array_i64(&m.col).unwrap();
    let val = h.array_f64(&m.val).unwrap();
    let mp = h.record(&[m.n, rowptr, col, val]).unwrap();
    let xp = h.array_f64(&x).unwrap();
    let yp = h.alloc(8 * m.n).unwrap();
    (mp, xp, yp)
}

/// Host-side reference result (the checksum the kernel computes).
pub fn reference_checksum(m: &Csr) -> i64 {
    let x: Vec<f64> = (0..m.n).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut chk = 0i64;
    for i in 0..m.n as usize {
        let mut acc = 0.0;
        for j in m.rowptr[i] as usize..m.rowptr[i + 1] as usize {
            acc += m.val[j] * x[m.col[j] as usize];
        }
        chk += (acc * 16.0) as i64;
    }
    chk
}

/// The spmv workload: `iterations` multiplications of a reproducible
/// `n × n` matrix with `per_row` entries per row.
pub fn setup(n: u64, per_row: u64, iterations: u64) -> KernelSetup<'static> {
    KernelSetup {
        src: SRC,
        func: "spmv",
        iterations,
        prepare: Box::new(move |e: &mut Session| {
            let m = gen_matrix(n, per_row, 42);
            let (mp, xp, yp) = build(e, &m);
            vec![mp, xp, yp]
        }),
        args: Box::new(|_, p| vec![p[0], p[1], p[2]]),
    }
}

/// Measure `iterations` multiplications of an `n × n` matrix with
/// `per_row` entries per row.
pub fn measure(n: u64, per_row: u64, iterations: u64) -> Result<KernelResult, Error> {
    measure_with(n, per_row, iterations, dyncomp::EngineOptions::default())
}

/// [`measure`] under explicit engine options (tracing harnesses).
pub fn measure_with(
    n: u64,
    per_row: u64,
    iterations: u64,
    options: dyncomp::EngineOptions,
) -> Result<KernelResult, Error> {
    let m = dyncomp::measure_kernel_with(&setup(n, per_row, iterations), options)?;
    let density = 100.0 * per_row as f64 / n as f64;
    Ok(KernelResult {
        name: "Sparse matrix-vector multiply",
        config: format!("{n}x{n} matrix, {per_row} elements/row, {density:.0}% density"),
        unit: "matrix multiplications",
        unit_scale: 1,
        measurement: m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncomp::{Compiler, Engine};

    #[test]
    fn result_matches_host_reference() {
        let m = gen_matrix(8, 3, 7);
        let want = reference_checksum(&m);
        for dynamic in [false, true] {
            let c = if dynamic {
                Compiler::new()
            } else {
                Compiler::static_baseline()
            };
            let p = c.compile(SRC).unwrap();
            let mut e = Engine::new(&p);
            let (mp, xp, yp) = build(&mut e, &m);
            let got = e.call("spmv", &[mp, xp, yp]).unwrap() as i64;
            assert_eq!(got, want, "dyn={dynamic}");
            // y is actually written.
            let y0 = f64::from_bits(e.heap().get_u64(yp).unwrap());
            assert!(y0.is_finite());
        }
    }

    #[test]
    fn small_measurement_unrolls_and_eliminates_loads() {
        let r = measure(6, 2, 25).unwrap();
        let m = &r.measurement;
        let o = m.optimizations();
        assert!(o.complete_loop_unrolling);
        assert!(o.load_elimination, "rowptr/col/val loads eliminated");
        assert!(o.constant_folding);
        assert!(
            m.stitch.holes_big > 0,
            "float values through the linearized table"
        );
        assert!(m.speedup > 1.0, "got {:.3}", m.speedup);
    }
}
