//! Table 2, row 1: the reverse-polish stack-based desk calculator.
//!
//! The run-time constant is the *program* being interpreted — the paper's
//! canonical "interpreter whose interpreted program is invariant" example.
//! The interpreted expression is the paper's:
//!
//! ```text
//! x·y − 3·y² − x² + (x+5)·(y−x) + x + y − 1
//! ```
//!
//! Dynamic compilation completely unrolls the fetch–decode loop over the
//! constant instruction array, resolves each opcode's `switch` (a constant
//! switch per unrolled copy), and patches pushed literals as immediates —
//! the interpreter compiles itself away.

use crate::KernelResult;
use dyncomp::{Error, KernelSetup, Program, Session};
use std::borrow::Borrow;

/// Opcodes: 0 push-literal, 1 push-x, 2 push-y, 3 add, 4 sub, 5 mul.
pub const SRC: &str = r#"
    struct Prog { int n; int *ops; int *args; };
    int calc(struct Prog *p, int x, int y) {
        dynamicRegion (p) {
            int stack[32];
            int sp = 0;
            int i;
            unrolled for (i = 0; i < p->n; i++) {
                switch (p->ops[i]) {
                    case 0: stack[sp] = p->args[i]; sp = sp + 1; break;
                    case 1: stack[sp] = x; sp = sp + 1; break;
                    case 2: stack[sp] = y; sp = sp + 1; break;
                    case 3: sp = sp - 1; stack[sp - 1] = stack[sp - 1] + stack[sp]; break;
                    case 4: sp = sp - 1; stack[sp - 1] = stack[sp - 1] - stack[sp]; break;
                    default: sp = sp - 1; stack[sp - 1] = stack[sp - 1] * stack[sp]; break;
                }
            }
            return stack[0];
        }
    }
"#;

/// The register-actions variant (§5): the operand stack is a *global*
/// array, so `gstack[sp]` with a constant `sp` is a run-time-constant
/// address — exactly the "array loads and stores through run-time
/// constant offsets" the paper's register actions promote to registers.
/// Reads are annotated `dynamic[...]` because the region itself writes the
/// stack (§2: "a load through a constant pointer whose target has been
/// modified … should use dynamic*"). The stack is pure scratch (dead
/// outside the region), so promotion without write-back is sound.
pub const SRC_GLOBAL_STACK: &str = r#"
    int gstack[32];
    struct Prog { int n; int *ops; int *args; };
    int calc(struct Prog *p, int x, int y) {
        dynamicRegion (p) {
            int sp = 0;
            int i;
            unrolled for (i = 0; i < p->n; i++) {
                switch (p->ops[i]) {
                    case 0: gstack[sp] = p->args[i]; sp = sp + 1; break;
                    case 1: gstack[sp] = x; sp = sp + 1; break;
                    case 2: gstack[sp] = y; sp = sp + 1; break;
                    case 3: sp = sp - 1;
                            gstack[sp - 1] = gstack dynamic[ sp - 1 ] + gstack dynamic[ sp ];
                            break;
                    case 4: sp = sp - 1;
                            gstack[sp - 1] = gstack dynamic[ sp - 1 ] - gstack dynamic[ sp ];
                            break;
                    default: sp = sp - 1;
                            gstack[sp - 1] = gstack dynamic[ sp - 1 ] * gstack dynamic[ sp ];
                            break;
                }
            }
            return gstack dynamic[ 0 ];
        }
    }
"#;

/// The paper's expression in RPN:
/// `x y * 3 y y * * - x x * - x 5 + y x - * + x + y + 1 -`.
pub fn program() -> (Vec<i64>, Vec<i64>) {
    // (opcode, literal) pairs.
    let insts: &[(i64, i64)] = &[
        (1, 0), // x
        (2, 0), // y
        (5, 0), // *
        (0, 3), // 3
        (2, 0), // y
        (2, 0), // y
        (5, 0), // *
        (5, 0), // *
        (4, 0), // -
        (1, 0), // x
        (1, 0), // x
        (5, 0), // *
        (4, 0), // -
        (1, 0), // x
        (0, 5), // 5
        (3, 0), // +
        (2, 0), // y
        (1, 0), // x
        (4, 0), // -
        (5, 0), // *
        (3, 0), // +
        (1, 0), // x
        (3, 0), // +
        (2, 0), // y
        (3, 0), // +
        (0, 1), // 1
        (4, 0), // -
    ];
    (
        insts.iter().map(|&(o, _)| o).collect(),
        insts.iter().map(|&(_, a)| a).collect(),
    )
}

/// The interpreted expression, natively, for cross-checking.
pub fn expected(x: i64, y: i64) -> i64 {
    x * y - 3 * y * y - x * x + (x + 5) * (y - x) + x + y - 1
}

/// Build the constant program in VM memory; returns the `Prog*`.
pub fn build_program<P: Borrow<Program>>(engine: &mut Session<P>) -> u64 {
    let (ops, args) = program();
    let mut h = engine.heap();
    let ops_a = h.array_i64(&ops).unwrap();
    let args_a = h.array_i64(&args).unwrap();
    h.record(&[ops.len() as u64, ops_a, args_a]).unwrap()
}

/// The calculator workload: `iterations` interpretations with varying
/// `x`, `y` (shared by [`measure`] and the concurrency harnesses).
pub fn setup(iterations: u64) -> KernelSetup<'static> {
    KernelSetup {
        src: SRC,
        func: "calc",
        iterations,
        prepare: Box::new(|e: &mut Session| vec![build_program(e)]),
        args: Box::new(|i, p| {
            let x = (i % 23) as i64 - 11;
            let y = (i % 17) as i64 - 8;
            vec![p[0], x as u64, y as u64]
        }),
    }
}

/// Measure the calculator over `iterations` interpretations with varying
/// `x`, `y`.
pub fn measure(iterations: u64) -> Result<KernelResult, Error> {
    measure_with(iterations, dyncomp::EngineOptions::default())
}

/// [`measure`] under explicit engine options (tracing harnesses).
pub fn measure_with(
    iterations: u64,
    options: dyncomp::EngineOptions,
) -> Result<KernelResult, Error> {
    let m = dyncomp::measure_kernel_with(&setup(iterations), options)?;
    Ok(KernelResult {
        name: "Reverse-polish stack-based desk calculator",
        config: format!("{iterations} interpretations, varying x, y"),
        unit: "interpretations",
        unit_scale: 1,
        measurement: m,
    })
}

/// Measure the global-stack variant, optionally with register actions
/// promoting up to `k` stack slots (the paper's §5 experiment: 1.7× → 4.1×).
pub fn measure_regactions(iterations: u64, k: Option<usize>) -> Result<KernelResult, Error> {
    let setup = KernelSetup {
        src: SRC_GLOBAL_STACK,
        func: "calc",
        iterations,
        prepare: Box::new(|e: &mut Session| vec![build_program(e)]),
        args: Box::new(|i, p| {
            let x = (i % 23) as i64 - 11;
            let y = (i % 17) as i64 - 8;
            vec![p[0], x as u64, y as u64]
        }),
    };
    let mut opts = dyncomp::EngineOptions::default();
    opts.stitch.register_actions = k;
    let m = dyncomp::measure_kernel_with(&setup, opts)?;
    Ok(KernelResult {
        name: "Calculator (global stack)",
        config: match k {
            Some(k) => format!("{iterations} interpretations, register actions k={k}"),
            None => format!("{iterations} interpretations, no register actions"),
        },
        unit: "interpretations",
        unit_scale: 1,
        measurement: m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncomp::{Compiler, Engine};

    #[test]
    fn interpreter_matches_native_expression() {
        for dynamic in [false, true] {
            let c = if dynamic {
                Compiler::new()
            } else {
                Compiler::static_baseline()
            };
            let p = c.compile(SRC).unwrap();
            let mut e = Engine::new(&p);
            let prog = build_program(&mut e);
            for (x, y) in [(2i64, 3i64), (0, 0), (-4, 7), (10, -10)] {
                let r = e.call("calc", &[prog, x as u64, y as u64]).unwrap() as i64;
                assert_eq!(r, expected(x, y), "x={x} y={y} dyn={dynamic}");
            }
        }
    }

    #[test]
    fn global_stack_variant_matches_native() {
        for dynamic in [false, true] {
            let c = if dynamic {
                Compiler::new()
            } else {
                Compiler::static_baseline()
            };
            let p = c.compile(SRC_GLOBAL_STACK).unwrap();
            let mut e = Engine::new(&p);
            let prog = build_program(&mut e);
            for (x, y) in [(2i64, 3i64), (-1, 4)] {
                let r = e.call("calc", &[prog, x as u64, y as u64]).unwrap() as i64;
                assert_eq!(r, expected(x, y), "x={x} y={y} dyn={dynamic}");
            }
        }
    }

    #[test]
    fn register_actions_preserve_results_and_remove_accesses() {
        let base = measure_regactions(40, None).unwrap();
        let ra = measure_regactions(40, Some(6)).unwrap();
        assert_eq!(base.measurement.checksum, ra.measurement.checksum);
        let s = &ra.measurement.stitch;
        assert!(s.regaction_promoted > 0, "stack slots promoted: {s:?}");
        assert!(
            s.regaction_loads_removed + s.regaction_stores_rewritten > 0,
            "accesses rewritten: {s:?}"
        );
        assert!(
            ra.measurement.dynamic_cycles < base.measurement.dynamic_cycles,
            "register actions speed up the stitched code: {} vs {}",
            ra.measurement.dynamic_cycles,
            base.measurement.dynamic_cycles
        );
    }

    #[test]
    fn small_measurement_speeds_up() {
        let r = measure(60).unwrap();
        let m = &r.measurement;
        assert!(
            m.speedup > 1.0,
            "interpreter should speed up, got {:.3}",
            m.speedup
        );
        let o = m.optimizations();
        assert!(o.constant_folding);
        assert!(o.static_branch_elimination, "opcode switches eliminated");
        assert!(o.load_elimination, "ops/args loads eliminated");
        assert!(o.complete_loop_unrolling);
    }
}
