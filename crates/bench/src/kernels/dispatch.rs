//! Table 2, row 5: the extensible-OS event dispatcher (SPIN-style).
//!
//! The installed guard list is the run-time constant — the paper's
//! "current set of extensions to the kernel is run-time constant". Each
//! guard has one of six predicate kinds and a parameter; dispatch walks
//! the list, evaluates matching guards against the event, and accumulates
//! handler results. Dynamic compilation unrolls the guard loop, resolves
//! each guard's kind `switch` (constant per guard), and inlines the
//! parameters as immediates — leaving a flat sequence of compare-and-act
//! code, one per installed guard.

use crate::KernelResult;
use dyncomp::{Error, KernelSetup, Program, Session};
use dyncomp_ir::prng::SplitMix64;
use std::borrow::Borrow;

/// Predicate kinds: 0 eq, 1 ne, 2 lt, 3 gt, 4 mask, 5 range-low.
pub const SRC: &str = r#"
    struct Guards { int n; int *kind; int *param; int *hval; };
    int dispatch(struct Guards *g, int ev, int arg) {
        dynamicRegion (g) {
            int result = 0;
            int i;
            unrolled for (i = 0; i < g->n; i++) {
                int match = 0;
                switch (g->kind[i]) {
                    case 0: match = ev == g->param[i]; break;
                    case 1: match = ev != g->param[i]; break;
                    case 2: match = ev < g->param[i]; break;
                    case 3: match = ev > g->param[i]; break;
                    case 4: match = (ev & g->param[i]) != 0; break;
                    default: match = ev >= g->param[i] && ev < g->param[i] + 8; break;
                }
                if (match) result = result + g->hval[i] + arg;
            }
            return result;
        }
    }
"#;

/// A reproducible guard table.
pub struct GuardTable {
    /// Predicate kind per guard (0..=5).
    pub kind: Vec<i64>,
    /// Parameter per guard.
    pub param: Vec<i64>,
    /// Handler value per guard.
    pub hval: Vec<i64>,
}

/// Generate `n` guards covering all six predicate kinds.
pub fn gen_guards(n: u64, seed: u64) -> GuardTable {
    let mut rng = SplitMix64::new(seed);
    let mut t = GuardTable {
        kind: vec![],
        param: vec![],
        hval: vec![],
    };
    for i in 0..n {
        t.kind.push((i % 6) as i64);
        t.param.push(rng.range_i64(0, 32));
        t.hval.push(rng.range_i64(1, 100));
    }
    t
}

/// Host-side reference dispatcher.
pub fn reference(t: &GuardTable, ev: i64, arg: i64) -> i64 {
    let mut result = 0;
    for i in 0..t.kind.len() {
        let p = t.param[i];
        let m = match t.kind[i] {
            0 => ev == p,
            1 => ev != p,
            2 => ev < p,
            3 => ev > p,
            4 => (ev & p) != 0,
            _ => ev >= p && ev < p + 8,
        };
        if m {
            result += t.hval[i] + arg;
        }
    }
    result
}

/// Install the guard table; returns the `Guards*`.
pub fn build<P: Borrow<Program>>(engine: &mut Session<P>, t: &GuardTable) -> u64 {
    let mut h = engine.heap();
    let kind = h.array_i64(&t.kind).unwrap();
    let param = h.array_i64(&t.param).unwrap();
    let hval = h.array_i64(&t.hval).unwrap();
    h.record(&[t.kind.len() as u64, kind, param, hval]).unwrap()
}

/// The dispatch workload: `iterations` event dispatches against a
/// reproducible table of `n_guards` guards.
pub fn setup(n_guards: u64, iterations: u64) -> KernelSetup<'static> {
    KernelSetup {
        src: SRC,
        func: "dispatch",
        iterations,
        prepare: Box::new(move |e: &mut Session| {
            let t = gen_guards(n_guards, 11);
            vec![build(e, &t)]
        }),
        args: Box::new(|i, p| vec![p[0], i % 37, (i % 5) + 1]),
    }
}

/// Measure `iterations` event dispatches against `n_guards` guards.
pub fn measure(n_guards: u64, iterations: u64) -> Result<KernelResult, Error> {
    measure_with(n_guards, iterations, dyncomp::EngineOptions::default())
}

/// [`measure`] under explicit engine options (tracing harnesses).
pub fn measure_with(
    n_guards: u64,
    iterations: u64,
    options: dyncomp::EngineOptions,
) -> Result<KernelResult, Error> {
    let m = dyncomp::measure_kernel_with(&setup(n_guards, iterations), options)?;
    Ok(KernelResult {
        name: "Event dispatcher in an extensible OS",
        config: format!("6 predicate types; {n_guards} different event guards"),
        unit: "event dispatches",
        unit_scale: 1,
        measurement: m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncomp::{Compiler, Engine};

    #[test]
    fn dispatch_matches_host_reference() {
        let t = gen_guards(10, 3);
        for dynamic in [false, true] {
            let c = if dynamic {
                Compiler::new()
            } else {
                Compiler::static_baseline()
            };
            let p = c.compile(SRC).unwrap();
            let mut e = Engine::new(&p);
            let g = build(&mut e, &t);
            for ev in 0..40i64 {
                let got = e.call("dispatch", &[g, ev as u64, 2]).unwrap() as i64;
                assert_eq!(got, reference(&t, ev, 2), "ev={ev} dyn={dynamic}");
            }
        }
    }

    #[test]
    fn small_measurement_eliminates_guard_switches() {
        let r = measure(10, 50).unwrap();
        let m = &r.measurement;
        let o = m.optimizations();
        assert!(o.static_branch_elimination, "kind switches resolved");
        assert!(o.dead_code_elimination);
        assert!(o.load_elimination);
        assert!(o.complete_loop_unrolling);
        assert!(m.speedup > 1.0, "got {:.3}", m.speedup);
    }
}
