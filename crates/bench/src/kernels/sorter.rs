//! Table 2, rows 6–7: the QuickSort record sorter (extended from Keppel,
//! Eggers & Henry, as in the paper).
//!
//! Records are compared by a multi-key comparator whose key specification
//! — how many keys, at which offsets, each of which comparison *type* —
//! is the run-time constant. Dynamic compilation specializes the
//! comparator: the key loop unrolls, each key's type `switch` resolves,
//! and the offsets become immediates. QuickSort itself stays ordinary
//! static code calling the (once-stitched) comparator.

use crate::KernelResult;
use dyncomp::{Error, KernelSetup, Program, Session};
use dyncomp_ir::prng::SplitMix64;
use std::borrow::Borrow;

/// Key types: 0 int ascending, 1 int descending, 2 unsigned ascending,
/// 3 magnitude ascending.
pub const SRC: &str = r#"
    struct Spec { int nkeys; int *off; int *dir; };
    int compare(struct Spec *s, int *a, int *b) {
        dynamicRegion (s) {
            int i;
            unrolled for (i = 0; i < s->nkeys; i++) {
                int av = a dynamic[ s->off[i] ];
                int bv = b dynamic[ s->off[i] ];
                int r = 0;
                switch (s->dir[i]) {
                    case 0: r = (av > bv) - (av < bv); break;
                    case 1: r = (bv > av) - (bv < av); break;
                    case 2: r = ((unsigned) av > (unsigned) bv)
                              - ((unsigned) av < (unsigned) bv); break;
                    default: r = (abs(av) > abs(bv)) - (abs(av) < abs(bv)); break;
                }
                if (r) return r;
            }
            return 0;
        }
    }
    void qsortr(struct Spec *s, int **recs, int lo, int hi) {
        if (lo >= hi) return;
        int *pivot = recs[(lo + hi) / 2];
        int i = lo;
        int j = hi;
        while (i <= j) {
            while (compare(s, recs[i], pivot) < 0) i++;
            while (compare(s, recs[j], pivot) > 0) j--;
            if (i <= j) {
                int *t = recs[i];
                recs[i] = recs[j];
                recs[j] = t;
                i++;
                j--;
            }
        }
        qsortr(s, recs, lo, j);
        qsortr(s, recs, i, hi);
    }
    int sortrecs(struct Spec *s, int **master, int **work, int n) {
        int i;
        for (i = 0; i < n; i++) work[i] = master[i];
        qsortr(s, work, 0, n - 1);
        int chk = 0;
        for (i = 0; i < n; i++) chk = chk * 31 + work[i][0];
        return chk;
    }
"#;

/// Reproducible record set: `n` records of `nkeys` small integers (small
/// ranges force deep multi-key comparisons).
pub fn gen_records(n: u64, nkeys: u64, seed: u64) -> Vec<Vec<i64>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| (0..nkeys).map(|_| rng.range_i64(-3, 3)).collect())
        .collect()
}

/// Install the key spec and records; returns `(spec, master, work, n)`.
pub fn build<P: Borrow<Program>>(
    engine: &mut Session<P>,
    records: &[Vec<i64>],
) -> (u64, u64, u64, u64) {
    let nkeys = records.first().map(|r| r.len()).unwrap_or(0) as u64;
    let mut h = engine.heap();
    let off: Vec<i64> = (0..nkeys as i64).collect();
    let dir: Vec<i64> = (0..nkeys as i64).map(|i| i % 4).collect();
    let off_a = h.array_i64(&off).unwrap();
    let dir_a = h.array_i64(&dir).unwrap();
    let spec = h.record(&[nkeys, off_a, dir_a]).unwrap();
    let mut ptrs = Vec::new();
    for r in records {
        ptrs.push(h.array_i64(r).unwrap());
    }
    let master = h.array_u64(&ptrs).unwrap();
    let work = h.alloc(8 * ptrs.len() as u64).unwrap();
    (spec, master, work, ptrs.len() as u64)
}

/// The sorter workload: `sorts` sorts of `n` reproducible records under an
/// `nkeys`-key comparator.
pub fn setup(n: u64, nkeys: u64, sorts: u64) -> KernelSetup<'static> {
    KernelSetup {
        src: SRC,
        func: "sortrecs",
        iterations: sorts,
        prepare: Box::new(move |e: &mut Session| {
            let recs = gen_records(n, nkeys, 5);
            let (spec, master, work, n) = build(e, &recs);
            vec![spec, master, work, n]
        }),
        args: Box::new(|_, p| vec![p[0], p[1], p[2], p[3]]),
    }
}

/// Measure `sorts` sorts of `n` records with `nkeys`-key comparators.
pub fn measure(n: u64, nkeys: u64, sorts: u64) -> Result<KernelResult, Error> {
    measure_with(n, nkeys, sorts, dyncomp::EngineOptions::default())
}

/// [`measure`] under explicit engine options (tracing harnesses).
pub fn measure_with(
    n: u64,
    nkeys: u64,
    sorts: u64,
    options: dyncomp::EngineOptions,
) -> Result<KernelResult, Error> {
    let m = dyncomp::measure_kernel_with(&setup(n, nkeys, sorts), options)?;
    Ok(KernelResult {
        name: "QuickSort record sorter",
        config: format!("{nkeys} keys, each of a different type; {n} records"),
        unit: "records",
        unit_scale: n,
        measurement: m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncomp::{Compiler, Engine};

    /// Host reference comparator mirroring the MiniC one.
    fn host_cmp(a: &[i64], b: &[i64]) -> std::cmp::Ordering {
        for i in 0..a.len() {
            let (av, bv) = (a[i], b[i]);
            let r = match i % 4 {
                0 => av.cmp(&bv),
                1 => bv.cmp(&av),
                2 => (av as u64).cmp(&(bv as u64)),
                _ => av.abs().cmp(&bv.abs()),
            };
            if r != std::cmp::Ordering::Equal {
                return r;
            }
        }
        std::cmp::Ordering::Equal
    }

    #[test]
    fn sorts_like_the_host() {
        let recs = gen_records(24, 4, 9);
        let mut sorted = recs.clone();
        sorted.sort_by(|a, b| host_cmp(a, b));
        let want: i64 = sorted
            .iter()
            .fold(0i64, |c, r| c.wrapping_mul(31).wrapping_add(r[0]));
        for dynamic in [false, true] {
            let c = if dynamic {
                Compiler::new()
            } else {
                Compiler::static_baseline()
            };
            let p = c.compile(SRC).unwrap();
            let mut e = Engine::new(&p);
            let (spec, master, work, n) = build(&mut e, &recs);
            let got = e.call("sortrecs", &[spec, master, work, n]).unwrap() as i64;
            assert_eq!(got, want, "dyn={dynamic}");
        }
    }

    #[test]
    fn small_measurement_specializes_comparator() {
        let r = measure(30, 4, 6).unwrap();
        let m = &r.measurement;
        let o = m.optimizations();
        assert!(o.complete_loop_unrolling, "key loop unrolled");
        assert!(o.static_branch_elimination, "key-type switches resolved");
        assert!(o.load_elimination, "off/dir loads eliminated");
        assert!(m.stitch.instructions_stitched > 0);
    }
}
