//! Stitcher throughput: copy-and-patch plans vs the interpretive
//! directive walk, on the paper's five kernels.
//!
//! Each kernel runs its workload once to populate the per-region
//! constants tables, then the stitcher is re-run over every recorded
//! `(region, table)` pair — pure stitching work, no set-up execution, no
//! installation — with plans on and off. Two numbers per configuration:
//!
//! * **simulated cycles / stitched instruction** — the deterministic
//!   [`StitchCost`] model (what Tables 2/3 charge);
//! * **host ns / stitched instruction** — wall-clock of the reproduction
//!   itself (median over samples).
//!
//! Usage: `stitch_throughput [--samples N]` (default 9).

use dyncomp::{Compiler, Engine};
use dyncomp_bench::kernels::{calculator, dispatch, smatmul, sorter, spmv};
use dyncomp_stitcher::StitchOptions;
use std::hint::black_box;
use std::time::Instant;

type Prepare = Box<dyn Fn(&mut Engine) -> Vec<u64>>;
type Calls = Box<dyn Fn(u64, &[u64]) -> Vec<u64>>;

struct Kernel {
    name: &'static str,
    src: &'static str,
    func: &'static str,
    prepare: Prepare,
    calls: Calls,
    n_calls: u64,
}

fn kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "calculator",
            src: calculator::SRC,
            func: "calc",
            prepare: Box::new(|e| vec![calculator::build_program(e)]),
            calls: Box::new(|i, p| vec![p[0], 3 + i, 7 + 2 * i]),
            n_calls: 1,
        },
        Kernel {
            name: "smatmul",
            src: smatmul::SRC,
            func: "smatmul",
            prepare: Box::new(|e| {
                let (src, dst, len) = smatmul::build_matrices(e, 16, 32);
                vec![src, dst, len]
            }),
            calls: Box::new(|i, p| vec![i + 1, p[2], p[0], p[1]]),
            n_calls: 4,
        },
        Kernel {
            name: "spmv",
            src: spmv::SRC,
            func: "spmv",
            prepare: Box::new(|e| {
                let m = spmv::gen_matrix(32, 4, 42);
                let (mp, xp, yp) = spmv::build(e, &m);
                vec![mp, xp, yp]
            }),
            calls: Box::new(|_, p| vec![p[0], p[1], p[2]]),
            n_calls: 1,
        },
        Kernel {
            name: "dispatcher",
            src: dispatch::SRC,
            func: "dispatch",
            prepare: Box::new(|e| {
                let t = dispatch::gen_guards(10, 11);
                vec![dispatch::build(e, &t)]
            }),
            calls: Box::new(|i, p| vec![p[0], 13 + i, 2]),
            n_calls: 1,
        },
        Kernel {
            name: "sorter",
            src: sorter::SRC,
            func: "sortrecs",
            prepare: Box::new(|e| {
                let recs = sorter::gen_records(60, 4, 5);
                let (spec, master, work, n) = sorter::build(e, &recs);
                vec![spec, master, work, n]
            }),
            calls: Box::new(|_, p| vec![p[0], p[1], p[2], p[3]]),
            n_calls: 1,
        },
    ]
}

/// Median host ns for one `restitch_all` pass under `opts`.
fn host_ns(engine: &mut Engine, opts: &StitchOptions, samples: usize) -> f64 {
    for _ in 0..2 {
        black_box(engine.restitch_all(opts).expect("restitch"));
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            black_box(engine.restitch_all(opts).expect("restitch"));
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn main() {
    let mut samples = 9usize;
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--samples") {
        samples = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or(samples);
    }

    println!(
        "{:<12} | {:>6} | {:>22} | {:>22} | {:>9} | {:>11}",
        "kernel",
        "insts",
        "sim cycles/inst (plan)",
        "sim cycles/inst (int.)",
        "sim ratio",
        "host ns/inst"
    );
    println!("{}", "-".repeat(100));

    for k in kernels() {
        let program = Compiler::new().compile(k.src).expect("compiles");
        let mut engine = Engine::new(&program);
        let prepared = (k.prepare)(&mut engine);
        for i in 0..k.n_calls {
            let args = (k.calls)(i, &prepared);
            engine.call(k.func, &args).expect("runs");
        }

        let plan_opts = StitchOptions::default();
        let interp_opts = StitchOptions {
            plans: false,
            ..StitchOptions::default()
        };

        let sp = engine.restitch_all(&plan_opts).expect("plan restitch");
        let si = engine.restitch_all(&interp_opts).expect("interp restitch");
        assert_eq!(
            sp.instructions_stitched, si.instructions_stitched,
            "plan and interpretive paths must stitch the same instructions"
        );
        let insts = sp.instructions_stitched.max(1) as f64;
        let sim_plan = sp.cycles as f64 / insts;
        let sim_interp = si.cycles as f64 / insts;

        let h_plan = host_ns(&mut engine, &plan_opts, samples) / insts;
        let h_interp = host_ns(&mut engine, &interp_opts, samples) / insts;

        println!(
            "{:<12} | {:>6} | {:>22.1} | {:>22.1} | {:>8.2}x | {:>5.1} / {:>5.1}",
            k.name,
            sp.instructions_stitched,
            sim_plan,
            sim_interp,
            sim_interp / sim_plan,
            h_plan,
            h_interp,
        );
        println!(
            "{:<12} |        | plan hits {:>4}, misses {:>3} | (interpretive: plans off)",
            "", sp.plan_hits, sp.plan_misses
        );
    }
    println!("\nhost ns/inst column: plan / interpretive (median of {samples} samples)");
}
