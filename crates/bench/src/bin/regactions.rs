//! The §5 register-actions experiment: the paper reports the calculator's
//! speedup rising from 1.7× to 4.1× when the stitcher additionally
//! allocates constant-offset array elements (the operand stack) to
//! registers.
//!
//! Usage: `cargo run --release -p dyncomp-bench --bin regactions [--smoke]`

use dyncomp_bench::kernels::calculator;

fn main() {
    let iters = if std::env::args().any(|a| a == "--smoke") {
        100
    } else {
        2000
    };
    println!("Register actions experiment (calculator, {iters} interpretations)");
    println!();

    let base = calculator::measure_regactions(iters, None).unwrap_or_else(die);
    let ra = calculator::measure_regactions(iters, Some(4)).unwrap_or_else(die);
    assert_eq!(
        base.measurement.checksum, ra.measurement.checksum,
        "results must agree"
    );

    for (label, r) in [
        ("without register actions", &base),
        ("with register actions", &ra),
    ] {
        let m = &r.measurement;
        println!(
            "{label:<26}: speedup {:>5.2}x  (static {:.0} / dynamic {:.0} cycles per interpretation)",
            m.speedup, m.static_cycles, m.dynamic_cycles
        );
    }
    let s = &ra.measurement.stitch;
    println!();
    println!(
        "promoted {} stack addresses; rewrote {} loads (incl. dead address loads) and {} stores",
        s.regaction_promoted, s.regaction_loads_removed, s.regaction_stores_rewritten
    );
    println!(
        "speedup improvement factor: {:.2}x -> {:.2}x (paper: 1.7x -> 4.1x)",
        base.measurement.speedup, ra.measurement.speedup
    );
}

fn die<T>(e: dyncomp::Error) -> T {
    eprintln!("experiment failed: {e}");
    std::process::exit(1);
}
