//! Warm-up latency bench: time-to-first-result, time-to-first-fast and
//! empirical (effective) breakeven for the synchronous, tiered and
//! tiered + speculative execution modes, per kernel. Writes the
//! machine-readable `BENCH_warmup.json`.
//!
//! Usage: `cargo run --release -p dyncomp-bench --bin warmup [--smoke] [--json <path>]`

use dyncomp_bench::warmup::{render_warmup_json, run_warmup, warmup_header};
use dyncomp_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Paper
    };
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(p) => args.get(p + 1).cloned().unwrap_or_else(|| {
            eprintln!("warmup: --json needs a path");
            std::process::exit(2);
        }),
        None => "BENCH_warmup.json".to_string(),
    };
    println!("Warm-up latency: sync vs tiered vs tiered+speculative ({scale:?} scale)");
    println!("{}", warmup_header());
    println!("{}", "-".repeat(110));
    let rows = run_warmup(scale).unwrap_or_else(|e| {
        eprintln!("warmup bench failed: {e}");
        std::process::exit(1);
    });
    let mut last = "";
    for row in &rows {
        if row.kernel != last && !last.is_empty() {
            println!();
        }
        last = row.kernel;
        println!("{}", row.table_row());
    }
    println!();
    println!("Columns: cycles of invocation 1, first invocation cheaper than the static");
    println!("baseline (and cumulative cycles through it), and the least n where the");
    println!("mode's cumulative cycles drop to the static baseline's. Tiered modes run");
    println!("the statically compiled fallback while one background worker stitches");
    println!("under the deterministic virtual-clock model (see EXPERIMENTS.md).");
    match std::fs::write(&json_path, render_warmup_json(&rows)) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => {
            eprintln!("warmup: cannot write {json_path}: {e}");
            std::process::exit(1);
        }
    }
}
