//! Fault-injection sweep: every [`FaultPoint`] against every paper
//! kernel, asserting the robustness invariant end to end — a session
//! under injected faults must produce **bit-identical checksums** to the
//! fault-free run (recovery may spend extra simulated cycles, never
//! change a result).
//!
//! For each kernel the harness first measures a fault-free reference,
//! then re-runs the full workload once per fault point with
//! `FaultPlan::single(point, 2)` armed (two fires, any region, default
//! recovery policy). Worker faults run under a tiered pool; shared-cache
//! faults run against a pre-warmed [`SharedCodeCache`]. Every row
//! records the checksum, the fault/recovery counters, and whether the
//! checksum matched — any mismatch or unfired injection exits non-zero.
//!
//! Usage: `cargo run --release -p dyncomp-bench --bin fault_sweep
//! [--smoke] [--json <path>] [--check <path>]`
//!
//! `--check <path>` compares the rendered JSON byte-for-byte against a
//! committed reference (everything here is simulated-deterministic, so
//! CI runs the sweep twice and diffs).

use dyncomp::{
    Compiler, EngineOptions, FaultPlan, FaultPoint, KernelSetup, Program, Session, SharedCodeCache,
    TieredOptions,
};
use dyncomp_bench::json_str;
use dyncomp_bench::kernels::{calculator, dispatch, smatmul, sorter, spmv};
use std::sync::Arc;

struct Workload {
    kernel: &'static str,
    setup: KernelSetup<'static>,
}

fn workloads(smoke: bool) -> Vec<Workload> {
    if smoke {
        vec![
            Workload {
                kernel: "calculator",
                setup: calculator::setup(80),
            },
            Workload {
                kernel: "smatmul",
                setup: smatmul::setup(8, 16, 8),
            },
            Workload {
                kernel: "spmv",
                setup: spmv::setup(12, 3, 20),
            },
            Workload {
                kernel: "dispatch",
                setup: dispatch::setup(10, 60),
            },
            Workload {
                kernel: "sorter",
                setup: sorter::setup(40, 4, 5),
            },
        ]
    } else {
        vec![
            Workload {
                kernel: "calculator",
                setup: calculator::setup(2000),
            },
            Workload {
                kernel: "smatmul",
                setup: smatmul::setup(100, 800, 100),
            },
            Workload {
                kernel: "spmv",
                setup: spmv::setup(200, 10, 300),
            },
            Workload {
                kernel: "dispatch",
                setup: dispatch::setup(10, 2000),
            },
            Workload {
                kernel: "sorter",
                setup: sorter::setup(500, 4, 20),
            },
        ]
    }
}

/// Run the workload twice over on a fresh session (two passes, so every
/// keyed region re-enters each key at least once — background jobs get
/// resolved and re-entry fault points get an opportunity) and keep the
/// session for health inspection.
fn run(program: &Arc<Program>, setup: &KernelSetup<'_>, options: EngineOptions) -> (u64, Session) {
    let mut session = Session::with_options(Arc::clone(program), options);
    let prepared = (setup.prepare)(&mut session);
    let mut checksum = 0u64;
    for _pass in 0..2 {
        for i in 0..setup.iterations {
            let args = (setup.args)(i, &prepared);
            let r = session
                .call(setup.func, &args)
                .unwrap_or_else(|e| panic!("session must survive injected faults: {e}"));
            checksum = checksum.wrapping_mul(1099511628211).wrapping_add(r);
        }
    }
    (checksum, session)
}

/// Engine options arming `point`: worker faults get a tiered pool,
/// shared-cache faults get the pre-warmed cache, everything else runs
/// the default synchronous engine.
fn options_for(point: FaultPoint, warmed: &Arc<SharedCodeCache>) -> EngineOptions {
    let mut options = EngineOptions {
        faults: Some(FaultPlan::single(point, 2)),
        ..EngineOptions::default()
    };
    match point {
        FaultPoint::WorkerPanic | FaultPoint::WorkerSlow => {
            options.tiered = Some(TieredOptions {
                workers: 2,
                ..TieredOptions::default()
            });
        }
        FaultPoint::SharedCacheInstall | FaultPoint::SharedCachePoisonedShard => {
            options.shared_cache = Some(Arc::clone(warmed));
        }
        // The native arena can only be exhausted with the native backend
        // requested; the fault fires before the availability check, so
        // this row is exercised on every host.
        FaultPoint::NativeArenaExhausted => {
            options.native = true;
        }
        // Chain-patch faults need chain requests, which need the native
        // backend requested (chaining is on by default). The fault fires
        // in `request_chain` before any backend-availability check, so
        // this row too is exercised on every host.
        FaultPoint::NativeChainPatch => {
            options.native = true;
        }
        _ => {}
    }
    options
}

struct Row {
    kernel: &'static str,
    point: FaultPoint,
    checksum: u64,
    matches: bool,
    faults_injected: u64,
    retries: u64,
    failures: u64,
    quarantined: usize,
    fallback_runs: u64,
    stitches: u64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"kernel\": {}, \"point\": {}, \"checksum\": {}, ",
                "\"matches_reference\": {}, \"faults_injected\": {}, ",
                "\"retries\": {}, \"failures\": {}, \"quarantined\": {}, ",
                "\"fallback_runs\": {}, \"stitches\": {}}}"
            ),
            json_str(self.kernel),
            json_str(self.point.name()),
            self.checksum,
            self.matches,
            self.faults_injected,
            self.retries,
            self.failures,
            self.quarantined,
            self.fallback_runs,
            self.stitches,
        )
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(p) => args.get(p + 1).cloned().unwrap_or_else(|| {
            eprintln!("fault_sweep: --json needs a path");
            std::process::exit(2);
        }),
        None => "BENCH_fault_sweep.json".to_string(),
    };

    let scale = if smoke { "Smoke" } else { "Paper" };
    println!("Fault sweep: every fault point x every kernel ({scale} scale)");
    println!(
        "{:<12} | {:<24} | {:<20} | {:>7} | {:>7} | {:>8} | {:>6} | {:>8} | {:>8} | match",
        "kernel",
        "fault point",
        "checksum",
        "faults",
        "retries",
        "failures",
        "quar",
        "fallback",
        "stitches",
    );
    println!("{}", "-".repeat(132));

    let mut rows: Vec<Row> = Vec::new();
    let mut bad = 0u32;
    for w in workloads(smoke) {
        // One program per kernel, compiled with static fallback copies so
        // quarantine and worker faults have somewhere to degrade to.
        let program = Arc::new(
            Compiler::tiered()
                .compile(w.setup.src)
                .unwrap_or_else(|e| panic!("{} compiles: {e}", w.kernel)),
        );
        let (reference, _) = run(&program, &w.setup, EngineOptions::default());

        // Warm a shared cache for the shared-cache fault points, so the
        // faulted session actually probes populated shards.
        let warmed = Arc::new(SharedCodeCache::new(4, 64));
        let warm_options = EngineOptions {
            shared_cache: Some(Arc::clone(&warmed)),
            ..EngineOptions::default()
        };
        let (warm_checksum, _) = run(&program, &w.setup, warm_options);
        assert_eq!(warm_checksum, reference, "warming changes no result");

        for point in FaultPoint::ALL {
            let (checksum, session) = run(&program, &w.setup, options_for(point, &warmed));
            let health = session.health();
            let fallback_runs: u64 = (0..program.region_count())
                .map(|i| session.region_report(i).fallback_runs)
                .sum();
            let stitches: u64 = (0..program.region_count())
                .map(|i| u64::from(session.region_report(i).stitches))
                .sum();
            let matches = checksum == reference;
            if !matches {
                bad += 1;
                eprintln!(
                    "fault_sweep: {} under {} drifted: {} != {}",
                    w.kernel,
                    point.name(),
                    checksum,
                    reference
                );
            }
            if health.faults_injected == 0 {
                bad += 1;
                eprintln!(
                    "fault_sweep: {} under {} never fired the injection",
                    w.kernel,
                    point.name()
                );
            }
            println!(
                "{:<12} | {:<24} | {:<20} | {:>7} | {:>7} | {:>8} | {:>6} | {:>8} | {:>8} | {}",
                w.kernel,
                point.name(),
                checksum,
                health.faults_injected,
                health.retries,
                health.total_failures,
                health.quarantined.len(),
                fallback_runs,
                stitches,
                if matches { "ok" } else { "DRIFT" },
            );
            rows.push(Row {
                kernel: w.kernel,
                point,
                checksum,
                matches,
                faults_injected: health.faults_injected,
                retries: health.retries,
                failures: health.total_failures,
                quarantined: health.quarantined.len(),
                fallback_runs,
                stitches,
            });
        }
    }

    let mut rendered = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        rendered.push_str("  ");
        rendered.push_str(&row.json());
        if i + 1 < rows.len() {
            rendered.push(',');
        }
        rendered.push('\n');
    }
    rendered.push_str("]\n");

    match std::fs::write(&json_path, &rendered) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => {
            eprintln!("fault_sweep: cannot write {json_path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(p) = args.iter().position(|a| a == "--check") {
        let reference_path = args.get(p + 1).cloned().unwrap_or_else(|| {
            eprintln!("fault_sweep: --check needs a path");
            std::process::exit(2);
        });
        let reference = std::fs::read_to_string(&reference_path).unwrap_or_else(|e| {
            eprintln!("fault_sweep: cannot read reference {reference_path}: {e}");
            std::process::exit(2);
        });
        if rendered == reference {
            println!("check: matches {reference_path}");
        } else {
            eprintln!("fault_sweep: results drifted from {reference_path}:");
            for (want, got) in reference.lines().zip(rendered.lines()) {
                if want != got {
                    eprintln!("  - {want}");
                    eprintln!("  + {got}");
                }
            }
            std::process::exit(1);
        }
    }
    if bad > 0 {
        eprintln!("fault_sweep: {bad} violation(s) of the robustness invariant");
        std::process::exit(1);
    }
}
