//! Host-side session-throughput scaling over one shared `Arc<Program>`.
//!
//! The artifact/session split makes the compile artifact immutable and
//! `Send + Sync`; this bench measures what that buys: how many complete
//! kernel sessions per second the host sustains when 1/2/4/8 threads run
//! independent [`Session`]s over the *same* program, with no per-thread
//! recompilation. Every session is bit-identical (same checksum, same
//! simulated cycles) — the scaling is pure host wall-clock.
//!
//! A second pass repeats the ladder with the process-wide shared
//! stitched-code cache enabled, where sessions reuse each other's
//! stitched code instead of re-running set-up + stitching; a third pass
//! runs in tiered mode (statically compiled fallback + background stitch
//! workers), where each session additionally owns a small host worker
//! pool.
//!
//! Usage: `cargo run --release -p dyncomp-bench --bin concurrent_throughput [--smoke]`

use dyncomp::{
    run_session, Compiler, EngineOptions, KernelSetup, Program, SharedCodeCache, TieredOptions,
};
use dyncomp_bench::kernels::{calculator, dispatch, smatmul, sorter, spmv};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Sessions each thread-count configuration runs in total.
const SESSIONS: usize = 24;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let workloads: Vec<(&str, KernelSetup<'static>)> = if smoke {
        vec![
            ("calculator", calculator::setup(40)),
            ("smatmul", smatmul::setup(8, 16, 8)),
            ("spmv", spmv::setup(12, 3, 10)),
            ("dispatch", dispatch::setup(10, 30)),
            ("sorter", sorter::setup(40, 4, 3)),
        ]
    } else {
        vec![
            ("calculator", calculator::setup(400)),
            ("smatmul", smatmul::setup(32, 64, 32)),
            ("spmv", spmv::setup(64, 5, 60)),
            ("dispatch", dispatch::setup(10, 400)),
            ("sorter", sorter::setup(200, 4, 8)),
        ]
    };

    println!(
        "Session-throughput scaling: {SESSIONS} sessions per configuration, \
         one shared Arc<Program> per kernel"
    );
    println!(
        "Host parallelism: {} (speedups above this thread count are \
         scheduler-bound, not cache-bound)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    for (name, setup) in &workloads {
        let program = Arc::new(Compiler::new().compile(setup.src).expect("kernel compiles"));
        let tiered_program = Arc::new(
            Compiler::tiered()
                .compile(setup.src)
                .expect("kernel compiles tiered"),
        );
        println!("\n== {name} ==");
        for mode in [Mode::PerSession, Mode::SharedCache, Mode::Tiered] {
            let (label, prog) = match mode {
                Mode::PerSession => ("per-session cache", &program),
                Mode::SharedCache => ("shared stitched-code cache", &program),
                Mode::Tiered => ("tiered (1 bg worker, speculative)", &tiered_program),
            };
            let base = run_ladder(prog, setup, 1, mode);
            println!("  {label}:");
            println!("    1 thread : {:>8.1} sessions/s", base.sessions_per_sec);
            for threads in [2usize, 4, 8] {
                let r = run_ladder(prog, setup, threads, mode);
                assert_eq!(
                    r.checksum, base.checksum,
                    "{name}: results must not depend on thread count"
                );
                println!(
                    "    {threads} threads: {:>8.1} sessions/s ({:.2}x)",
                    r.sessions_per_sec,
                    r.sessions_per_sec / base.sessions_per_sec
                );
            }
        }
    }
}

/// How each ladder configures its sessions.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    PerSession,
    SharedCache,
    Tiered,
}

struct LadderResult {
    sessions_per_sec: f64,
    /// Checksum of session 0 (all sessions are asserted identical inside
    /// the ladder in per-session mode; in shared mode results still must
    /// be identical, only cycle accounting differs).
    checksum: u64,
}

/// Run [`SESSIONS`] complete sessions over `threads` worker threads
/// pulling from a shared work counter; returns wall-clock throughput.
fn run_ladder(
    program: &Arc<Program>,
    setup: &KernelSetup<'_>,
    threads: usize,
    mode: Mode,
) -> LadderResult {
    let cache = (mode == Mode::SharedCache).then(|| Arc::new(SharedCodeCache::default()));
    let tiered = (mode == Mode::Tiered).then(|| TieredOptions {
        speculate: true,
        ..TieredOptions::default()
    });
    let next = AtomicUsize::new(0);
    let checksums: Vec<std::sync::Mutex<Option<u64>>> =
        (0..SESSIONS).map(|_| std::sync::Mutex::new(None)).collect();
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= SESSIONS {
                    break;
                }
                let options = EngineOptions {
                    shared_cache: cache.clone(),
                    tiered: tiered.clone(),
                    ..EngineOptions::default()
                };
                let outcome = run_session(program, setup, options).expect("session runs");
                *checksums[i].lock().unwrap() = Some(outcome.checksum);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let first = checksums[0].lock().unwrap().expect("session 0 ran");
    for (i, c) in checksums.iter().enumerate() {
        assert_eq!(
            c.lock().unwrap().expect("session ran"),
            first,
            "session {i} produced a different result"
        );
    }
    LadderResult {
        sessions_per_sec: SESSIONS as f64 / elapsed,
        checksum: first,
    }
}
