//! The demand-driven-inlining evaluation: the two cross-function
//! workloads (protocol message decoder, query-compiler row filter)
//! measured with inlining off and on, against the same static baseline.
//! Writes the machine-readable `BENCH_inline.json`.
//!
//! Usage: `cargo run --release -p dyncomp-bench --bin inline_bench
//!         [--smoke] [--json <path>] [--check <path>]`
//!
//! Every workload row records the checksum of both dynamic modes — they
//! must be identical (the pass is semantics-preserving) — and the
//! dynamic cycles of both, which must show that the Table-2-style
//! speedup *requires* inlining: with the pass off the region still
//! unrolls and folds addresses, but every predicate/field evaluation
//! pays a template call plus a runtime `switch`.
//!
//! `--check <path>` compares the rendered JSON byte-for-byte against a
//! committed reference and exits non-zero on drift (all quantities are
//! simulated-deterministic); CI runs the smoke scale twice through this
//! gate.

use dyncomp::{Compiler, EngineOptions};
use dyncomp_bench::kernels::{protomsg, queryexec};
use dyncomp_bench::{json_str, KernelResult};

/// Inline depth used for the "on" mode (2 covers helper-in-helper
/// nesting; both workloads converge at 1 round).
const DEPTH: u32 = 2;

struct Row {
    plain: KernelResult,
    inlined: KernelResult,
    inline_sites: usize,
}

fn mode_json(r: &KernelResult) -> String {
    let m = &r.measurement;
    format!(
        concat!(
            "{{\"dynamic_cycles\": {:.4}, \"speedup\": {:.4}, ",
            "\"setup_cycles\": {}, \"stitch_cycles\": {}, ",
            "\"instructions_stitched\": {}, \"checksum\": {}}}"
        ),
        m.dynamic_cycles,
        m.speedup,
        m.setup_cycles,
        m.stitch_cycles,
        m.instructions_stitched,
        m.checksum,
    )
}

fn row_json(r: &Row) -> String {
    let (p, i) = (&r.plain.measurement, &r.inlined.measurement);
    format!(
        concat!(
            "{{\"name\": {}, \"config\": {}, \"iterations\": {}, ",
            "\"inline_depth\": {}, \"inline_sites\": {}, ",
            "\"static_cycles\": {:.4}, ",
            "\"noinline\": {}, \"inline\": {}, ",
            "\"checksums_equal\": {}, \"inline_gain\": {:.4}}}"
        ),
        json_str(r.plain.name),
        json_str(&r.plain.config),
        p.iterations,
        DEPTH,
        r.inline_sites,
        p.static_cycles,
        mode_json(&r.plain),
        mode_json(&r.inlined),
        p.checksum == i.checksum,
        p.dynamic_cycles / i.dynamic_cycles,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(p) => args.get(p + 1).cloned().unwrap_or_else(|| {
            eprintln!("inline_bench: --json needs a path");
            std::process::exit(2);
        }),
        // Scale-dependent default so a bare `--smoke` run can't clobber
        // the committed paper-scale artifact.
        None if smoke => "BENCH_inline_smoke.json".to_string(),
        None => "BENCH_inline.json".to_string(),
    };

    let opts = EngineOptions::default;
    let on = Compiler::with_inline_depth(DEPTH);
    let fail = |e: dyncomp::Error| -> ! {
        eprintln!("inline_bench: {e}");
        std::process::exit(1);
    };
    let sites = |src: &str| {
        Compiler::with_inline_depth(DEPTH)
            .compile(src)
            .unwrap_or_else(|e| fail(e))
            .inline_sites
            .len()
    };

    // Workload sizes: smoke keeps CI debug builds fast; the default is
    // the committed paper-style configuration.
    let (pm, qe) = if smoke {
        ((8, 40), (6, 30, 5))
    } else {
        ((16, 2000), (12, 200, 50))
    };
    let rows = vec![
        Row {
            plain: protomsg::measure_with(pm.0, pm.1, opts()).unwrap_or_else(|e| fail(e)),
            inlined: protomsg::measure_full(pm.0, pm.1, &on, opts()).unwrap_or_else(|e| fail(e)),
            inline_sites: sites(protomsg::SRC),
        },
        Row {
            plain: queryexec::measure_with(qe.0, qe.1, qe.2, opts()).unwrap_or_else(|e| fail(e)),
            inlined: queryexec::measure_full(qe.0, qe.1, qe.2, &on, opts())
                .unwrap_or_else(|e| fail(e)),
            inline_sites: sites(queryexec::SRC),
        },
    ];

    println!(
        "Demand-driven inlining: speedup with the pass off vs on (depth {DEPTH}, {} scale)",
        if smoke { "smoke" } else { "paper" }
    );
    println!(
        "{:<36} | {:>14} | {:>22} | {:>22} | {:>6}",
        "Workload", "static cy", "no-inline cy (spdup)", "inline cy (spdup)", "gain"
    );
    println!("{}", "-".repeat(115));
    let mut ok = true;
    for r in &rows {
        let (p, i) = (&r.plain.measurement, &r.inlined.measurement);
        println!(
            "{:<36} | {:>14.1} | {:>14.1} ({:>4.1}x) | {:>14.1} ({:>4.1}x) | {:>5.2}x",
            r.plain.name,
            p.static_cycles,
            p.dynamic_cycles,
            p.speedup,
            i.dynamic_cycles,
            i.speedup,
            p.dynamic_cycles / i.dynamic_cycles,
        );
        if p.checksum != i.checksum {
            eprintln!("inline_bench: CHECKSUM MISMATCH on {}", r.plain.name);
            ok = false;
        }
        if i.dynamic_cycles >= p.dynamic_cycles {
            eprintln!(
                "inline_bench: {} shows no inlining win ({} vs {})",
                r.plain.name, i.dynamic_cycles, p.dynamic_cycles
            );
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }

    let mut rendered = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        rendered.push_str("  ");
        rendered.push_str(&row_json(r));
        if i + 1 < rows.len() {
            rendered.push(',');
        }
        rendered.push('\n');
    }
    rendered.push_str("]\n");
    match std::fs::write(&json_path, &rendered) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => {
            eprintln!("inline_bench: cannot write {json_path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(p) = args.iter().position(|a| a == "--check") {
        let reference_path = args.get(p + 1).cloned().unwrap_or_else(|| {
            eprintln!("inline_bench: --check needs a path");
            std::process::exit(2);
        });
        let reference = std::fs::read_to_string(&reference_path).unwrap_or_else(|e| {
            eprintln!("inline_bench: cannot read reference {reference_path}: {e}");
            std::process::exit(2);
        });
        if rendered == reference {
            println!("check: matches {reference_path}");
        } else {
            eprintln!("inline_bench: results drifted from {reference_path}:");
            for (want, got) in reference.lines().zip(rendered.lines()) {
                if want != got {
                    eprintln!("  - {want}");
                    eprintln!("  + {got}");
                }
            }
            std::process::exit(1);
        }
    }
}
