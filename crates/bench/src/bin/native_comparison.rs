//! Host wall-clock comparison of the execution backends over the
//! Table 2 kernels: the statically compiled baseline on the VM
//! (`interp`), dynamic compilation executed on the VM (`vm_stitched`),
//! and dynamic compilation executed through the host-native
//! copy-and-patch backend both with direct-threaded chaining (the
//! default, `native_chained`) and with chaining disabled (the ablation,
//! `native_unchained`), plus the native translation cost per SimAlpha
//! instruction.
//!
//! Everything *simulated* is asserted bit-identical across all runs —
//! checksums must agree, and each dynamic run must agree with the VM
//! oracle on simulated cycles ([`dyncomp::run_session_differential`]
//! enforces both, once per chain mode). Only host nanoseconds differ;
//! each configuration is run `--repeat` times (default 3) and the
//! minimum wall-clock is reported, the standard way to suppress
//! scheduler noise in a determinism-pinned workload.
//!
//! Usage: `cargo run --release -p dyncomp-bench --bin native_comparison
//! [--smoke] [--repeat N] [--json <path>] [--check <path>]`
//!
//! The rendered document is validated with the in-tree JSON checker
//! before it is written. `--check <path>` compares the *deterministic*
//! fields (kernel, config, iterations, checksum, checksums_match, and
//! the simulated dispatch split `native_entries` / `native_chained` /
//! `unchained_entries`) against a reference — wall-clock fields are
//! host noise and are exempt from the drift gate. On hosts without the
//! native backend the native halves run on the VM, `native_active` is
//! false, and the wall-clock columns simply coincide; checksums still
//! gate (the dispatch-split counters are host-dependent, so `--check`
//! is meaningful against a same-host reference — CI runs the bench
//! twice and diffs).

use dyncomp::{run_session_differential, run_session_timed, Compiler, EngineOptions, KernelSetup};
use dyncomp_bench::kernels::{calculator, dispatch, smatmul, sorter, spmv};
use dyncomp_bench::{json_str, jsonv};
use std::sync::Arc;

struct Workload {
    kernel: &'static str,
    config: String,
    setup: KernelSetup<'static>,
}

fn workloads(smoke: bool) -> Vec<Workload> {
    let w = |kernel, config: String, setup| Workload {
        kernel,
        config,
        setup,
    };
    if smoke {
        vec![
            w(
                "calculator",
                "80 interpretations".into(),
                calculator::setup(80),
            ),
            w(
                "smatmul",
                "8x16, scalars 1..8".into(),
                smatmul::setup(8, 16, 8),
            ),
            w("spmv", "12x12, 3/row".into(), spmv::setup(12, 3, 20)),
            w("spmv", "8x8, 2/row".into(), spmv::setup(8, 2, 20)),
            w(
                "dispatch",
                "10 guards, 60 events".into(),
                dispatch::setup(10, 60),
            ),
            w(
                "sorter",
                "4 keys, 40 records".into(),
                sorter::setup(40, 4, 5),
            ),
            w(
                "sorter",
                "12 keys, 40 records".into(),
                sorter::setup(40, 12, 5),
            ),
        ]
    } else {
        vec![
            w(
                "calculator",
                "2000 interpretations".into(),
                calculator::setup(2000),
            ),
            w(
                "smatmul",
                "100x800, scalars 1..100".into(),
                smatmul::setup(100, 800, 100),
            ),
            w("spmv", "200x200, 10/row".into(), spmv::setup(200, 10, 300)),
            w("spmv", "96x96, 5/row".into(), spmv::setup(96, 5, 300)),
            w(
                "dispatch",
                "10 guards, 2000 events".into(),
                dispatch::setup(10, 2000),
            ),
            w(
                "sorter",
                "4 keys, 500 records".into(),
                sorter::setup(500, 4, 20),
            ),
            w(
                "sorter",
                "12 keys, 500 records".into(),
                sorter::setup(500, 12, 20),
            ),
        ]
    }
}

struct Row {
    kernel: &'static str,
    config: String,
    iterations: u64,
    checksum: u64,
    checksums_match: bool,
    native_entries: u64,
    native_chained: u64,
    unchained_entries: u64,
    interp_ns: u64,
    vm_stitched_ns: u64,
    native_chained_ns: u64,
    native_unchained_ns: u64,
    native_speedup_vs_vm: f64,
    chain_speedup: f64,
    translate_ns: u64,
    translated_instructions: u64,
    covered_instructions: u64,
    translate_ns_per_instruction: f64,
    native_installs: u64,
    native_declined: u64,
    native_bytes: u64,
    native_active: bool,
}

impl Row {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"kernel\": {}, \"config\": {}, \"iterations\": {}, ",
                "\"checksum\": {}, \"checksums_match\": {}, ",
                "\"native_entries\": {}, \"native_chained\": {}, ",
                "\"unchained_entries\": {}, ",
                "\"interp_ns\": {}, \"vm_stitched_ns\": {}, ",
                "\"native_chained_ns\": {}, \"native_unchained_ns\": {}, ",
                "\"native_speedup_vs_vm\": {:.4}, \"chain_speedup\": {:.4}, ",
                "\"translate_ns\": {}, \"translated_instructions\": {}, ",
                "\"covered_instructions\": {}, ",
                "\"translate_ns_per_instruction\": {:.4}, ",
                "\"native_installs\": {}, ",
                "\"native_declined\": {}, \"native_bytes\": {}, ",
                "\"native_active\": {}}}"
            ),
            json_str(self.kernel),
            json_str(&self.config),
            self.iterations,
            self.checksum,
            self.checksums_match,
            self.native_entries,
            self.native_chained,
            self.unchained_entries,
            self.interp_ns,
            self.vm_stitched_ns,
            self.native_chained_ns,
            self.native_unchained_ns,
            self.native_speedup_vs_vm,
            self.chain_speedup,
            self.translate_ns,
            self.translated_instructions,
            self.covered_instructions,
            self.translate_ns_per_instruction,
            self.native_installs,
            self.native_declined,
            self.native_bytes,
            self.native_active,
        )
    }

    /// The deterministic prefix the drift gate compares (wall-clock
    /// fields are host noise; the dispatch-split counters are simulated
    /// and repeat-stable on a given host). Matches the rendered
    /// object's field order: everything before `interp_ns`.
    fn deterministic_key(&self) -> String {
        format!(
            "{{\"kernel\": {}, \"config\": {}, \"iterations\": {}, \
             \"checksum\": {}, \"checksums_match\": {}, \
             \"native_entries\": {}, \"native_chained\": {}, \
             \"unchained_entries\": {}",
            json_str(self.kernel),
            json_str(&self.config),
            self.iterations,
            self.checksum,
            self.checksums_match,
            self.native_entries,
            self.native_chained,
            self.unchained_entries,
        )
    }
}

/// Extract each row's drift-gated prefix (everything before the first
/// wall-clock field) from a rendered document, in row order.
fn deterministic_keys(doc: &str) -> Vec<String> {
    doc.split("{\"kernel\"")
        .skip(1)
        .map(|part| {
            let obj = format!("{{\"kernel\"{part}");
            let end = obj
                .find(", \"interp_ns\"")
                .expect("row carries the wall-clock fields");
            obj[..end].to_string()
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let repeat: u32 = match args.iter().position(|a| a == "--repeat") {
        Some(p) => args
            .get(p + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("native_comparison: --repeat needs a positive integer");
                std::process::exit(2);
            }),
        None => 3,
    };
    let repeat = repeat.max(1);
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(p) => args.get(p + 1).cloned().unwrap_or_else(|| {
            eprintln!("native_comparison: --json needs a path");
            std::process::exit(2);
        }),
        None => "BENCH_native.json".to_string(),
    };

    let scale = if smoke { "Smoke" } else { "Paper" };
    println!("Backend wall-clock comparison ({scale} scale, best of {repeat})");
    println!(
        "{:<12} | {:<28} | {:>12} | {:>12} | {:>12} | {:>12} | {:>7} | {:>7} | match",
        "kernel", "config", "interp ns", "vm ns", "chained ns", "unchain ns", "nat/vm", "chain x",
    );
    println!("{}", "-".repeat(128));

    let mut rows = Vec::new();
    let mut bad = 0u32;
    for w in workloads(smoke) {
        let static_prog = Arc::new(
            Compiler::static_baseline()
                .compile(w.setup.src)
                .unwrap_or_else(|e| panic!("{} compiles statically: {e}", w.kernel)),
        );
        let dynamic_prog = Arc::new(
            Compiler::new()
                .compile(w.setup.src)
                .unwrap_or_else(|e| panic!("{} compiles: {e}", w.kernel)),
        );

        let mut interp_ns = u64::MAX;
        let mut vm_ns = u64::MAX;
        let mut chained_ns = u64::MAX;
        let mut unchained_ns = u64::MAX;
        let mut checksum = 0u64;
        let mut matches = true;
        let mut chained = dyncomp::NativeReport::default();
        let mut unchained = dyncomp::NativeReport::default();
        let ablation = EngineOptions {
            native_chain: false,
            ..EngineOptions::default()
        };
        for _ in 0..repeat {
            let interp = run_session_timed(&static_prog, &w.setup, EngineOptions::default())
                .unwrap_or_else(|e| panic!("{} interp run: {e}", w.kernel));
            // Each differential asserts vm/native checksum and simulated-
            // cycle equality internally; a divergence aborts the bench.
            // The chain modes are exercised separately: direct-threaded
            // chaining (the default) and the VM-dispatch ablation.
            let d = run_session_differential(&dynamic_prog, &w.setup, EngineOptions::default())
                .unwrap_or_else(|e| panic!("{} differential (chained): {e}", w.kernel));
            let u = run_session_differential(&dynamic_prog, &w.setup, ablation.clone())
                .unwrap_or_else(|e| panic!("{} differential (unchained): {e}", w.kernel));
            assert_eq!(
                d.native.outcome.checksum, u.native.outcome.checksum,
                "{}: chain modes disagree",
                w.kernel
            );
            interp_ns = interp_ns.min(interp.wall_ns);
            vm_ns = vm_ns.min(d.vm.wall_ns.min(u.vm.wall_ns));
            chained_ns = chained_ns.min(d.native.wall_ns);
            unchained_ns = unchained_ns.min(u.native.wall_ns);
            checksum = d.native.outcome.checksum;
            matches &= interp.outcome.checksum == d.native.outcome.checksum;
            chained = d.native.native;
            unchained = u.native.native;
        }
        if !matches {
            bad += 1;
            eprintln!(
                "native_comparison: {} checksum diverged between backends",
                w.kernel
            );
        }
        let per_instr = if chained.translated_instructions > 0 {
            chained.translate_ns as f64 / chained.translated_instructions as f64
        } else {
            0.0
        };
        let speedup = if chained_ns > 0 {
            vm_ns as f64 / chained_ns as f64
        } else {
            0.0
        };
        let chain_speedup = if chained_ns > 0 {
            unchained_ns as f64 / chained_ns as f64
        } else {
            0.0
        };
        println!(
            "{:<12} | {:<28} | {:>12} | {:>12} | {:>12} | {:>12} | {:>6.2}x | {:>6.2}x | {}",
            w.kernel,
            w.config,
            interp_ns,
            vm_ns,
            chained_ns,
            unchained_ns,
            speedup,
            chain_speedup,
            if matches { "ok" } else { "DRIFT" },
        );
        rows.push(Row {
            kernel: w.kernel,
            config: w.config,
            iterations: w.setup.iterations,
            checksum,
            checksums_match: matches,
            native_entries: chained.entries,
            native_chained: chained.chained,
            unchained_entries: unchained.entries,
            interp_ns,
            vm_stitched_ns: vm_ns,
            native_chained_ns: chained_ns,
            native_unchained_ns: unchained_ns,
            native_speedup_vs_vm: speedup,
            chain_speedup,
            translate_ns: chained.translate_ns,
            translated_instructions: chained.translated_instructions,
            covered_instructions: chained.covered_instructions,
            translate_ns_per_instruction: per_instr,
            native_installs: chained.installs,
            native_declined: chained.declined,
            native_bytes: chained.bytes,
            native_active: chained.active,
        });
    }

    let mut rendered = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        rendered.push_str("  ");
        rendered.push_str(&row.json());
        if i + 1 < rows.len() {
            rendered.push(',');
        }
        rendered.push('\n');
    }
    rendered.push_str("]\n");

    if let Err(e) = jsonv::validate(&rendered) {
        eprintln!("native_comparison: rendered document is not valid JSON: {e}");
        std::process::exit(1);
    }
    match std::fs::write(&json_path, &rendered) {
        Ok(()) => println!("\nwrote {json_path} (schema validated)"),
        Err(e) => {
            eprintln!("native_comparison: cannot write {json_path}: {e}");
            std::process::exit(1);
        }
    }

    if let Some(p) = args.iter().position(|a| a == "--check") {
        let reference_path = args.get(p + 1).cloned().unwrap_or_else(|| {
            eprintln!("native_comparison: --check needs a path");
            std::process::exit(2);
        });
        let reference = std::fs::read_to_string(&reference_path).unwrap_or_else(|e| {
            eprintln!("native_comparison: cannot read reference {reference_path}: {e}");
            std::process::exit(2);
        });
        let want = deterministic_keys(&reference);
        let got: Vec<String> = rows.iter().map(Row::deterministic_key).collect();
        if want == got {
            println!("check: deterministic fields match {reference_path}");
        } else {
            eprintln!("native_comparison: deterministic fields drifted from {reference_path}:");
            for (w, g) in want.iter().zip(got.iter()) {
                if w != g {
                    eprintln!("  - {w}");
                    eprintln!("  + {g}");
                }
            }
            if want.len() != got.len() {
                eprintln!("  (row count {} vs reference {})", got.len(), want.len());
            }
            std::process::exit(1);
        }
    }

    if bad > 0 {
        std::process::exit(1);
    }
}
