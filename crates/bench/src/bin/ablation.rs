//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Split set-up/stitcher vs merged** — the paper attributes its high
//!    overhead to the directive-interpreting stitcher and predicts a
//!    merged pass would "drastically reduce" it (§5/§7). Compare the
//!    default cost model against the fused one.
//! 2. **Linearized large-constants table on/off** — §4's table vs inline
//!    constant construction.
//! 3. **Peephole strength reduction on/off** — visible on the
//!    scalar-matrix multiply.
//! 4. **Reachability analysis on/off** — without it, unstructured
//!    constant merges are lost (§3.1's central claim); the dispatcher's
//!    guard switches stop resolving.
//! 5. **Keyed code-cache capacity** — bounding the per-region cache
//!    trades stitch thrash for footprint; results stay identical.
//!
//! Usage: `cargo run --release -p dyncomp-bench --bin ablation [--smoke]`

use dyncomp::{
    measure_kernel_full, measure_kernel_with, CompileOptions, Compiler, Engine, EngineOptions,
    KernelSetup, Session,
};
use dyncomp_analysis::AnalysisConfig;
use dyncomp_bench::kernels::{calculator, smatmul, spmv};
use dyncomp_stitcher::StitchCost;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 80 } else { 1000 };

    println!("== Ablation 1: directive-interpreting stitcher vs fused fast path ==");
    {
        let default = calculator::measure(iters).unwrap();
        let mut opts = EngineOptions::default();
        opts.stitch.cost = StitchCost::fused();
        let setup = calc_setup(iters);
        let fused = measure_kernel_with(&setup, opts).unwrap();
        let d = &default.measurement;
        println!(
            "  directive interpreter: overhead {} cycles ({} setup + {} stitch), breakeven {:?}",
            d.setup_cycles + d.stitch_cycles,
            d.setup_cycles,
            d.stitch_cycles,
            d.breakeven
        );
        println!(
            "  fused cost model:      overhead {} cycles ({} setup + {} stitch), breakeven {:?}",
            fused.setup_cycles + fused.stitch_cycles,
            fused.setup_cycles,
            fused.stitch_cycles,
            fused.breakeven
        );
        println!(
            "  stitcher-cycle reduction: {:.1}x (the paper's predicted 'drastic' cut)",
            d.stitch_cycles as f64 / fused.stitch_cycles.max(1) as f64
        );
    }

    println!();
    println!("== Ablation 2: linearized constants table on/off (64-bit constants) ==");
    {
        // A hash-mix kernel whose derived constants are full 64-bit values:
        // too large for immediates, so each hole either loads from the
        // linearized table (3 cycles) or is constructed inline from 13-bit
        // chunks (9 instructions).
        let setup = bigconst_setup(iters.min(400));
        let on = measure_kernel_with(&setup, EngineOptions::default()).unwrap();
        let setup = bigconst_setup(iters.min(400));
        let mut opts = EngineOptions::default();
        opts.stitch.linearized_table = false;
        let off = measure_kernel_with(&setup, opts).unwrap();
        println!(
            "  with table:    dynamic {:.0} cycles/exec, {} instrs stitched",
            on.dynamic_cycles, on.instructions_stitched
        );
        println!(
            "  without table: dynamic {:.0} cycles/exec, {} instrs stitched",
            off.dynamic_cycles, off.instructions_stitched
        );
    }

    println!();
    println!("== Ablation 3: peephole strength reduction on/off (smatmul) ==");
    {
        let rows = if smoke { 8 } else { 40 };
        let scalars = if smoke { 8 } else { 60 };
        let on = smatmul::measure(rows, 16, scalars).unwrap();
        let setup = smatmul_setup(rows, 16, scalars);
        let mut opts = EngineOptions::default();
        opts.stitch.peephole = false;
        let off = measure_kernel_with(&setup, opts).unwrap();
        println!(
            "  peephole on:  speedup {:.2}x, {} strength reductions",
            on.measurement.speedup, on.measurement.stitch.strength_reductions
        );
        println!(
            "  peephole off: speedup {:.2}x, {} strength reductions",
            off.speedup, off.stitch.strength_reductions
        );
    }

    println!();
    println!("== Ablation 4: reachability analysis on/off (calculator switches) ==");
    {
        let setup = calc_setup(iters.min(300));
        let with = measure_kernel_full(&setup, &Compiler::new(), EngineOptions::default()).unwrap();
        let setup = calc_setup(iters.min(300));
        let no_reach = Compiler::with_options(CompileOptions {
            analysis: AnalysisConfig {
                use_reachability: false,
            },
            ..Default::default()
        });
        let without = measure_kernel_full(&setup, &no_reach, EngineOptions::default()).unwrap();
        println!(
            "  with reachability:    speedup {:.2}x, {} constant branches resolved, {} holes",
            with.speedup, with.stitch.const_branches_resolved, with.spec.holes
        );
        println!(
            "  without reachability: speedup {:.2}x, {} constant branches resolved, {} holes",
            without.speedup, without.stitch.const_branches_resolved, without.spec.holes
        );
    }

    println!();
    println!("== Ablation 5: keyed code-cache capacity (working set of 4 keys) ==");
    {
        // A keyed region entered with a rotating working set of 4 keys.
        // An unbounded cache stitches each key once; a too-small cache
        // thrashes, paying set-up + stitch on (nearly) every entry.
        let src = r#"
            int poly(int k, int x) {
                dynamicRegion key(k) (k) {
                    return (k * x + k) * x + 3 * k;
                }
            }
        "#;
        let rounds = if smoke { 20 } else { 200 };
        for cap in [None, Some(4), Some(2), Some(1)] {
            let p = Compiler::new().compile(src).unwrap();
            let mut e = Engine::with_options(
                &p,
                EngineOptions {
                    keyed_cache_capacity: cap,
                    ..EngineOptions::default()
                },
            );
            let mut sink = 0u64;
            for round in 0..rounds {
                for k in 1..=4u64 {
                    sink = sink.wrapping_add(e.call("poly", &[k, round % 7]).unwrap());
                }
            }
            let r = e.region_report(0);
            let label = cap.map_or("unbounded".to_string(), |c| format!("capacity {c}"));
            println!(
                "  {label:<11}: {:>9} total cycles, {:>4} stitch(es), {:>4} eviction(s)  [sink {sink}]",
                e.cycles(),
                r.stitches,
                r.evictions
            );
        }
    }
}

fn calc_setup(iterations: u64) -> KernelSetup<'static> {
    KernelSetup {
        src: calculator::SRC,
        func: "calc",
        iterations,
        prepare: Box::new(|e: &mut Session| vec![calculator::build_program(e)]),
        args: Box::new(|i, p| {
            let x = (i % 23) as i64 - 11;
            let y = (i % 17) as i64 - 8;
            vec![p[0], x as u64, y as u64]
        }),
    }
}

fn bigconst_setup(iterations: u64) -> KernelSetup<'static> {
    KernelSetup {
        src: r#"
            unsigned mix(unsigned k, unsigned x) {
                dynamicRegion (k) {
                    unsigned a = k * 2654435761;
                    unsigned b = k * 40503 + 2654435769;
                    unsigned c = a ^ (b << 13);
                    return ((x + a) ^ (x * 31 + b)) + c;
                }
            }
        "#,
        func: "mix",
        iterations,
        prepare: Box::new(|_| vec![0x1234_5678_9ABC_DEF0u64]),
        args: Box::new(|i, p| vec![p[0], i]),
    }
}

#[allow(dead_code)]
fn spmv_setup(n: u64, per_row: u64, iterations: u64) -> KernelSetup<'static> {
    KernelSetup {
        src: spmv::SRC,
        func: "spmv",
        iterations,
        prepare: Box::new(move |e: &mut Session| {
            let m = spmv::gen_matrix(n, per_row, 42);
            let (mp, xp, yp) = spmv::build(e, &m);
            vec![mp, xp, yp]
        }),
        args: Box::new(|_, p| vec![p[0], p[1], p[2]]),
    }
}

fn smatmul_setup(rows: u64, cols: u64, iterations: u64) -> KernelSetup<'static> {
    KernelSetup {
        src: smatmul::SRC,
        func: "smatmul",
        iterations,
        prepare: Box::new(move |e: &mut Session| {
            let (src, dst, len) = smatmul::build_matrices(e, rows, cols);
            vec![src, dst, len]
        }),
        args: Box::new(|i, p| vec![i + 1, p[2], p[0], p[1]]),
    }
}
