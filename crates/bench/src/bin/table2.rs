//! Regenerate the paper's **Table 2**: speedup and breakeven point
//! results for the five kernels. Also writes the machine-readable
//! `BENCH_table2.json` next to the current directory so the perf
//! trajectory is tracked across commits.
//!
//! Usage: `cargo run --release -p dyncomp-bench --bin table2 [--smoke] [--json <path>]`

use dyncomp_bench::{render_table2_json, run_all, table2_header, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Paper
    };
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(p) => args.get(p + 1).cloned().unwrap_or_else(|| {
            eprintln!("table2: --json needs a path");
            std::process::exit(2);
        }),
        None => "BENCH_table2.json".to_string(),
    };
    println!("Table 2: Speedup and Breakeven Point Results ({scale:?} scale)");
    println!("{}", table2_header());
    println!("{}", "-".repeat(180));
    let rows = run_all(scale).unwrap_or_else(|e| {
        eprintln!("benchmark failed: {e}");
        std::process::exit(1);
    });
    for row in &rows {
        println!("{}", row.table2_row());
    }
    println!();
    println!("Columns: speedup (static/dynamic cycles per execution), breakeven point,");
    println!("dynamic compilation overhead as set-up / stitcher cycles (thousands),");
    println!("and overhead cycles per stitched instruction (stitched instruction count).");
    match std::fs::write(&json_path, render_table2_json(&rows)) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => {
            eprintln!("table2: cannot write {json_path}: {e}");
            std::process::exit(1);
        }
    }
}
