//! Regenerate the paper's **Table 2**: speedup and breakeven point
//! results for the five kernels. Also writes the machine-readable
//! `BENCH_table2.json` next to the current directory so the perf
//! trajectory is tracked across commits.
//!
//! Usage: `cargo run --release -p dyncomp-bench --bin table2 [--smoke] [--json <path>] [--check <path>]`
//!
//! `--check <path>` compares the freshly rendered JSON against a
//! committed reference byte-for-byte and exits non-zero on any drift —
//! every field is simulated-deterministic, so CI uses this to catch
//! checksum or cycle-accounting regressions.
//!
//! `--trace` runs every kernel with the trace ring enabled. Tracing is
//! observation-only (zero simulated cycles), so the rendered table must
//! be byte-identical with or without it — CI runs the drift gate both
//! ways to enforce that.
//!
//! `--faults-idle` arms the full fault-injection machinery with a plan
//! whose every injection has zero probability: the plan is consulted at
//! every fault point but never fires, so the rendered table must stay
//! byte-identical — the robustness CI job uses this to prove the fault
//! plumbing itself is free.

use dyncomp::{EngineOptions, FaultPlan, TraceOptions};
use dyncomp_bench::{render_table2_json, run_all_with, table2_header, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Paper
    };
    let mut options = EngineOptions::default();
    if args.iter().any(|a| a == "--trace") {
        options.trace = Some(TraceOptions::default());
    }
    if args.iter().any(|a| a == "--faults-idle") {
        options.faults = Some(FaultPlan::idle());
    }
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(p) => args.get(p + 1).cloned().unwrap_or_else(|| {
            eprintln!("table2: --json needs a path");
            std::process::exit(2);
        }),
        None => "BENCH_table2.json".to_string(),
    };
    println!("Table 2: Speedup and Breakeven Point Results ({scale:?} scale)");
    println!("{}", table2_header());
    println!("{}", "-".repeat(180));
    let rows = run_all_with(scale, options).unwrap_or_else(|e| {
        eprintln!("benchmark failed: {e}");
        std::process::exit(1);
    });
    for row in &rows {
        println!("{}", row.table2_row());
    }
    println!();
    println!("Columns: speedup (static/dynamic cycles per execution), breakeven point,");
    println!("dynamic compilation overhead as set-up / stitcher cycles (thousands),");
    println!("and overhead cycles per stitched instruction (stitched instruction count).");
    let rendered = render_table2_json(&rows);
    match std::fs::write(&json_path, &rendered) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => {
            eprintln!("table2: cannot write {json_path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(p) = args.iter().position(|a| a == "--check") {
        let reference_path = args.get(p + 1).cloned().unwrap_or_else(|| {
            eprintln!("table2: --check needs a path");
            std::process::exit(2);
        });
        let reference = std::fs::read_to_string(&reference_path).unwrap_or_else(|e| {
            eprintln!("table2: cannot read reference {reference_path}: {e}");
            std::process::exit(2);
        });
        if rendered == reference {
            println!("check: matches {reference_path}");
        } else {
            eprintln!("table2: results drifted from {reference_path}:");
            for (want, got) in reference.lines().zip(rendered.lines()) {
                if want != got {
                    eprintln!("  - {want}");
                    eprintln!("  + {got}");
                }
            }
            std::process::exit(1);
        }
    }
}
