//! Regenerate the paper's **Table 2**: speedup and breakeven point
//! results for the five kernels.
//!
//! Usage: `cargo run --release -p dyncomp-bench --bin table2 [--smoke]`

use dyncomp_bench::{run_all, table2_header, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Paper
    };
    println!("Table 2: Speedup and Breakeven Point Results ({scale:?} scale)");
    println!("{}", table2_header());
    println!("{}", "-".repeat(180));
    let rows = run_all(scale).unwrap_or_else(|e| {
        eprintln!("benchmark failed: {e}");
        std::process::exit(1);
    });
    for row in &rows {
        println!("{}", row.table2_row());
    }
    println!();
    println!("Columns: speedup (static/dynamic cycles per execution), breakeven point,");
    println!("dynamic compilation overhead as set-up / stitcher cycles (thousands),");
    println!("and overhead cycles per stitched instruction (stitched instruction count).");
}
