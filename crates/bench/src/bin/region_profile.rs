//! Per-region observability profiles for the paper's five kernels.
//!
//! Runs every kernel with tracing enabled under three engine
//! configurations — synchronous, tiered, and tiered + speculation — and
//! writes `BENCH_region_profile.json` with the per-region
//! [`dyncomp::RegionProfile`] aggregates. Every run also exercises the
//! observability layer end to end: the trace self-check must pass (event
//! sums equal the `RegionReport` counters exactly), the Chrome export
//! must be well-formed JSON, and every JSONL line must parse.
//!
//! Usage: `cargo run --release -p dyncomp-bench --bin region_profile
//! [--smoke] [--json <path>] [--check <path>]`

use dyncomp::{
    run_session_profiled, Compiler, EngineOptions, KernelSetup, ProfiledSession, RegionProfile,
    TieredOptions,
};
use dyncomp_bench::jsonv;
use dyncomp_bench::kernels::{calculator, dispatch, smatmul, sorter, spmv};
use std::sync::Arc;

/// One kernel workload at the chosen scale.
struct Workload {
    kernel: &'static str,
    src: &'static str,
    setup: KernelSetup<'static>,
}

fn workloads(smoke: bool) -> Vec<Workload> {
    if smoke {
        vec![
            Workload {
                kernel: "calculator",
                src: calculator::SRC,
                setup: calculator::setup(80),
            },
            Workload {
                kernel: "smatmul",
                src: smatmul::SRC,
                setup: smatmul::setup(8, 16, 8),
            },
            Workload {
                kernel: "spmv",
                src: spmv::SRC,
                setup: spmv::setup(12, 3, 20),
            },
            Workload {
                kernel: "dispatch",
                src: dispatch::SRC,
                setup: dispatch::setup(10, 60),
            },
            Workload {
                kernel: "sorter",
                src: sorter::SRC,
                setup: sorter::setup(40, 4, 5),
            },
        ]
    } else {
        vec![
            Workload {
                kernel: "calculator",
                src: calculator::SRC,
                setup: calculator::setup(2000),
            },
            Workload {
                kernel: "smatmul",
                src: smatmul::SRC,
                setup: smatmul::setup(100, 800, 100),
            },
            Workload {
                kernel: "spmv",
                src: spmv::SRC,
                setup: spmv::setup(200, 10, 300),
            },
            Workload {
                kernel: "dispatch",
                src: dispatch::SRC,
                setup: dispatch::setup(10, 2000),
            },
            Workload {
                kernel: "sorter",
                src: sorter::SRC,
                setup: sorter::setup(500, 4, 20),
            },
        ]
    }
}

/// The three engine configurations profiled per kernel.
fn modes() -> Vec<(&'static str, EngineOptions)> {
    let sync = EngineOptions::default();
    let tiered = EngineOptions {
        tiered: Some(TieredOptions {
            workers: 2,
            ..TieredOptions::default()
        }),
        ..EngineOptions::default()
    };
    let spec = EngineOptions {
        tiered: Some(TieredOptions {
            workers: 2,
            speculate: true,
            ..TieredOptions::default()
        }),
        ..EngineOptions::default()
    };
    vec![("sync", sync), ("tiered", tiered), ("tiered+spec", spec)]
}

fn ratio_str(r: f64) -> String {
    format!("{r:.4}")
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// Non-empty histogram buckets as `[[bucket, count], ...]` (bucket `b`
/// holds cycle costs in `[2^(b-1), 2^b)`; bucket 0 holds zero-cost runs).
fn hist_json(buckets: &[u64]) -> String {
    let pairs: Vec<String> = buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(b, &c)| format!("[{b}, {c}]"))
        .collect();
    format!("[{}]", pairs.join(", "))
}

fn profile_json(p: &RegionProfile) -> String {
    format!(
        concat!(
            "{{\"region\": {}, \"invocations\": {}, ",
            "\"keyed_lookups\": {}, \"keyed_hits\": {}, \"keyed_evictions\": {}, ",
            "\"keyed_hit_ratio\": {}, ",
            "\"setup_runs\": {}, \"setup_cycles\": {}, \"setup_hist\": {}, ",
            "\"stitches\": {}, \"stitch_cycles\": {}, \"instructions_stitched\": {}, ",
            "\"stitch_hist\": {}, \"plan_patches\": {}, ",
            "\"shared_lookups\": {}, \"shared_cache_hits\": {}, \"shared_installs\": {}, ",
            "\"shared_evictions\": {}, \"shared_hit_ratio\": {}, ",
            "\"dispatches\": {}, \"fallback_runs\": {}, ",
            "\"bg_ready\": {}, \"bg_failed\": {}, \"bg_installs\": {}, ",
            "\"bg_setup_cycles\": {}, \"bg_stitch_cycles\": {}, ",
            "\"spec_issued\": {}, \"spec_installs\": {}, ",
            "\"speculation_accuracy\": {}, \"first_stitched_at\": {}}}"
        ),
        p.region,
        p.invocations,
        p.keyed_lookups,
        p.keyed_hits,
        p.keyed_evictions,
        ratio_str(p.keyed_hit_ratio()),
        p.setup_runs,
        p.setup_cycles,
        hist_json(&p.setup_hist.buckets),
        p.stitches,
        p.stitch_cycles,
        p.instructions_stitched,
        hist_json(&p.stitch_hist.buckets),
        p.plan_patches,
        p.shared_lookups,
        p.shared_cache_hits,
        p.shared_installs,
        p.shared_evictions,
        ratio_str(p.shared_hit_ratio()),
        p.dispatches,
        p.fallback_runs,
        p.bg_ready,
        p.bg_failed,
        p.bg_installs,
        p.bg_setup_cycles,
        p.bg_stitch_cycles,
        p.spec_issued,
        p.spec_installs,
        ratio_str(p.speculation_accuracy()),
        opt_u64(p.first_stitched_at),
    )
}

fn run_json(kernel: &str, mode: &str, s: &ProfiledSession) -> String {
    let regions: Vec<String> = s.profiles.iter().map(profile_json).collect();
    format!(
        concat!(
            "{{\"kernel\": \"{}\", \"mode\": \"{}\", \"checksum\": {}, ",
            "\"call_cycles\": {}, \"total_cycles\": {}, \"events\": {}, ",
            "\"dropped\": {}, \"regions\": [{}]}}"
        ),
        kernel,
        mode,
        s.outcome.checksum,
        s.outcome.call_cycles,
        s.outcome.total_cycles,
        s.jsonl.lines().count(),
        s.dropped,
        regions.join(", "),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(p) => args.get(p + 1).cloned().unwrap_or_else(|| {
            eprintln!("region_profile: --json needs a path");
            std::process::exit(2);
        }),
        None => "BENCH_region_profile.json".to_string(),
    };
    println!(
        "Per-region profiles ({} scale), five kernels x {{sync, tiered, tiered+spec}}",
        if smoke { "Smoke" } else { "Paper" }
    );
    println!(
        "{:<12} {:<12} {:>4} {:>8} {:>8} {:>9} {:>9} {:>9} {:>7} {:>6} {:>6}",
        "kernel",
        "mode",
        "rgn",
        "invoc",
        "stitches",
        "setup cy",
        "stitch cy",
        "instrs",
        "keyhit%",
        "bg",
        "spec"
    );
    println!("{}", "-".repeat(104));

    let mut objects: Vec<String> = Vec::new();
    for w in workloads(smoke) {
        let sync_prog = Arc::new(
            Compiler::new()
                .compile(w.src)
                .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.kernel)),
        );
        // Tiered mode needs the fallback copies `Compiler::tiered` lowers.
        let tiered_prog = Arc::new(
            Compiler::tiered()
                .compile(w.src)
                .unwrap_or_else(|e| panic!("{}: tiered compile failed: {e}", w.kernel)),
        );
        let mut checksums: Vec<u64> = Vec::new();
        for (mode, options) in modes() {
            let program = if options.tiered.is_some() {
                &tiered_prog
            } else {
                &sync_prog
            };
            let s = run_session_profiled(program, &w.setup, options).unwrap_or_else(|e| {
                eprintln!("region_profile: {} [{mode}]: {e}", w.kernel);
                std::process::exit(1);
            });
            // Tracing and tiering are observation/latency layers: results
            // must be identical across modes.
            checksums.push(s.outcome.checksum);
            if let Err(e) = jsonv::validate(&s.chrome) {
                eprintln!(
                    "region_profile: {} [{mode}]: Chrome export is not valid JSON: {e}",
                    w.kernel
                );
                std::process::exit(1);
            }
            if let Err(e) = jsonv::validate_jsonl(&s.jsonl) {
                eprintln!(
                    "region_profile: {} [{mode}]: JSONL export has a bad line: {e}",
                    w.kernel
                );
                std::process::exit(1);
            }
            for p in &s.profiles {
                let keyhit = if p.keyed_lookups > 0 {
                    format!("{:.1}", 100.0 * p.keyed_hit_ratio())
                } else {
                    "-".to_string()
                };
                println!(
                    "{:<12} {:<12} {:>4} {:>8} {:>8} {:>9} {:>9} {:>9} {:>7} {:>6} {:>6}",
                    w.kernel,
                    mode,
                    p.region,
                    p.invocations,
                    p.stitches,
                    p.setup_cycles,
                    p.stitch_cycles,
                    p.instructions_stitched,
                    keyhit,
                    p.bg_installs,
                    p.spec_installs,
                );
            }
            objects.push(run_json(w.kernel, mode, &s));
        }
        if checksums.windows(2).any(|w| w[0] != w[1]) {
            eprintln!(
                "region_profile: {}: checksums diverge across modes: {checksums:?}",
                w.kernel
            );
            std::process::exit(1);
        }
    }

    let mut rendered = String::from("[\n");
    for (i, o) in objects.iter().enumerate() {
        rendered.push_str("  ");
        rendered.push_str(o);
        if i + 1 < objects.len() {
            rendered.push(',');
        }
        rendered.push('\n');
    }
    rendered.push_str("]\n");
    if let Err(e) = jsonv::validate(&rendered) {
        eprintln!("region_profile: rendered document is not valid JSON: {e}");
        std::process::exit(1);
    }
    match std::fs::write(&json_path, &rendered) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => {
            eprintln!("region_profile: cannot write {json_path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(p) = args.iter().position(|a| a == "--check") {
        let reference_path = args.get(p + 1).cloned().unwrap_or_else(|| {
            eprintln!("region_profile: --check needs a path");
            std::process::exit(2);
        });
        let reference = std::fs::read_to_string(&reference_path).unwrap_or_else(|e| {
            eprintln!("region_profile: cannot read reference {reference_path}: {e}");
            std::process::exit(2);
        });
        if rendered == reference {
            println!("check: matches {reference_path}");
        } else {
            eprintln!("region_profile: results drifted from {reference_path}:");
            for (want, got) in reference.lines().zip(rendered.lines()) {
                if want != got {
                    eprintln!("  - {want}");
                    eprintln!("  + {got}");
                }
            }
            std::process::exit(1);
        }
    }
}
