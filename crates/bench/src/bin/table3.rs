//! Regenerate the paper's **Table 3**: which optimizations were applied
//! dynamically, per benchmark.
//!
//! Usage: `cargo run --release -p dyncomp-bench --bin table3 [--smoke]`

use dyncomp_bench::{run_all, table3_header, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Paper
    };
    println!("Table 3: Optimizations Applied Dynamically ({scale:?} scale)");
    println!("{}", table3_header());
    println!("{}", "-".repeat(90));
    let rows = run_all(scale).unwrap_or_else(|e| {
        eprintln!("benchmark failed: {e}");
        std::process::exit(1);
    });
    // Table 3 has one row per benchmark (not per configuration).
    let mut seen = std::collections::HashSet::new();
    for row in &rows {
        if seen.insert(row.name) {
            println!("{}", row.table3_row());
        }
    }
    println!();
    println!("Columns: constant folding, static branch elimination, load elimination,");
    println!("dead code elimination, complete loop unrolling, strength reduction.");
}
