//! A minimal hand-rolled JSON validator (the workspace takes no external
//! dependencies). It does not build a value tree — it only checks that a
//! byte string is one well-formed JSON value, which is what the
//! observability harnesses need: the Chrome `trace_event` export and each
//! JSONL line must parse in any standards-compliant consumer.

/// Validate that `s` is exactly one well-formed JSON value (with optional
/// surrounding whitespace).
///
/// # Errors
/// A message naming the byte offset and what went wrong.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(())
}

/// Validate a JSON Lines document: every non-empty line is one
/// well-formed JSON value. Returns the number of lines validated.
///
/// # Errors
/// A message naming the first bad line (1-based) and offset.
pub fn validate_jsonl(s: &str) -> Result<usize, String> {
    let mut n = 0;
    for (idx, line) in s.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        n += 1;
    }
    Ok(n)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(format!("expected '{word}' at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.lit("true"),
            Some(b'f') => self.lit("false"),
            Some(b'n') => self.lit("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!(
                "unexpected byte '{}' at offset {}",
                c as char, self.i
            )),
            None => Err(format!("unexpected end of input at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => {
                                        return Err(format!("bad \\u escape at offset {}", self.i))
                                    }
                                }
                            }
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at offset {}", self.i))
                }
                Some(_) => self.i += 1,
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| -> Result<(), String> {
            let start = p.i;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.i += 1;
            }
            if p.i == start {
                Err(format!("expected digits at offset {}", p.i))
            } else {
                Ok(())
            }
        };
        // Integer part: 0, or a nonzero digit followed by more digits.
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => digits(self)?,
            _ => return Err(format!("expected number at offset {}", self.i)),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_values() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            r#"{"a": [1, 2, {"b": "x\ny"}], "c": true}"#,
            r#"  {"displayTimeUnit": "ns", "traceEvents": []}  "#,
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_values() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\" 1}",
            "01",
            "1.",
            "\"unterminated",
            "{} {}",
            "nul",
            "\"bad\\q\"",
        ] {
            assert!(validate(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn jsonl_counts_lines_and_reports_first_bad() {
        assert_eq!(validate_jsonl("{\"a\":1}\n\n{\"b\":2}\n").unwrap(), 2);
        let err = validate_jsonl("{\"a\":1}\n{bad}\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
