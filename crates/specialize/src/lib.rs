//! # dyncomp-specialize
//!
//! Region splitting (§3.2 of *"Fast, Effective Dynamic Compilation"*,
//! PLDI 1996): divide each dynamic region into
//!
//! * **set-up code** — all computations that define run-time constants,
//!   executed once at run time; it allocates the constants table, stores
//!   every template-referenced constant into its slot, and for each
//!   `unrolled` loop runs a *real* loop that allocates one linked record
//!   per iteration (the paper's Figure 1 structure); and
//! * **template code** — the residual computation, with [`InstKind::Hole`]
//!   pseudo-instructions where run-time-constant operands will be patched,
//!   [`Terminator::ConstBranch`]/[`Terminator::ConstSwitch`] markers where
//!   the stitcher performs dead-code elimination, and marker blocks
//!   ([`TemplateMarker`]) on unrolled-loop entry/back-edge/exit arcs.
//!
//! The two subgraphs replace the original region body in the enclosing
//! function: the region entry becomes a [`Terminator::EnterRegion`] trap
//! whose successor is the set-up code, and set-up ends in
//! [`Terminator::EndSetup`] whose successor is the template — exactly the
//! first-time/afterwards diamond of the paper's §3.2 figure, expressed so
//! that liveness and register allocation see the whole flow.
//!
//! ## Set-up code generation
//!
//! Set-up must compute constants that are defined under *dynamic* control
//! flow (it cannot resolve dynamic branches). This is safe precisely
//! because the constants analysis only admits idempotent, side-effect-free,
//! non-trapping operations: set-up *speculatively* executes every constant
//! instruction, in reverse post-order, tracking per-block reachability
//! under constant branches as run-time booleans. φs at constant merges
//! become [`InstKind::Select`] chains over mutually exclusive arc
//! conditions; loads are guarded by blending their address with the (always
//! valid) table pointer when the block is constant-unreachable. Only
//! `unrolled` loops introduce real control flow: a self-loop that mirrors
//! the original loop's constant part, allocating and linking one record per
//! iteration.
//!
//! For non-`unrolled` loops inside a region, back-edge reachability is
//! over-approximated by loop entry ("the loop ran at least once"), which
//! may execute a few extra constant instructions — harmless, again by
//! idempotence.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use dyncomp_analysis::unroll::check_unrollable;
use dyncomp_analysis::{RegionAnalysis, UnrollError};
use dyncomp_ir::dom::DomTree;
use dyncomp_ir::loops::{find_loops, LoopForest};
use dyncomp_ir::{
    BinOp, Block, BlockId, Const, Function, IdSet, InstId, InstKind, Intrinsic, MemSize, RegionId,
    SlotPath, TemplateMarker, Terminator, Ty, UnOp,
};
use std::collections::HashMap;
use std::fmt;

/// Counters of the dynamic optimizations the split *plans* (Table 3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Constant computations moved to set-up (planned constant
    /// folding/propagation).
    pub const_insts_eliminated: usize,
    /// Loads of run-time constants eliminated from the fast path.
    pub loads_eliminated: usize,
    /// Run-time constant branches (stitcher performs static branch
    /// elimination + dead-code elimination on these).
    pub const_branches: usize,
    /// Completely unrolled loops.
    pub unrolled_loops: usize,
    /// Hole operands in the template.
    pub holes: usize,
}

/// Everything the back end needs about one specialized region.
#[derive(Clone, Debug)]
pub struct RegionSpec {
    /// Which region.
    pub region: RegionId,
    /// The block ending in [`Terminator::EnterRegion`].
    pub enter_block: BlockId,
    /// Set-up subgraph entry.
    pub setup_entry: BlockId,
    /// All set-up blocks.
    pub setup_blocks: Vec<BlockId>,
    /// Template subgraph entry.
    pub template_entry: BlockId,
    /// Template blocks in layout (reverse post-) order.
    pub template_blocks: Vec<BlockId>,
    /// Post-region join blocks, indexed by region-exit number.
    pub exit_targets: Vec<BlockId>,
    /// Number of static slots in the constants table.
    pub table_static_len: u32,
    /// Planned-optimization counters.
    pub stats: SpecStats,
}

/// Specialization failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// An `unrolled` annotation failed its legality check (§2).
    Unroll(UnrollError),
    /// The function's CFG is irreducible.
    Irreducible,
    /// The function is not in SSA form.
    NotSsa,
    /// The region entry has predecessors inside the region (the region is
    /// not single-entry).
    MultipleEntries(BlockId),
    /// A run-time constant defined inside an unrolled loop is used directly
    /// outside the loop, but the loop has dynamic (non-constant-branch)
    /// exits: the shared post-exit code cannot hold a per-iteration value.
    /// Route the value through a variable assigned on the exiting path
    /// instead.
    ConstantEscapesDynamicExit {
        /// The escaping value.
        value: InstId,
        /// Header of the loop it escapes from.
        header: BlockId,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Unroll(e) => write!(f, "cannot unroll: {e}"),
            SpecError::Irreducible => write!(f, "irreducible control flow in dynamic region"),
            SpecError::NotSsa => write!(f, "specialization requires SSA form"),
            SpecError::MultipleEntries(b) => {
                write!(
                    f,
                    "dynamic region entry {b} is re-entered from inside the region"
                )
            }
            SpecError::ConstantEscapesDynamicExit { value, header } => write!(
                f,
                "run-time constant {value} defined in the unrolled loop at {header} is used \
                 outside the loop, which has dynamic exits; assign it to a variable on the \
                 exiting path instead"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<UnrollError> for SpecError {
    fn from(e: UnrollError) -> Self {
        SpecError::Unroll(e)
    }
}

/// A context: the chain of unrolled loops (outer → inner) containing a
/// program point. Loops are identified by their index in the loop forest.
type Ctx = Vec<usize>;

fn common_prefix(a: &Ctx, b: &Ctx) -> Ctx {
    a.iter()
        .zip(b.iter())
        .take_while(|(x, y)| x == y)
        .map(|(x, _)| *x)
        .collect()
}

/// Split `region` of `f` into set-up and template code.
///
/// Lower dynamic (non-constant) `switch` terminators inside `region` to
/// chains of compare-and-branch blocks.
///
/// Templates represent multi-way branches only as `CONST_SWITCH`
/// directives, which the stitcher resolves at dynamic-compile time; a
/// switch on a *dynamic* selector has no directive form and must become
/// ordinary two-way branches before region splitting (constant switches
/// are left alone and keep their directive). Returns `true` if anything
/// changed — the caller must then re-split critical edges and re-run the
/// analysis, since new blocks exist.
pub fn legalize_dynamic_switches(
    f: &mut Function,
    region: RegionId,
    analysis: &RegionAnalysis,
) -> bool {
    let region_blocks: Vec<BlockId> = f.regions[region].blocks.iter().collect();
    let mut changed = false;
    for b in region_blocks {
        let Terminator::Switch {
            val,
            cases,
            default,
        } = f.blocks[b].term.clone()
        else {
            continue;
        };
        if analysis.const_branches.contains(b) {
            continue; // stays a CONST_SWITCH template directive
        }
        changed = true;

        // Original φ operand for predecessor `b` in every switch target.
        let targets: Vec<BlockId> = {
            let mut ts: Vec<BlockId> = cases.iter().map(|&(_, t)| t).collect();
            ts.push(default);
            ts.sort_unstable();
            ts.dedup();
            ts
        };
        let mut phi_val_for_b: HashMap<(BlockId, InstId), InstId> = HashMap::new();
        for &t in &targets {
            for &i in &f.blocks[t].insts.clone() {
                if let InstKind::Phi(ins) = f.kind(i) {
                    if let Some(&(_, v)) = ins.iter().find(|(p, _)| *p == b) {
                        phi_val_for_b.insert((t, i), v);
                    }
                }
            }
        }

        // Build the chain. Block `b` keeps the first compare; each further
        // case gets a fresh block; the final else-edge goes to `default`.
        let n = cases.len();
        let chain: Vec<BlockId> = (1..n).map(|_| f.add_block()).collect();
        let mut new_pred: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        if n == 0 {
            f.blocks[b].term = Terminator::Jump(default);
            new_pred.entry(default).or_default().push(b);
        } else {
            for (idx, &(c, t)) in cases.iter().enumerate() {
                let cur = if idx == 0 { b } else { chain[idx - 1] };
                let next = if idx + 1 < n { chain[idx] } else { default };
                let cv = f.const_int(cur, c);
                let cmp = f.bin(cur, BinOp::CmpEq, val, cv);
                f.blocks[cur].term = Terminator::Branch {
                    cond: cmp,
                    then_b: t,
                    else_b: next,
                };
                new_pred.entry(t).or_default().push(cur);
                if idx + 1 == n {
                    new_pred.entry(default).or_default().push(cur);
                }
            }
            for &cb in &chain {
                f.regions[region].blocks.insert(cb);
            }
        }

        // Re-key φ entries: the edge from `b` is now one or more edges
        // from chain blocks (the first may still be `b` itself).
        for preds in new_pred.values_mut() {
            preds.sort_unstable();
            preds.dedup();
        }
        for ((t, phi), v) in phi_val_for_b {
            let preds = new_pred.get(&t).cloned().unwrap_or_default();
            if let InstKind::Phi(ins) = &mut f.insts[phi].kind {
                ins.retain(|(p, _)| *p != b);
                for p in preds {
                    ins.push((p, v));
                }
            }
        }
    }
    changed
}

/// `f` must be in SSA form with critical edges split
/// ([`dyncomp_ir::cfg::split_critical_edges`]); run the analysis first and
/// pass its result.
///
/// # Errors
/// Returns [`SpecError`] for illegal `unrolled` annotations, irreducible
/// regions or multi-entry regions.
pub fn specialize_region(
    f: &mut Function,
    region: RegionId,
    analysis: &RegionAnalysis,
) -> Result<RegionSpec, SpecError> {
    if !f.is_ssa {
        return Err(SpecError::NotSsa);
    }
    let dom = DomTree::compute(f);
    let forest = find_loops(f, &dom);
    let r = f.regions[region].clone();

    // Region entry must only be entered from outside.
    {
        let preds = dyncomp_ir::cfg::Preds::compute(f);
        for &p in preds.of(r.entry) {
            if r.blocks.contains(p) {
                return Err(SpecError::MultipleEntries(r.entry));
            }
        }
    }

    // Unrolled loops: legality-checked, then described by forest index.
    let mut uloops: Vec<usize> = Vec::new();
    for (li, l) in forest.loops.iter().enumerate() {
        if f.blocks[l.header].unrolled_header && r.blocks.contains(l.header) {
            check_unrollable(f, region, analysis, &forest, l.header)?;
            uloops.push(li);
        }
    }
    if forest.irreducible {
        return Err(SpecError::Irreducible);
    }

    let mut spec = Spec {
        f,
        region,
        r,
        analysis,
        forest: &forest,
        uloops,
        rpo: Vec::new(),
        rpo_pos: HashMap::new(),
        ext_blocks: HashMap::new(),
        ctx_cache: HashMap::new(),
        requirements: HashMap::new(),
        loop_layout: HashMap::new(),
        static_len: 0,
        stats: SpecStats::default(),
    };
    spec.init_order();
    spec.compute_extended_membership();
    spec.collect_requirements();
    spec.check_escapes()?;
    spec.assign_slots();
    let (template_entry, template_blocks, val_map, stub_for, exit_targets) = spec.build_template();
    let setup = spec.build_setup(template_entry);
    let enter_block = spec.rewire(
        template_entry,
        &template_blocks,
        &val_map,
        &stub_for,
        &setup,
    );

    Ok(RegionSpec {
        region,
        enter_block,
        setup_entry: setup.entry,
        setup_blocks: setup.blocks,
        template_entry,
        template_blocks,
        exit_targets,
        table_static_len: spec.static_len,
        stats: spec.stats,
    })
}

/// Layout of one unrolled loop's per-iteration record.
#[derive(Clone, Debug)]
struct LoopLayout {
    /// Slot path of the chain-head slot.
    root_path: SlotPath,
    /// Index of the chain-head slot within its parent record / static area.
    root_slot: u32,
    /// Index of the `next` pointer within the record.
    next_slot: u32,
    /// Total record length in slots.
    record_len: u32,
}

/// Result of set-up generation.
struct SetupOut {
    entry: BlockId,
    blocks: Vec<BlockId>,
    table_val: InstId,
    last_block: BlockId,
    /// Final setup value of every constant (for post-region use rewrites).
    setup_val: HashMap<InstId, InstId>,
}

struct Spec<'a> {
    f: &'a mut Function,
    region: RegionId,
    r: dyncomp_ir::DynRegion,
    analysis: &'a RegionAnalysis,
    forest: &'a LoopForest,
    uloops: Vec<usize>,
    rpo: Vec<BlockId>,
    rpo_pos: HashMap<BlockId, usize>,
    /// Extended membership per unrolled loop: natural blocks plus region
    /// blocks unreachable without the loop (per-iteration exit tails).
    ext_blocks: HashMap<usize, IdSet<BlockId>>,
    ctx_cache: HashMap<BlockId, Ctx>,
    /// (value, context) → leaf slot index.
    requirements: HashMap<(InstId, Ctx), u32>,
    loop_layout: HashMap<usize, LoopLayout>,
    static_len: u32,
    stats: SpecStats,
}

impl Spec<'_> {
    fn init_order(&mut self) {
        let rpo: Vec<BlockId> = dyncomp_ir::cfg::reverse_postorder(self.f)
            .into_iter()
            .filter(|b| self.r.blocks.contains(*b))
            .collect();
        for (i, &b) in rpo.iter().enumerate() {
            self.rpo_pos.insert(b, i);
        }
        self.rpo = rpo;
    }

    fn is_const(&self, v: InstId) -> bool {
        self.analysis.is_const(v)
    }

    /// Extended membership of each unrolled loop: its natural blocks plus
    /// every region block that is *unreachable from the region entry
    /// without passing through the loop*. Such blocks (per-iteration exit
    /// tails, the code after complete unrolling finishes) are stitched in
    /// the loop's iteration context, so per-iteration constants remain
    /// addressable there — this is what makes the paper's
    /// "`return handler[i](…)` from inside the loop" dispatch pattern work.
    /// Extended sets must be laminar (nested or disjoint); offending loops
    /// fall back to natural membership.
    fn compute_extended_membership(&mut self) {
        for &li in &self.uloops.clone() {
            let natural = self.forest.loops[li].blocks.clone();
            // Region blocks reachable from the entry avoiding the loop.
            let mut reach_without = IdSet::with_domain(self.f.blocks.len());
            if !natural.contains(self.r.entry) {
                let mut stack = vec![self.r.entry];
                reach_without.insert(self.r.entry);
                while let Some(b) = stack.pop() {
                    for s in self.f.blocks[b].term.successors() {
                        if self.r.blocks.contains(s)
                            && !natural.contains(s)
                            && reach_without.insert(s)
                        {
                            stack.push(s);
                        }
                    }
                }
            }
            let mut ext = natural.clone();
            for b in self.r.blocks.clone().iter() {
                if !reach_without.contains(b) {
                    ext.insert(b);
                }
            }
            self.ext_blocks.insert(li, ext);
        }
        // Laminarity: for each pair, extended sets must be nested or
        // disjoint; otherwise strip both back to natural membership.
        let ids: Vec<usize> = self.uloops.clone();
        loop {
            let mut violated: Option<(usize, usize)> = None;
            'scan: for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    let ea = &self.ext_blocks[&a];
                    let eb = &self.ext_blocks[&b];
                    let mut inter = ea.clone();
                    inter.intersect_with(eb);
                    if inter.is_empty() {
                        continue;
                    }
                    let a_in_b = ea.iter().all(|x| eb.contains(x));
                    let b_in_a = eb.iter().all(|x| ea.contains(x));
                    if !a_in_b && !b_in_a {
                        violated = Some((a, b));
                        break 'scan;
                    }
                }
            }
            match violated {
                Some((a, b)) => {
                    self.ext_blocks
                        .insert(a, self.forest.loops[a].blocks.clone());
                    self.ext_blocks
                        .insert(b, self.forest.loops[b].blocks.clone());
                }
                None => break,
            }
        }
    }

    /// The unrolled-loop context of a block (outer → inner), by extended
    /// membership, ordered outer-first (larger extended set first).
    fn ctx_of(&mut self, b: BlockId) -> Ctx {
        if let Some(c) = self.ctx_cache.get(&b) {
            return c.clone();
        }
        let mut chain: Ctx = self
            .uloops
            .iter()
            .copied()
            .filter(|&li| self.ext_blocks[&li].contains(b))
            .collect();
        // Outer first: larger extended set; ties broken by header order.
        chain.sort_by_key(|&li| {
            (
                usize::MAX - self.ext_blocks[&li].len(),
                self.forest.loops[li].header.index(),
            )
        });
        self.ctx_cache.insert(b, chain.clone());
        chain
    }

    /// The context in which a value is defined (empty for region roots and
    /// other out-of-region values).
    fn def_ctx(&mut self, v: InstId) -> Ctx {
        for b in self.rpo.clone() {
            if self.f.blocks[b].insts.contains(&v) {
                return self.ctx_of(b);
            }
        }
        Vec::new()
    }

    /// Record that constant `v` must be available at `use_ctx`; returns the
    /// context the slot lives in.
    fn require(&mut self, v: InstId, use_ctx: &Ctx) -> Ctx {
        let d = self.def_ctx(v);
        let ctx = common_prefix(&d, use_ctx);
        self.requirements
            .entry((v, ctx.clone()))
            .or_insert(u32::MAX);
        ctx
    }

    /// Reject constants that escape an unrolled loop with dynamic exits
    /// through a direct (non-φ) use: the stitcher shares one copy of the
    /// post-exit code across iterations, so a per-iteration value cannot be
    /// patched there. (Escapes routed through φs are fine: their copies run
    /// in the per-iteration exit-marker blocks.)
    fn check_escapes(&mut self) -> Result<(), SpecError> {
        // Loops with any exit arc not controlled by a constant branch.
        let mut dyn_exit: HashMap<usize, bool> = HashMap::new();
        for &li in &self.uloops.clone() {
            let ext = self.ext_blocks[&li].clone();
            let mut has_dyn = false;
            for b in ext.iter() {
                for s in self.f.blocks[b].term.successors() {
                    if !ext.contains(s) && !self.analysis.const_branches.contains(b) {
                        has_dyn = true;
                    }
                }
            }
            dyn_exit.insert(li, has_dyn);
        }
        for (v, ctx) in self.requirements.keys().cloned().collect::<Vec<_>>() {
            let d = self.def_ctx(v);
            if ctx.len() >= d.len() {
                continue;
            }
            for &li in &d[ctx.len()..] {
                if dyn_exit.get(&li).copied().unwrap_or(false) {
                    return Err(SpecError::ConstantEscapesDynamicExit {
                        value: v,
                        header: self.forest.loops[li].header,
                    });
                }
            }
        }
        Ok(())
    }

    fn collect_requirements(&mut self) {
        let preds = dyncomp_ir::cfg::Preds::compute(self.f);
        for b in self.rpo.clone() {
            let b_ctx = self.ctx_of(b);
            for i in self.f.blocks[b].insts.clone() {
                if self.is_const(i) {
                    continue;
                }
                match self.f.kind(i).clone() {
                    InstKind::Phi(ins) => {
                        for (p, v) in ins {
                            if self.is_const(v) {
                                let p_ctx = self.ctx_of(p);
                                self.require(v, &p_ctx);
                            }
                        }
                    }
                    k => {
                        for v in k.operands() {
                            if self.is_const(v) {
                                self.require(v, &b_ctx);
                            }
                        }
                    }
                }
            }
            let term = self.f.blocks[b].term.clone();
            if self.analysis.const_branches.contains(b) {
                let test = match &term {
                    Terminator::Branch { cond, .. } => *cond,
                    Terminator::Switch { val, .. } => *val,
                    _ => unreachable!("const branch has a branch terminator"),
                };
                self.require(test, &b_ctx);
            } else {
                for v in term.operands() {
                    if self.is_const(v) {
                        self.require(v, &b_ctx);
                    }
                }
            }
        }
        let _ = preds;
    }

    /// Number the slots: static area first (values then top-level loop
    /// roots), then recursively each loop's record.
    fn assign_slots(&mut self) {
        // Parent = the smallest extended set strictly containing ours.
        let parent_of = |spec: &Spec, li: usize| -> Option<usize> {
            let mine = &spec.ext_blocks[&li];
            spec.uloops
                .iter()
                .copied()
                .filter(|&o| o != li)
                .filter(|&o| {
                    let other = &spec.ext_blocks[&o];
                    other.len() > mine.len() && mine.iter().all(|x| other.contains(x))
                })
                .min_by_key(|&o| spec.ext_blocks[&o].len())
        };
        let top_loops: Vec<usize> = self
            .uloops
            .clone()
            .into_iter()
            .filter(|&li| parent_of(self, li).is_none())
            .collect();

        // Sorted requirement keys for determinism.
        let mut reqs: Vec<(InstId, Ctx)> = self.requirements.keys().cloned().collect();
        reqs.sort_by(|a, b| (a.0 .0, &a.1).cmp(&(b.0 .0, &b.1)));

        // Static area.
        let mut idx: u32 = 0;
        for (v, ctx) in reqs.iter().filter(|(_, c)| c.is_empty()) {
            self.requirements.insert((*v, ctx.clone()), idx);
            idx += 1;
        }
        let mut pending: Vec<(usize, SlotPath)> = Vec::new(); // (loop, parent path prefix)
        for &li in &top_loops {
            self.loop_layout.insert(
                li,
                LoopLayout {
                    root_path: SlotPath::stat(idx),
                    root_slot: idx,
                    next_slot: 0,
                    record_len: 0,
                },
            );
            pending.push((li, SlotPath::stat(idx)));
            idx += 1;
        }
        self.static_len = idx.max(1);

        // Records, outer before inner.
        while let Some((li, root_path)) = pending.pop() {
            let my_ctx_sorted: Ctx = {
                // The loop's context is its ancestors (in uloops) + itself.
                let mut c: Ctx = Vec::new();
                let mut cur = Some(li);
                while let Some(x) = cur {
                    c.push(x);
                    cur = parent_of(self, x);
                }
                c.reverse();
                c
            };
            let mut slot: u32 = 0;
            for (v, ctx) in reqs.iter() {
                if *ctx == my_ctx_sorted {
                    self.requirements.insert((*v, ctx.clone()), slot);
                    slot += 1;
                }
            }
            // Child loop roots.
            let children: Vec<usize> = self
                .uloops
                .clone()
                .into_iter()
                .filter(|&c| parent_of(self, c) == Some(li))
                .collect();
            for c in children {
                let child_root = root_path.child(slot);
                self.loop_layout.insert(
                    c,
                    LoopLayout {
                        root_path: child_root.clone(),
                        root_slot: slot,
                        next_slot: 0,
                        record_len: 0,
                    },
                );
                pending.push((c, child_root));
                slot += 1;
            }
            let layout = self.loop_layout.get_mut(&li).expect("layout inserted");
            layout.next_slot = slot;
            layout.record_len = slot + 1;
            layout.root_path = root_path;
        }
    }

    /// Slot path for using constant `v` at context `use_ctx`.
    fn slot_for_use(&mut self, v: InstId, use_ctx: &Ctx) -> SlotPath {
        let d = self.def_ctx(v);
        let ctx = common_prefix(&d, use_ctx);
        let leaf = *self
            .requirements
            .get(&(v, ctx.clone()))
            .unwrap_or_else(|| panic!("slot requirement missing for {v} at {ctx:?}"));
        debug_assert_ne!(leaf, u32::MAX, "slot index assigned");
        match ctx.last() {
            None => SlotPath::stat(leaf),
            Some(&li) => self.loop_layout[&li].root_path.child(leaf),
        }
    }

    // ================= template construction =================

    #[allow(clippy::type_complexity)]
    fn build_template(
        &mut self,
    ) -> (
        BlockId,
        Vec<BlockId>,
        HashMap<InstId, InstId>,
        HashMap<(BlockId, BlockId), BlockId>,
        Vec<BlockId>,
    ) {
        // Clone blocks.
        let mut clone_of: HashMap<BlockId, BlockId> = HashMap::new();
        for b in self.rpo.clone() {
            let cb = self.f.add_block();
            clone_of.insert(b, cb);
        }
        let mut val_map: HashMap<InstId, InstId> = HashMap::new();
        let mut phis_to_fix: Vec<(InstId, BlockId)> = Vec::new(); // (cloned φ, orig block)

        for b in self.rpo.clone() {
            let b_ctx = self.ctx_of(b);
            let cb = clone_of[&b];
            let mut list: Vec<InstId> = Vec::new();
            let mut hole_cache: HashMap<SlotPath, InstId> = HashMap::new();
            let insts = self.f.blocks[b].insts.clone();
            for i in insts {
                if self.is_const(i) {
                    self.stats.const_insts_eliminated += 1;
                    if matches!(self.f.kind(i), InstKind::Load { .. }) {
                        self.stats.loads_eliminated += 1;
                    }
                    continue;
                }
                let mut kind = self.f.kind(i).clone();
                if let InstKind::Phi(ins) = &mut kind {
                    // Operands mapped per-arc later isn't needed: constant
                    // operands become holes resolved at the predecessor's
                    // context; SSA destruction will place the copies there.
                    for (p, v) in ins.iter_mut() {
                        if self.is_const(*v) {
                            let p_ctx = self.ctx_of(*p);
                            let slot = self.slot_for_use(*v, &p_ctx);
                            // The hole lives in the (to-be-created) arc
                            // block; for simplicity place it in the cloned
                            // predecessor when in-region. Since copies are
                            // inserted at the end of predecessors (or arc
                            // markers) by SSA destruction, a hole placed at
                            // the predecessor end dominates the copy.
                            let hp = self.f.create_inst(InstKind::Hole {
                                slot,
                                float: self.f.ty(*v) == Ty::Float,
                            });
                            self.stats.holes += 1;
                            // Defer placement: collect per-pred placement.
                            phis_to_fix.push((hp, *p));
                            *v = hp;
                        } else if let Some(&m) = val_map.get(v) {
                            *v = m;
                        }
                        // Predecessor rewrite happens after arc insertion.
                    }
                    let ni = self.f.create_inst(kind);
                    self.f.insts[ni].ty = self.f.ty(i);
                    val_map.insert(i, ni);
                    list.push(ni);
                    continue;
                }
                kind.map_operands(|v| {
                    if self.is_const(v) {
                        let slot = self.slot_for_use(v, &b_ctx);
                        *hole_cache.entry(slot.clone()).or_insert_with(|| {
                            let h = self.f.create_inst(InstKind::Hole {
                                slot,
                                float: self.f.ty(v) == Ty::Float,
                            });
                            self.stats.holes += 1;
                            list.push(h);
                            h
                        })
                    } else {
                        val_map.get(&v).copied().unwrap_or(v)
                    }
                });
                let ni = self.f.create_inst(kind);
                self.f.insts[ni].ty = self.f.ty(i);
                val_map.insert(i, ni);
                list.push(ni);
            }
            // Terminator.
            let b_is_cb = self.analysis.const_branches.contains(b);
            let term = self.f.blocks[b].term.clone();
            let new_term = match term {
                Terminator::Branch {
                    cond,
                    then_b,
                    else_b,
                } if b_is_cb => {
                    self.stats.const_branches += 1;
                    let slot = self.slot_for_use(cond, &b_ctx);
                    Terminator::ConstBranch {
                        slot,
                        then_b,
                        else_b,
                    }
                }
                Terminator::Switch {
                    val,
                    cases,
                    default,
                } if b_is_cb => {
                    self.stats.const_branches += 1;
                    let slot = self.slot_for_use(val, &b_ctx);
                    Terminator::ConstSwitch {
                        slot,
                        cases,
                        default,
                    }
                }
                mut other => {
                    other.map_operands(|v| {
                        if self.is_const(v) {
                            let slot = self.slot_for_use(v, &b_ctx);
                            *hole_cache.entry(slot.clone()).or_insert_with(|| {
                                let h = self.f.create_inst(InstKind::Hole {
                                    slot,
                                    float: self.f.ty(v) == Ty::Float,
                                });
                                self.stats.holes += 1;
                                list.push(h);
                                h
                            })
                        } else {
                            val_map.get(&v).copied().unwrap_or(v)
                        }
                    });
                    other
                }
            };
            self.f.blocks[cb].insts = list;
            self.f.blocks[cb].term = new_term;
        }

        // Place deferred φ-operand holes at the end of the cloned
        // predecessor's instruction list (before its terminator).
        for (hole, orig_pred) in phis_to_fix {
            let cp = clone_of[&orig_pred];
            self.f.blocks[cp].insts.push(hole);
        }

        // Arc transformation: markers, exit stubs, successor remapping.
        let mut stub_for: HashMap<(BlockId, BlockId), BlockId> = HashMap::new();
        let mut exit_targets: Vec<BlockId> = Vec::new();
        let mut arc_final: HashMap<(BlockId, BlockId), BlockId> = HashMap::new(); // (orig src, orig tgt) -> new pred of tgt's clone

        for b in self.rpo.clone() {
            let cb = clone_of[&b];
            let src_ctx = self.ctx_of(b);
            let succs: Vec<BlockId> = {
                // Original successors (the cloned terminator still names
                // original blocks at this point).
                self.f.blocks[cb].term.successors()
            };
            let mut done: HashMap<BlockId, BlockId> = HashMap::new();
            for tgt in succs {
                if done.contains_key(&tgt) {
                    continue;
                }
                let in_region = self.r.blocks.contains(tgt);
                let tgt_ctx = if in_region {
                    self.ctx_of(tgt)
                } else {
                    Vec::new()
                };
                let common = common_prefix(&src_ctx, &tgt_ctx);

                // Build the marker chain.
                let mut markers: Vec<TemplateMarker> = Vec::new();
                // Exits, innermost first.
                for _ in common.len()..src_ctx.len() {
                    markers.push(TemplateMarker::ExitLoop);
                }
                // Back edge: the target is the header of the innermost
                // loop of its own context and the source lies inside that
                // loop's extended set (possibly deeper; the pops above
                // bring us to its level first).
                if in_region {
                    let is_backedge = !tgt_ctx.is_empty()
                        && src_ctx.len() >= tgt_ctx.len()
                        && src_ctx[..tgt_ctx.len()] == tgt_ctx[..]
                        && self.forest.loops[*tgt_ctx.last().unwrap()].header == tgt;
                    if is_backedge {
                        let li = *tgt_ctx.last().unwrap();
                        markers.push(TemplateMarker::RestartLoop {
                            next_slot: self.loop_layout[&li].next_slot,
                        });
                    } else if tgt_ctx.len() == common.len() + 1 {
                        // Entering one loop level through its header.
                        let li = *tgt_ctx.last().unwrap();
                        debug_assert_eq!(self.forest.loops[li].header, tgt);
                        markers.push(TemplateMarker::EnterLoop {
                            root: self.loop_layout[&li].root_path.clone(),
                        });
                    } else {
                        debug_assert_eq!(
                            tgt_ctx.len(),
                            common.len(),
                            "reducible CFG cannot enter two loops at once"
                        );
                    }
                }

                // Final destination.
                let final_tgt = if in_region {
                    clone_of[&tgt]
                } else {
                    // Exit stub (also records the exit target).
                    if !exit_targets.contains(&tgt) {
                        exit_targets.push(tgt);
                    }
                    let stub = self.f.add_block();
                    self.f.blocks[stub].term = Terminator::Jump(tgt);
                    stub_for.insert((b, tgt), stub);
                    stub
                };

                // Chain: cb -> m1 -> m2 -> ... -> final_tgt.
                let mut first = final_tgt;
                for m in markers.into_iter().rev() {
                    let mb = self.f.blocks.push(Block {
                        insts: vec![],
                        term: Terminator::Jump(first),
                        unrolled_header: false,
                        marker: Some(m),
                    });
                    first = mb;
                }
                done.insert(tgt, first);
                arc_final.insert(
                    (b, tgt),
                    if first == final_tgt {
                        cb
                    } else {
                        last_in_chain(self.f, first, final_tgt)
                    },
                );
            }
            // Retarget the terminator.
            self.f.blocks[cb]
                .term
                .map_successors(|s| *done.get(&s).unwrap_or(&s));
        }

        // Fix φ predecessor labels in cloned blocks: each original pred p
        // becomes the last block on the (p → b) arc chain (or p's clone).
        for b in self.rpo.clone() {
            let cb = clone_of[&b];
            let insts = self.f.blocks[cb].insts.clone();
            for i in insts {
                if let InstKind::Phi(ins) = &mut self.f.insts[i].kind {
                    for (p, _) in ins.iter_mut() {
                        // arc_final maps to the last chain block when a
                        // chain exists, otherwise the cloned predecessor.
                        *p = arc_final.get(&(*p, b)).copied().unwrap_or(clone_of[p]);
                    }
                }
            }
        }

        self.stats.unrolled_loops = self.uloops.len();

        // If the template entry is a loop header, its EnterLoop marker is
        // on the (enter → entry) arc; give the template a dedicated entry.
        let mut template_entry = clone_of[&self.r.entry];
        let entry_ctx = self.ctx_of(self.r.entry);
        if !entry_ctx.is_empty() {
            let mut first = template_entry;
            for (depth, &li) in entry_ctx.iter().enumerate().rev() {
                let _ = depth;
                let mb = self.f.blocks.push(Block {
                    insts: vec![],
                    term: Terminator::Jump(first),
                    unrolled_header: false,
                    marker: Some(TemplateMarker::EnterLoop {
                        root: self.loop_layout[&li].root_path.clone(),
                    }),
                });
                first = mb;
            }
            template_entry = first;
        }

        // Template block list in RPO from the entry.
        let mut seen: IdSet<BlockId> = IdSet::with_domain(self.f.blocks.len());
        let mut stack = vec![template_entry];
        let mut order: Vec<BlockId> = Vec::new();
        let region_clone_ids: IdSet<BlockId> = clone_of.values().copied().collect();
        let stub_ids: IdSet<BlockId> = stub_for.values().copied().collect();
        seen.insert(template_entry);
        while let Some(x) = stack.pop() {
            order.push(x);
            for s in self.f.blocks[x].term.successors() {
                let is_template = region_clone_ids.contains(s)
                    || stub_ids.contains(s)
                    || self.f.blocks[s].marker.is_some();
                if is_template && seen.insert(s) {
                    stack.push(s);
                }
            }
        }
        let template_blocks = order;

        (
            template_entry,
            template_blocks,
            val_map,
            stub_for,
            exit_targets,
        )
    }

    // ================= set-up construction =================

    fn build_setup(&mut self, template_entry: BlockId) -> SetupOut {
        let mut g = SetupGen {
            blocks: Vec::new(),
            cur: BlockId(0),
            setup_val: HashMap::new(),
            rb: HashMap::new(),
            arcbool: HashMap::new(),
            cur_rec: HashMap::new(),
            table_val: InstId(0),
            one: InstId(0),
            zero: InstId(0),
        };
        let entry = self.f.add_block();
        g.blocks.push(entry);
        g.cur = entry;

        // Table allocation and universal constants.
        let size = self.f.append(
            g.cur,
            InstKind::Const(Const::Int(8 * i64::from(self.static_len))),
        );
        g.table_val = self.f.append(
            g.cur,
            InstKind::CallIntrinsic {
                which: Intrinsic::Alloc,
                args: vec![size],
            },
        );
        g.one = self.f.append(g.cur, InstKind::Const(Const::Int(1)));
        g.zero = self.f.append(g.cur, InstKind::Const(Const::Int(0)));

        // Roots are available directly.
        for &root in self.r.const_roots.clone().iter() {
            g.setup_val.insert(root, root);
        }
        // Store root slots (static requirements on roots).
        for &root in self.r.const_roots.clone().iter() {
            self.store_slots(&mut g, root, &Vec::new());
        }

        g.rb.insert(self.r.entry, g.one);

        let items = self.schedule(&Vec::new());
        self.gen_level(&mut g, &Vec::new(), &items);

        let last = g.cur;
        self.f.blocks[last].term = Terminator::EndSetup {
            region: self.region,
            table: g.table_val,
            template: template_entry,
        };

        SetupOut {
            entry,
            blocks: g.blocks,
            table_val: g.table_val,
            last_block: last,
            setup_val: g.setup_val,
        }
    }

    /// Items at one nesting level: plain blocks at exactly this context,
    /// plus nested unrolled loops (by forest index) where they first occur.
    fn schedule(&mut self, level: &Ctx) -> Vec<ScheduleItem> {
        let mut items = Vec::new();
        let mut seen_loops: Vec<usize> = Vec::new();
        for b in self.rpo.clone() {
            let c = self.ctx_of(b);
            if c == *level {
                items.push(ScheduleItem::Block(b));
            } else if c.len() > level.len() && c[..level.len()] == level[..] {
                let li = c[level.len()];
                if !seen_loops.contains(&li) {
                    seen_loops.push(li);
                    items.push(ScheduleItem::Loop(li));
                }
            }
        }
        items
    }

    fn gen_level(&mut self, g: &mut SetupGen, level: &Ctx, items: &[ScheduleItem]) {
        for item in items {
            match *item {
                ScheduleItem::Block(b) => self.gen_block(g, level, b, None),
                ScheduleItem::Loop(li) => self.gen_loop(g, level, li),
            }
        }
    }

    /// Contribution of arc (p → b, successor index `idx`) to b's
    /// reachability, as a setup 0/1 value.
    fn contribution(&mut self, g: &mut SetupGen, p: BlockId, idx: usize) -> Option<InstId> {
        if let Some(&ab) = g.arcbool.get(&(p, idx)) {
            return Some(ab);
        }
        g.rb.get(&p).copied()
    }

    /// All-arc condition from p into b (OR over parallel arcs).
    fn pred_condition(&mut self, g: &mut SetupGen, p: BlockId, b: BlockId) -> Option<InstId> {
        let succs = self.f.blocks[p].term.successors();
        let mut acc: Option<InstId> = None;
        for (idx, &s) in succs.iter().enumerate() {
            if s != b {
                continue;
            }
            let c = self.contribution(g, p, idx)?;
            acc = Some(match acc {
                None => c,
                Some(a) => self.f.append(g.cur, InstKind::Bin(BinOp::Or, a, c)),
            });
        }
        acc
    }

    fn gen_block(
        &mut self,
        g: &mut SetupGen,
        level: &Ctx,
        b: BlockId,
        rb_override: Option<InstId>,
    ) {
        let preds = dyncomp_ir::cfg::Preds::compute(self.f);
        // Reachability boolean.
        let rb_b = if let Some(v) = rb_override {
            v
        } else if b == self.r.entry {
            g.one
        } else {
            let my_pos = self.rpo_pos[&b];
            let mut acc: Option<InstId> = None;
            for &p in preds.of(b) {
                if !self.r.blocks.contains(p) {
                    continue;
                }
                // Skip retreating arcs (non-unrolled loop back edges): the
                // documented over-approximation.
                if self.rpo_pos.get(&p).map(|&pp| pp >= my_pos).unwrap_or(true) {
                    continue;
                }
                if let Some(c) = self.pred_condition(g, p, b) {
                    acc = Some(match acc {
                        None => c,
                        Some(a) => self.f.append(g.cur, InstKind::Bin(BinOp::Or, a, c)),
                    });
                }
            }
            acc.unwrap_or(g.zero)
        };
        g.rb.insert(b, rb_b);
        let is_header = rb_override.is_some();

        // Constant instructions.
        for i in self.f.blocks[b].insts.clone() {
            if !self.is_const(i) {
                continue;
            }
            match self.f.kind(i).clone() {
                InstKind::Phi(ins) => {
                    if is_header {
                        continue; // handled by gen_loop
                    }
                    // Select chain over mutually exclusive arc conditions.
                    let mut acc: Option<InstId> = None;
                    for (p, v) in ins.iter().rev() {
                        let val = g.val(*v);
                        acc = Some(match acc {
                            None => val,
                            Some(rest) => {
                                let cond = self.pred_condition(g, *p, b).unwrap_or(g.zero);
                                self.f.append(
                                    g.cur,
                                    InstKind::Select {
                                        cond,
                                        if_true: val,
                                        if_false: rest,
                                    },
                                )
                            }
                        });
                    }
                    let nv = acc.unwrap_or(g.zero);
                    g.setup_val.insert(i, nv);
                }
                InstKind::Load {
                    size,
                    sign,
                    addr,
                    dynamic,
                    float,
                } => {
                    debug_assert!(!dynamic);
                    let a = g.val(addr);
                    // Guard: blend the address with the (always valid)
                    // table pointer when the block is const-unreachable.
                    let safe = if rb_b == g.one {
                        a
                    } else {
                        let d = self
                            .f
                            .append(g.cur, InstKind::Bin(BinOp::Sub, a, g.table_val));
                        let m = self.f.append(g.cur, InstKind::Bin(BinOp::Mul, d, rb_b));
                        self.f
                            .append(g.cur, InstKind::Bin(BinOp::Add, g.table_val, m))
                    };
                    let nv = self.f.append(
                        g.cur,
                        InstKind::Load {
                            size,
                            sign,
                            addr: safe,
                            dynamic: false,
                            float,
                        },
                    );
                    g.setup_val.insert(i, nv);
                }
                mut k => {
                    k.map_operands(|v| g.val(v));
                    let nv = self.f.append(g.cur, k);
                    g.setup_val.insert(i, nv);
                }
            }
            self.store_slots(g, i, level);
        }

        // Arc booleans for constant branches.
        if self.analysis.const_branches.contains(b) {
            match self.f.blocks[b].term.clone() {
                Terminator::Branch { cond, .. } => {
                    let cv = g.val(cond);
                    let nb = self
                        .f
                        .append(g.cur, InstKind::Bin(BinOp::CmpNe, cv, g.zero));
                    let not_nb = self.f.append(g.cur, InstKind::Un(UnOp::LogNot, nb));
                    let a0 = self.f.append(g.cur, InstKind::Bin(BinOp::And, rb_b, nb));
                    let a1 = self
                        .f
                        .append(g.cur, InstKind::Bin(BinOp::And, rb_b, not_nb));
                    g.arcbool.insert((b, 0), a0);
                    g.arcbool.insert((b, 1), a1);
                }
                Terminator::Switch { val, cases, .. } => {
                    let sv = g.val(val);
                    let mut any: Option<InstId> = None;
                    for (idx, (c, _)) in cases.iter().enumerate() {
                        let cc = self.f.append(g.cur, InstKind::Const(Const::Int(*c)));
                        let eq = self.f.append(g.cur, InstKind::Bin(BinOp::CmpEq, sv, cc));
                        let ab = self.f.append(g.cur, InstKind::Bin(BinOp::And, rb_b, eq));
                        g.arcbool.insert((b, idx), ab);
                        any = Some(match any {
                            None => eq,
                            Some(a) => self.f.append(g.cur, InstKind::Bin(BinOp::Or, a, eq)),
                        });
                    }
                    let none = match any {
                        None => g.one,
                        Some(a) => self.f.append(g.cur, InstKind::Un(UnOp::LogNot, a)),
                    };
                    let dab = self.f.append(g.cur, InstKind::Bin(BinOp::And, rb_b, none));
                    g.arcbool.insert((b, cases.len()), dab);
                }
                _ => {}
            }
        }
    }

    /// Store `v`'s setup value into every slot it requires at contexts
    /// visible from `level`.
    fn store_slots(&mut self, g: &mut SetupGen, v: InstId, level: &Ctx) {
        let reqs: Vec<(Ctx, u32)> = self
            .requirements
            .iter()
            .filter(|((rv, _), _)| *rv == v)
            .map(|((_, c), &leaf)| (c.clone(), leaf))
            .collect();
        for (ctx, leaf) in reqs {
            // Only store requirements whose context is a prefix of the
            // current level (records of deeper contexts don't exist here).
            if ctx.len() > level.len() || ctx[..] != level[..ctx.len()] {
                continue;
            }
            let base = match ctx.last() {
                None => g.table_val,
                Some(li) => g.cur_rec[li],
            };
            let off = self
                .f
                .append(g.cur, InstKind::Const(Const::Int(8 * i64::from(leaf))));
            let addr = self.f.append(g.cur, InstKind::Bin(BinOp::Add, base, off));
            let val = g.val(v);
            let float = self.f.ty(val) == Ty::Float;
            self.f.append(
                g.cur,
                InstKind::Store {
                    size: MemSize::B8,
                    addr,
                    val,
                    float,
                },
            );
        }
    }

    fn gen_loop(&mut self, g: &mut SetupGen, outer: &Ctx, li: usize) {
        let l = self.forest.loops[li].clone();
        let ext = self.ext_blocks[&li].clone();
        let h = l.header;
        let level: Ctx = {
            let mut c = outer.clone();
            c.push(li);
            c
        };
        let layout = self.loop_layout[&li].clone();
        let preds = dyncomp_ir::cfg::Preds::compute(self.f);

        // Entry condition and entry φ-values (computed in the pre block).
        let entry_preds: Vec<BlockId> = preds
            .of(h)
            .iter()
            .copied()
            .filter(|p| !ext.contains(*p))
            .collect();
        let mut entry_g: Option<InstId> = None;
        for &p in &entry_preds {
            let c = if self.r.blocks.contains(p) {
                self.pred_condition(g, p, h)
            } else {
                Some(g.one) // entered from outside the region
            };
            if let Some(c) = c {
                entry_g = Some(match entry_g {
                    None => c,
                    Some(a) => self.f.append(g.cur, InstKind::Bin(BinOp::Or, a, c)),
                });
            }
        }
        let entry_g = entry_g.unwrap_or(g.zero);

        // Entry values for the header's constant φs.
        let phis: Vec<InstId> = self.f.blocks[h]
            .insts
            .clone()
            .into_iter()
            .filter(|&i| matches!(self.f.kind(i), InstKind::Phi(_)) && self.is_const(i))
            .collect();
        let mut entry_vals: HashMap<InstId, InstId> = HashMap::new();
        for &phi in &phis {
            let InstKind::Phi(ins) = self.f.kind(phi).clone() else {
                unreachable!()
            };
            let mut acc: Option<InstId> = None;
            for (p, v) in ins.iter().rev() {
                if l.blocks.contains(*p) {
                    continue; // latch operand, handled per iteration
                }
                let val = g.val(*v);
                acc = Some(match acc {
                    None => val,
                    Some(rest) => {
                        let cond = if self.r.blocks.contains(*p) {
                            self.pred_condition(g, *p, h).unwrap_or(g.zero)
                        } else {
                            g.one
                        };
                        self.f.append(
                            g.cur,
                            InstKind::Select {
                                cond,
                                if_true: val,
                                if_false: rest,
                            },
                        )
                    }
                });
            }
            entry_vals.insert(phi, acc.unwrap_or(g.zero));
        }

        // Root link address.
        let root_addr = {
            let base = match outer.last() {
                None => g.table_val,
                Some(pl) => g.cur_rec[pl],
            };
            let off = self.f.append(
                g.cur,
                InstKind::Const(Const::Int(8 * i64::from(layout.root_slot))),
            );
            self.f.append(g.cur, InstKind::Bin(BinOp::Add, base, off))
        };

        // Control skeleton.
        let b_pre = g.cur;
        let b_preh = self.f.add_block();
        let b_joinf = self.f.add_block();
        let b_head = self.f.add_block();
        let b_back = self.f.add_block();
        let b_exitf = self.f.add_block();
        let b_join = self.f.add_block();
        for nb in [b_preh, b_joinf, b_head, b_back, b_exitf, b_join] {
            g.blocks.push(nb);
        }
        self.f.blocks[b_pre].term = Terminator::Branch {
            cond: entry_g,
            then_b: b_preh,
            else_b: b_joinf,
        };
        self.f.blocks[b_preh].term = Terminator::Jump(b_head);
        self.f.blocks[b_joinf].term = Terminator::Jump(b_join);
        self.f.blocks[b_back].term = Terminator::Jump(b_head);
        self.f.blocks[b_exitf].term = Terminator::Jump(b_join);

        // Header block: φs, record allocation, linking.
        g.cur = b_head;
        let link_phi = self
            .f
            .append(g.cur, InstKind::Phi(vec![(b_preh, root_addr)]));
        let mut val_phis: Vec<(InstId, InstId)> = Vec::new(); // (orig φ, setup φ)
        for &phi in &phis {
            let sp = self
                .f
                .append(g.cur, InstKind::Phi(vec![(b_preh, entry_vals[&phi])]));
            self.f.insts[sp].ty = self.f.ty(phi);
            g.setup_val.insert(phi, sp);
            val_phis.push((phi, sp));
        }
        let rec_size = self.f.append(
            g.cur,
            InstKind::Const(Const::Int(8 * i64::from(layout.record_len))),
        );
        let rec = self.f.append(
            g.cur,
            InstKind::CallIntrinsic {
                which: Intrinsic::Alloc,
                args: vec![rec_size],
            },
        );
        self.f.append(
            g.cur,
            InstKind::Store {
                size: MemSize::B8,
                addr: link_phi,
                val: rec,
                float: false,
            },
        );
        g.cur_rec.insert(li, rec);

        // Store per-iteration slots of the φs themselves.
        for &(phi, _) in &val_phis {
            self.store_slots(g, phi, &level);
        }

        // Body schedule (includes the header's non-φ constants).
        let items = self.schedule(&level);
        for item in &items {
            match *item {
                ScheduleItem::Block(b2) if b2 == h => {
                    self.gen_block(g, &level, b2, Some(g.one));
                }
                ScheduleItem::Block(b2) => self.gen_block(g, &level, b2, None),
                ScheduleItem::Loop(inner) => self.gen_loop(g, &level, inner),
            }
        }

        // Continue condition: OR of back-edge arc contributions.
        let mut cont: Option<InstId> = None;
        for &latch in &l.latches {
            if let Some(c) = self.pred_condition(g, latch, h) {
                cont = Some(match cont {
                    None => c,
                    Some(a) => self.f.append(g.cur, InstKind::Bin(BinOp::Or, a, c)),
                });
            }
        }
        let cont = cont.unwrap_or(g.zero);
        let next_off = self.f.append(
            g.cur,
            InstKind::Const(Const::Int(8 * i64::from(layout.next_slot))),
        );
        let next_link = self
            .f
            .append(g.cur, InstKind::Bin(BinOp::Add, rec, next_off));

        // Latch values for the header φs.
        for &(phi, sp) in &val_phis {
            let InstKind::Phi(ins) = self.f.kind(phi).clone() else {
                unreachable!()
            };
            let mut acc: Option<InstId> = None;
            for (p, v) in ins.iter().rev() {
                if !l.blocks.contains(*p) {
                    continue;
                }
                let val = g.val(*v);
                acc = Some(match acc {
                    None => val,
                    Some(rest) => {
                        let cond = self.pred_condition(g, *p, h).unwrap_or(g.zero);
                        self.f.append(
                            g.cur,
                            InstKind::Select {
                                cond,
                                if_true: val,
                                if_false: rest,
                            },
                        )
                    }
                });
            }
            let latch_val = acc.unwrap_or(g.zero);
            if let InstKind::Phi(ins) = &mut self.f.insts[sp].kind {
                ins.push((b_back, latch_val));
            }
        }
        if let InstKind::Phi(ins) = &mut self.f.insts[link_phi].kind {
            ins.push((b_back, next_link));
        }

        let b_tail = g.cur;
        self.f.blocks[b_tail].term = Terminator::Branch {
            cond: cont,
            then_b: b_back,
            else_b: b_exitf,
        };

        // Join block: export loop-defined setup values and exit-arc bools
        // through φs (value on the never-entered path is a dead zero).
        g.cur = b_join;
        let loop_block_list: Vec<BlockId> = self
            .rpo
            .clone()
            .into_iter()
            .filter(|b2| ext.contains(*b2))
            .collect();
        // Export every constant defined in the loop (unused exports die in
        // DCE), including the header φs.
        let mut exports: Vec<InstId> = Vec::new();
        for b2 in &loop_block_list {
            for i in self.f.blocks[*b2].insts.clone() {
                if self.is_const(i) && g.setup_val.contains_key(&i) {
                    exports.push(i);
                }
            }
        }
        for v in exports {
            let inner = g.setup_val[&v];
            let ty = self.f.ty(inner);
            let dead = if ty == Ty::Float {
                let z = self.f.create_inst(InstKind::Const(Const::Float(0.0)));
                self.f.blocks[b_pre].insts.push(z);
                z
            } else {
                g.zero
            };
            let ex = self.f.append(
                g.cur,
                InstKind::Phi(vec![(b_joinf, dead), (b_exitf, inner)]),
            );
            self.f.insts[ex].ty = ty;
            g.setup_val.insert(v, ex);
        }
        // Exit arc bools: every arc leaving the loop into the region.
        for b2 in &loop_block_list {
            let succs = self.f.blocks[*b2].term.successors();
            for (idx, &s) in succs.iter().enumerate() {
                if ext.contains(s) || !self.r.blocks.contains(s) {
                    continue;
                }
                let inner = self.contribution(g, *b2, idx).unwrap_or(g.zero);
                let ex = self.f.append(
                    g.cur,
                    InstKind::Phi(vec![(b_joinf, g.zero), (b_exitf, inner)]),
                );
                g.arcbool.insert((*b2, idx), ex);
            }
        }
        g.cur_rec.remove(&li);
    }

    // ================= rewiring =================

    fn rewire(
        &mut self,
        template_entry: BlockId,
        template_blocks: &[BlockId],
        val_map: &HashMap<InstId, InstId>,
        stub_for: &HashMap<(BlockId, BlockId), BlockId>,
        setup: &SetupOut,
    ) -> BlockId {
        let _ = template_entry;
        let _ = template_blocks;
        // New enter block.
        let enter_block = self.f.add_block();
        self.f.blocks[enter_block].term = Terminator::EnterRegion {
            region: self.region,
            setup: setup.entry,
        };

        // Values defined inside the original region.
        let mut defined_in_region: IdSet<InstId> = IdSet::with_domain(self.f.insts.len());
        for b in self.rpo.clone() {
            for &i in &self.f.blocks[b].insts {
                defined_in_region.insert(i);
            }
        }

        // Retarget predecessors of the region entry and rewrite all
        // out-of-region uses of region-defined values.
        let region_blocks = self.r.blocks.clone();
        let setup_block_set: IdSet<BlockId> = setup.blocks.iter().copied().collect();
        let entry = self.r.entry;
        for b in self.f.blocks.ids().collect::<Vec<_>>() {
            if region_blocks.contains(b) || setup_block_set.contains(b) || b == enter_block {
                continue;
            }
            // Skip template blocks: their references are already correct.
            // (They were created after the original block range; we detect
            // them via val_map usage instead: any block created during
            // build_template references only new ids or out-of-region ids.)
            let mut term = self.f.blocks[b].term.clone();
            term.map_successors(|s| if s == entry { enter_block } else { s });
            self.f.blocks[b].term = term;

            let insts = self.f.blocks[b].insts.clone();
            for i in insts {
                let mut kind = self.f.insts[i].kind.clone();
                if let InstKind::Phi(ins) = &mut kind {
                    for (p, v) in ins.iter_mut() {
                        if region_blocks.contains(*p) {
                            if let Some(&stub) = stub_for.get(&(*p, b)) {
                                *p = stub;
                            }
                        }
                        *v = remap_out(
                            *v,
                            &defined_in_region,
                            self.analysis,
                            val_map,
                            &setup.setup_val,
                        );
                    }
                } else {
                    kind.map_operands(|v| {
                        remap_out(
                            v,
                            &defined_in_region,
                            self.analysis,
                            val_map,
                            &setup.setup_val,
                        )
                    });
                }
                self.f.insts[i].kind = kind;
            }
            let mut term = self.f.blocks[b].term.clone();
            term.map_operands(|v| {
                remap_out(
                    v,
                    &defined_in_region,
                    self.analysis,
                    val_map,
                    &setup.setup_val,
                )
            });
            self.f.blocks[b].term = term;
        }

        // Detach the original region body.
        for b in self.rpo.clone() {
            self.f.blocks[b].insts.clear();
            self.f.blocks[b].term = Terminator::Unreachable;
            self.f.blocks[b].unrolled_header = false;
        }

        let _ = setup.last_block;
        let _ = setup.table_val;
        enter_block
    }
}

fn remap_out(
    v: InstId,
    defined_in_region: &IdSet<InstId>,
    analysis: &RegionAnalysis,
    val_map: &HashMap<InstId, InstId>,
    setup_val: &HashMap<InstId, InstId>,
) -> InstId {
    if !defined_in_region.contains(v) {
        return v;
    }
    if analysis.is_const(v) {
        setup_val.get(&v).copied().unwrap_or(v)
    } else {
        val_map.get(&v).copied().unwrap_or(v)
    }
}

/// Follow a Jump chain from `first` until the block jumping to `final_tgt`.
fn last_in_chain(f: &Function, first: BlockId, final_tgt: BlockId) -> BlockId {
    let mut cur = first;
    loop {
        match f.blocks[cur].term {
            Terminator::Jump(t) if t == final_tgt => return cur,
            Terminator::Jump(t) => cur = t,
            _ => return cur,
        }
    }
}

enum ScheduleItem {
    Block(BlockId),
    Loop(usize),
}

/// Mutable state of set-up generation.
struct SetupGen {
    blocks: Vec<BlockId>,
    cur: BlockId,
    setup_val: HashMap<InstId, InstId>,
    rb: HashMap<BlockId, InstId>,
    arcbool: HashMap<(BlockId, usize), InstId>,
    cur_rec: HashMap<usize, InstId>,
    table_val: InstId,
    one: InstId,
    zero: InstId,
}

impl SetupGen {
    fn val(&self, v: InstId) -> InstId {
        *self
            .setup_val
            .get(&v)
            .unwrap_or_else(|| panic!("setup value for {v} not yet generated"))
    }
}

#[cfg(test)]
mod tests;
