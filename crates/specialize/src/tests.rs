//! Specializer tests: structural checks plus differential execution —
//! the reference interpreter executes specialized IR directly (set-up,
//! constants table, holes, constant branches, unrolled-loop markers), so
//! every test runs the split region end to end and compares against the
//! unspecialized program.

use crate::{specialize_region, RegionSpec};
use dyncomp_analysis::{analyze_region, AnalysisConfig};
use dyncomp_frontend::{compile, LowerOptions};
use dyncomp_ir::eval::{EvalOutcome, Evaluator};
use dyncomp_ir::{FuncId, InstKind, Module, RegionId, Terminator};

/// Full static pipeline through specialization for every function with a
/// region.
fn pipeline(src: &str) -> (Module, Vec<(FuncId, RegionSpec)>) {
    let mut m = compile(src, &LowerOptions::default())
        .expect("compiles")
        .module;
    let mut specs = Vec::new();
    for fid in m.funcs.ids().collect::<Vec<_>>() {
        let f = &mut m.funcs[fid];
        dyncomp_ir::ssa::construct_ssa(f);
        dyncomp_opt::optimize(
            f,
            &dyncomp_opt::OptOptions {
                cfg_simplify: true,
                hole_scope: None,
            },
        );
        dyncomp_ir::cfg::split_critical_edges(f);
        f.canonicalize_region_roots();
        dyncomp_ir::verify::verify(f).expect("verifies pre-split");
        for rid in f.regions.ids().collect::<Vec<_>>() {
            let analysis = analyze_region(f, rid, &AnalysisConfig::default());
            let spec = specialize_region(f, rid, &analysis).expect("specializes");
            dyncomp_ir::verify::verify(f).unwrap_or_else(|e| panic!("verify post-split: {e}\n{f}"));
            specs.push((fid, spec));
        }
    }
    (m, specs)
}

fn run(m: &Module, func: &str, args: &[u64]) -> u64 {
    let fid = m.func_by_name(func).expect("function exists");
    let mut ev = Evaluator::new(m);
    match ev.call(fid, args).expect("runs") {
        EvalOutcome::Return(v) => v.unwrap_or(0),
    }
}

/// Compare specialized and plain executions over a set of argument tuples.
fn differential(src: &str, func: &str, argsets: &[Vec<u64>]) {
    let plain = compile(src, &LowerOptions::default()).unwrap().module;
    let (spec, _) = pipeline(src);
    for args in argsets {
        let want = run(&plain, func, args);
        let got = run(&spec, func, args);
        assert_eq!(got, want, "args {args:?}");
    }
}

#[test]
fn straightline_constants() {
    differential(
        "int f(int k, int x) { dynamicRegion (k) { int t = k * 3 + 1; return t * x + k; } }",
        "f",
        &[vec![2, 10], vec![5, 0], vec![0, 7]],
    );
}

#[test]
fn structure_of_straightline_split() {
    let (m, specs) = pipeline(
        "int f(int k, int x) { dynamicRegion (k) { int t = k * 3 + 1; return t * x + k; } }",
    );
    assert_eq!(specs.len(), 1);
    let (fid, spec) = &specs[0];
    let f = &m.funcs[*fid];
    // Enter block traps into setup.
    assert!(matches!(
        f.blocks[spec.enter_block].term,
        Terminator::EnterRegion { .. }
    ));
    // Setup ends with EndSetup into the template entry.
    let last_setup = spec
        .setup_blocks
        .iter()
        .find(|&&b| matches!(f.blocks[b].term, Terminator::EndSetup { .. }))
        .expect("EndSetup present");
    let Terminator::EndSetup { template, .. } = f.blocks[*last_setup].term else {
        unreachable!()
    };
    assert_eq!(template, spec.template_entry);
    // Template contains holes, no constant computation of t.
    let holes: usize = spec
        .template_blocks
        .iter()
        .flat_map(|&b| f.blocks[b].insts.clone())
        .filter(|&i| matches!(f.kind(i), InstKind::Hole { .. }))
        .count();
    assert!(holes >= 2, "t and k are holes: {f}");
    assert!(spec.stats.const_insts_eliminated >= 2);
    assert!(spec.table_static_len >= 2);
    // Setup stores into the table.
    let setup_stores: usize = spec
        .setup_blocks
        .iter()
        .flat_map(|&b| f.blocks[b].insts.clone())
        .filter(|&i| matches!(f.kind(i), InstKind::Store { .. }))
        .count();
    assert!(setup_stores >= 2);
}

#[test]
fn constant_branch_elimination() {
    // The region's branch on k is constant: the stitcher (here: the
    // evaluator's ConstBranch) follows exactly one side.
    let src = r#"
        int f(int k, int x) {
            dynamicRegion (k) {
                if (k > 10) return x * 2;
                return x + 1;
            }
        }
    "#;
    differential(
        src,
        "f",
        &[vec![20, 5], vec![3, 5], vec![10, 9], vec![11, 9]],
    );
    let (m, specs) = pipeline(src);
    let (fid, spec) = &specs[0];
    let f = &m.funcs[*fid];
    let const_branches = spec
        .template_blocks
        .iter()
        .filter(|&&b| matches!(f.blocks[b].term, Terminator::ConstBranch { .. }))
        .count();
    assert_eq!(const_branches, 1);
    assert_eq!(spec.stats.const_branches, 1);
}

#[test]
fn dynamic_branch_stays_in_template() {
    let src = r#"
        int f(int k, int x) {
            dynamicRegion (k) {
                if (x > k) return 1;
                return 0;
            }
        }
    "#;
    differential(src, "f", &[vec![5, 10], vec![5, 2], vec![5, 5]]);
    let (m, specs) = pipeline(src);
    let (fid, spec) = &specs[0];
    let f = &m.funcs[*fid];
    let dyn_branches = spec
        .template_blocks
        .iter()
        .filter(|&&b| matches!(f.blocks[b].term, Terminator::Branch { .. }))
        .count();
    assert_eq!(dyn_branches, 1, "x > k branch is residual: {f}");
}

#[test]
fn unrolled_loop_basic() {
    // Complete unrolling of a counted loop over the run-time constant k.
    let src = r#"
        int f(int k, int x) {
            dynamicRegion (k) {
                int acc = 0;
                int i;
                unrolled for (i = 0; i < k; i++) {
                    acc += x + i;
                }
                return acc;
            }
        }
    "#;
    differential(
        src,
        "f",
        &[vec![0, 100], vec![1, 100], vec![4, 10], vec![9, 3]],
    );
}

#[test]
fn unrolled_loop_structure() {
    let src = r#"
        int f(int k, int x) {
            dynamicRegion (k) {
                int acc = 0;
                int i;
                unrolled for (i = 0; i < k; i++) { acc += x + i; }
                return acc;
            }
        }
    "#;
    let (m, specs) = pipeline(src);
    let (fid, spec) = &specs[0];
    let f = &m.funcs[*fid];
    assert_eq!(spec.stats.unrolled_loops, 1);
    use dyncomp_ir::TemplateMarker as TM;
    let mut enter = 0;
    let mut restart = 0;
    let mut exit = 0;
    for &b in &spec.template_blocks {
        match &f.blocks[b].marker {
            Some(TM::EnterLoop { .. }) => enter += 1,
            Some(TM::RestartLoop { .. }) => restart += 1,
            Some(TM::ExitLoop) => exit += 1,
            None => {}
        }
    }
    assert_eq!(enter, 1, "one loop entry arc: {f}");
    assert_eq!(restart, 1, "one back edge");
    // The region's only exits are returns, which leave with the loop
    // context still pushed — no ExitLoop marker is required.
    let _ = exit;
    // The loop-governing branch is a per-iteration ConstBranch.
    let cb = spec
        .template_blocks
        .iter()
        .find_map(|&b| match &f.blocks[b].term {
            Terminator::ConstBranch { slot, .. } => Some(slot.clone()),
            _ => None,
        })
        .expect("loop branch is constant");
    assert!(
        !cb.is_static(),
        "per-iteration predicate slot (paper's 4:0 style), got {cb}"
    );
}

#[test]
fn pointer_chase_unrolled() {
    // The §3.1 linked-list example: iterate a constant list, summing
    // dynamic payloads via constant pointers.
    let src = r#"
        struct Node { int weight; struct Node *next; };
        int f(struct Node *lst, int x) {
            dynamicRegion (lst) {
                int acc = 0;
                struct Node *p;
                unrolled for (p = lst; p != 0; p = p->next) {
                    acc += p dynamic-> weight * x;
                }
                return acc;
            }
        }
    "#;
    let plain = compile(src, &LowerOptions::default()).unwrap().module;
    let (spec, _) = pipeline(src);
    for m in [&plain, &spec] {
        let fid = m.func_by_name("f").unwrap();
        let mut ev = Evaluator::new(m);
        // List: 3 -> 4 -> 5.
        let n3 = ev.mem.alloc(16).unwrap();
        let n4 = ev.mem.alloc(16).unwrap();
        let n5 = ev.mem.alloc(16).unwrap();
        ev.mem.write_u64(n3, 3).unwrap();
        ev.mem.write_u64(n3 + 8, n4).unwrap();
        ev.mem.write_u64(n4, 4).unwrap();
        ev.mem.write_u64(n4 + 8, n5).unwrap();
        ev.mem.write_u64(n5, 5).unwrap();
        ev.mem.write_u64(n5 + 8, 0).unwrap();
        let out = ev.call(fid, &[n3, 10]).unwrap();
        assert_eq!(
            out,
            EvalOutcome::Return(Some(120)),
            "module variant differs"
        );
    }
}

#[test]
fn constant_data_structure_loads() {
    // Loads through the constant pointer move to setup (load elimination);
    // dynamic* loads stay.
    let src = r#"
        struct Cfg { int scale; int bias; int *data; };
        int f(struct Cfg *cfg, int i) {
            dynamicRegion (cfg) {
                return cfg->data dynamic[ i ] * cfg->scale + cfg->bias;
            }
        }
    "#;
    let plain = compile(src, &LowerOptions::default()).unwrap().module;
    let (spec_m, specs) = pipeline(src);
    for m in [&plain, &spec_m] {
        let fid = m.func_by_name("f").unwrap();
        let mut ev = Evaluator::new(m);
        let data = ev.mem.alloc(32).unwrap();
        for (j, v) in [10i64, 20, 30, 40].iter().enumerate() {
            ev.mem.write_u64(data + 8 * j as u64, *v as u64).unwrap();
        }
        let cfg = ev.mem.alloc(24).unwrap();
        ev.mem.write_u64(cfg, 7).unwrap();
        ev.mem.write_u64(cfg + 8, 100).unwrap();
        ev.mem.write_u64(cfg + 16, data).unwrap();
        assert_eq!(
            ev.call(fid, &[cfg, 2]).unwrap(),
            EvalOutcome::Return(Some(310))
        );
    }
    let (_, spec) = &specs[0];
    assert!(
        spec.stats.loads_eliminated >= 2,
        "scale/bias/data loads: {:?}",
        spec.stats
    );
}

#[test]
fn constants_under_dynamic_control_are_speculated() {
    // t = k*2 is defined under a dynamic branch; setup computes it
    // speculatively (idempotent), and both template paths work.
    let src = r#"
        int f(int k, int x) {
            dynamicRegion (k) {
                int r = 0;
                if (x > 0) {
                    int t = k * 2;
                    r = t + x;
                } else {
                    r = x - k;
                }
                return r;
            }
        }
    "#;
    differential(
        src,
        "f",
        &[vec![3, 5], vec![3, 0], vec![3, 0u64.wrapping_sub(4)]],
    );
}

#[test]
fn guarded_loads_do_not_fault_when_const_unreachable() {
    // The load through p only happens when k != 0 — when k == 0, p is the
    // annotated (valid) pointer anyway; when the *constant branch* makes
    // the path unreachable, setup must not fault even though it runs the
    // load's guard with a garbage φ input.
    let src = r#"
        struct Box { int v; };
        int f(struct Box *p, int k, int x) {
            dynamicRegion (p, k) {
                int r;
                if (k > 0) {
                    r = p->v;
                } else {
                    r = k - 1;
                }
                return r + x;
            }
        }
    "#;
    let plain = compile(src, &LowerOptions::default()).unwrap().module;
    let (spec_m, _) = pipeline(src);
    for (k, x) in [(5u64, 3u64), (0, 3)] {
        for m in [&plain, &spec_m] {
            let fid = m.func_by_name("f").unwrap();
            let mut ev = Evaluator::new(m);
            let b = ev.mem.alloc(8).unwrap();
            ev.mem.write_u64(b, 42).unwrap();
            let want = if k > 0 {
                42 + x
            } else {
                (k.wrapping_sub(1)).wrapping_add(x)
            };
            assert_eq!(
                ev.call(fid, &[b, k, x]).unwrap(),
                EvalOutcome::Return(Some(want)),
                "k={k}"
            );
        }
    }
}

#[test]
fn switch_on_constant() {
    let src = r#"
        int f(int k, int x) {
            dynamicRegion (k) {
                switch (k) {
                    case 1: return x + 10;
                    case 2: return x + 20;
                    case 3: x = x * 2;      /* fall through */
                    case 4: return x + 40;
                    default: return x;
                }
            }
        }
    "#;
    differential(
        src,
        "f",
        &[vec![1, 5], vec![2, 5], vec![3, 5], vec![4, 5], vec![9, 5]],
    );
    let (m, specs) = pipeline(src);
    let (fid, spec) = &specs[0];
    let f = &m.funcs[*fid];
    let cs = spec
        .template_blocks
        .iter()
        .filter(|&&b| matches!(f.blocks[b].term, Terminator::ConstSwitch { .. }))
        .count();
    assert_eq!(cs, 1);
}

#[test]
fn switch_on_dynamic_value_inside_region() {
    let src = r#"
        int f(int k, int x) {
            dynamicRegion (k) {
                switch (x) {
                    case 1: return k;
                    case 2: return k * 2;
                    default: return k + x;
                }
            }
        }
    "#;
    differential(src, "f", &[vec![7, 1], vec![7, 2], vec![7, 9]]);
}

#[test]
fn nested_unrolled_loops() {
    // Sparse-matrix shape: outer unrolled loop over rows, inner unrolled
    // loop over a per-row count, both governed by run-time constants.
    let src = r#"
        struct Mat { int rows; int *rowlen; };
        int f(struct Mat *m, int x) {
            dynamicRegion (m) {
                int acc = 0;
                int i;
                int j;
                unrolled for (i = 0; i < m->rows; i++) {
                    unrolled for (j = 0; j < m->rowlen[i]; j++) {
                        acc += x + i * 100 + j;
                    }
                }
                return acc;
            }
        }
    "#;
    let plain = compile(src, &LowerOptions::default()).unwrap().module;
    let (spec_m, specs) = pipeline(src);
    assert_eq!(specs[0].1.stats.unrolled_loops, 2);
    for m in [&plain, &spec_m] {
        let fid = m.func_by_name("f").unwrap();
        let mut ev = Evaluator::new(m);
        let rowlen = ev.mem.alloc(24).unwrap();
        ev.mem.write_u64(rowlen, 2).unwrap();
        ev.mem.write_u64(rowlen + 8, 0).unwrap();
        ev.mem.write_u64(rowlen + 16, 3).unwrap();
        let mat = ev.mem.alloc(16).unwrap();
        ev.mem.write_u64(mat, 3).unwrap();
        ev.mem.write_u64(mat + 8, rowlen).unwrap();
        // acc = (x+0)+(x+1) + (x+200)+(x+201)+(x+202), x=7
        #[allow(clippy::identity_op)]
        let want = (7 + 0) + (7 + 1) + (7 + 200) + (7 + 201) + (7 + 202);
        assert_eq!(
            ev.call(fid, &[mat, 7]).unwrap(),
            EvalOutcome::Return(Some(want)),
            "variant differs"
        );
    }
}

#[test]
fn dynamic_exit_from_unrolled_loop() {
    // The cache-lookup shape: a dynamic branch leaves the unrolled loop
    // early; the per-iteration value escapes through a variable assigned on
    // the exiting path (a φ whose copy runs in the ExitLoop marker).
    let src = r#"
        int find(int k, int needle) {
            dynamicRegion (k) {
                int found = 0 - 1;
                int i;
                unrolled for (i = 0; i < k; i++) {
                    if (i * i == needle) { found = i; break; }
                }
                return found;
            }
        }
    "#;
    differential(
        src,
        "find",
        &[vec![5, 9], vec![5, 16], vec![5, 17], vec![1, 0], vec![5, 0]],
    );
}

#[test]
fn per_iteration_return_from_unrolled_loop() {
    // `return i` from inside the loop: the return block is reachable only
    // through the loop, so extended membership stitches it per iteration
    // and the hole reads that iteration's record.
    let src = r#"
        int find(int k, int needle) {
            dynamicRegion (k) {
                int i;
                unrolled for (i = 0; i < k; i++) {
                    if (i * i == needle) return i;
                }
                return 0 - 1;
            }
        }
    "#;
    differential(
        src,
        "find",
        &[vec![5, 9], vec![5, 16], vec![5, 17], vec![1, 0], vec![5, 0]],
    );
}

#[test]
fn goto_and_fallthrough_inside_region() {
    // Unstructured flow with a constant switch: the reachability analysis
    // (not syntax) finds the constant merges.
    let src = r#"
        int f(int k, int x) {
            int r = 0;
            dynamicRegion (k) {
                switch (k) {
                    case 1: r = 10;          /* fall through */
                    case 2: r = r + 20; break;
                    case 3: r = 30; goto out;
                    default: r = 99;
                }
                r = r + 1;
                out: return r + x;
            }
        }
    "#;
    differential(src, "f", &[vec![1, 0], vec![2, 0], vec![3, 0], vec![7, 0]]);
}

#[test]
fn region_value_used_after_region() {
    let src = r#"
        int f(int k, int x) {
            int r = 0;
            dynamicRegion (k) {
                r = k * 2 + x;
            }
            return r + 1;
        }
    "#;
    differential(src, "f", &[vec![4, 10], vec![0, 0]]);
}

#[test]
fn keyed_region_metadata_preserved() {
    let src = r#"
        int f(int k, int x) {
            dynamicRegion key(k) (k) { return k * x; }
        }
    "#;
    let (m, specs) = pipeline(src);
    let (fid, _) = &specs[0];
    let f = &m.funcs[*fid];
    let r = &f.regions[RegionId(0)];
    assert_eq!(r.key_roots.len(), 1);
    differential(src, "f", &[vec![3, 4]]);
}

#[test]
fn float_constants() {
    let src = r#"
        double f(double s, double x) {
            dynamicRegion (s) {
                double t = s * 2.0 + 1.5;
                return t * x;
            }
        }
    "#;
    let plain = compile(src, &LowerOptions::default()).unwrap().module;
    let (spec_m, _) = pipeline(src);
    for m in [&plain, &spec_m] {
        let out = run(m, "f", &[2.0f64.to_bits(), 3.0f64.to_bits()]);
        assert_eq!(f64::from_bits(out), 16.5);
    }
}

#[test]
fn multiple_regions_in_one_function() {
    let src = r#"
        int f(int k, int j, int x) {
            int a = 0;
            int b = 0;
            dynamicRegion (k) { a = k * x; }
            dynamicRegion (j) { b = j + x; }
            return a + b;
        }
    "#;
    let (m, specs) = pipeline(src);
    assert_eq!(specs.len(), 2);
    let plain = compile(src, &LowerOptions::default()).unwrap().module;
    for args in [[3u64, 4, 10], [0, 0, 0]] {
        assert_eq!(run(&m, "f", &args), run(&plain, "f", &args));
    }
}

#[test]
fn empty_loop_zero_iterations() {
    // k = 0: the unrolled loop body never runs; setup still allocates one
    // record (holding the false predicate), the stitcher exits immediately.
    let src = r#"
        int f(int k) {
            dynamicRegion (k) {
                int acc = 100;
                int i;
                unrolled for (i = 0; i < k; i++) { acc += 1; }
                return acc;
            }
        }
    "#;
    differential(src, "f", &[vec![0], vec![1], vec![3]]);
}

#[test]
fn cache_lookup_specializes_and_runs() {
    // The paper's full running example through the splitter.
    let src = r#"
        struct setStructure { unsigned tag; };
        struct cacheLine { struct setStructure **sets; };
        struct Cache {
            unsigned blockSize;
            unsigned numLines;
            struct cacheLine **lines;
            int associativity;
        };
        int cacheLookup(unsigned addr, struct Cache *cache) {
            dynamicRegion (cache) {
                unsigned blockSize = cache->blockSize;
                unsigned numLines = cache->numLines;
                unsigned tag = addr / (blockSize * numLines);
                unsigned line = (addr / blockSize) % numLines;
                struct setStructure **setArray = cache->lines[line]->sets;
                int assoc = cache->associativity;
                int set;
                unrolled for (set = 0; set < assoc; set++) {
                    if (setArray[set] dynamic-> tag == tag)
                        return 1;
                }
                return 0;
            }
        }
    "#;
    let plain = compile(src, &LowerOptions::default()).unwrap().module;
    let (spec_m, specs) = pipeline(src);
    let (_, spec) = &specs[0];
    assert_eq!(spec.stats.unrolled_loops, 1);
    assert!(spec.stats.const_branches >= 1, "the set < assoc branch");
    assert!(
        spec.stats.loads_eliminated >= 4,
        "blockSize/numLines/lines/sets/assoc loads"
    );

    // But note: setArray depends on the dynamic `line`, so the setArray
    // load itself is NOT eliminated — check it stayed dynamic:
    // (the paper's Figure 1 keeps hole3[line]->sets in the template).
    for m in [&plain, &spec_m] {
        let fid = m.func_by_name("cacheLookup").unwrap();
        let mut ev = Evaluator::new(m);
        let (num_lines, block_size, assoc) = (4u64, 16u64, 2u64);
        let mut line_recs = Vec::new();
        let mut set_addrs = Vec::new();
        for _ in 0..num_lines {
            let mut sets = Vec::new();
            for _ in 0..assoc {
                let s = ev.mem.alloc(8).unwrap();
                ev.mem.write_u64(s, u64::MAX).unwrap();
                sets.push(s);
            }
            let sets_arr = ev.mem.alloc(8 * assoc).unwrap();
            for (i, s) in sets.iter().enumerate() {
                ev.mem.write_u64(sets_arr + 8 * i as u64, *s).unwrap();
            }
            let rec = ev.mem.alloc(8).unwrap();
            ev.mem.write_u64(rec, sets_arr).unwrap();
            line_recs.push(rec);
            set_addrs.push(sets);
        }
        let lines_arr = ev.mem.alloc(8 * num_lines).unwrap();
        for (i, r) in line_recs.iter().enumerate() {
            ev.mem.write_u64(lines_arr + 8 * i as u64, *r).unwrap();
        }
        let cache = ev.mem.alloc(32).unwrap();
        ev.mem.write_u64(cache, block_size).unwrap();
        ev.mem.write_u64(cache + 8, num_lines).unwrap();
        ev.mem.write_u64(cache + 16, lines_arr).unwrap();
        ev.mem.write_u64(cache + 24, assoc).unwrap();

        let addr = 0x1230u64;
        assert_eq!(
            ev.call(fid, &[addr, cache]).unwrap(),
            EvalOutcome::Return(Some(0)),
            "miss"
        );
        let tag = addr / (block_size * num_lines);
        let line = (addr / block_size) % num_lines;
        ev.mem.write_u64(set_addrs[line as usize][1], tag).unwrap();
        assert_eq!(
            ev.call(fid, &[addr, cache]).unwrap(),
            EvalOutcome::Return(Some(1)),
            "hit"
        );
    }
}

#[test]
fn rejects_illegal_unroll() {
    // Loop governed by a dynamic bound.
    let src = r#"
        int f(int k, int n) {
            dynamicRegion (k) {
                int i; int acc = 0;
                unrolled for (i = 0; i < n; i++) { acc += k; }
                return acc;
            }
        }
    "#;
    let mut m = compile(src, &LowerOptions::default()).unwrap().module;
    let f = &mut m.funcs[FuncId(0)];
    dyncomp_ir::ssa::construct_ssa(f);
    dyncomp_ir::cfg::split_critical_edges(f);
    f.canonicalize_region_roots();
    let a = analyze_region(f, RegionId(0), &AnalysisConfig::default());
    let err = specialize_region(f, RegionId(0), &a).unwrap_err();
    assert!(matches!(err, crate::SpecError::Unroll(_)), "{err}");
}

mod switch_legalization {
    use super::*;
    use crate::legalize_dynamic_switches;
    use dyncomp_ir::Function;

    /// The full-pipeline helper, plus the legalization step the driver
    /// performs between analysis and splitting.
    fn pipeline_legalized(src: &str) -> Module {
        let mut m = compile(src, &LowerOptions::default())
            .expect("compiles")
            .module;
        for fid in m.funcs.ids().collect::<Vec<_>>() {
            let f = &mut m.funcs[fid];
            dyncomp_ir::ssa::construct_ssa(f);
            dyncomp_opt::optimize(
                f,
                &dyncomp_opt::OptOptions {
                    cfg_simplify: true,
                    hole_scope: None,
                },
            );
            dyncomp_ir::cfg::split_critical_edges(f);
            f.canonicalize_region_roots();
            for rid in f.regions.ids().collect::<Vec<_>>() {
                let mut analysis = analyze_region(f, rid, &AnalysisConfig::default());
                if legalize_dynamic_switches(f, rid, &analysis) {
                    dyncomp_ir::cfg::split_critical_edges(f);
                    dyncomp_ir::verify::verify(f)
                        .unwrap_or_else(|e| panic!("verify post-legalize: {e}\n{f}"));
                    analysis = analyze_region(f, rid, &AnalysisConfig::default());
                }
                specialize_region(f, rid, &analysis).expect("specializes");
                dyncomp_ir::verify::verify(f)
                    .unwrap_or_else(|e| panic!("verify post-split: {e}\n{f}"));
            }
        }
        m
    }

    fn no_dynamic_switch_left(f: &Function) {
        for (b, blk) in f.iter_blocks() {
            assert!(
                !matches!(blk.term, Terminator::Switch { .. }),
                "dynamic switch survived at {b}"
            );
        }
    }

    const DYN_SWITCH: &str = r#"
        int f(int k, int x) {
            dynamicRegion (k) {
                int r = k * 10;
                switch (x) {                /* selector is dynamic */
                    case 0: r += 1; break;
                    case 1: r += 2; break;
                    case 7: r *= 3; break;
                    default: r = 0; break;
                }
                return r + k;
            }
        }
    "#;

    #[test]
    fn dynamic_switch_lowers_and_preserves_semantics() {
        let plain = compile(DYN_SWITCH, &LowerOptions::default())
            .unwrap()
            .module;
        let m = pipeline_legalized(DYN_SWITCH);
        for f in m.funcs.iter() {
            no_dynamic_switch_left(f);
        }
        for x in [0u64, 1, 2, 7, 100] {
            for k in [0u64, 3] {
                assert_eq!(
                    run(&m, "f", &[k, x]),
                    run(&plain, "f", &[k, x]),
                    "k={k} x={x}"
                );
            }
        }
    }

    #[test]
    fn constant_switch_keeps_its_directive() {
        // A switch on the run-time constant must NOT be lowered — it
        // becomes a CONST_SWITCH resolved at stitch time.
        let src = r#"
            int f(int k, int x) {
                dynamicRegion (k) {
                    int r;
                    switch (k) {
                        case 0: r = x; break;
                        case 1: r = x * 2; break;
                        default: r = x + 100; break;
                    }
                    return r;
                }
            }
        "#;
        let mut m = compile(src, &LowerOptions::default()).unwrap().module;
        let fid = m.func_by_name("f").unwrap();
        let f = &mut m.funcs[fid];
        dyncomp_ir::ssa::construct_ssa(f);
        dyncomp_opt::optimize(
            f,
            &dyncomp_opt::OptOptions {
                cfg_simplify: true,
                hole_scope: None,
            },
        );
        dyncomp_ir::cfg::split_critical_edges(f);
        f.canonicalize_region_roots();
        let rid = RegionId(0);
        let analysis = analyze_region(f, rid, &AnalysisConfig::default());
        assert!(
            !legalize_dynamic_switches(f, rid, &analysis),
            "constant switch untouched"
        );
        let spec = specialize_region(f, rid, &analysis).expect("specializes");
        let has_const_switch = spec
            .template_blocks
            .iter()
            .any(|&b| matches!(f.blocks[b].term, Terminator::ConstSwitch { .. }));
        assert!(
            has_const_switch,
            "template keeps the CONST_SWITCH directive"
        );
    }

    #[test]
    fn duplicate_case_targets_and_phis() {
        // Two cases and the default share one merge target carrying a φ:
        // re-keying must give every new chain predecessor its own entry.
        let src = r#"
            int f(int k, int x) {
                dynamicRegion (k) {
                    int r = 5;
                    switch (x) {
                        case 2: r = k; break;
                        case 4: r = k; break;
                        case 9: r = 77; break;
                        default: break;
                    }
                    return r * 2 + x;
                }
            }
        "#;
        let plain = compile(src, &LowerOptions::default()).unwrap().module;
        let m = pipeline_legalized(src);
        for x in [0u64, 2, 4, 9, 10] {
            assert_eq!(run(&m, "f", &[6, x]), run(&plain, "f", &[6, x]), "x={x}");
        }
    }

    #[test]
    fn empty_and_default_only_switches() {
        let src = r#"
            int f(int k, int x) {
                dynamicRegion (k) {
                    switch (x) {
                        default: return k + x;
                    }
                }
            }
        "#;
        let plain = compile(src, &LowerOptions::default()).unwrap().module;
        let m = pipeline_legalized(src);
        for x in [0u64, 9] {
            assert_eq!(run(&m, "f", &[3, x]), run(&plain, "f", &[3, x]));
        }
    }

    #[test]
    fn dynamic_switch_inside_unrolled_loop() {
        // Per-copy dynamic dispatch: the unrolled loop stitches N copies,
        // each containing the lowered compare chain.
        let src = r#"
            int f(int n, int *sel) {
                dynamicRegion (n) {
                    int acc = 0;
                    int i;
                    unrolled for (i = 0; i < n; i++) {
                        switch (sel[i]) {
                            case 0: acc += 1; break;
                            case 1: acc += 10; break;
                            default: acc += 100; break;
                        }
                    }
                    return acc;
                }
            }
        "#;
        let plain = compile(src, &LowerOptions::default()).unwrap().module;
        let m = pipeline_legalized(src);
        let run_with = |m: &Module, sels: &[i64]| {
            let fid = m.func_by_name("f").unwrap();
            let mut ev = Evaluator::new(m);
            let addr = ev.mem.alloc(8 * sels.len() as u64).unwrap();
            for (i, &s) in sels.iter().enumerate() {
                ev.mem.write_u64(addr + 8 * i as u64, s as u64).unwrap();
            }
            match ev.call(fid, &[sels.len() as u64, addr]).unwrap() {
                EvalOutcome::Return(v) => v.unwrap_or(0),
            }
        };
        for sels in [vec![0i64, 1, 2], vec![1, 1, 1, 1], vec![5, 0]] {
            assert_eq!(run_with(&m, &sels), run_with(&plain, &sels), "{sels:?}");
        }
    }
}
