//! End-to-end tests: full static pipeline + VM + stitcher, with
//! differential checks against the static baseline and speedup sanity.

use crate::{measure_kernel, Compiler, Engine, KernelSetup, Session};

/// Run the same calls on static and dynamic builds; results must agree.
/// Each argument set gets a fresh dynamic engine: an unkeyed region's
/// annotated constants must not change across executions (§2), and the
/// argument sets here vary them.
fn differential(src: &str, func: &str, argsets: &[Vec<u64>]) {
    let stat = Compiler::static_baseline()
        .compile(src)
        .expect("static compiles");
    let dynp = Compiler::new().compile(src).expect("dynamic compiles");
    let mut se = Engine::new(&stat);
    for args in argsets {
        let a = se.call(func, args).expect("static runs");
        let mut de = Engine::new(&dynp);
        let b = de.call(func, args).expect("dynamic runs");
        assert_eq!(a, b, "{func}({args:?})");
        // And again on the stitched fast path.
        let b2 = de.call(func, args).expect("dynamic reruns");
        assert_eq!(b2, b, "{func}({args:?}) cached");
    }
}

#[test]
fn quickstart_region_runs_and_caches() {
    let src = "int poly(int c, int x) { dynamicRegion (c) { return c * x * x + c * x + c; } }";
    let p = Compiler::new().compile(src).unwrap();
    assert_eq!(p.region_count(), 1);
    let mut e = Engine::new(&p);
    assert_eq!(e.call("poly", &[3, 10]).unwrap(), 330 + 3);
    assert_eq!(e.call("poly", &[3, 1]).unwrap(), 9);
    assert_eq!(e.call("poly", &[3, 0]).unwrap(), 3);
    let r = e.region_report(0);
    assert_eq!(r.stitches, 1, "stitched once, reused");
    assert!(r.setup_cycles > 0);
    assert!(r.stitch_cycles > 0);
    assert!(r.instructions_stitched > 0);
}

#[test]
fn patched_entry_skips_trap_for_unkeyed_regions() {
    let src = "int f(int k, int x) { dynamicRegion (k) { return k * 3 + x; } }";
    let p = Compiler::new().compile(src).unwrap();
    let mut e = Engine::new(&p);
    e.call("f", &[5, 1]).unwrap();
    // Second call: the EnterRegion trap was patched to a branch, so the
    // engine never sees another trap — invocations stays at 1.
    e.call("f", &[5, 2]).unwrap();
    e.call("f", &[5, 3]).unwrap();
    assert_eq!(e.region_report(0).invocations, 1);
}

#[test]
fn second_call_is_cheaper_than_first() {
    let src = r#"
        int f(int k, int x) {
            dynamicRegion (k) {
                int i; int acc = 0;
                unrolled for (i = 0; i < k; i++) { acc += x * k + i; }
                return acc;
            }
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut e = Engine::new(&p);
    let c0 = e.cycles();
    e.call("f", &[10, 3]).unwrap();
    let first = e.cycles() - c0;
    let c1 = e.cycles();
    e.call("f", &[10, 4]).unwrap();
    let second = e.cycles() - c1;
    assert!(
        second * 3 < first,
        "first call pays set-up ({first}), later calls do not ({second})"
    );
}

#[test]
fn dynamic_beats_static_on_unrolled_kernel() {
    // A kernel shaped like the paper's winners: constant-bound loop over
    // constant coefficients (loads + loop control melt away).
    let src = r#"
        struct Cfg { int n; int *coef; };
        int eval(struct Cfg *cfg, int x) {
            dynamicRegion (cfg) {
                int acc = 0;
                int i;
                unrolled for (i = 0; i < cfg->n; i++) {
                    acc = acc * x + cfg->coef[i];
                }
                return acc;
            }
        }
    "#;
    let setup = KernelSetup {
        src,
        func: "eval",
        iterations: 300,
        prepare: Box::new(|e: &mut Session| {
            let mut h = e.heap();
            let coef = h.array_i64(&[3, 1, 4, 1, 5, 9, 2, 6]).unwrap();
            let cfg = h.record(&[8, coef]).unwrap();
            vec![cfg]
        }),
        args: Box::new(|i, prepared| vec![prepared[0], i % 17]),
    };
    let m = measure_kernel(&setup).unwrap();
    assert!(
        m.speedup > 1.05,
        "expected speedup, got {:.3} (static {:.0}, dynamic {:.0})",
        m.speedup,
        m.static_cycles,
        m.dynamic_cycles
    );
    assert!(m.breakeven.is_some());
    let opts = m.optimizations();
    assert!(opts.constant_folding);
    assert!(opts.load_elimination, "coef loads moved to set-up");
    assert!(opts.complete_loop_unrolling);
    assert!(opts.static_branch_elimination, "loop branch eliminated");
}

#[test]
fn keyed_region_stitches_per_key() {
    let src = r#"
        int f(int k, int x) {
            dynamicRegion key(k) (k) { return k * x + k; }
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut e = Engine::new(&p);
    assert_eq!(e.call("f", &[2, 10]).unwrap(), 22);
    assert_eq!(e.call("f", &[3, 10]).unwrap(), 33);
    assert_eq!(e.call("f", &[2, 20]).unwrap(), 42);
    assert_eq!(e.call("f", &[3, 20]).unwrap(), 63);
    let r = e.region_report(0);
    assert_eq!(r.stitches, 2, "one stitched instance per key");
    assert_eq!(r.invocations, 4, "keyed regions keep the trap");
}

#[test]
fn differential_cache_lookup() {
    // The paper's running example, end to end on the simulated machine.
    let src = r#"
        struct setStructure { unsigned tag; };
        struct cacheLine { struct setStructure **sets; };
        struct Cache {
            unsigned blockSize;
            unsigned numLines;
            struct cacheLine **lines;
            int associativity;
        };
        int cacheLookup(unsigned addr, struct Cache *cache) {
            dynamicRegion (cache) {
                unsigned blockSize = cache->blockSize;
                unsigned numLines = cache->numLines;
                unsigned tag = addr / (blockSize * numLines);
                unsigned line = (addr / blockSize) % numLines;
                struct setStructure **setArray = cache->lines[line]->sets;
                int assoc = cache->associativity;
                int set;
                unrolled for (set = 0; set < assoc; set++) {
                    if (setArray[set] dynamic-> tag == tag)
                        return 1;
                }
                return 0;
            }
        }
    "#;
    for dynamic in [false, true] {
        let compiler = if dynamic {
            Compiler::new()
        } else {
            Compiler::static_baseline()
        };
        let p = compiler.compile(src).unwrap();
        let mut e = Engine::new(&p);
        // Build a 4-line, 32B-block, 2-way cache.
        let (lines, bs, assoc) = (4u64, 32u64, 2u64);
        let mut set_ptrs = Vec::new();
        let mut line_recs = Vec::new();
        {
            let mut h = e.heap();
            for _ in 0..lines {
                let mut sets = Vec::new();
                for _ in 0..assoc {
                    let s = h.record(&[u64::MAX]).unwrap();
                    sets.push(s);
                }
                let arr = h.array_u64(&sets).unwrap();
                line_recs.push(h.record(&[arr]).unwrap());
                set_ptrs.push(sets);
            }
        }
        let lines_arr = e.heap().array_u64(&line_recs).unwrap();
        let cache = e.heap().record(&[bs, lines, lines_arr, assoc]).unwrap();

        let addr = 0x1260u64;
        assert_eq!(
            e.call("cacheLookup", &[addr, cache]).unwrap(),
            0,
            "miss (dyn={dynamic})"
        );
        let tag = addr / (bs * lines);
        let line = (addr / bs) % lines;
        e.heap().put_u64(set_ptrs[line as usize][1], tag).unwrap();
        assert_eq!(
            e.call("cacheLookup", &[addr, cache]).unwrap(),
            1,
            "hit (dyn={dynamic})"
        );
        // A different line misses.
        assert_eq!(e.call("cacheLookup", &[addr + bs, cache]).unwrap(), 0);
    }
}

#[test]
fn differential_suite() {
    differential(
        "int f(int k, int x) { dynamicRegion (k) { if (k > 4) return x + k; return x - k; } }",
        "f",
        &[vec![9, 100], vec![1, 100]],
    );
    differential(
        r#"
        int f(int k, int x) {
            dynamicRegion (k) {
                switch (k & 3) {
                    case 0: return x;
                    case 1: return x * 2;
                    case 2: x += 5;       /* fall through */
                    default: return x * 3;
                }
            }
        }
        "#,
        "f",
        &[vec![0, 7], vec![1, 7], vec![2, 7], vec![3, 7]],
    );
    differential(
        r#"
        int f(int k, int n) {
            int total = 0;
            dynamicRegion (k) {
                int j;
                for (j = 0; j < n; j++) {   /* dynamic loop stays */
                    total += k * 2;
                }
            }
            return total;
        }
        "#,
        "f",
        &[vec![3, 4], vec![3, 0]],
    );
}

#[test]
fn per_iteration_values_through_vm() {
    // Per-iteration constant escaping through the extended-membership
    // return path — now through real stitched machine code.
    let src = r#"
        int find(int k, int needle) {
            dynamicRegion (k) {
                int i;
                unrolled for (i = 0; i < k; i++) {
                    if (i * i == needle) return i;
                }
                return 0 - 1;
            }
        }
    "#;
    differential(
        src,
        "find",
        &[vec![6, 25], vec![6, 16], vec![6, 17], vec![6, 0]],
    );
}

#[test]
fn nested_unrolled_loops_through_vm() {
    let src = r#"
        struct Mat { int rows; int *rowlen; };
        int f(struct Mat *m, int x) {
            dynamicRegion (m) {
                int acc = 0;
                int i;
                int j;
                unrolled for (i = 0; i < m->rows; i++) {
                    unrolled for (j = 0; j < m->rowlen[i]; j++) {
                        acc += x + i * 100 + j;
                    }
                }
                return acc;
            }
        }
    "#;
    for dynamic in [false, true] {
        let compiler = if dynamic {
            Compiler::new()
        } else {
            Compiler::static_baseline()
        };
        let p = compiler.compile(src).unwrap();
        let mut e = Engine::new(&p);
        let rowlen = e.heap().array_i64(&[2, 0, 3]).unwrap();
        let mat = e.heap().record(&[3, rowlen]).unwrap();
        let want = (7) + (7 + 1) + (7 + 200) + (7 + 201) + (7 + 202);
        assert_eq!(e.call("f", &[mat, 7]).unwrap(), want, "dyn={dynamic}");
        // Run again through the cached code.
        assert_eq!(e.call("f", &[mat, 7]).unwrap(), want);
    }
}

#[test]
fn float_region() {
    let src = r#"
        double scale(double s, double x) {
            dynamicRegion (s) {
                double t = s * 2.0 + 0.5;
                return t * x;
            }
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut e = Engine::new(&p);
    let r = e
        .call_f("scale", &[3.0f64.to_bits(), 2.0f64.to_bits()])
        .unwrap();
    assert_eq!(r, 13.0);
    let r = e
        .call_f("scale", &[3.0f64.to_bits(), 4.0f64.to_bits()])
        .unwrap();
    assert_eq!(r, 26.0);
}

#[test]
fn strength_reduction_fires_on_multiply_kernel() {
    let src = r#"
        int smul(int s, int x) {
            dynamicRegion (s) { return x * s; }
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut e = Engine::new(&p);
    assert_eq!(e.call("smul", &[8, 13]).unwrap(), 104);
    let r = e.region_report(0);
    assert!(
        r.stitch_stats.strength_reductions > 0,
        "multiply by 8 becomes a shift: {:?}",
        r.stitch_stats
    );
}

#[test]
fn measurement_checksums_agree_and_report_is_consistent() {
    let src = r#"
        int f(int k, int x) {
            dynamicRegion (k) {
                int i; int acc = 0;
                unrolled for (i = 0; i < k; i++) { acc += (x + i) * k; }
                return acc;
            }
        }
    "#;
    let setup = KernelSetup {
        src,
        func: "f",
        iterations: 100,
        prepare: Box::new(|_| vec![12]),
        args: Box::new(|i, p| vec![p[0], i]),
    };
    let m = measure_kernel(&setup).unwrap();
    assert!(m.static_cycles > 0.0);
    assert!(m.dynamic_cycles > 0.0);
    assert!(m.setup_cycles > 0);
    assert!(m.stitch_cycles > 0);
    assert!(m.instructions_stitched > 0);
    assert!(m.cycles_per_stitched_instruction > 0.0);
    if let Some(b) = m.breakeven {
        assert!(b > 0);
    }
}

mod option_ablations {
    //! Every stitcher configuration must preserve semantics.
    use crate::{Compiler, Engine, EngineOptions};
    use dyncomp_stitcher::StitchCost;

    const SRC: &str = r#"
        struct Cfg { int n; int *w; };
        int f(struct Cfg *c, int x) {
            dynamicRegion (c) {
                int acc = 0;
                int i;
                unrolled for (i = 0; i < c->n; i++) {
                    acc += x * c->w[i] + (x / 1) + (x % 8);
                }
                return acc * c->n;
            }
        }
    "#;

    fn run_with(opts: EngineOptions) -> Vec<u64> {
        let p = Compiler::new().compile(SRC).unwrap();
        let mut e = Engine::with_options(&p, opts);
        let w = e.heap().array_i64(&[2, 8, 16, 5, 256, 65536]).unwrap();
        let cfg = e.heap().record(&[6, w]).unwrap();
        (0..8).map(|x| e.call("f", &[cfg, x]).unwrap()).collect()
    }

    #[test]
    fn all_stitcher_configurations_agree() {
        let base = run_with(EngineOptions::default());
        let mut no_peep = EngineOptions::default();
        no_peep.stitch.peephole = false;
        assert_eq!(run_with(no_peep), base, "peephole off");
        let mut no_table = EngineOptions::default();
        no_table.stitch.linearized_table = false;
        assert_eq!(run_with(no_table), base, "linearized table off");
        let mut fused = EngineOptions::default();
        fused.stitch.cost = StitchCost::fused();
        assert_eq!(run_with(fused), base, "fused cost model");
        let mut ra = EngineOptions::default();
        ra.stitch.register_actions = Some(4);
        assert_eq!(run_with(ra), base, "register actions");
    }
}

mod degenerate_regions {
    use crate::{Compiler, Engine};

    #[test]
    fn region_with_unused_constant() {
        // The annotated constant feeds nothing: the region still splits,
        // stitches and runs.
        let src = "int f(int k, int x) { dynamicRegion (k) { return x + 1; } }";
        let p = Compiler::new().compile(src).unwrap();
        let mut e = Engine::new(&p);
        assert_eq!(e.call("f", &[99, 5]).unwrap(), 6);
        assert_eq!(e.call("f", &[99, 7]).unwrap(), 8);
    }

    #[test]
    fn region_with_only_constant_computation() {
        // The whole region result is a run-time constant.
        let src = "int f(int k) { dynamicRegion (k) { return k * 3 + 1; } }";
        let p = Compiler::new().compile(src).unwrap();
        let mut e = Engine::new(&p);
        assert_eq!(e.call("f", &[5]).unwrap(), 16);
        assert_eq!(e.call("f", &[5]).unwrap(), 16);
        let r = e.region_report(0);
        assert!(r.stitch_stats.holes_inline + r.stitch_stats.holes_big >= 1);
    }

    #[test]
    fn empty_region_body() {
        let src = "int f(int k, int x) { dynamicRegion (k) { } return x; }";
        let p = Compiler::new().compile(src).unwrap();
        let mut e = Engine::new(&p);
        assert_eq!(e.call("f", &[1, 42]).unwrap(), 42);
    }

    #[test]
    fn region_is_entire_function_with_early_returns_only() {
        let src = r#"
            int sign(int k) {
                dynamicRegion (k) {
                    if (k > 0) return 1;
                    if (k < 0) return 0 - 1;
                    return 0;
                }
            }
        "#;
        let p = Compiler::new().compile(src).unwrap();
        for (k, want) in [(5u64, 1i64), (0u64.wrapping_sub(3), -1), (0, 0)] {
            let mut e = Engine::new(&p);
            assert_eq!(e.call("sign", &[k]).unwrap() as i64, want, "k={k}");
        }
    }

    #[test]
    fn zero_trip_unrolled_loop_via_engine() {
        let src = r#"
            int f(int k) {
                dynamicRegion (k) {
                    int s = 100;
                    int i;
                    unrolled for (i = 0; i < k; i++) s += 1;
                    return s;
                }
            }
        "#;
        let p = Compiler::new().compile(src).unwrap();
        let mut e = Engine::new(&p);
        assert_eq!(e.call("f", &[0]).unwrap(), 100);
        assert_eq!(e.region_report(0).stitch_stats.loop_iterations, 0);
    }
}

mod keyed_cache_policy {
    use super::*;
    use crate::EngineOptions;

    const SRC: &str = r#"
        int f(int k, int x) {
            dynamicRegion key(k) (k) { return k * x + k; }
        }
    "#;

    #[test]
    fn bounded_cache_evicts_lru_and_restitches() {
        let p = Compiler::new().compile(SRC).unwrap();
        let mut e = Engine::with_options(
            &p,
            EngineOptions {
                keyed_cache_capacity: Some(2),
                ..EngineOptions::default()
            },
        );
        // Fill: keys 1, 2 (two stitches).
        assert_eq!(e.call("f", &[1, 10]).unwrap(), 11);
        assert_eq!(e.call("f", &[2, 10]).unwrap(), 22);
        assert_eq!(e.region_report(0).stitches, 2);
        // Touch key 1 so key 2 becomes least-recently-entered.
        assert_eq!(e.call("f", &[1, 20]).unwrap(), 21);
        // Key 3 evicts key 2.
        assert_eq!(e.call("f", &[3, 10]).unwrap(), 33);
        let r = e.region_report(0);
        assert_eq!(r.stitches, 3);
        assert_eq!(r.evictions, 1);
        // Key 1 is still cached (no new stitch)...
        assert_eq!(e.call("f", &[1, 30]).unwrap(), 31);
        assert_eq!(e.region_report(0).stitches, 3);
        // ...but key 2 was dropped and re-stitches, still correct.
        assert_eq!(e.call("f", &[2, 30]).unwrap(), 62);
        let r = e.region_report(0);
        assert_eq!(r.stitches, 4);
        assert_eq!(r.evictions, 2, "re-adding key 2 evicted key 3");
    }

    #[test]
    fn capacity_one_thrashes_but_stays_correct() {
        let p = Compiler::new().compile(SRC).unwrap();
        let mut e = Engine::with_options(
            &p,
            EngineOptions {
                keyed_cache_capacity: Some(1),
                ..EngineOptions::default()
            },
        );
        for round in 0..3u64 {
            for k in 1..=3u64 {
                assert_eq!(e.call("f", &[k, round]).unwrap(), k * round + k);
            }
        }
        let r = e.region_report(0);
        assert_eq!(
            r.stitches, 9,
            "every entry alternates keys, so every entry stitches"
        );
        assert_eq!(r.evictions, 8);
        assert_eq!(r.invocations, 9);
    }

    #[test]
    fn unbounded_default_never_evicts() {
        let p = Compiler::new().compile(SRC).unwrap();
        let mut e = Engine::new(&p);
        for k in 1..=20u64 {
            assert_eq!(e.call("f", &[k, 1]).unwrap(), 2 * k);
        }
        for k in 1..=20u64 {
            assert_eq!(e.call("f", &[k, 2]).unwrap(), 3 * k);
        }
        let r = e.region_report(0);
        assert_eq!(r.stitches, 20);
        assert_eq!(r.evictions, 0);
    }

    #[test]
    fn capacity_does_not_affect_unkeyed_regions() {
        let src = r#"
            int g(int k, int x) {
                dynamicRegion (k) { return k + x; }
            }
        "#;
        let p = Compiler::new().compile(src).unwrap();
        let mut e = Engine::with_options(
            &p,
            EngineOptions {
                keyed_cache_capacity: Some(1),
                ..EngineOptions::default()
            },
        );
        for x in 0..5u64 {
            assert_eq!(e.call("g", &[7, x]).unwrap(), 7 + x);
        }
        let r = e.region_report(0);
        assert_eq!(r.stitches, 1, "unkeyed entry is patched to a direct branch");
        assert_eq!(r.evictions, 0);
    }
}

#[test]
fn stitched_instances_expose_final_code() {
    let src = r#"
        int f(int k, int x) {
            dynamicRegion key(k) (k) { return k + x; }
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut e = Engine::new(&p);
    assert!(e.stitched_instances(0).is_empty(), "nothing stitched yet");
    e.call("f", &[5, 1]).unwrap();
    e.call("f", &[9, 1]).unwrap();
    e.call("f", &[5, 2]).unwrap(); // cache hit, no new instance
    let insts = e.stitched_instances(0);
    assert_eq!(insts.len(), 2);
    assert_eq!(insts[0].0, &[5]);
    assert_eq!(insts[1].0, &[9]);
    for (_, code) in &insts {
        assert!(!code.is_empty());
        // Every instance must disassemble cleanly.
        let lines = dyncomp_machine::disasm::disassemble(code, 0);
        assert!(!lines.is_empty());
        assert!(
            lines.iter().all(|l| !l.text.contains("??")),
            "undecodable word"
        );
    }
}

#[test]
fn bounded_cache_is_semantically_transparent() {
    // Any capacity must produce the same results as the unbounded cache on
    // any key sequence — eviction only costs time, never correctness.
    let src = r#"
        int f(int k, int x) {
            dynamicRegion key(k) (k) {
                return k * k * x - 7 * k + x;
            }
        }
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut rng = 0x2545F4914F6CDD1Du64;
    let mut step = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let seq: Vec<(u64, u64)> = (0..120).map(|_| (step() % 6 + 1, step() % 50)).collect();
    let expect: Vec<u64> = {
        let mut e = Engine::new(&p);
        seq.iter()
            .map(|&(k, x)| e.call("f", &[k, x]).unwrap())
            .collect()
    };
    for cap in [1usize, 2, 3, 5, 64] {
        let mut e = Engine::with_options(
            &p,
            crate::EngineOptions {
                keyed_cache_capacity: Some(cap),
                ..crate::EngineOptions::default()
            },
        );
        let got: Vec<u64> = seq
            .iter()
            .map(|&(k, x)| e.call("f", &[k, x]).unwrap())
            .collect();
        assert_eq!(got, expect, "capacity {cap} diverged");
        let r = e.region_report(0);
        assert!(r.stitches as u64 <= r.invocations);
        if cap >= 6 {
            assert_eq!(r.evictions, 0, "working set fits, capacity {cap}");
            assert_eq!(r.stitches, 6);
        }
    }
}

// ---- artifact/session split -------------------------------------------

/// The compile artifact and Arc-based sessions are thread-shareable; the
/// borrowed [`Engine`] alias is still `Send` (it can move to a worker).
#[test]
fn program_and_session_are_thread_shareable() {
    fn assert_send_sync<T: Send + Sync>() {}
    fn assert_send<T: Send>() {}
    assert_send_sync::<crate::Program>();
    assert_send_sync::<crate::Session>();
    assert_send::<Engine<'static>>();
}

/// Regression: a faulting frame-slot read during key extraction used to be
/// silently mapped to key 0 (`unwrap_or(0)`), aliasing distinct cache
/// entries on bad stack state. It must propagate as an error.
#[test]
fn faulting_frame_key_read_is_an_error_not_key_zero() {
    use dyncomp_machine::isa::SP;
    use dyncomp_machine::template::ValueLoc;

    let p = Compiler::new()
        .compile("int f(int x) { return x; }")
        .unwrap();
    let mut e = Engine::new(&p);
    e.vm.set_reg(SP, u64::MAX - 1024); // wild stack pointer
    let err = e.read_key(&[ValueLoc::Frame(0)]);
    assert!(err.is_err(), "fault must not alias to key 0");
    assert!(
        matches!(err, Err(crate::Error::Vm(_))),
        "fault surfaces as a VM error"
    );
    // A healthy stack still reads fine.
    e.vm.set_reg(SP, 1024);
    assert!(e.read_key(&[ValueLoc::Frame(0)]).is_ok());
}

/// Keyed cross-session reuse: a second session over the same program and
/// shared cache installs the first session's instances — zero stitches,
/// one shared hit per distinct key, identical results.
#[test]
fn shared_cache_reuses_keyed_instances_across_sessions() {
    use std::sync::Arc;

    let src = r#"
        int f(int k, int x) {
            dynamicRegion key(k) (k) {
                return k * x * x + k;
            }
        }
    "#;
    let p = Arc::new(Compiler::new().compile(src).unwrap());
    let cache = Arc::new(crate::SharedCodeCache::default());
    let opts = || crate::EngineOptions {
        shared_cache: Some(Arc::clone(&cache)),
        ..crate::EngineOptions::default()
    };

    let mut a = crate::Session::with_options(Arc::clone(&p), opts());
    let want: Vec<u64> = [(3u64, 10u64), (5, 10), (3, 2), (5, 2)]
        .iter()
        .map(|&(k, x)| a.call("f", &[k, x]).unwrap())
        .collect();
    let ra = a.region_report(0);
    assert_eq!(ra.stitches, 2, "one stitch per distinct key");
    assert_eq!(ra.shared_hits, 0, "first session populated the cache");
    assert_eq!(cache.stats().insertions, 2);

    let mut b = crate::Session::with_options(Arc::clone(&p), opts());
    let got: Vec<u64> = [(3u64, 10u64), (5, 10), (3, 2), (5, 2)]
        .iter()
        .map(|&(k, x)| b.call("f", &[k, x]).unwrap())
        .collect();
    assert_eq!(got, want, "reused code computes identical results");
    let rb = b.region_report(0);
    assert_eq!(rb.stitches, 0, "second session never stitches");
    assert_eq!(rb.shared_hits, 2, "one install per distinct key");

    // The installed instances are identical up to relocation: same
    // program and install addresses, so only linearized-table address
    // words may differ (session B's table lives at a different brk —
    // it never ran set-up code).
    for idx in 0..2 {
        let ca = a.stitched_instances(0)[idx].1;
        let cb = b.stitched_instances(0)[idx].1;
        assert_eq!(ca.len(), cb.len(), "instance {idx} length differs");
        let diffs = ca.iter().zip(cb).filter(|(x, y)| x != y).count();
        assert!(
            diffs <= 1,
            "instance {idx}: {diffs} words differ (only the table address may)"
        );
    }
}

/// Unkeyed regions also reuse across sessions, and the installing session
/// still retires its EnterRegion trap (later calls bypass the runtime).
#[test]
fn shared_cache_reuses_unkeyed_instances_and_patches_trap() {
    use std::sync::Arc;

    let src = r#"
        int poly(int c, int x) {
            dynamicRegion (c) {
                return c * x * x + c * x + c;
            }
        }
    "#;
    let p = Arc::new(Compiler::new().compile(src).unwrap());
    let cache = Arc::new(crate::SharedCodeCache::default());
    let opts = || crate::EngineOptions {
        shared_cache: Some(Arc::clone(&cache)),
        ..crate::EngineOptions::default()
    };

    let mut a = crate::Session::with_options(Arc::clone(&p), opts());
    assert_eq!(a.call("poly", &[3, 10]).unwrap(), 333);

    let mut b = crate::Session::with_options(Arc::clone(&p), opts());
    assert_eq!(b.call("poly", &[3, 10]).unwrap(), 333);
    assert_eq!(b.call("poly", &[3, 1]).unwrap(), 9);
    let rb = b.region_report(0);
    assert_eq!(rb.stitches, 0);
    assert_eq!(rb.shared_hits, 1);
    // The trap was patched after the install: only the first call trapped.
    assert_eq!(rb.invocations, 1);
}

/// With the shared cache the cheaper install path shows up in the cycle
/// accounting: the reusing session is strictly faster than the stitching
/// one, and default-mode accounting is untouched.
#[test]
fn shared_install_is_cheaper_than_stitching() {
    use std::sync::Arc;

    let src = r#"
        int poly(int c, int x) {
            dynamicRegion (c) {
                return c * x * x + c * x + c;
            }
        }
    "#;
    let p = Arc::new(Compiler::new().compile(src).unwrap());

    // Default mode: accounting identical with and without Arc sharing.
    let mut plain = crate::Session::new(Arc::clone(&p));
    plain.call("poly", &[3, 10]).unwrap();
    let mut borrowed = Engine::new(&p);
    borrowed.call("poly", &[3, 10]).unwrap();
    assert_eq!(plain.cycles(), borrowed.cycles());

    let cache = Arc::new(crate::SharedCodeCache::default());
    let opts = || crate::EngineOptions {
        shared_cache: Some(Arc::clone(&cache)),
        ..crate::EngineOptions::default()
    };
    let mut first = crate::Session::with_options(Arc::clone(&p), opts());
    first.call("poly", &[3, 10]).unwrap();
    let mut second = crate::Session::with_options(Arc::clone(&p), opts());
    second.call("poly", &[3, 10]).unwrap();
    assert!(
        second.cycles() < first.cycles(),
        "install ({}) should be cheaper than set-up + stitch ({})",
        second.cycles(),
        first.cycles()
    );
}
