//! `dyncc` — compile, inspect and run annotated MiniC programs.
//!
//! ```text
//! dyncc <file.mc> [--ir] [--templates] [--disasm] [--regions]
//!                 [--static] [--run <func> [args…]] [--report] [--stitched]
//!                 [--sessions N] [--threads T] [--shared-cache] [--native]
//!                 [--no-native-chain] [--tiered] [--stitch-workers N]
//!                 [--speculate]
//! ```
//!
//! * `--ir`        print the final IR of every function
//! * `--templates` print each region's template blocks and directives
//!   (the paper's Table 1 view)
//! * `--disasm`    disassemble the compiled module
//! * `--regions`   summarize dynamic regions (slots, holes, key)
//! * `--static`    ignore annotations (compile the §5 baseline)
//! * `--run f a b` call `f` with integer arguments and print the result
//! * `--report`    after `--run`, print per-region dynamic-compilation
//!   statistics
//! * `--stitched`  after `--run`, disassemble every stitched instance
//!   (the paper's §4 "final code" view)
//! * `--sessions N` run the call in `N` independent sessions over one
//!   shared `Arc<Program>`, reporting per-session cycle counts
//! * `--threads T` spread the sessions over `T` host threads (default 1)
//! * `--shared-cache` let sessions reuse each other's stitched code via
//!   the process-wide sharded cache
//! * `--advise`    ignore annotations and report, per function, what each
//!   parameter would buy as a run-time constant (the §7 annotation tool)
//! * `--tiered`    lower statically compiled fallback copies for every
//!   region and run with background stitch workers: cold entries execute
//!   the fallback while a worker stitches off-thread (deterministic
//!   virtual-clock overlap model)
//! * `--stitch-workers N` background workers for `--tiered` (default 1)
//! * `--inline-depth N` demand-driven inlining: pull region-free callees
//!   whose call sites have at least one run-time-constant argument into
//!   the region, to `N` rounds of nesting (default 0 = off); prints the
//!   inlined sites after compilation
//! * `--speculate` with `--tiered`, pre-stitch keys predicted by the
//!   per-region stride/frequency predictor
//! * `--trace-out FILE` with `--run`, record the deterministic event
//!   trace and write it to `FILE`; also prints a per-region profile
//!   summary and runs the cycle-attribution self-check
//! * `--trace-format {jsonl,chrome}` trace file format (default `jsonl`;
//!   `chrome` loads in `chrome://tracing` / Perfetto)
//! * `--fault-seed N` with `--run`, arm the deterministic chaos plan
//!   (`FaultPlan::seeded(N)`): every fault point fires with probability
//!   1/8 from a seeded PRNG, recovery retries/quarantines per policy,
//!   and results must not change; prints a health summary afterwards
//! * `--code-budget B` with `--run`, cap installed stitched code at `B`
//!   bytes: past ¾ budget new stitches drop copy-and-patch plans, past
//!   the budget regions with a static fallback copy stop installing
//!   code entirely
//! * `--native`    with `--run`, execute stitched instances through the
//!   host-native copy-and-patch backend (x86-64 stubs in a W^X arena;
//!   see DESIGN.md). Results and simulated cycles are bit-identical to
//!   the VM backend — the VM remains the cycle oracle — and a backend
//!   summary is printed afterwards. On unsupported hosts the session
//!   degrades to the VM with one `backend-unavailable` health entry.
//!   Direct-threaded chaining is on by default: installed instances
//!   jump straight to each other (and through patched region-entry
//!   guards) without bouncing through the VM dispatch loop.
//! * `--no-native-chain` with `--native`, disable direct-threaded
//!   chaining (the ablation: every native exit returns to the VM loop
//!   and re-dispatches from there)

use dyncomp::{
    CompileOptions, Compiler, Engine, EngineOptions, FaultPlan, InlineOptions, RecoveryPolicy,
    Session, SharedCodeCache, TieredOptions, TraceOptions,
};
use dyncomp_machine::disasm::disassemble;
use dyncomp_machine::template::{HoleField, LoopMarker, TmplExit};
use std::process::exit;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0].starts_with("--") {
        eprintln!(
            "usage: dyncc <file.mc> [--ir] [--templates] [--disasm] [--regions] \
             [--static] [--run <func> [args…]] [--report] [--stitched] [--advise]"
        );
        exit(2);
    }
    let path = &args[0];
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dyncc: cannot read {path}: {e}");
            exit(1);
        }
    };

    let flag = |name: &str| args.iter().any(|a| a == name);

    if flag("--advise") {
        let advice = match dyncomp::advise(&src) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("dyncc: {e}");
                exit(1);
            }
        };
        for fa in &advice {
            println!("function {}:", fa.func);
            for h in &fa.params {
                let p = h.params[0];
                println!(
                    "  arg {p} constant: {:>3.0}% of instructions fold \
                     ({}/{}), {}/{} branch(es) resolve, {}/{} loop(s) unroll",
                    h.score() * 100.0,
                    h.const_insts,
                    h.total_insts,
                    h.const_branches,
                    h.total_branches,
                    h.unrollable_loops,
                    h.total_loops
                );
            }
            let a = &fa.all_params;
            println!(
                "  all args constant: {:>3.0}% of instructions fold ({}/{})",
                a.score() * 100.0,
                a.const_insts,
                a.total_insts
            );
            let rec = fa.recommended(0.3);
            if rec.is_empty() {
                println!("  recommendation: no single argument is worth annotating");
            } else {
                let list: Vec<String> = rec.iter().map(|p| format!("arg {p}")).collect();
                println!("  recommendation: annotate {}", list.join(", "));
            }
        }
        exit(0);
    }

    let tiered = flag("--tiered");
    let inline_depth: u32 = match args.iter().position(|a| a == "--inline-depth") {
        Some(p) => args
            .get(p + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("dyncc: --inline-depth needs a non-negative integer");
                exit(2);
            }),
        None => 0,
    };
    let compiler = Compiler::with_options(CompileOptions {
        dynamic: !flag("--static"),
        tiered_fallback: tiered,
        inline: InlineOptions::at_depth(inline_depth),
        ..CompileOptions::default()
    });
    let program = match compiler.compile(&src) {
        Ok(p) => Arc::new(p),
        Err(e) => {
            eprintln!("dyncc: {e}");
            exit(1);
        }
    };

    println!(
        "compiled {path}: {} function(s), {} dynamic region(s), {} code words",
        program.module.funcs.len(),
        program.region_count(),
        program.compiled.code.len()
    );
    if inline_depth > 0 {
        for s in &program.inline_sites {
            println!(
                "inlined `{}` into region {} of `{}` (round {}, {} instruction(s))",
                s.callee_name,
                s.region_index,
                program.module.funcs[s.func].name,
                s.depth,
                s.cloned_insts
            );
        }
        if program.inline_sites.is_empty() {
            println!("inlining enabled (depth {inline_depth}): no demanded call sites");
        }
    }

    if flag("--ir") {
        for f in program.module.funcs.iter() {
            println!("\n{f}");
        }
    }

    if flag("--regions") {
        for (i, rc) in program.compiled.regions.iter().enumerate() {
            let holes: usize = rc.template.blocks.iter().map(|b| b.holes.len()).sum();
            println!(
                "\nregion {i}: enter@{} setup@{} | {} static table slot(s), {} template \
                 block(s), {} hole(s), key: {:?}",
                rc.enter_pc,
                rc.setup_pc,
                rc.table_static_len,
                rc.template.blocks.len(),
                holes,
                rc.key_locs
            );
        }
    }

    if flag("--templates") {
        for (i, rc) in program.compiled.regions.iter().enumerate() {
            println!(
                "\n=== region {i} template (entry L{}) ===",
                rc.template.entry
            );
            for (li, b) in rc.template.blocks.iter().enumerate() {
                let marker = match &b.marker {
                    Some(LoopMarker::Enter { root }) => format!("  ENTER_LOOP({root})"),
                    Some(LoopMarker::Restart { next_slot }) => {
                        format!("  RESTART_LOOP(next={next_slot})")
                    }
                    Some(LoopMarker::Exit) => "  EXIT_LOOP".into(),
                    None => String::new(),
                };
                println!("L{li}:{marker}");
                let code = &rc.template.code[b.start as usize..b.end as usize];
                let mut hole_iter = b.holes.iter().peekable();
                for line in disassemble(code, b.start) {
                    let mut notes = String::new();
                    while let Some(h) = hole_iter.peek() {
                        if h.at == line.addr {
                            let kind = match h.field {
                                HoleField::Lit => "HOLE(lit",
                                HoleField::MemDisp { float: true } => "HOLE(fload",
                                HoleField::MemDisp { float: false } => "HOLE(load",
                            };
                            notes.push_str(&format!("   ; {kind}, t[{}])", h.slot));
                            hole_iter.next();
                        } else {
                            break;
                        }
                    }
                    println!("    {:>4}: {}{notes}", line.addr, line.text);
                }
                match &b.exit {
                    TmplExit::Jump(l) => println!("    -> L{l}"),
                    TmplExit::CondBranch { taken, fall, .. } => {
                        println!("    branch -> L{taken} | fall L{fall}")
                    }
                    TmplExit::ConstBranch {
                        slot,
                        then_l,
                        else_l,
                    } => {
                        println!("    CONST_BRANCH(t[{slot}]) -> L{then_l} | L{else_l}")
                    }
                    TmplExit::ConstSwitch {
                        slot,
                        cases,
                        default,
                    } => {
                        let cs: Vec<String> =
                            cases.iter().map(|(c, l)| format!("{c}=>L{l}")).collect();
                        println!(
                            "    CONST_SWITCH(t[{slot}]) [{}] default L{default}",
                            cs.join(", ")
                        )
                    }
                    TmplExit::Return => println!("    (return)"),
                    TmplExit::ExitRegion { exit } => println!("    EXIT_REGION({exit})"),
                }
            }
        }
    }

    if flag("--disasm") {
        println!();
        for line in disassemble(&program.compiled.code, 0) {
            println!("{:>6}: {}", line.addr, line.text);
        }
    }

    if let Some(pos) = args.iter().position(|a| a == "--run") {
        let Some(func) = args.get(pos + 1) else {
            eprintln!("dyncc: --run needs a function name");
            exit(2);
        };
        let call_args: Vec<u64> = args[pos + 2..]
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .map(|a| {
                a.parse::<i64>().map(|v| v as u64).unwrap_or_else(|_| {
                    eprintln!("dyncc: bad integer argument `{a}`");
                    exit(2);
                })
            })
            .collect();

        let numeric = |name: &str, default: usize| -> usize {
            match args.iter().position(|a| a == name) {
                Some(p) => args
                    .get(p + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("dyncc: {name} needs a positive integer");
                        exit(2);
                    }),
                None => default,
            }
        };
        let sessions = numeric("--sessions", 1).max(1);
        let threads = numeric("--threads", 1).max(1);
        let tiered_options = tiered.then(|| TieredOptions {
            workers: numeric("--stitch-workers", 1).max(1),
            speculate: flag("--speculate"),
            ..TieredOptions::default()
        });
        let str_opt = |name: &str| -> Option<String> {
            args.iter().position(|a| a == name).map(|p| {
                args.get(p + 1).cloned().unwrap_or_else(|| {
                    eprintln!("dyncc: {name} needs a value");
                    exit(2);
                })
            })
        };
        let num_u64 = |name: &str| -> Option<u64> {
            args.iter().position(|a| a == name).map(|p| {
                args.get(p + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("dyncc: {name} needs a non-negative integer");
                        exit(2);
                    })
            })
        };
        let fault_seed = num_u64("--fault-seed");
        let code_budget = num_u64("--code-budget");
        let recovery = RecoveryPolicy {
            code_budget_bytes: code_budget,
            ..RecoveryPolicy::default()
        };
        let trace_out = str_opt("--trace-out");
        let trace_format = str_opt("--trace-format").unwrap_or_else(|| "jsonl".to_string());
        if !matches!(trace_format.as_str(), "jsonl" | "chrome") {
            eprintln!("dyncc: --trace-format must be `jsonl` or `chrome`, got `{trace_format}`");
            exit(2);
        }
        let native = flag("--native");
        let native_chain = !flag("--no-native-chain");
        if sessions > 1 || flag("--shared-cache") {
            if trace_out.is_some() {
                eprintln!(
                    "dyncc: --trace-out traces a single session; drop --sessions/--shared-cache"
                );
                exit(2);
            }
            run_multi_session(
                &program,
                func,
                &call_args,
                sessions,
                threads,
                flag("--shared-cache"),
                tiered_options,
                fault_seed.map(FaultPlan::seeded),
                recovery,
                native,
                native_chain,
            );
            return;
        }

        let mut engine = Engine::with_options(
            &program,
            EngineOptions {
                tiered: tiered_options,
                trace: trace_out.as_ref().map(|_| TraceOptions::default()),
                faults: fault_seed.map(FaultPlan::seeded),
                recovery,
                native,
                native_chain,
                ..EngineOptions::default()
            },
        );
        let before = engine.cycles();
        match engine.call(func, &call_args) {
            Ok(v) => {
                println!(
                    "\n{func}({}) = {v} ({} as signed) in {} cycles",
                    call_args
                        .iter()
                        .map(|a| a.to_string())
                        .collect::<Vec<_>>()
                        .join(", "),
                    v as i64,
                    engine.cycles() - before
                );
            }
            Err(e) => {
                eprintln!("dyncc: run failed: {e}");
                exit(1);
            }
        }
        if native {
            let n = engine.native_report();
            if n.active {
                println!(
                    "\nnative backend: {} instance(s) installed ({} bytes), {} declined, \
                     {} dispatch(es), {} chained transfer(s); {}/{} instruction(s) covered, \
                     translated in {} ns",
                    n.installs,
                    n.bytes,
                    n.declined,
                    n.entries,
                    n.chained,
                    n.covered_instructions,
                    n.translated_instructions,
                    n.translate_ns
                );
            } else {
                println!(
                    "\nnative backend: unavailable on this host; the session ran on the VM backend"
                );
            }
        }
        if fault_seed.is_some() || code_budget.is_some() {
            let h = engine.health();
            println!(
                "\nhealth: {} fault(s) injected, {} retr{}, {} failure(s) ({} dropped), \
                 degradation level {}",
                h.faults_injected,
                h.retries,
                if h.retries == 1 { "y" } else { "ies" },
                h.total_failures,
                h.dropped,
                h.degradation_level
            );
            if let Some(b) = h.code_budget_bytes {
                println!(
                    "        {} / {b} stitched-code byte(s) installed",
                    h.code_bytes_installed
                );
            }
            if !h.quarantined.is_empty() {
                println!("        quarantined region(s): {:?}", h.quarantined);
            }
            for f in &h.failures {
                println!(
                    "        [cycle {}] region {} {} failure{}: {}",
                    f.at,
                    f.region,
                    f.kind.name(),
                    if f.injected { " (injected)" } else { "" },
                    f.message
                );
            }
        }
        if let Some(path) = &trace_out {
            if let Err(e) = engine.trace_self_check() {
                eprintln!("dyncc: {e}");
                exit(1);
            }
            let rendered = match trace_format.as_str() {
                "chrome" => engine.trace_chrome(),
                _ => engine.trace_jsonl(),
            }
            .expect("tracing enabled with --trace-out");
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("dyncc: cannot write {path}: {e}");
                exit(1);
            }
            let t = engine.trace().expect("tracing enabled with --trace-out");
            println!(
                "\nwrote {path} ({trace_format}, {} event(s) recorded, {} dropped); self-check ok",
                t.events().count(),
                t.dropped()
            );
            println!(
                "{:<4} {:>8} {:>8} {:>10} {:>10} {:>8} {:>8} {:>8} {:>7} {:>6} {:>12}",
                "rgn",
                "invoc",
                "stitches",
                "setup cy",
                "stitch cy",
                "instrs",
                "patches",
                "keyhits",
                "shared",
                "bg",
                "1st-stitched"
            );
            for p in t.profiles() {
                println!(
                    "{:<4} {:>8} {:>8} {:>10} {:>10} {:>8} {:>8} {:>8} {:>7} {:>6} {:>12}",
                    p.region,
                    p.invocations,
                    p.stitches,
                    p.setup_cycles,
                    p.stitch_cycles,
                    p.instructions_stitched,
                    p.plan_patches,
                    p.keyed_hits,
                    p.shared_cache_hits,
                    p.bg_installs,
                    p.first_stitched_at
                        .map_or("never".to_string(), |c| c.to_string()),
                );
            }
        }
        if flag("--report") {
            for i in 0..program.region_count() {
                let r = engine.region_report(i);
                println!(
                    "region {i}: {} stitch(es), set-up {} cycles, stitcher {} cycles, \
                     {} instruction(s) stitched",
                    r.stitches, r.setup_cycles, r.stitch_cycles, r.instructions_stitched
                );
                if r.fallback_runs > 0 || r.bg_installs > 0 {
                    println!(
                        "          tiered: {} fallback run(s), {} background install(s) \
                         ({} speculative), background set-up {} + stitch {} cycles",
                        r.fallback_runs,
                        r.bg_installs,
                        r.spec_installs,
                        r.bg_setup_cycles,
                        r.bg_stitch_cycles
                    );
                }
                let s = r.stitch_stats;
                println!(
                    "          {} hole(s) inline, {} via table, {} constant branch(es), \
                     {} loop iteration(s) unrolled, {} strength reduction(s)",
                    s.holes_inline,
                    s.holes_big,
                    s.const_branches_resolved,
                    s.loop_iterations,
                    s.strength_reductions
                );
            }
        }
        if flag("--stitched") {
            for i in 0..program.region_count() {
                for (key, code) in engine.stitched_instances(i) {
                    let key_str = if key.is_empty() {
                        String::new()
                    } else {
                        format!(
                            " key ({})",
                            key.iter()
                                .map(|k| k.to_string())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    };
                    println!(
                        "\nstitched code for region {i}{key_str} ({} words):",
                        code.len()
                    );
                    let base = code_offset_of(&engine, code);
                    for line in disassemble(code, base) {
                        println!("{:>6}: {}", line.addr, line.text);
                    }
                }
            }
        }
    }
}

/// Address of a stitched slice within the engine's code space (the slice
/// is borrowed from `engine.vm.code`, so pointer arithmetic is exact).
fn code_offset_of(engine: &Engine, code: &[u32]) -> u32 {
    let base = engine.vm.code.as_ptr() as usize;
    ((code.as_ptr() as usize - base) / 4) as u32
}

/// One session's row in the `--sessions` report.
struct SessionRow {
    result: u64,
    cycles: u64,
    stitches: u32,
    shared_hits: u64,
}

/// Run the same call in `n` independent sessions over one shared program,
/// spread across `threads` host threads, and print per-session cycle
/// counts. With `shared`, sessions publish and reuse stitched code through
/// a process-wide [`SharedCodeCache`].
#[allow(clippy::too_many_arguments)]
fn run_multi_session(
    program: &Arc<dyncomp::Program>,
    func: &str,
    call_args: &[u64],
    n: usize,
    threads: usize,
    shared: bool,
    tiered: Option<TieredOptions>,
    faults: Option<FaultPlan>,
    recovery: RecoveryPolicy,
    native: bool,
    native_chain: bool,
) {
    let cache = shared.then(|| Arc::new(SharedCodeCache::default()));
    let mut rows: Vec<Option<Result<SessionRow, dyncomp::Error>>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for slots in rows.chunks_mut(chunk) {
            let cache = cache.clone();
            let tiered = tiered.clone();
            let faults = faults.clone();
            let recovery = recovery.clone();
            s.spawn(move || {
                for slot in slots {
                    let options = EngineOptions {
                        shared_cache: cache.clone(),
                        tiered: tiered.clone(),
                        faults: faults.clone(),
                        recovery: recovery.clone(),
                        native,
                        native_chain,
                        ..EngineOptions::default()
                    };
                    let mut session = Session::with_options(Arc::clone(program), options);
                    *slot = Some(session.call(func, call_args).map(|result| {
                        let mut stitches = 0;
                        let mut shared_hits = 0;
                        for i in 0..session.program().region_count() {
                            let r = session.region_report(i);
                            stitches += r.stitches;
                            shared_hits += r.shared_hits;
                        }
                        SessionRow {
                            result,
                            cycles: session.cycles(),
                            stitches,
                            shared_hits,
                        }
                    }));
                }
            });
        }
    });

    println!(
        "\n{n} session(s) of {func}({}) on {threads} thread(s){}:",
        call_args
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        if shared {
            ", shared stitched-code cache"
        } else {
            ""
        }
    );
    let mut failed = false;
    for (i, row) in rows.iter().enumerate() {
        match row.as_ref().expect("every session slot filled") {
            Ok(r) => println!(
                "  session {i}: = {} ({} as signed) in {} cycles, {} stitch(es), \
                 {} shared hit(s)",
                r.result, r.result as i64, r.cycles, r.stitches, r.shared_hits
            ),
            Err(e) => {
                eprintln!("  session {i}: failed: {e}");
                failed = true;
            }
        }
    }
    if let Some(cache) = &cache {
        let st = cache.stats();
        println!(
            "  cache: {} hit(s), {} miss(es), {} insertion(s), {} eviction(s) \
             across {} shard(s)",
            st.hits,
            st.misses,
            st.insertions,
            st.evictions,
            cache.shard_count()
        );
    }
    if failed {
        exit(1);
    }
}
