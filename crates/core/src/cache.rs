//! Keyed-region code caching: the per-session LRU order and the
//! process-wide **sharded stitched-code cache**.
//!
//! Every session keeps its own keyed-region cache (the paper's model —
//! one stitched instance per distinct key tuple, per region). With many
//! sessions running the same [`crate::Program`], that means every session
//! re-stitches code some other session already produced. The
//! [`SharedCodeCache`] removes that duplicated work: a process-wide map
//! from `(program, region, key)` to the stitched instance, split into N
//! lock-striped shards (FxHash over the key picks the shard) with an O(1)
//! per-shard LRU, so concurrent sessions contend only when they hash to
//! the same shard. A hit hands back an [`Arc<Stitched>`]; the session
//! installs it with a bulk copy plus base/table relocation
//! ([`dyncomp_stitcher::Stitched::relocate`]) instead of running set-up
//! code and the stitcher.
//!
//! The shared cache is **opt-in**
//! ([`crate::EngineOptions::shared_cache`]). The default (per-session
//! caching only) preserves the exact simulated-cycle accounting of the
//! paper's tables; the shared mode charges its own deterministic probe
//! and install costs instead of set-up + stitching, so its cycle counts
//! are deliberately *not* comparable to the paper model. Cross-session
//! reuse also assumes sessions are replicas (same program, identically
//! laid-out session memory) — see [`dyncomp_stitcher::Stitched::relocate`].

use dyncomp_ir::fxhash::{FxHashMap, FxHasher};
use dyncomp_stitcher::Stitched;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Doubly-linked recency order over a cache's entries: O(1) touch-on-hit,
/// push, and least-recently-used eviction, independent of cache size.
/// Slot indices are stable (freed slots recycle through a free list), so
/// the `lru` index a cache entry stores stays valid until eviction.
#[derive(Debug)]
pub(crate) struct LruOrder<K> {
    slots: Vec<LruSlot<K>>,
    /// Least recently used end (eviction victim).
    head: Option<usize>,
    /// Most recently used end.
    tail: Option<usize>,
    free: Vec<usize>,
}

impl<K> Default for LruOrder<K> {
    fn default() -> Self {
        LruOrder {
            slots: Vec::new(),
            head: None,
            tail: None,
            free: Vec::new(),
        }
    }
}

#[derive(Debug)]
struct LruSlot<K> {
    key: Option<K>,
    prev: Option<usize>,
    next: Option<usize>,
}

impl<K> LruOrder<K> {
    fn unlink(&mut self, i: usize) {
        let (p, n) = (self.slots[i].prev, self.slots[i].next);
        match p {
            Some(p) => self.slots[p].next = n,
            None => self.head = n,
        }
        match n {
            Some(n) => self.slots[n].prev = p,
            None => self.tail = p,
        }
        self.slots[i].prev = None;
        self.slots[i].next = None;
    }

    fn push_back(&mut self, i: usize) {
        self.slots[i].prev = self.tail;
        self.slots[i].next = None;
        match self.tail {
            Some(t) => self.slots[t].next = Some(i),
            None => self.head = Some(i),
        }
        self.tail = Some(i);
    }

    /// Append `key` at the most-recently-used end; returns its slot.
    pub(crate) fn insert(&mut self, key: K) -> usize {
        let slot = LruSlot {
            key: Some(key),
            prev: None,
            next: None,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.push_back(i);
        i
    }

    /// Move slot `i` to the most-recently-used end.
    pub(crate) fn touch(&mut self, i: usize) {
        if self.tail != Some(i) {
            self.unlink(i);
            self.push_back(i);
        }
    }

    /// Remove and return the least-recently-used key.
    pub(crate) fn pop_lru(&mut self) -> Option<K> {
        let i = self.head?;
        self.unlink(i);
        self.free.push(i);
        self.slots[i].key.take()
    }
}

/// Identity of one stitched instance in the process-wide cache.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SharedKey {
    /// The owning program's process-unique id ([`crate::Program::id`]).
    pub program: u64,
    /// Region number within the program.
    pub region: u16,
    /// The region's key tuple (empty for unkeyed regions).
    pub key: Vec<u64>,
}

/// One shard: a hash map plus its recency order and resident byte count.
#[derive(Default)]
struct Shard {
    map: FxHashMap<SharedKey, ShardEntry>,
    lru: LruOrder<SharedKey>,
    /// Sum of [`ShardEntry::bytes`] over `map` (for the byte budget).
    bytes: u64,
}

struct ShardEntry {
    code: Arc<Stitched>,
    lru: usize,
    /// [`Stitched::footprint_bytes`] at insertion (cached so eviction
    /// never re-walks the artifact).
    bytes: u64,
}

/// Counters for one [`SharedCodeCache`] (monotonic, process lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups that found an instance.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Instances published (including re-publications after a race).
    pub insertions: u64,
    /// Instances evicted to respect the per-shard capacity.
    pub evictions: u64,
}

/// The process-wide sharded stitched-code cache. See the module docs.
///
/// Shared between sessions as an `Arc<SharedCodeCache>` via
/// [`crate::EngineOptions::shared_cache`]; all methods take `&self`.
pub struct SharedCodeCache {
    shards: Box<[Mutex<Shard>]>,
    shard_mask: u64,
    per_shard_capacity: usize,
    /// Byte budget per shard (`None`: entry count only). Insertions evict
    /// LRU entries until both the capacity and the budget hold.
    per_shard_byte_budget: Option<u64>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl SharedCodeCache {
    /// A cache with `shards` lock stripes (rounded up to a power of two,
    /// minimum 1) and at most `per_shard_capacity` instances per shard
    /// (minimum 1; evictions are LRU within the shard).
    pub fn new(shards: usize, per_shard_capacity: usize) -> Self {
        SharedCodeCache::with_byte_budget(shards, per_shard_capacity, None)
    }

    /// Same, additionally bounding each shard to `byte_budget` resident
    /// bytes ([`Stitched::footprint_bytes`] per instance): a publication
    /// evicts LRU entries until the budget holds again, so degraded
    /// deployments can cap stitched-code memory instead of instance
    /// counts. An instance larger than the whole budget still resides
    /// alone (the cache never refuses a publication outright).
    pub fn with_byte_budget(
        shards: usize,
        per_shard_capacity: usize,
        byte_budget: Option<u64>,
    ) -> Self {
        let n = shards.max(1).next_power_of_two();
        SharedCodeCache {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            shard_mask: n as u64 - 1,
            per_shard_capacity: per_shard_capacity.max(1),
            per_shard_byte_budget: byte_budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &SharedKey) -> &Mutex<Shard> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() & self.shard_mask) as usize]
    }

    /// Look up a stitched instance, refreshing its recency on a hit.
    pub fn lookup(&self, key: &SharedKey) -> Option<Arc<Stitched>> {
        let mut shard = self.shard(key).lock().expect("shard lock poisoned");
        match shard.map.get(key) {
            Some(e) => {
                let (slot, code) = (e.lru, Arc::clone(&e.code));
                shard.lru.touch(slot);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(code)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publish a stitched instance. When two sessions race on the same
    /// key, the later publication wins (both are valid — same key, same
    /// code under the replica assumption). Evicts LRU entries as needed
    /// to respect the shard capacity; returns how many this publication
    /// evicted (0 on replacement).
    pub fn insert(&self, key: SharedKey, code: Arc<Stitched>) -> usize {
        let bytes = code.footprint_bytes();
        let mut shard = self.shard(&key).lock().expect("shard lock poisoned");
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if let Some(e) = shard.map.get_mut(&key) {
            let (slot, old_bytes) = (e.lru, e.bytes);
            e.code = code;
            e.bytes = bytes;
            shard.lru.touch(slot);
            shard.bytes = shard.bytes - old_bytes + bytes;
            return 0;
        }
        let mut evicted = 0;
        // Budget pressure only evicts while something else resides: an
        // oversized instance still publishes alone.
        let over_budget = |shard: &Shard| {
            self.per_shard_byte_budget
                .is_some_and(|b| !shard.map.is_empty() && shard.bytes.saturating_add(bytes) > b)
        };
        while shard.map.len() >= self.per_shard_capacity || over_budget(&shard) {
            match shard.lru.pop_lru() {
                Some(victim) => {
                    if let Some(e) = shard.map.remove(&victim) {
                        shard.bytes -= e.bytes;
                    }
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    evicted += 1;
                }
                None => break,
            }
        }
        let slot = shard.lru.insert(key.clone());
        shard.bytes += bytes;
        shard.map.insert(
            key,
            ShardEntry {
                code,
                lru: slot,
                bytes,
            },
        );
        evicted
    }

    /// Instances currently cached, across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").map.len())
            .sum()
    }

    /// Whether the cache holds no instances.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident bytes ([`Stitched::footprint_bytes`] summed), across all
    /// shards.
    pub fn bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").bytes)
            .sum()
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl Default for SharedCodeCache {
    /// 16 shards × 256 instances: enough striping for the 8-thread
    /// benchmarks with a bounded footprint.
    fn default() -> Self {
        SharedCodeCache::new(16, 256)
    }
}

impl fmt::Debug for SharedCodeCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedCodeCache")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(words: usize) -> Arc<Stitched> {
        Arc::new(Stitched {
            code: vec![0; words],
            lin_table_addr: 0,
            lin_words: Vec::new(),
            lin_addr_patches: Vec::new(),
            lin_far_addr_patches: Vec::new(),
            exit_patches: Vec::new(),
            plan_patches: Vec::new(),
            stats: Default::default(),
            native_bytes: 0,
        })
    }

    fn key(k: u64) -> SharedKey {
        SharedKey {
            program: 1,
            region: 0,
            key: vec![k],
        }
    }

    #[test]
    fn lookup_miss_then_hit() {
        let c = SharedCodeCache::new(4, 8);
        assert!(c.lookup(&key(1)).is_none());
        c.insert(key(1), entry(3));
        let got = c.lookup(&key(1)).expect("hit");
        assert_eq!(got.code.len(), 3);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn single_shard_lru_evicts_least_recent() {
        let c = SharedCodeCache::new(1, 2);
        c.insert(key(1), entry(1));
        c.insert(key(2), entry(2));
        // Touch key 1 so key 2 becomes the LRU victim.
        assert!(c.lookup(&key(1)).is_some());
        c.insert(key(3), entry(3));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.lookup(&key(1)).is_some(), "recently used survives");
        assert!(c.lookup(&key(2)).is_none(), "LRU evicted");
        assert!(c.lookup(&key(3)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_is_per_shard() {
        let c = SharedCodeCache::new(8, 1);
        assert_eq!(c.shard_count(), 8);
        for k in 0..64 {
            c.insert(key(k), entry(1));
        }
        // Each shard holds exactly one instance; the rest were evicted.
        assert_eq!(c.len(), c.shard_count().min(64));
        assert_eq!(c.stats().evictions, 64 - c.len() as u64);
    }

    #[test]
    fn byte_budget_evicts_by_resident_bytes() {
        // 10-word entries are 40 bytes each; a 100-byte shard holds two.
        let c = SharedCodeCache::with_byte_budget(1, 64, Some(100));
        c.insert(key(1), entry(10));
        c.insert(key(2), entry(10));
        assert_eq!(c.bytes(), 80);
        assert!(c.lookup(&key(1)).is_some(), "key 1 made most recent");
        c.insert(key(3), entry(10));
        assert_eq!(c.stats().evictions, 1, "budget forced an eviction");
        assert!(c.lookup(&key(2)).is_none(), "LRU victim under pressure");
        assert!(c.lookup(&key(1)).is_some());
        assert!(c.lookup(&key(3)).is_some());
        assert_eq!(c.bytes(), 80);
    }

    #[test]
    fn oversized_instance_resides_alone() {
        let c = SharedCodeCache::with_byte_budget(1, 64, Some(100));
        c.insert(key(1), entry(10));
        // 200 words = 800 bytes, over the whole budget: everything else
        // is evicted but the publication itself is never refused.
        c.insert(key(2), entry(200));
        assert!(c.lookup(&key(1)).is_none());
        assert!(c.lookup(&key(2)).is_some());
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 800);
    }

    #[test]
    fn replacement_adjusts_resident_bytes() {
        let c = SharedCodeCache::with_byte_budget(1, 64, Some(1000));
        c.insert(key(1), entry(10));
        c.insert(key(1), entry(3));
        assert_eq!(c.bytes(), 12, "replacement swaps footprints");
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn racing_insert_replaces_without_eviction() {
        let c = SharedCodeCache::new(1, 4);
        c.insert(key(1), entry(1));
        c.insert(key(1), entry(9));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.lookup(&key(1)).unwrap().code.len(), 9);
    }

    #[test]
    fn distinct_programs_do_not_alias() {
        let c = SharedCodeCache::default();
        let a = SharedKey {
            program: 1,
            region: 0,
            key: vec![7],
        };
        let b = SharedKey {
            program: 2,
            region: 0,
            key: vec![7],
        };
        c.insert(a.clone(), entry(1));
        assert!(c.lookup(&b).is_none());
        assert!(c.lookup(&a).is_some());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(SharedCodeCache::new(0, 1).shard_count(), 1);
        assert_eq!(SharedCodeCache::new(3, 1).shard_count(), 4);
        assert_eq!(SharedCodeCache::new(16, 1).shard_count(), 16);
    }

    #[test]
    fn concurrent_publish_and_lookup() {
        let c = Arc::new(SharedCodeCache::new(8, 64));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let k = key(i % 32);
                        if c.lookup(&k).is_none() {
                            c.insert(k, entry((t + i) as usize % 7 + 1));
                        }
                    }
                });
            }
        });
        assert_eq!(c.len(), 32);
        let s = c.stats();
        assert!(s.hits > 0 && s.insertions >= 32);
    }
}
