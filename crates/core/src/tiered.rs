//! Tiered execution: background stitch workers and speculative
//! pre-stitching of predicted keys.
//!
//! In tiered mode a session entering a cold dynamic region does not stall
//! for set-up + stitching: it enqueues a *stitch job* — a forked snapshot
//! of the whole simulated machine — to a pool of host worker threads and
//! immediately resumes in the region's statically compiled fallback copy
//! (lowered behind a [`dyncomp_ir::Intrinsic::TierProbe`] guard, entered by
//! redirecting the `EnterRegion` trap to `RegionCode::fallback_pc`). The
//! worker runs the region's set-up code on the fork, stitches into the
//! fork's detached memory, and replies with a relocatable
//! [`Stitched`] artifact; a later entry installs it via the same
//! bulk-copy + patch relocation path the shared cache uses.
//!
//! # Deterministic overlap model
//!
//! Host threads make wall-clock progress, but *when* a stitched instance
//! becomes visible to the session is decided purely on virtual clocks, so
//! tiered runs are exactly repeatable and independent of host scheduling:
//!
//! * Jobs are numbered in enqueue order, stamped with the session's cycle
//!   counter at enqueue time (after the trap/lookup/dispatch charges).
//! * Each of the `workers` *virtual* workers owns a clock starting at 0.
//!   Jobs are assigned strictly in enqueue order to the virtual worker
//!   with the smallest clock (ties: lowest index); the job's completion
//!   time is `max(worker_clock, enqueue_cycles) + setup_cycles +
//!   stitch_cycles`, both measured on the fork, and the worker's clock
//!   advances to it.
//! * An entry picks up a finished job only once the session's own cycle
//!   counter has passed that completion time (`ready_at`); until then it
//!   keeps running the fallback. Host completion is awaited (a blocking
//!   `recv`) only at resolution points, which affects wall-clock time but
//!   never simulated results.
//!
//! The session is charged [`TieredOptions::dispatch_cycles`] per enqueued
//! job and the shared-cache constants
//! ([`crate::EngineOptions::shared_install_cycles_per_word`]) per installed
//! word; the worker's set-up and stitch cycles are spent on the worker's
//! clock, never the session's.
//!
//! # Speculative pre-stitching
//!
//! Keyed regions feed every observed key tuple to a per-region
//! [`KeyPredictor`] (element-wise stride + bounded frequency table). With
//! [`TieredOptions::speculate`] on, predicted keys are enqueued before they
//! are demanded, capped by [`TieredOptions::max_inflight`], so e.g. a
//! `1..100` scalar sweep has key *k+1* stitched by the time it arrives.
//! Speculation relies on the same invariant the keyed cache already
//! assumes: the key tuple (together with the region's other run-time
//! constants, which are taken from the forked snapshot) fully determines
//! the stitched code.

use crate::faults::{FaultPoint, FaultState};
use crate::trace::{ClockDomain, EventKind, TraceEvent};
use dyncomp_ir::fxhash::FxHashMap;
use dyncomp_machine::isa::{CTP, SP};
use dyncomp_machine::template::{RegionCode, ValueLoc};
use dyncomp_machine::vm::{Stop, Vm};
use dyncomp_stitcher::{StitchOptions, Stitched};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

/// Tiered-mode configuration ([`crate::EngineOptions::tiered`]).
#[derive(Clone, Debug)]
pub struct TieredOptions {
    /// Number of background stitch workers (host threads *and* virtual
    /// worker clocks; the virtual count is what the cycle model sees).
    pub workers: usize,
    /// Enqueue predicted keys ahead of demand.
    pub speculate: bool,
    /// How many keys ahead the stride predictor enqueues per entry.
    pub speculate_depth: usize,
    /// Cap on outstanding (unresolved) speculative jobs per session; no
    /// unbounded queue growth regardless of the key stream.
    pub max_inflight: usize,
    /// Cycles the session is charged per job it enqueues (snapshotting and
    /// queuing in the trap handler).
    pub dispatch_cycles: u64,
    /// Instruction budget for each background fork (a runaway set-up loop
    /// fails the job instead of hanging a worker).
    pub job_fuel: u64,
}

impl Default for TieredOptions {
    fn default() -> Self {
        TieredOptions {
            workers: 1,
            speculate: false,
            speculate_depth: 4,
            max_inflight: 8,
            dispatch_cycles: 25,
            job_fuel: 2_000_000_000,
        }
    }
}

/// Lightweight per-region key predictor: element-wise stride over the last
/// two keys plus a bounded frequency table. All arithmetic wraps, so
/// adversarial key streams cannot panic.
#[derive(Debug, Default)]
pub struct KeyPredictor {
    last: Option<Vec<u64>>,
    stride: Option<Vec<u64>>,
    /// A stride is only predicted from once it has repeated (two equal
    /// consecutive deltas); an alternating key stream therefore falls
    /// through to the frequency table instead of chasing a bogus stride.
    stride_confirmed: bool,
    freq: FxHashMap<Vec<u64>, u32>,
}

/// Bound on the frequency table; beyond it new keys are not tracked.
const FREQ_CAP: usize = 256;

impl KeyPredictor {
    /// Record an observed key tuple.
    pub fn observe(&mut self, key: &[u64]) {
        if let Some(last) = &self.last {
            if last.len() == key.len() {
                let stride: Vec<u64> = key
                    .iter()
                    .zip(last.iter())
                    .map(|(a, b)| a.wrapping_sub(*b))
                    .collect();
                self.stride_confirmed = self.stride.as_ref() == Some(&stride);
                self.stride = Some(stride);
            } else {
                self.stride = None;
                self.stride_confirmed = false;
            }
        }
        self.last = Some(key.to_vec());
        if self.freq.len() < FREQ_CAP || self.freq.contains_key(key) {
            *self.freq.entry(key.to_vec()).or_insert(0) += 1;
        }
    }

    /// Predict up to `depth` likely-next key tuples, most likely first:
    /// the stride sequence continued from the last key, then the most
    /// frequent previously seen keys. Deterministic for a given history.
    pub fn predict(&self, depth: usize) -> Vec<Vec<u64>> {
        let mut out: Vec<Vec<u64>> = Vec::new();
        if let (Some(last), Some(stride)) = (&self.last, &self.stride) {
            if self.stride_confirmed && stride.iter().any(|&s| s != 0) {
                let mut k = last.clone();
                for _ in 0..depth {
                    for (x, s) in k.iter_mut().zip(stride.iter()) {
                        *x = x.wrapping_add(*s);
                    }
                    out.push(k.clone());
                }
            }
        }
        // Frequency fallback: recurring keys not already predicted (covers
        // alternating patterns the single stride misses).
        if out.len() < depth {
            let mut by_freq: Vec<(&Vec<u64>, u32)> =
                self.freq.iter().map(|(k, &c)| (k, c)).collect();
            by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
            for (k, c) in by_freq {
                if out.len() >= depth {
                    break;
                }
                if c < 2 || Some(k) == self.last.as_ref() || out.iter().any(|o| o == k) {
                    continue;
                }
                out.push(k.clone());
            }
        }
        out
    }
}

/// What a worker produces for one job.
struct JobOutput {
    stitched: Stitched,
    setup_cycles: u64,
}

/// Why a background job did not produce an instance.
enum JobFailure {
    /// The fork reported an ordinary error (bad set-up, stitch error).
    /// The entry retries synchronously so a real failure reproduces
    /// deterministically on the session.
    Error(String),
    /// The job body panicked. The worker thread survives
    /// (`catch_unwind`), the region is pinned to its static fallback
    /// permanently, and the session keeps running.
    Panic(String),
}

type JobReply = Result<JobOutput, JobFailure>;

/// A stitch job shipped to the worker pool: a forked machine plus
/// everything needed to run set-up and stitch detached from the session.
struct JobRequest {
    fork: Box<Vm>,
    rc: Arc<RegionCode>,
    stitch_opts: StitchOptions,
    /// `Some` for speculative jobs: write these key values over the key
    /// locations before running set-up (the reverse of `read_key`).
    key_override: Option<Vec<u64>>,
    job_fuel: u64,
    /// Fault injection ([`FaultPoint::WorkerPanic`]): panic at the top
    /// of the job body, exercising the `catch_unwind` hardening path.
    inject_panic: bool,
    reply: mpsc::Sender<JobReply>,
}

fn run_job(req: JobRequest) -> Result<JobOutput, String> {
    let JobRequest {
        mut fork,
        rc,
        stitch_opts,
        key_override,
        job_fuel,
        inject_panic,
        ..
    } = req;
    if inject_panic {
        panic!("injected background stitch panic (fault plan)");
    }
    if let Some(key) = &key_override {
        for (loc, &v) in rc.key_locs.iter().zip(key.iter()) {
            match *loc {
                ValueLoc::Reg(r) => fork.set_reg(r, v),
                ValueLoc::FReg(r) => fork.set_freg(r, f64::from_bits(v)),
                ValueLoc::Frame(off) => fork
                    .mem
                    .write_u64(fork.reg(SP).wrapping_add(off as i64 as u64), v)
                    .map_err(|e| format!("speculative key spill: {e}"))?,
            }
        }
    }
    fork.pc = rc.setup_pc;
    fork.cycles = 0;
    fork.fuel = job_fuel;
    match fork.run() {
        Ok(Stop::EndSetup { region }) if region == rc.region_index => {}
        Ok(stop) => return Err(format!("unexpected stop in background set-up: {stop:?}")),
        Err(e) => return Err(format!("background set-up failed: {e}")),
    }
    let setup_cycles = fork.cycles;
    let table = fork.reg(CTP);
    // Stitch into the fork's detached code space / memory; the linearized
    // table is rebuilt in the installing session by `Stitched::relocate`.
    let base = fork.code.len() as u32;
    let stitched = dyncomp_stitcher::stitch(&rc, table, &mut fork.mem, base, &stitch_opts)
        .map_err(|e| format!("background stitch failed: {e}"))?;
    Ok(JobOutput {
        stitched,
        setup_cycles,
    })
}

/// Best-effort human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "background stitch worker panicked".to_string()
    }
}

/// A pool of host worker threads consuming [`JobRequest`]s.
struct WorkerPool {
    tx: Option<mpsc::Sender<JobRequest>>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        let (tx, rx) = mpsc::channel::<JobRequest>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                thread::spawn(move || loop {
                    // A sibling worker panicking mid-`recv` poisons the
                    // queue mutex; the queue itself is still consistent,
                    // so recover and keep serving.
                    let req = match rx.lock().unwrap_or_else(|p| p.into_inner()).recv() {
                        Ok(r) => r,
                        Err(_) => break, // pool dropped
                    };
                    let reply = req.reply.clone();
                    let out: JobReply = match catch_unwind(AssertUnwindSafe(|| run_job(req))) {
                        Ok(r) => r.map_err(JobFailure::Error),
                        // `&*payload`, not `&payload`: a `&Box<dyn Any>`
                        // would itself coerce to `&dyn Any` and the
                        // downcast would always miss.
                        Err(payload) => Err(JobFailure::Panic(panic_message(&*payload))),
                    };
                    let _ = reply.send(out);
                })
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            handles,
        }
    }

    /// Ship a job to the pool. Worker threads only exit when the queue
    /// sender is dropped (pool drop), and panics inside job bodies are
    /// caught, so a send can only fail if the pool is being torn down —
    /// in which case the job is silently dropped and the entry resolves
    /// it as a failure.
    fn submit(&self, req: JobRequest) -> bool {
        match &self.tx {
            Some(tx) => tx.send(req).is_ok(),
            None => false,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // workers see a closed queue and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// State of one enqueued job, keyed by `(region, key)`.
enum JobState {
    /// Submitted; not yet resolved against the virtual worker clocks.
    Pending,
    /// Finished: installable once the session clock reaches `ready_at`.
    Ready {
        stitched: Arc<Stitched>,
        ready_at: u64,
        setup_cycles: u64,
        stitch_cycles: u64,
        speculative: bool,
    },
    /// The background run failed; the entry falls back to synchronous
    /// set-up so the failure (if real) reproduces deterministically.
    Failed,
}

/// An unresolved job in enqueue order. The receiver is wrapped in a
/// `Mutex` only to keep `Session` `Sync`; it is consumed exactly once, at
/// resolution, by whoever holds the session mutably.
struct QueuedJob {
    region: u16,
    key: Vec<u64>,
    enqueue_cycles: u64,
    speculative: bool,
    /// Whether the fault plan armed a worker panic for this job (so a
    /// resulting failure is recorded as injected, not genuine).
    injected_panic: bool,
    rx: Mutex<mpsc::Receiver<JobReply>>,
}

/// A background failure drained by the session into its health log.
pub(crate) struct BgFailure {
    /// The region whose job failed.
    pub(crate) region: u16,
    /// Whether the worker panicked (vs. an ordinary error).
    pub(crate) panicked: bool,
    /// Whether the failure was injected by the fault plan.
    pub(crate) injected: bool,
    /// Diagnostic message.
    pub(crate) message: String,
}

/// Result of asking the tiered state how to handle a cold keyed entry.
pub(crate) enum TierDecision {
    /// A finished instance is ready: install it.
    Install {
        /// The relocatable instance.
        stitched: Arc<Stitched>,
        /// Fork-measured set-up cycles (reporting only).
        setup_cycles: u64,
        /// Fork-measured stitch cycles (reporting only).
        stitch_cycles: u64,
        /// Whether the job was enqueued speculatively.
        speculative: bool,
    },
    /// Keep running the fallback copy (job in flight or just enqueued).
    Fallback,
    /// No background path (job failed): run set-up synchronously.
    Synchronous,
}

/// Per-session tiered run-time state: the worker pool, virtual worker
/// clocks, outstanding jobs and per-region key predictors.
pub(crate) struct TieredState {
    opts: TieredOptions,
    pool: WorkerPool,
    /// One immutable region descriptor per region, shareable with workers.
    rcs: Vec<Arc<RegionCode>>,
    /// Virtual worker clocks (cycle model; see module docs).
    clocks: Vec<u64>,
    /// Unresolved jobs, strictly in enqueue order.
    queue: VecDeque<QueuedJob>,
    /// All jobs ever enqueued and not yet consumed, by `(region, key)`.
    jobs: FxHashMap<(u16, Vec<u64>), JobState>,
    /// Per-region key predictors.
    predictors: Vec<KeyPredictor>,
    /// Outstanding (unresolved) speculative jobs.
    spec_inflight: usize,
    /// Regions whose background path panicked: permanently served by the
    /// static fallback copy, never re-enqueued.
    pinned: Vec<bool>,
    /// Background failures since the session last drained them into its
    /// bounded health log.
    failures: Vec<BgFailure>,
    /// Trace events produced at resolution points (BgReady/BgFailed are
    /// stamped on virtual clocks the engine cannot see); drained by the
    /// session after each decision. Empty unless `collect` is set.
    events: Vec<TraceEvent>,
    collect: bool,
}

impl TieredState {
    pub(crate) fn new(regions: &[RegionCode], opts: TieredOptions, collect_events: bool) -> Self {
        let workers = opts.workers.max(1);
        TieredState {
            opts,
            pool: WorkerPool::new(workers),
            rcs: regions.iter().map(|rc| Arc::new(rc.clone())).collect(),
            clocks: vec![0; workers],
            queue: VecDeque::new(),
            jobs: FxHashMap::default(),
            predictors: regions.iter().map(|_| KeyPredictor::default()).collect(),
            spec_inflight: 0,
            pinned: vec![false; regions.len()],
            failures: Vec::new(),
            events: Vec::new(),
            collect: collect_events,
        }
    }

    /// Drain events recorded since the last call (resolution-point
    /// BgReady/BgFailed stamps).
    pub(crate) fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Whether `region`'s background path panicked and the region is
    /// permanently pinned to its static fallback.
    pub(crate) fn is_pinned(&self, region: u16) -> bool {
        self.pinned[region as usize]
    }

    /// Drain background failures recorded since the last call (the
    /// session folds them into its bounded health log).
    pub(crate) fn take_failures(&mut self) -> Vec<BgFailure> {
        std::mem::take(&mut self.failures)
    }

    pub(crate) fn options(&self) -> &TieredOptions {
        &self.opts
    }

    /// Whether a job for `(region, key)` is already tracked.
    fn has_job(&self, region: u16, key: &[u64]) -> bool {
        self.jobs.contains_key(&(region, key.to_vec()))
    }

    /// Enqueue a stitch job on a fork of `vm`. `key_override` is `Some`
    /// for speculative keys. `now` is the session cycle counter *after*
    /// the dispatch charge. The fault plan is consulted for
    /// [`FaultPoint::WorkerPanic`] at enqueue time — deterministic, since
    /// enqueue order is part of the simulated schedule.
    #[allow(clippy::too_many_arguments)]
    fn enqueue(
        &mut self,
        vm: &Vm,
        region: u16,
        key: Vec<u64>,
        speculative: bool,
        stitch_opts: &StitchOptions,
        now: u64,
        faults: Option<&mut FaultState>,
    ) {
        let inject_panic =
            faults.is_some_and(|f| f.fire(FaultPoint::WorkerPanic, region).is_some());
        let (tx, rx) = mpsc::channel();
        let mut fork = vm.clone();
        // Background workers interpret only; native dispatch marks belong to
        // the foreground session.
        fork.clear_native_marks();
        self.pool.submit(JobRequest {
            fork: Box::new(fork),
            rc: Arc::clone(&self.rcs[region as usize]),
            stitch_opts: stitch_opts.clone(),
            key_override: speculative.then(|| key.clone()),
            job_fuel: self.opts.job_fuel,
            inject_panic,
            reply: tx,
        });
        self.queue.push_back(QueuedJob {
            region,
            key: key.clone(),
            enqueue_cycles: now,
            speculative,
            injected_panic: inject_panic,
            rx: Mutex::new(rx),
        });
        self.jobs.insert((region, key), JobState::Pending);
        if speculative {
            self.spec_inflight += 1;
        }
    }

    /// Resolve unresolved jobs, in enqueue order, up to and including the
    /// job for `(region, key)`. Blocks on host completion (wall clock
    /// only); virtual completion times come from the worker clocks. The
    /// fault plan is consulted for [`FaultPoint::WorkerSlow`] per
    /// resolved job, delaying its virtual `ready_at`.
    fn resolve_until(&mut self, region: u16, key: &[u64], mut faults: Option<&mut FaultState>) {
        while let Some(front) = self.queue.front() {
            let target = front.region == region && front.key == key;
            let job = self.queue.pop_front().expect("front exists");
            // Receivers are consumed exactly once and the Mutex exists
            // only to keep `Session` `Sync`; a poisoned one (a panic
            // elsewhere on this thread) still holds a valid receiver.
            let reply = job
                .rx
                .into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .recv()
                // Workers catch job panics, so a dead channel means the
                // pool was torn down under us; treat like a panic so the
                // region degrades to its fallback rather than aborting.
                .unwrap_or_else(|_| {
                    Err(JobFailure::Panic(
                        "background stitch worker dropped its reply channel".to_string(),
                    ))
                });
            let slot = self
                .jobs
                .get_mut(&(job.region, job.key.clone()))
                .expect("queued job tracked");
            if job.speculative {
                self.spec_inflight -= 1;
            }
            *slot = match reply {
                Ok(out) => {
                    let stitch_cycles = out.stitched.stats.cycles;
                    // Min-clock virtual worker assignment (ties: lowest
                    // index) — deterministic, host-independent.
                    let w = (0..self.clocks.len())
                        .min_by_key(|&i| self.clocks[i])
                        .expect("at least one worker");
                    let mut ready_at =
                        self.clocks[w].max(job.enqueue_cycles) + out.setup_cycles + stitch_cycles;
                    if let Some(delay) = faults
                        .as_deref_mut()
                        .and_then(|f| f.fire(FaultPoint::WorkerSlow, job.region))
                    {
                        ready_at += delay;
                    }
                    self.clocks[w] = ready_at;
                    if self.collect {
                        self.events.push(TraceEvent {
                            at: ready_at,
                            clock: ClockDomain::Worker(w as u16),
                            kind: EventKind::BgReady {
                                region: job.region,
                                speculative: job.speculative,
                            },
                        });
                    }
                    JobState::Ready {
                        stitched: Arc::new(out.stitched),
                        ready_at,
                        setup_cycles: out.setup_cycles,
                        stitch_cycles,
                        speculative: job.speculative,
                    }
                }
                Err(failure) => {
                    let panicked = matches!(failure, JobFailure::Panic(_));
                    self.failures.push(BgFailure {
                        region: job.region,
                        panicked,
                        injected: job.injected_panic && panicked,
                        message: match failure {
                            JobFailure::Error(m) | JobFailure::Panic(m) => m,
                        },
                    });
                    if panicked {
                        // A panicking job body means the background path
                        // cannot be trusted for this region: pin it to the
                        // statically compiled fallback permanently.
                        self.pinned[job.region as usize] = true;
                    }
                    if self.collect {
                        self.events.push(TraceEvent {
                            at: job.enqueue_cycles,
                            clock: ClockDomain::Session,
                            kind: EventKind::BgFailed {
                                region: job.region,
                                panicked,
                            },
                        });
                    }
                    JobState::Failed
                }
            };
            if target {
                return;
            }
        }
    }

    /// Decide how a cold entry to `(region, key)` proceeds, enqueuing a
    /// demand job if none exists. `now` is the session cycle counter after
    /// the trap/lookup charges; the caller adds the dispatch charge that
    /// [`TierDecision::Fallback`] with a fresh job implies via
    /// [`TieredState::charge_for_enqueues`].
    pub(crate) fn decide(
        &mut self,
        vm: &Vm,
        region: u16,
        key: &[u64],
        stitch_opts: &StitchOptions,
        now: u64,
        faults: Option<&mut FaultState>,
    ) -> (TierDecision, u64) {
        if self.pinned[region as usize] {
            return (TierDecision::Fallback, 0);
        }
        let mut enqueued = 0u64;
        if !self.has_job(region, key) {
            let at = now + self.opts.dispatch_cycles;
            self.enqueue(vm, region, key.to_vec(), false, stitch_opts, at, faults);
            enqueued = 1;
            return (TierDecision::Fallback, enqueued);
        }
        if matches!(
            self.jobs.get(&(region, key.to_vec())),
            Some(JobState::Pending)
        ) {
            self.resolve_until(region, key, faults);
        }
        let decision = match self.jobs.get(&(region, key.to_vec())) {
            Some(JobState::Ready { ready_at, .. }) if *ready_at <= now => {
                match self.jobs.remove(&(region, key.to_vec())) {
                    Some(JobState::Ready {
                        stitched,
                        setup_cycles,
                        stitch_cycles,
                        speculative,
                        ..
                    }) => TierDecision::Install {
                        stitched,
                        setup_cycles,
                        stitch_cycles,
                        speculative,
                    },
                    _ => unreachable!("checked above"),
                }
            }
            Some(JobState::Ready { .. }) => TierDecision::Fallback,
            Some(JobState::Pending) => TierDecision::Fallback,
            Some(JobState::Failed) | None => {
                self.jobs.remove(&(region, key.to_vec()));
                if self.pinned[region as usize] {
                    // Resolution just pinned the region (worker panic):
                    // stay on the fallback copy forever.
                    TierDecision::Fallback
                } else {
                    TierDecision::Synchronous
                }
            }
        };
        (decision, enqueued)
    }

    /// Feed the predictor for `region` with an observed key and, with
    /// speculation enabled, enqueue predicted keys that are neither cached
    /// (`is_cached`) nor already jobbed, up to the in-flight cap. Returns
    /// the number of jobs enqueued (the caller charges dispatch cycles for
    /// each).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn observe_and_speculate(
        &mut self,
        vm: &Vm,
        region: u16,
        key: &[u64],
        is_cached: &dyn Fn(&[u64]) -> bool,
        stitch_opts: &StitchOptions,
        now: u64,
        mut faults: Option<&mut FaultState>,
    ) -> u64 {
        if key.is_empty() || self.pinned[region as usize] {
            return 0;
        }
        self.predictors[region as usize].observe(key);
        if !self.opts.speculate {
            return 0;
        }
        let mut enqueued = 0u64;
        for pk in self.predictors[region as usize].predict(self.opts.speculate_depth) {
            if self.spec_inflight >= self.opts.max_inflight {
                break;
            }
            if pk.as_slice() == key || is_cached(&pk) || self.has_job(region, &pk) {
                continue;
            }
            let at = now + (enqueued + 1) * self.opts.dispatch_cycles;
            self.enqueue(vm, region, pk, true, stitch_opts, at, faults.as_deref_mut());
            enqueued += 1;
        }
        enqueued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_follows_strides() {
        let mut p = KeyPredictor::default();
        for k in 1..=5u64 {
            p.observe(&[k, 100]);
        }
        let pred = p.predict(3);
        assert_eq!(pred[..3], [vec![6, 100], vec![7, 100], vec![8, 100]]);
    }

    #[test]
    fn predictor_constant_repeats_predict_nothing_new() {
        let mut p = KeyPredictor::default();
        for _ in 0..10 {
            p.observe(&[42]);
        }
        // Zero stride and the only frequent key is the last one: nothing
        // useful to pre-stitch.
        assert!(p.predict(4).is_empty());
    }

    #[test]
    fn predictor_alternating_uses_frequency() {
        let mut p = KeyPredictor::default();
        for i in 0..10u64 {
            p.observe(&[if i % 2 == 0 { 7 } else { 9 }]);
        }
        // Stride alternates ±2; the frequency table still knows both keys.
        let pred = p.predict(4);
        assert!(pred.contains(&vec![7]) || pred.contains(&vec![9]));
    }

    #[test]
    fn predictor_survives_adversarial_streams() {
        // Wrapping arithmetic + bounded tables: no panics, no unbounded
        // growth, whatever the stream.
        let mut p = KeyPredictor::default();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..10_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Mix lengths and extreme values.
            match i % 4 {
                0 => p.observe(&[x]),
                1 => p.observe(&[u64::MAX, 0, x]),
                2 => p.observe(&[]),
                _ => p.observe(&[x, x.wrapping_mul(i)]),
            }
            let _ = p.predict(4);
        }
        assert!(p.freq.len() <= FREQ_CAP);
    }

    #[test]
    fn predictor_wrapping_stride_at_extremes() {
        let mut p = KeyPredictor::default();
        p.observe(&[u64::MAX - 2]);
        p.observe(&[u64::MAX - 1]);
        p.observe(&[u64::MAX]);
        let pred = p.predict(2);
        assert_eq!(pred[..2], [vec![0], vec![1]]); // wraps, no panic
    }
}
