//! # dyncomp
//!
//! A from-scratch reproduction of **"Fast, Effective Dynamic Compilation"**
//! (Auslander, Philipose, Chambers, Eggers, Bershad — PLDI 1996): staged
//! dynamic compilation for a C subset, targeting a simulated Alpha-like
//! machine with deterministic cycle accounting.
//!
//! The system has two halves, exactly as in the paper:
//!
//! * a **static compiler** ([`Compiler`]) that parses annotated MiniC,
//!   runs the run-time-constants + reachability analyses (§3.1), splits
//!   each `dynamicRegion` into set-up code and machine-code templates
//!   with holes (§3.2), optimizes (§3.3), and generates simalpha code and
//!   stitcher directives (§3.4); and
//! * a **run-time** ([`Engine`]) that executes programs on the simulated
//!   machine: the first entry to a dynamic region runs its set-up code,
//!   then the **stitcher** (§4) instantiates the templates into optimized
//!   executable code, which is installed and (for unkeyed regions) wired
//!   in by patching the region entry into a direct branch — "the
//!   dynamically-compiled templates become part of the application".
//!   Regions annotated `key(…)` keep a keyed code cache instead.
//!
//! ## Quick start
//!
//! ```
//! use dyncomp::{Compiler, Engine};
//!
//! let program = Compiler::new().compile(
//!     "int poly(int c, int x) {
//!          dynamicRegion (c) {
//!              return c * x * x + c * x + c;
//!          }
//!      }",
//! )?;
//! let mut engine = Engine::new(&program);
//! assert_eq!(engine.call("poly", &[3, 10])?, 333);
//! assert_eq!(engine.call("poly", &[3, 1])?, 9); // reuses stitched code
//! let report = engine.region_report(0);
//! assert_eq!(report.stitches, 1);
//! // The entry was patched to a branch, so only the first call trapped.
//! assert_eq!(report.invocations, 1);
//! # Ok::<(), dyncomp::Error>(())
//! ```
//!
//! ## Many sessions, one program
//!
//! The compile artifact is immutable and `Send + Sync`: wrap it in an
//! [`Arc`](std::sync::Arc) and any number of [`Session`]s — on any
//! threads — execute it concurrently, each with its own VM and
//! deterministic cycle counts. An optional process-wide
//! [`SharedCodeCache`] lets sessions reuse each other's stitched code.
//!
//! ```
//! use dyncomp::{Compiler, Session};
//! use std::sync::Arc;
//!
//! let program = Arc::new(Compiler::new().compile(
//!     "int poly(int c, int x) {
//!          dynamicRegion (c) {
//!              return c * x * x + c * x + c;
//!          }
//!      }",
//! )?);
//! let results: Vec<u64> = std::thread::scope(|s| {
//!     let handles: Vec<_> = (0..4)
//!         .map(|_| {
//!             let program = Arc::clone(&program);
//!             s.spawn(move || Session::new(program).call("poly", &[3, 10]).unwrap())
//!         })
//!         .collect();
//!     handles.into_iter().map(|h| h.join().unwrap()).collect()
//! });
//! assert_eq!(results, vec![333; 4]);
//! # Ok::<(), dyncomp::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod advisor;
pub mod cache;
pub mod engine;
pub mod faults;
pub mod measure;
pub mod tiered;
pub mod trace;

pub use advisor::{advise, FunctionAdvice, Hypothesis};
pub use cache::{SharedCacheStats, SharedCodeCache, SharedKey};
pub use engine::{Engine, EngineOptions, NativeReport, RegionReport, Session};
pub use faults::{
    FailureKind, FailureRecord, FaultPlan, FaultPoint, HealthReport, Injection, RecoveryPolicy,
};
pub use measure::{
    measure_kernel, measure_kernel_full, measure_kernel_with, run_session,
    run_session_differential, run_session_profiled, run_session_timed, run_session_trace,
    BackendRun, DifferentialOutcome, KernelMeasurement, KernelSetup, OptProfile, ProfiledSession,
    SessionOutcome, SessionTrace,
};
pub use tiered::{KeyPredictor, TieredOptions};
pub use trace::{
    ClockDomain, CycleHistogram, EventKind, RegionProfile, TraceEvent, TraceOptions, TraceState,
};

use dyncomp_analysis::AnalysisConfig;
use dyncomp_codegen::CompiledModule;
use dyncomp_frontend::{FrontendError, LowerOptions, TypeTable};
use dyncomp_ir::{FuncId, Module};
use dyncomp_specialize::{RegionSpec, SpecError, SpecStats};
use std::fmt;

/// Any compilation or execution failure.
#[derive(Debug)]
pub enum Error {
    /// Front-end (parse or lowering) failure.
    Frontend(FrontendError),
    /// IR verification failure (an internal pipeline bug).
    Verify(dyncomp_ir::verify::VerifyError),
    /// Region specialization failure.
    Specialize(SpecError),
    /// Code generation failure.
    Codegen(dyncomp_codegen::CodegenError),
    /// Run-time stitching failure.
    Stitch(dyncomp_stitcher::StitchError),
    /// VM fault.
    Vm(dyncomp_machine::VmError),
    /// Unknown function name.
    NoSuchFunction(String),
    /// Trace self-check failure: cycle attribution summed over trace
    /// events disagrees with the [`RegionReport`] counters.
    Trace(String),
    /// Backend-differential failure: a native-backend run diverged from
    /// the VM oracle (checksum or cycle mismatch — see
    /// [`measure::run_session_differential`]).
    Differential(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Frontend(e) => e.fmt(f),
            Error::Verify(e) => e.fmt(f),
            Error::Specialize(e) => e.fmt(f),
            Error::Codegen(e) => e.fmt(f),
            Error::Stitch(e) => e.fmt(f),
            Error::Vm(e) => e.fmt(f),
            Error::NoSuchFunction(n) => write!(f, "no function named `{n}`"),
            Error::Trace(m) => write!(f, "trace self-check failed: {m}"),
            Error::Differential(m) => write!(f, "backend differential failed: {m}"),
        }
    }
}

impl std::error::Error for Error {}

macro_rules! from_err {
    ($var:ident, $ty:ty) => {
        impl From<$ty> for Error {
            fn from(e: $ty) -> Self {
                Error::$var(e)
            }
        }
    };
}
from_err!(Frontend, FrontendError);
from_err!(Verify, dyncomp_ir::verify::VerifyError);
from_err!(Specialize, SpecError);
from_err!(Codegen, dyncomp_codegen::CodegenError);
from_err!(Stitch, dyncomp_stitcher::StitchError);
from_err!(Vm, dyncomp_machine::VmError);

/// Static-compiler configuration.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Honor `dynamicRegion`/`unrolled`/`dynamic` annotations. With
    /// `false`, the same source compiles as plain C — the statically
    /// compiled baseline of the paper's §5 measurements.
    pub dynamic: bool,
    /// Run the global optimizer (§3.3). On for both baseline and dynamic
    /// compilation, as in the paper (the baseline is *optimized* code).
    pub optimize: bool,
    /// Constants/reachability analysis configuration (§3.1 / ablation).
    pub analysis: AnalysisConfig,
    /// Lower a statically compiled fallback copy of each region body so a
    /// tiered engine can run it while set-up + stitching happen on a
    /// background worker ([`TieredOptions`]). Off by default: the default
    /// artifact stays bit-identical to the untiered compiler's output.
    pub tiered_fallback: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            dynamic: true,
            optimize: true,
            analysis: AnalysisConfig::default(),
            tiered_fallback: false,
        }
    }
}

/// The static compiler.
#[derive(Clone, Debug, Default)]
pub struct Compiler {
    options: CompileOptions,
}

impl Compiler {
    /// A compiler with default options (annotations honored, optimizer on).
    pub fn new() -> Self {
        Compiler {
            options: CompileOptions::default(),
        }
    }

    /// A compiler with explicit options.
    pub fn with_options(options: CompileOptions) -> Self {
        Compiler { options }
    }

    /// A compiler for the static baseline (annotations ignored).
    pub fn static_baseline() -> Self {
        Compiler::with_options(CompileOptions {
            dynamic: false,
            ..Default::default()
        })
    }

    /// A compiler producing a tiered artifact: annotations honored, plus a
    /// statically compiled fallback copy per region for the tiered engine.
    pub fn tiered() -> Self {
        Compiler::with_options(CompileOptions {
            tiered_fallback: true,
            ..Default::default()
        })
    }

    /// Compile MiniC source through the full static pipeline.
    ///
    /// # Errors
    /// Reports the first front-end, analysis, specialization or code
    /// generation failure.
    pub fn compile(&self, src: &str) -> Result<Program, Error> {
        let lowered = dyncomp_frontend::compile(
            src,
            &LowerOptions {
                honor_annotations: self.options.dynamic,
                tiered_fallback: self.options.tiered_fallback,
            },
        )?;
        let mut module = lowered.module;
        let mut specs: Vec<(FuncId, RegionSpec)> = Vec::new();

        for fid in module.funcs.ids().collect::<Vec<_>>() {
            let f = &mut module.funcs[fid];
            dyncomp_ir::ssa::construct_ssa(f);
            if self.options.optimize {
                dyncomp_opt::optimize(
                    f,
                    &dyncomp_opt::OptOptions {
                        cfg_simplify: true,
                        hole_scope: None,
                    },
                );
            }
            dyncomp_ir::cfg::split_critical_edges(f);
            f.canonicalize_region_roots();
            dyncomp_ir::verify::verify(f)?;

            let mut template_scope = dyncomp_ir::IdSet::new();
            for rid in f.regions.ids().collect::<Vec<_>>() {
                let mut analysis = dyncomp_analysis::analyze_region(f, rid, &self.options.analysis);
                if dyncomp_specialize::legalize_dynamic_switches(f, rid, &analysis) {
                    // New compare-chain blocks exist: restore the
                    // split-critical-edges invariant and refresh the
                    // analysis over the new CFG.
                    dyncomp_ir::cfg::split_critical_edges(f);
                    dyncomp_ir::verify::verify(f)?;
                    analysis = dyncomp_analysis::analyze_region(f, rid, &self.options.analysis);
                }
                let spec = dyncomp_specialize::specialize_region(f, rid, &analysis)?;
                dyncomp_ir::verify::verify(f)?;
                for &b in &spec.template_blocks {
                    template_scope.insert(b);
                }
                specs.push((fid, spec));
            }
            if self.options.optimize && !f.regions.is_empty() {
                // Post-split optimization with the hole barrier (§3.3).
                dyncomp_opt::optimize(
                    f,
                    &dyncomp_opt::OptOptions {
                        cfg_simplify: false,
                        hole_scope: Some(template_scope),
                    },
                );
                dyncomp_ir::verify::verify(f)?;
            }
        }

        let spec_stats: Vec<(FuncId, SpecStats)> =
            specs.iter().map(|(f, s)| (*f, s.stats)).collect();
        let compiled = dyncomp_codegen::compile_module(&mut module, &specs)?;
        Ok(Program {
            id: NEXT_PROGRAM_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            module,
            types: lowered.types,
            compiled,
            spec_stats,
        })
    }
}

/// Process-wide program identity source: every compile gets a distinct id
/// so [`SharedCodeCache`] entries from different programs never collide.
static NEXT_PROGRAM_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A fully statically compiled program, ready to run on a [`Session`].
///
/// The artifact is immutable after compilation and `Send + Sync`: wrap it
/// in an `Arc` and any number of sessions — on any threads — can execute
/// it concurrently. All mutable run-time state lives in [`Session`].
#[derive(Debug)]
pub struct Program {
    /// Process-unique identity (see [`Program::id`]).
    id: u64,
    /// The final IR (post-SSA-destruction; for inspection).
    pub module: Module,
    /// Struct layouts for host-side data construction.
    pub types: TypeTable,
    /// The compiled machine code, templates and region metadata.
    pub compiled: CompiledModule,
    /// Per-region planned-optimization counters (Table 3's static half).
    pub spec_stats: Vec<(FuncId, SpecStats)>,
}

impl Program {
    /// Entry address of a function (for advanced/VM-level use).
    pub fn entry_of(&self, name: &str) -> Option<u32> {
        self.compiled.entry_of(name)
    }

    /// Number of dynamic regions.
    pub fn region_count(&self) -> usize {
        self.compiled.regions.len()
    }

    /// Process-unique identity, part of every [`SharedKey`]: stitched code
    /// cached by sessions of one program is never served to another.
    pub fn id(&self) -> u64 {
        self.id
    }
}

// The compile artifact must stay thread-shareable; a non-Sync field
// sneaking into any of its component crates should fail compilation here,
// not at a distant `Arc<Program>` use site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Program>();
};

#[cfg(test)]
mod tests;
