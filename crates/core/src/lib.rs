//! # dyncomp
//!
//! A from-scratch reproduction of **"Fast, Effective Dynamic Compilation"**
//! (Auslander, Philipose, Chambers, Eggers, Bershad — PLDI 1996): staged
//! dynamic compilation for a C subset, targeting a simulated Alpha-like
//! machine with deterministic cycle accounting.
//!
//! The system has two halves, exactly as in the paper:
//!
//! * a **static compiler** ([`Compiler`]) that parses annotated MiniC,
//!   runs the run-time-constants + reachability analyses (§3.1), splits
//!   each `dynamicRegion` into set-up code and machine-code templates
//!   with holes (§3.2), optimizes (§3.3), and generates simalpha code and
//!   stitcher directives (§3.4); and
//! * a **run-time** ([`Engine`]) that executes programs on the simulated
//!   machine: the first entry to a dynamic region runs its set-up code,
//!   then the **stitcher** (§4) instantiates the templates into optimized
//!   executable code, which is installed and (for unkeyed regions) wired
//!   in by patching the region entry into a direct branch — "the
//!   dynamically-compiled templates become part of the application".
//!   Regions annotated `key(…)` keep a keyed code cache instead.
//!
//! ## Quick start
//!
//! ```
//! use dyncomp::{Compiler, Engine};
//!
//! let program = Compiler::new().compile(
//!     "int poly(int c, int x) {
//!          dynamicRegion (c) {
//!              return c * x * x + c * x + c;
//!          }
//!      }",
//! )?;
//! let mut engine = Engine::new(&program);
//! assert_eq!(engine.call("poly", &[3, 10])?, 333);
//! assert_eq!(engine.call("poly", &[3, 1])?, 9); // reuses stitched code
//! let report = engine.region_report(0);
//! assert_eq!(report.stitches, 1);
//! // The entry was patched to a branch, so only the first call trapped.
//! assert_eq!(report.invocations, 1);
//! # Ok::<(), dyncomp::Error>(())
//! ```
//!
//! ## Many sessions, one program
//!
//! The compile artifact is immutable and `Send + Sync`: wrap it in an
//! [`Arc`](std::sync::Arc) and any number of [`Session`]s — on any
//! threads — execute it concurrently, each with its own VM and
//! deterministic cycle counts. An optional process-wide
//! [`SharedCodeCache`] lets sessions reuse each other's stitched code.
//!
//! ```
//! use dyncomp::{Compiler, Session};
//! use std::sync::Arc;
//!
//! let program = Arc::new(Compiler::new().compile(
//!     "int poly(int c, int x) {
//!          dynamicRegion (c) {
//!              return c * x * x + c * x + c;
//!          }
//!      }",
//! )?);
//! let results: Vec<u64> = std::thread::scope(|s| {
//!     let handles: Vec<_> = (0..4)
//!         .map(|_| {
//!             let program = Arc::clone(&program);
//!             s.spawn(move || Session::new(program).call("poly", &[3, 10]).unwrap())
//!         })
//!         .collect();
//!     handles.into_iter().map(|h| h.join().unwrap()).collect()
//! });
//! assert_eq!(results, vec![333; 4]);
//! # Ok::<(), dyncomp::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod advisor;
pub mod cache;
pub mod engine;
pub mod faults;
pub mod measure;
pub mod tiered;
pub mod trace;

pub use advisor::{advise, FunctionAdvice, Hypothesis};
pub use cache::{SharedCacheStats, SharedCodeCache, SharedKey};
pub use engine::{Engine, EngineOptions, NativeReport, RegionReport, Session};
pub use faults::{
    FailureKind, FailureRecord, FaultPlan, FaultPoint, HealthReport, Injection, RecoveryPolicy,
};
pub use measure::{
    measure_kernel, measure_kernel_full, measure_kernel_with, run_session,
    run_session_differential, run_session_profiled, run_session_timed, run_session_trace,
    BackendRun, DifferentialOutcome, KernelMeasurement, KernelSetup, OptProfile, ProfiledSession,
    SessionOutcome, SessionTrace,
};
pub use tiered::{KeyPredictor, TieredOptions};
pub use trace::{
    ClockDomain, CycleHistogram, EventKind, RegionProfile, TraceEvent, TraceOptions, TraceState,
};

/// Region sentinel for native-backend trace events that belong to the
/// whole-static-code instance rather than any dynamic region (it has no
/// [`RegionReport`] row; per-region aggregation skips it).
pub const STATIC_REGION: u16 = u16::MAX;

use dyncomp_analysis::AnalysisConfig;
use dyncomp_codegen::CompiledModule;
use dyncomp_frontend::{FrontendError, LowerOptions, TypeTable};
use dyncomp_ir::{FuncId, Module};
use dyncomp_specialize::{RegionSpec, SpecError, SpecStats};
use std::fmt;

/// Any compilation or execution failure.
#[derive(Debug)]
pub enum Error {
    /// Front-end (parse or lowering) failure.
    Frontend(FrontendError),
    /// IR verification failure (an internal pipeline bug).
    Verify(dyncomp_ir::verify::VerifyError),
    /// Region specialization failure.
    Specialize(SpecError),
    /// Code generation failure.
    Codegen(dyncomp_codegen::CodegenError),
    /// Run-time stitching failure.
    Stitch(dyncomp_stitcher::StitchError),
    /// VM fault.
    Vm(dyncomp_machine::VmError),
    /// Unknown function name.
    NoSuchFunction(String),
    /// Trace self-check failure: cycle attribution summed over trace
    /// events disagrees with the [`RegionReport`] counters.
    Trace(String),
    /// Backend-differential failure: a native-backend run diverged from
    /// the VM oracle (checksum or cycle mismatch — see
    /// [`measure::run_session_differential`]).
    Differential(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Frontend(e) => e.fmt(f),
            Error::Verify(e) => e.fmt(f),
            Error::Specialize(e) => e.fmt(f),
            Error::Codegen(e) => e.fmt(f),
            Error::Stitch(e) => e.fmt(f),
            Error::Vm(e) => e.fmt(f),
            Error::NoSuchFunction(n) => write!(f, "no function named `{n}`"),
            Error::Trace(m) => write!(f, "trace self-check failed: {m}"),
            Error::Differential(m) => write!(f, "backend differential failed: {m}"),
        }
    }
}

impl std::error::Error for Error {}

macro_rules! from_err {
    ($var:ident, $ty:ty) => {
        impl From<$ty> for Error {
            fn from(e: $ty) -> Self {
                Error::$var(e)
            }
        }
    };
}
from_err!(Frontend, FrontendError);
from_err!(Verify, dyncomp_ir::verify::VerifyError);
from_err!(Specialize, SpecError);
from_err!(Codegen, dyncomp_codegen::CodegenError);
from_err!(Stitch, dyncomp_stitcher::StitchError);
from_err!(Vm, dyncomp_machine::VmError);

/// Demand-driven inlining configuration (ROADMAP item 4; Way & Pollock).
///
/// With `depth == 0` (the default) the pass is off and the pipeline is
/// bit-identical to earlier releases: calls inside dynamic regions are
/// compiled as template calls (or rejected if the callee itself contains
/// regions). With `depth > 0`, after the per-function prep passes the
/// compiler repeatedly re-runs the run-time-constants analysis over every
/// region and inlines any call whose arguments include a run-time
/// constant — the *demand* — so specialization flows through the callee
/// body. Each round only considers calls that existed before the round,
/// so `depth` bounds the transitive inlining depth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InlineOptions {
    /// Maximum inlining depth (rounds of the demand-driven fixpoint).
    /// `0` disables the pass.
    pub depth: u32,
    /// Refuse to inline callees with more placed instructions than this.
    pub max_callee_insts: usize,
    /// Stop inlining into a function once this many instructions have
    /// been cloned into it (growth budget).
    pub max_growth: usize,
}

impl Default for InlineOptions {
    fn default() -> Self {
        InlineOptions {
            depth: 0,
            max_callee_insts: 512,
            max_growth: 4096,
        }
    }
}

impl InlineOptions {
    /// Enabled at `depth`, with default budgets.
    pub fn at_depth(depth: u32) -> Self {
        InlineOptions {
            depth,
            ..Default::default()
        }
    }
}

/// One call site the demand-driven inliner expanded (recorded on the
/// [`Program`] artifact for observability: the engine replays these as
/// `Inlined` trace events when the region's set-up code runs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InlineSite {
    /// Function the call site lived in.
    pub func: FuncId,
    /// Global region index (as used by [`Session::region_report`]).
    pub region_index: u16,
    /// The inlined callee.
    pub callee: FuncId,
    /// Callee name, for rendering.
    pub callee_name: String,
    /// Fixpoint round that expanded the site (1-based; bounded by
    /// [`InlineOptions::depth`]).
    pub depth: u32,
    /// Number of instructions cloned into the caller.
    pub cloned_insts: usize,
}

/// Static-compiler configuration.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Honor `dynamicRegion`/`unrolled`/`dynamic` annotations. With
    /// `false`, the same source compiles as plain C — the statically
    /// compiled baseline of the paper's §5 measurements.
    pub dynamic: bool,
    /// Run the global optimizer (§3.3). On for both baseline and dynamic
    /// compilation, as in the paper (the baseline is *optimized* code).
    pub optimize: bool,
    /// Constants/reachability analysis configuration (§3.1 / ablation).
    pub analysis: AnalysisConfig,
    /// Lower a statically compiled fallback copy of each region body so a
    /// tiered engine can run it while set-up + stitching happen on a
    /// background worker ([`TieredOptions`]). Off by default: the default
    /// artifact stays bit-identical to the untiered compiler's output.
    pub tiered_fallback: bool,
    /// Demand-driven inlining through dynamic regions (off by default).
    pub inline: InlineOptions,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            dynamic: true,
            optimize: true,
            analysis: AnalysisConfig::default(),
            tiered_fallback: false,
            inline: InlineOptions::default(),
        }
    }
}

/// The static compiler.
#[derive(Clone, Debug, Default)]
pub struct Compiler {
    options: CompileOptions,
}

impl Compiler {
    /// A compiler with default options (annotations honored, optimizer on).
    pub fn new() -> Self {
        Compiler {
            options: CompileOptions::default(),
        }
    }

    /// A compiler with explicit options.
    pub fn with_options(options: CompileOptions) -> Self {
        Compiler { options }
    }

    /// A compiler for the static baseline (annotations ignored).
    pub fn static_baseline() -> Self {
        Compiler::with_options(CompileOptions {
            dynamic: false,
            ..Default::default()
        })
    }

    /// A compiler producing a tiered artifact: annotations honored, plus a
    /// statically compiled fallback copy per region for the tiered engine.
    pub fn tiered() -> Self {
        Compiler::with_options(CompileOptions {
            tiered_fallback: true,
            ..Default::default()
        })
    }

    /// A compiler with demand-driven inlining enabled at `depth`
    /// (otherwise default options).
    pub fn with_inline_depth(depth: u32) -> Self {
        Compiler::with_options(CompileOptions {
            inline: InlineOptions::at_depth(depth),
            ..Default::default()
        })
    }

    /// Compile MiniC source through the full static pipeline.
    ///
    /// # Errors
    /// Reports the first front-end, analysis, specialization or code
    /// generation failure.
    pub fn compile(&self, src: &str) -> Result<Program, Error> {
        let lowered = dyncomp_frontend::compile(
            src,
            &LowerOptions {
                honor_annotations: self.options.dynamic,
                tiered_fallback: self.options.tiered_fallback,
            },
        )?;
        let mut module = lowered.module;
        let mut specs: Vec<(FuncId, RegionSpec)> = Vec::new();

        // Phase 1: per-function prep (SSA, global optimization, CFG
        // invariants). Region-independent, so it runs for every function
        // before any cross-function work.
        for fid in module.funcs.ids().collect::<Vec<_>>() {
            self.prep_function(&mut module.funcs[fid])?;
        }

        // Phase 2: demand-driven inlining through dynamic regions (off at
        // depth 0, leaving phases 1+3 exactly the historical pipeline).
        let inline_sites = if self.options.dynamic && self.options.inline.depth > 0 {
            self.inline_fixpoint(&mut module)?
        } else {
            Vec::new()
        };

        // Phase 3: per-region specialization and post-split optimization.
        for fid in module.funcs.ids().collect::<Vec<_>>() {
            let f = &mut module.funcs[fid];
            let mut template_scope = dyncomp_ir::IdSet::new();
            for rid in f.regions.ids().collect::<Vec<_>>() {
                let mut analysis = dyncomp_analysis::analyze_region(f, rid, &self.options.analysis);
                if dyncomp_specialize::legalize_dynamic_switches(f, rid, &analysis) {
                    // New compare-chain blocks exist: restore the
                    // split-critical-edges invariant and refresh the
                    // analysis over the new CFG.
                    dyncomp_ir::cfg::split_critical_edges(f);
                    dyncomp_ir::verify::verify(f)?;
                    analysis = dyncomp_analysis::analyze_region(f, rid, &self.options.analysis);
                }
                let spec = dyncomp_specialize::specialize_region(f, rid, &analysis)?;
                dyncomp_ir::verify::verify(f)?;
                for &b in &spec.template_blocks {
                    template_scope.insert(b);
                }
                specs.push((fid, spec));
            }
            if self.options.optimize && !f.regions.is_empty() {
                // Post-split optimization with the hole barrier (§3.3).
                dyncomp_opt::optimize(
                    f,
                    &dyncomp_opt::OptOptions {
                        cfg_simplify: false,
                        hole_scope: Some(template_scope),
                    },
                );
                dyncomp_ir::verify::verify(f)?;
            }
        }

        let spec_stats: Vec<(FuncId, SpecStats)> =
            specs.iter().map(|(f, s)| (*f, s.stats)).collect();
        let compiled = dyncomp_codegen::compile_module(&mut module, &specs)?;
        Ok(Program {
            id: NEXT_PROGRAM_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            module,
            types: lowered.types,
            compiled,
            spec_stats,
            inline_sites,
        })
    }

    /// Phase-1 prep for one function: into SSA, optimize, restore the
    /// split-critical-edges invariant, canonicalize region roots, verify.
    /// Also used to re-establish the invariants after each inline step.
    fn prep_function(&self, f: &mut dyncomp_ir::Function) -> Result<(), Error> {
        if !f.is_ssa {
            dyncomp_ir::ssa::construct_ssa(f);
        }
        if self.options.optimize {
            dyncomp_opt::optimize(
                f,
                &dyncomp_opt::OptOptions {
                    cfg_simplify: true,
                    hole_scope: None,
                },
            );
        }
        dyncomp_ir::cfg::split_critical_edges(f);
        f.canonicalize_region_roots();
        dyncomp_ir::verify::verify(f)?;
        Ok(())
    }

    /// Phase 2: the demand-driven inlining fixpoint.
    ///
    /// Per round, for every function with dynamic regions, re-run the
    /// run-time-constants analysis and inline any region call site whose
    /// arguments include a run-time constant (the *demand*: specialization
    /// is blocked at that call and would profit from seeing the callee).
    /// Only call sites that existed before the round are eligible, so
    /// [`InlineOptions::depth`] bounds transitive depth; budgets bound
    /// callee size and total growth. After every step the prep invariants
    /// are re-established and the verifier runs, so a buggy clone fails
    /// compile-time, not stitch-time.
    fn inline_fixpoint(&self, module: &mut Module) -> Result<Vec<InlineSite>, Error> {
        let opts = &self.options.inline;
        let mut sites: Vec<InlineSite> = Vec::new();
        let mut grown: std::collections::HashMap<FuncId, usize> = std::collections::HashMap::new();
        // Global region index = regions of earlier functions + local index
        // (the same fid-order numbering `compile_module` uses).
        let region_base: Vec<u16> = {
            let mut base = 0u16;
            module
                .funcs
                .iter()
                .map(|f| {
                    let b = base;
                    base += f.regions.len() as u16;
                    b
                })
                .collect()
        };

        for round in 1..=opts.depth {
            let mut any = false;
            for fid in module.funcs.ids().collect::<Vec<_>>() {
                if module.funcs[fid].regions.is_empty() {
                    continue;
                }
                // Snapshot: only calls that exist now are eligible this
                // round (clones introduced below wait for the next round).
                let eligible_max = module.funcs[fid].insts.len();
                let mut rejected: Vec<dyncomp_ir::InstId> = Vec::new();
                loop {
                    if grown.get(&fid).copied().unwrap_or(0) >= opts.max_growth {
                        break;
                    }
                    let Some((rid, block, call, callee)) =
                        self.find_demand(module, fid, eligible_max, &rejected)
                    else {
                        break;
                    };
                    let callee_fn = module.funcs[callee].clone();
                    match dyncomp_ir::inline_call(&mut module.funcs[fid], block, call, &callee_fn) {
                        Ok(done) => {
                            *grown.entry(fid).or_insert(0) += done.cloned_insts;
                            sites.push(InlineSite {
                                func: fid,
                                region_index: region_base[fid.index()] + rid.index() as u16,
                                callee,
                                callee_name: callee_fn.name.clone(),
                                depth: round,
                                cloned_insts: done.cloned_insts,
                            });
                            self.prep_function(&mut module.funcs[fid])?;
                            any = true;
                        }
                        Err(_refused) => {
                            // Refusals leave the caller untouched; remember
                            // the site so the search moves past it.
                            rejected.push(call);
                        }
                    }
                }
            }
            if !any {
                break;
            }
        }
        dyncomp_ir::verify::verify_module(module)?;
        Ok(sites)
    }

    /// Find one call site the region analysis demands inlined: a call
    /// placed in a region block, at least one argument a run-time constant,
    /// callee small enough, not the function itself, not already rejected.
    fn find_demand(
        &self,
        module: &Module,
        fid: FuncId,
        eligible_max: usize,
        rejected: &[dyncomp_ir::InstId],
    ) -> Option<(
        dyncomp_ir::RegionId,
        dyncomp_ir::BlockId,
        dyncomp_ir::InstId,
        FuncId,
    )> {
        let f = &module.funcs[fid];
        for rid in f.regions.ids() {
            let analysis = dyncomp_analysis::analyze_region(f, rid, &self.options.analysis);
            let r = &f.regions[rid];
            for b in r.blocks.iter() {
                for &i in &f.blocks[b].insts {
                    if i.index() >= eligible_max || rejected.contains(&i) {
                        continue;
                    }
                    let dyncomp_ir::InstKind::Call { callee, args } = f.kind(i) else {
                        continue;
                    };
                    if *callee == fid {
                        continue; // no self-inlining
                    }
                    let Some(target) = module.funcs.get(*callee) else {
                        continue;
                    };
                    if !target.regions.is_empty()
                        || target.placed_inst_count() > self.options.inline.max_callee_insts
                    {
                        continue;
                    }
                    let demanded = args
                        .iter()
                        .any(|&a| analysis.is_const(a) || r.const_roots.contains(&a));
                    if demanded {
                        return Some((rid, b, i, *callee));
                    }
                }
            }
        }
        None
    }
}

/// Process-wide program identity source: every compile gets a distinct id
/// so [`SharedCodeCache`] entries from different programs never collide.
static NEXT_PROGRAM_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A fully statically compiled program, ready to run on a [`Session`].
///
/// The artifact is immutable after compilation and `Send + Sync`: wrap it
/// in an `Arc` and any number of sessions — on any threads — can execute
/// it concurrently. All mutable run-time state lives in [`Session`].
#[derive(Debug)]
pub struct Program {
    /// Process-unique identity (see [`Program::id`]).
    id: u64,
    /// The final IR (post-SSA-destruction; for inspection).
    pub module: Module,
    /// Struct layouts for host-side data construction.
    pub types: TypeTable,
    /// The compiled machine code, templates and region metadata.
    pub compiled: CompiledModule,
    /// Per-region planned-optimization counters (Table 3's static half).
    pub spec_stats: Vec<(FuncId, SpecStats)>,
    /// Call sites expanded by the demand-driven inliner (empty unless
    /// [`InlineOptions::depth`] > 0).
    pub inline_sites: Vec<InlineSite>,
}

impl Program {
    /// Entry address of a function (for advanced/VM-level use).
    pub fn entry_of(&self, name: &str) -> Option<u32> {
        self.compiled.entry_of(name)
    }

    /// Number of dynamic regions.
    pub fn region_count(&self) -> usize {
        self.compiled.regions.len()
    }

    /// Process-unique identity, part of every [`SharedKey`]: stitched code
    /// cached by sessions of one program is never served to another.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Inline sites recorded for one global region index.
    pub fn inline_sites_for(&self, region_index: u16) -> impl Iterator<Item = &InlineSite> {
        self.inline_sites
            .iter()
            .filter(move |s| s.region_index == region_index)
    }
}

// The compile artifact must stay thread-shareable; a non-Sync field
// sneaking into any of its component crates should fail compilation here,
// not at a distant `Arc<Program>` use site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Program>();
};

#[cfg(test)]
mod tests;
