//! Deterministic structured tracing and per-region metrics.
//!
//! Behind [`crate::EngineOptions::trace`] the session records every
//! region-lifecycle transition as a typed [`TraceEvent`] — region entry,
//! set-up, stitching (with per-category hole/branch/unroll counts), plan
//! patches, shared-cache traffic, tier dispatch/fallback/install,
//! speculation, keyed-cache lookups and evictions, plus the robustness
//! lifecycle (fault injections, recovery retries, quarantines, verifier
//! rejections, budget degradations) — into a bounded
//! per-session ring buffer, while a never-dropping [`RegionProfile`]
//! aggregator accumulates per-region totals, cycle histograms and ratios.
//!
//! # Clock domains
//!
//! Every stamp is read from a *simulated* clock, never from host time:
//!
//! * [`ClockDomain::Session`] — the session's VM cycle counter, stamped
//!   after the charges the event describes were applied.
//! * [`ClockDomain::Worker`] — a virtual background-worker clock from the
//!   tiered overlap model ([`crate::tiered`]); used for `BgReady`, whose
//!   completion time is decided on worker clocks.
//!
//! Because no stamp depends on wall-clock time or host scheduling, a
//! trace is bit-identical across runs and host thread counts; see
//! DESIGN.md ("Observability") for which configurations are additionally
//! invariant across virtual-worker counts.
//!
//! Tracing is observation only: it charges **zero** simulated cycles even
//! when enabled, so cycle accounting (and every benchmark table) is
//! unchanged whether tracing is on or off.
//!
//! # Self-check
//!
//! The aggregates double as an *attribution oracle*:
//! [`TraceState::self_check`] asserts that cycle attribution summed over
//! trace events equals the engine's [`crate::RegionReport`] counters
//! exactly — any drift between the scattered accounting sites (engine,
//! shared cache, tiered pool) and the event stream is an error.

use crate::faults::FaultPoint;
use crate::RegionReport;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Tracing configuration ([`crate::EngineOptions::trace`]).
#[derive(Clone, Debug)]
pub struct TraceOptions {
    /// Ring-buffer capacity in events. When full, the oldest events are
    /// dropped (counted in [`TraceState::dropped`]); the [`RegionProfile`]
    /// aggregates are exact regardless.
    pub capacity: usize,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions { capacity: 1 << 16 }
    }
}

/// Which simulated clock an event stamp was read from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockDomain {
    /// The session's VM cycle counter.
    Session,
    /// Virtual background worker `n` of the tiered overlap model.
    Worker(u16),
}

/// A typed, cycle-stamped trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle stamp on `clock`.
    pub at: u64,
    /// The clock domain `at` was read from.
    pub clock: ClockDomain,
    /// What happened.
    pub kind: EventKind,
}

/// The event taxonomy: one variant per region-lifecycle transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// An `EnterRegion` trap was serviced (patched-away unkeyed entries
    /// bypass the trap and are deliberately not traced — they are plain
    /// branches, invisible to the runtime).
    RegionEnter {
        /// Region number.
        region: u16,
        /// Whether the region has a key tuple.
        keyed: bool,
    },
    /// A keyed code-cache lookup (stamped after the lookup charge).
    KeyedLookup {
        /// Region number.
        region: u16,
        /// Whether a stitched instance was found.
        hit: bool,
    },
    /// A keyed-cache entry was evicted to respect
    /// [`crate::EngineOptions::keyed_cache_capacity`].
    KeyedEvict {
        /// Region number.
        region: u16,
    },
    /// Execution was redirected into the region's set-up code.
    SetupStart {
        /// Region number.
        region: u16,
    },
    /// Set-up code reached its `EndSetup` trap.
    SetupEnd {
        /// Region number.
        region: u16,
        /// VM cycles the set-up run consumed.
        cycles: u64,
    },
    /// The stitcher was invoked on the filled constants table.
    StitchStart {
        /// Region number.
        region: u16,
    },
    /// The stitcher finished one instance (per-category counts are for
    /// this stitch alone, not accumulated).
    StitchEnd {
        /// Region number.
        region: u16,
        /// Cost-model stitcher cycles for this stitch.
        cycles: u64,
        /// Instructions emitted.
        instructions: u32,
        /// Holes patched inline into literal fields.
        holes_inline: u32,
        /// Holes satisfied via the linearized table / inline construction.
        holes_big: u32,
        /// Constant branches resolved.
        const_branches: u32,
        /// Loop iterations unrolled.
        loop_iterations: u32,
        /// Blocks stitched through a precompiled plan.
        plan_hits: u32,
        /// Plan attempts that fell back to the interpretive path.
        plan_misses: u32,
    },
    /// A call site inside the region was inlined at compile time by the
    /// demand-driven pass; replayed once per synchronous stitch so the
    /// trace shows which cross-function specialization each instance
    /// benefited from.
    Inlined {
        /// Region number.
        region: u16,
        /// Function id of the inlined callee.
        callee: u32,
        /// Inlining round that pulled the callee in (1-based).
        depth: u32,
    },
    /// One copy-and-patch plan patch was applied (recorded by the
    /// stitcher when tracing is on).
    PlanPatch {
        /// Region number.
        region: u16,
        /// Output word position patched, relative to the instance base.
        word: u32,
        /// The constant value patched in.
        value: u64,
    },
    /// A process-wide shared-cache probe (stamped after the probe charge).
    CacheLookup {
        /// Region number.
        region: u16,
        /// Whether another session's instance was found.
        hit: bool,
    },
    /// A shared-cache hit was installed (bulk copy + relocation).
    CacheInstall {
        /// Region number.
        region: u16,
        /// Code words installed.
        words: u32,
    },
    /// Publishing to the shared cache evicted older instances.
    CacheEvict {
        /// Region number whose publication triggered the eviction.
        region: u16,
        /// Instances evicted by this publication.
        count: u64,
    },
    /// A demand stitch job was enqueued to the background pool.
    TierDispatch {
        /// Region number.
        region: u16,
    },
    /// The entry ran the statically compiled fallback copy.
    FallbackRun {
        /// Region number.
        region: u16,
    },
    /// A background job resolved successfully onto a virtual worker
    /// (stamped with the worker-clock completion time `ready_at`).
    BgReady {
        /// Region number.
        region: u16,
        /// Whether the job was enqueued speculatively.
        speculative: bool,
    },
    /// A background job failed (stamped with the job's enqueue cycles on
    /// the session clock — a failed job never advances a worker clock).
    BgFailed {
        /// Region number.
        region: u16,
        /// Whether the worker panicked (the region is then pinned to its
        /// fallback copy) rather than returning an ordinary error.
        panicked: bool,
    },
    /// A finished background instance was installed into the session.
    BgInstall {
        /// Region number.
        region: u16,
        /// Code words installed.
        words: u32,
        /// Whether the job was enqueued speculatively.
        speculative: bool,
        /// Fork-measured set-up cycles (worker clock; reporting only).
        setup_cycles: u64,
        /// Fork-measured stitch cycles (worker clock; reporting only).
        stitch_cycles: u64,
    },
    /// A speculative stitch job was enqueued from a key prediction.
    SpeculateIssue {
        /// Region number.
        region: u16,
    },
    /// A speculative instance was installed on demand (the prediction
    /// paid off).
    SpeculateHit {
        /// Region number.
        region: u16,
    },
    /// Synthesized once when the trace is sealed for export: speculative
    /// jobs issued that were never installed.
    SpeculateWaste {
        /// Region number.
        region: u16,
        /// Issued-but-never-installed speculative jobs so far.
        wasted: u64,
    },
    /// The fault plan injected a fault ([`crate::FaultPlan`]).
    FaultInjected {
        /// Region number.
        region: u16,
        /// Which fault point fired.
        point: FaultPoint,
    },
    /// A failed operation is being retried after a virtual-cycle backoff
    /// (stamped after the backoff charge).
    RecoveryRetry {
        /// Region number.
        region: u16,
        /// Attempt number (1-based).
        attempt: u32,
        /// Backoff cycles charged for this attempt.
        backoff: u64,
    },
    /// The region crossed [`crate::RecoveryPolicy::quarantine_after`]
    /// failures and is quarantined: served by its static fallback copy
    /// when the artifact has one, otherwise degraded to interpretive
    /// stitching.
    Quarantined {
        /// Region number.
        region: u16,
    },
    /// The pre-install verifier rejected a stitched instance; nothing
    /// was installed.
    VerifyReject {
        /// Region number.
        region: u16,
    },
    /// Installed code crossed a step of the byte-budget degradation
    /// ladder ([`crate::RecoveryPolicy::code_budget_bytes`]).
    BudgetDegrade {
        /// Region whose installation crossed the step.
        region: u16,
        /// The new ladder level (1 = plans off, 2 = fallback only).
        level: u8,
    },
    /// A native dispatch took `count` direct (chained) transfers —
    /// back-patched exits, dispatch-table jumps, or guard hits — without
    /// bouncing through the VM loop.
    NativeChained {
        /// Region of the dispatched instance ([`crate::STATIC_REGION`]
        /// for static-code instances).
        region: u16,
        /// Direct transfers taken during the dispatch.
        count: u64,
    },
    /// A native instance was installed (or kept) without direct
    /// threading: a chain request was declined by a fault or by
    /// `--no-native-chain`, so its entries bounce through the VM loop.
    NativeUnchained {
        /// Region of the unchained instance ([`crate::STATIC_REGION`]
        /// for static-code instances).
        region: u16,
    },
}

impl EventKind {
    /// The region this event belongs to.
    pub fn region(&self) -> u16 {
        match *self {
            EventKind::RegionEnter { region, .. }
            | EventKind::KeyedLookup { region, .. }
            | EventKind::KeyedEvict { region }
            | EventKind::SetupStart { region }
            | EventKind::SetupEnd { region, .. }
            | EventKind::StitchStart { region }
            | EventKind::StitchEnd { region, .. }
            | EventKind::Inlined { region, .. }
            | EventKind::PlanPatch { region, .. }
            | EventKind::CacheLookup { region, .. }
            | EventKind::CacheInstall { region, .. }
            | EventKind::CacheEvict { region, .. }
            | EventKind::TierDispatch { region }
            | EventKind::FallbackRun { region }
            | EventKind::BgReady { region, .. }
            | EventKind::BgFailed { region, .. }
            | EventKind::BgInstall { region, .. }
            | EventKind::SpeculateIssue { region }
            | EventKind::SpeculateHit { region }
            | EventKind::SpeculateWaste { region, .. }
            | EventKind::FaultInjected { region, .. }
            | EventKind::RecoveryRetry { region, .. }
            | EventKind::Quarantined { region }
            | EventKind::VerifyReject { region }
            | EventKind::BudgetDegrade { region, .. }
            | EventKind::NativeChained { region, .. }
            | EventKind::NativeUnchained { region } => region,
        }
    }

    /// Stable event name (JSONL `event` field, Chrome `name`).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RegionEnter { .. } => "RegionEnter",
            EventKind::KeyedLookup { .. } => "KeyedLookup",
            EventKind::KeyedEvict { .. } => "KeyedEvict",
            EventKind::SetupStart { .. } => "SetupStart",
            EventKind::SetupEnd { .. } => "SetupEnd",
            EventKind::StitchStart { .. } => "StitchStart",
            EventKind::StitchEnd { .. } => "StitchEnd",
            EventKind::Inlined { .. } => "Inlined",
            EventKind::PlanPatch { .. } => "PlanPatch",
            EventKind::CacheLookup { .. } => "CacheLookup",
            EventKind::CacheInstall { .. } => "CacheInstall",
            EventKind::CacheEvict { .. } => "CacheEvict",
            EventKind::TierDispatch { .. } => "TierDispatch",
            EventKind::FallbackRun { .. } => "FallbackRun",
            EventKind::BgReady { .. } => "BgReady",
            EventKind::BgFailed { .. } => "BgFailed",
            EventKind::BgInstall { .. } => "BgInstall",
            EventKind::SpeculateIssue { .. } => "SpeculateIssue",
            EventKind::SpeculateHit { .. } => "SpeculateHit",
            EventKind::SpeculateWaste { .. } => "SpeculateWaste",
            EventKind::FaultInjected { .. } => "FaultInjected",
            EventKind::RecoveryRetry { .. } => "RecoveryRetry",
            EventKind::Quarantined { .. } => "Quarantined",
            EventKind::VerifyReject { .. } => "VerifyReject",
            EventKind::BudgetDegrade { .. } => "BudgetDegrade",
            EventKind::NativeChained { .. } => "NativeChained",
            EventKind::NativeUnchained { .. } => "NativeUnchained",
        }
    }
}

/// Log₂-bucketed cycle histogram: bucket 0 counts zero-cycle samples,
/// bucket *i* counts samples in `[2^(i-1), 2^i)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleHistogram {
    /// Bucket counts.
    pub buckets: [u64; 33],
}

impl Default for CycleHistogram {
    fn default() -> Self {
        CycleHistogram { buckets: [0; 33] }
    }
}

impl CycleHistogram {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let b = if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()).min(32) as usize
        };
        self.buckets[b] += 1;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Index of the highest non-empty bucket (`None` when empty) — lets
    /// renderers trim trailing zeros deterministically.
    pub fn last_nonzero(&self) -> Option<usize> {
        (0..self.buckets.len()).rev().find(|&i| self.buckets[i] > 0)
    }
}

/// Per-region aggregates accumulated from the event stream. Unlike the
/// ring buffer these never drop, so they remain exact oracles for the
/// self-check however long the session runs.
#[derive(Clone, Debug, Default)]
pub struct RegionProfile {
    /// Region number.
    pub region: u16,
    /// `EnterRegion` traps serviced.
    pub invocations: u64,
    /// Keyed-cache lookups performed.
    pub keyed_lookups: u64,
    /// Keyed-cache lookups that hit.
    pub keyed_hits: u64,
    /// Keyed-cache entries evicted.
    pub keyed_evictions: u64,
    /// Set-up runs completed.
    pub setup_runs: u64,
    /// VM cycles spent in set-up code (sum over `SetupEnd`).
    pub setup_cycles: u64,
    /// Histogram of per-run set-up cycles.
    pub setup_hist: CycleHistogram,
    /// Stitches completed.
    pub stitches: u64,
    /// Cost-model stitcher cycles (sum over `StitchEnd`).
    pub stitch_cycles: u64,
    /// Instructions stitched (sum over `StitchEnd`).
    pub instructions_stitched: u64,
    /// Histogram of per-stitch cycles.
    pub stitch_hist: CycleHistogram,
    /// Inlined-call replays (sum over `Inlined`: one per compile-time
    /// inline site per synchronous stitch).
    pub inlined_calls: u64,
    /// Plan patches recorded.
    pub plan_patches: u64,
    /// Shared-cache probes.
    pub shared_lookups: u64,
    /// Shared-cache probes that hit.
    pub shared_cache_hits: u64,
    /// Shared-cache instances installed (equals the engine's
    /// `shared_hits` counter: every hit is installed).
    pub shared_installs: u64,
    /// Shared-cache instances this session's publications evicted.
    pub shared_evictions: u64,
    /// Demand stitch jobs dispatched to the background pool.
    pub dispatches: u64,
    /// Entries that ran the fallback copy.
    pub fallback_runs: u64,
    /// Background jobs that resolved successfully.
    pub bg_ready: u64,
    /// Background jobs that failed (error or panic).
    pub bg_failed: u64,
    /// Background instances installed.
    pub bg_installs: u64,
    /// Fork-measured set-up cycles of installed background instances.
    pub bg_setup_cycles: u64,
    /// Fork-measured stitch cycles of installed background instances.
    pub bg_stitch_cycles: u64,
    /// Speculative jobs issued.
    pub spec_issued: u64,
    /// Speculative instances installed on demand.
    pub spec_installs: u64,
    /// Faults injected by the fault plan.
    pub faults_injected: u64,
    /// Retries performed after failures.
    pub retries: u64,
    /// Times this region was quarantined (0 or 1 per session).
    pub quarantines: u64,
    /// Instances the pre-install verifier rejected.
    pub verify_rejects: u64,
    /// Byte-budget ladder steps this region's installs crossed.
    pub budget_degrades: u64,
    /// Native direct (chained) transfers attributed to this region.
    pub native_chained: u64,
    /// First session-cycle stamp at which stitched code for this region
    /// became available to run (first install or first keyed hit): the
    /// crossing point after which every entry proceeds at the asymptotic
    /// rate. `None` while the region only ever ran set-up or fallback.
    pub first_stitched_at: Option<u64>,
}

impl RegionProfile {
    /// Keyed-cache hit ratio (0 when no lookups).
    pub fn keyed_hit_ratio(&self) -> f64 {
        ratio(self.keyed_hits, self.keyed_lookups)
    }

    /// Shared-cache hit ratio (0 when no probes).
    pub fn shared_hit_ratio(&self) -> f64 {
        ratio(self.shared_cache_hits, self.shared_lookups)
    }

    /// Fraction of issued speculative jobs that were installed on demand
    /// (0 when none were issued).
    pub fn speculation_accuracy(&self) -> f64 {
        ratio(self.spec_installs, self.spec_issued)
    }

    /// Speculative jobs issued but never installed (so far).
    pub fn spec_wasted(&self) -> u64 {
        self.spec_issued.saturating_sub(self.spec_installs)
    }
}

fn ratio(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// The per-session trace: bounded event ring plus exact per-region
/// aggregates. Owned by [`crate::Session`] when tracing is enabled.
#[derive(Debug)]
pub struct TraceState {
    capacity: usize,
    ring: VecDeque<TraceEvent>,
    dropped: u64,
    profiles: Vec<RegionProfile>,
    sealed: bool,
}

impl TraceState {
    /// Fresh state for `regions` regions.
    pub(crate) fn new(opts: &TraceOptions, regions: usize) -> Self {
        TraceState {
            capacity: opts.capacity.max(1),
            ring: VecDeque::new(),
            dropped: 0,
            profiles: (0..regions)
                .map(|i| RegionProfile {
                    region: i as u16,
                    ..RegionProfile::default()
                })
                .collect(),
            sealed: false,
        }
    }

    /// Record an event: update the aggregates, then push into the ring
    /// (dropping the oldest event when full).
    pub(crate) fn emit(&mut self, at: u64, clock: ClockDomain, kind: EventKind) {
        self.aggregate(at, &kind);
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceEvent { at, clock, kind });
    }

    fn aggregate(&mut self, at: u64, kind: &EventKind) {
        // Native events can carry the static-region sentinel
        // (`crate::STATIC_REGION`), which has no profile row; aggregate
        // them nowhere rather than indexing out of range.
        let Some(p) = self.profiles.get_mut(kind.region() as usize) else {
            return;
        };
        match *kind {
            EventKind::RegionEnter { .. } => p.invocations += 1,
            EventKind::KeyedLookup { hit, .. } => {
                p.keyed_lookups += 1;
                if hit {
                    p.keyed_hits += 1;
                    p.first_stitched_at.get_or_insert(at);
                }
            }
            EventKind::KeyedEvict { .. } => p.keyed_evictions += 1,
            EventKind::SetupStart { .. } => {}
            EventKind::SetupEnd { cycles, .. } => {
                p.setup_runs += 1;
                p.setup_cycles += cycles;
                p.setup_hist.record(cycles);
            }
            EventKind::StitchStart { .. } => {}
            EventKind::StitchEnd {
                cycles,
                instructions,
                ..
            } => {
                p.stitches += 1;
                p.stitch_cycles += cycles;
                p.instructions_stitched += u64::from(instructions);
                p.stitch_hist.record(cycles);
                p.first_stitched_at.get_or_insert(at);
            }
            EventKind::Inlined { .. } => p.inlined_calls += 1,
            EventKind::PlanPatch { .. } => p.plan_patches += 1,
            EventKind::CacheLookup { hit, .. } => {
                p.shared_lookups += 1;
                if hit {
                    p.shared_cache_hits += 1;
                }
            }
            EventKind::CacheInstall { .. } => {
                p.shared_installs += 1;
                p.first_stitched_at.get_or_insert(at);
            }
            EventKind::CacheEvict { count, .. } => p.shared_evictions += count,
            EventKind::TierDispatch { .. } => p.dispatches += 1,
            EventKind::FallbackRun { .. } => p.fallback_runs += 1,
            EventKind::BgReady { .. } => p.bg_ready += 1,
            EventKind::BgFailed { .. } => p.bg_failed += 1,
            EventKind::BgInstall {
                speculative,
                setup_cycles,
                stitch_cycles,
                ..
            } => {
                p.bg_installs += 1;
                p.bg_setup_cycles += setup_cycles;
                p.bg_stitch_cycles += stitch_cycles;
                if speculative {
                    p.spec_installs += 1;
                }
                p.first_stitched_at.get_or_insert(at);
            }
            EventKind::SpeculateIssue { .. } => p.spec_issued += 1,
            EventKind::SpeculateHit { .. } => {}
            EventKind::SpeculateWaste { .. } => {}
            EventKind::FaultInjected { .. } => p.faults_injected += 1,
            EventKind::RecoveryRetry { .. } => p.retries += 1,
            EventKind::Quarantined { .. } => p.quarantines += 1,
            EventKind::VerifyReject { .. } => p.verify_rejects += 1,
            EventKind::BudgetDegrade { .. } => p.budget_degrades += 1,
            EventKind::NativeChained { count, .. } => p.native_chained += count,
            EventKind::NativeUnchained { .. } => {}
        }
    }

    /// Seal the trace for export: synthesize one `SpeculateWaste` event
    /// per region with outstanding speculative work, stamped `now`.
    /// Idempotent — later calls are no-ops, so repeated exports of the
    /// same trace are byte-identical.
    pub(crate) fn seal(&mut self, now: u64) {
        if self.sealed {
            return;
        }
        self.sealed = true;
        let waste: Vec<(u16, u64)> = self
            .profiles
            .iter()
            .filter(|p| p.spec_wasted() > 0)
            .map(|p| (p.region, p.spec_wasted()))
            .collect();
        for (region, wasted) in waste {
            self.emit(
                now,
                ClockDomain::Session,
                EventKind::SpeculateWaste { region, wasted },
            );
        }
    }

    /// Events currently held in the ring (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Events dropped from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Per-region aggregates.
    pub fn profiles(&self) -> &[RegionProfile] {
        &self.profiles
    }

    /// Verify that cycle attribution summed over trace events equals the
    /// engine's per-region [`RegionReport`] counters exactly.
    ///
    /// # Errors
    /// The first mismatching counter, with both values.
    pub fn self_check(&self, reports: &[RegionReport]) -> Result<(), String> {
        if reports.len() != self.profiles.len() {
            return Err(format!(
                "trace self-check: {} regions reported, {} profiled",
                reports.len(),
                self.profiles.len()
            ));
        }
        for (i, (r, p)) in reports.iter().zip(self.profiles.iter()).enumerate() {
            let checks: [(&str, u64, u64); 16] = [
                ("invocations", r.invocations, p.invocations),
                ("stitches", u64::from(r.stitches), p.stitches),
                (
                    "instructions_stitched",
                    u64::from(r.instructions_stitched),
                    p.instructions_stitched,
                ),
                ("setup_cycles", r.setup_cycles, p.setup_cycles),
                ("stitch_cycles", r.stitch_cycles, p.stitch_cycles),
                ("shared_hits", r.shared_hits, p.shared_installs),
                ("evictions", r.evictions, p.keyed_evictions),
                ("fallback_runs", r.fallback_runs, p.fallback_runs),
                ("bg_installs", r.bg_installs, p.bg_installs),
                ("spec_installs", r.spec_installs, p.spec_installs),
                ("bg_setup_cycles", r.bg_setup_cycles, p.bg_setup_cycles),
                ("bg_stitch_cycles", r.bg_stitch_cycles, p.bg_stitch_cycles),
                ("faults_injected", r.faults_injected, p.faults_injected),
                ("retries", r.retries, p.retries),
                ("inlined_calls", r.inlined_calls, p.inlined_calls),
                ("native_chained", r.native_chained, p.native_chained),
            ];
            for (name, reported, traced) in checks {
                if reported != traced {
                    return Err(format!(
                        "trace self-check: region {i} {name}: report says {reported}, \
                         trace events sum to {traced}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Render the ring as JSON Lines, one event per line, with a stable
    /// key order — byte-identical across runs for deterministic
    /// configurations.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.ring {
            jsonl_line(e, &mut out);
            out.push('\n');
        }
        out
    }

    /// Render the ring in Chrome `trace_event` JSON (load via
    /// `chrome://tracing` or Perfetto). Set-up and stitch phases become
    /// complete (`"X"`) spans; everything else is an instant event. The
    /// `tid` encodes the clock domain: 0 = session, 1 = stitcher cost
    /// model, 1000+n = virtual worker n.
    pub fn render_chrome(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for e in &self.ring {
            if !first {
                out.push(',');
            }
            first = false;
            chrome_event(e, &mut out);
        }
        out.push_str("]}");
        out
    }
}

fn clock_label(c: ClockDomain, out: &mut String) {
    match c {
        ClockDomain::Session => out.push_str("\"session\""),
        ClockDomain::Worker(w) => {
            let _ = write!(out, "\"w{w}\"");
        }
    }
}

fn chrome_tid(c: ClockDomain, kind: &EventKind) -> u32 {
    match c {
        ClockDomain::Worker(w) => 1000 + u32::from(w),
        ClockDomain::Session => match kind {
            // The stitcher's cycles are cost-model accounted, not spent on
            // the session clock, so its spans get their own lane.
            EventKind::StitchEnd { .. } | EventKind::StitchStart { .. } => 1,
            _ => 0,
        },
    }
}

fn jsonl_line(e: &TraceEvent, out: &mut String) {
    let _ = write!(out, "{{\"at\":{},\"clock\":", e.at);
    clock_label(e.clock, out);
    let _ = write!(out, ",\"event\":\"{}\"", e.kind.name());
    event_fields(&e.kind, out);
    out.push('}');
}

/// Append the `,"key":value` pairs specific to the event kind.
fn event_fields(kind: &EventKind, out: &mut String) {
    let _ = match *kind {
        EventKind::RegionEnter { region, keyed } => {
            write!(out, ",\"region\":{region},\"keyed\":{keyed}")
        }
        EventKind::KeyedLookup { region, hit } => {
            write!(out, ",\"region\":{region},\"hit\":{hit}")
        }
        EventKind::KeyedEvict { region }
        | EventKind::SetupStart { region }
        | EventKind::StitchStart { region }
        | EventKind::TierDispatch { region }
        | EventKind::FallbackRun { region }
        | EventKind::SpeculateIssue { region }
        | EventKind::SpeculateHit { region } => write!(out, ",\"region\":{region}"),
        EventKind::SetupEnd { region, cycles } => {
            write!(out, ",\"region\":{region},\"cycles\":{cycles}")
        }
        EventKind::StitchEnd {
            region,
            cycles,
            instructions,
            holes_inline,
            holes_big,
            const_branches,
            loop_iterations,
            plan_hits,
            plan_misses,
        } => write!(
            out,
            ",\"region\":{region},\"cycles\":{cycles},\"instructions\":{instructions},\
             \"holes_inline\":{holes_inline},\"holes_big\":{holes_big},\
             \"const_branches\":{const_branches},\"loop_iterations\":{loop_iterations},\
             \"plan_hits\":{plan_hits},\"plan_misses\":{plan_misses}"
        ),
        EventKind::Inlined {
            region,
            callee,
            depth,
        } => write!(
            out,
            ",\"region\":{region},\"callee\":{callee},\"depth\":{depth}"
        ),
        EventKind::PlanPatch {
            region,
            word,
            value,
        } => write!(
            out,
            ",\"region\":{region},\"word\":{word},\"value\":{value}"
        ),
        EventKind::CacheLookup { region, hit } => {
            write!(out, ",\"region\":{region},\"hit\":{hit}")
        }
        EventKind::CacheInstall { region, words } => {
            write!(out, ",\"region\":{region},\"words\":{words}")
        }
        EventKind::CacheEvict { region, count } => {
            write!(out, ",\"region\":{region},\"count\":{count}")
        }
        EventKind::BgReady {
            region,
            speculative,
        } => write!(out, ",\"region\":{region},\"speculative\":{speculative}"),
        EventKind::BgFailed { region, panicked } => {
            write!(out, ",\"region\":{region},\"panicked\":{panicked}")
        }
        EventKind::BgInstall {
            region,
            words,
            speculative,
            setup_cycles,
            stitch_cycles,
        } => write!(
            out,
            ",\"region\":{region},\"words\":{words},\"speculative\":{speculative},\
             \"setup_cycles\":{setup_cycles},\"stitch_cycles\":{stitch_cycles}"
        ),
        EventKind::SpeculateWaste { region, wasted } => {
            write!(out, ",\"region\":{region},\"wasted\":{wasted}")
        }
        EventKind::FaultInjected { region, point } => {
            write!(out, ",\"region\":{region},\"point\":\"{}\"", point.name())
        }
        EventKind::RecoveryRetry {
            region,
            attempt,
            backoff,
        } => write!(
            out,
            ",\"region\":{region},\"attempt\":{attempt},\"backoff\":{backoff}"
        ),
        EventKind::Quarantined { region } | EventKind::VerifyReject { region } => {
            write!(out, ",\"region\":{region}")
        }
        EventKind::BudgetDegrade { region, level } => {
            write!(out, ",\"region\":{region},\"level\":{level}")
        }
        EventKind::NativeChained { region, count } => {
            write!(out, ",\"region\":{region},\"count\":{count}")
        }
        EventKind::NativeUnchained { region } => {
            write!(out, ",\"region\":{region}")
        }
    };
}

fn chrome_event(e: &TraceEvent, out: &mut String) {
    let tid = chrome_tid(e.clock, &e.kind);
    match e.kind {
        // Set-up ran on the session clock for `cycles` ending at `at`.
        EventKind::SetupEnd { region, cycles } => {
            let _ = write!(
                out,
                "{{\"name\":\"setup\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\
                 \"dur\":{cycles},\"args\":{{\"region\":{region}}}}}",
                e.at.saturating_sub(cycles)
            );
        }
        // The stitcher's cost-model cycles occupy their own lane starting
        // at the stamp (the session clock does not advance during them).
        EventKind::StitchEnd { region, cycles, .. } => {
            let _ = write!(
                out,
                "{{\"name\":\"stitch\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\
                 \"dur\":{cycles},\"args\":{{\"region\":{region}}}}}",
                e.at
            );
        }
        _ => {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{tid},\"ts\":{}\
                 ,\"args\":{{",
                e.kind.name(),
                e.at
            );
            // Reuse the JSONL field renderer, dropping its leading comma.
            let mut fields = String::new();
            event_fields(&e.kind, &mut fields);
            out.push_str(fields.strip_prefix(',').unwrap_or(&fields));
            out.push_str("}}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = CycleHistogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        h.record(u64::MAX);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2..3
        assert_eq!(h.buckets[3], 1); // 4..7
        assert_eq!(h.buckets[32], 1); // clamped tail
        assert_eq!(h.total(), 6);
        assert_eq!(h.last_nonzero(), Some(32));
    }

    #[test]
    fn ring_drops_oldest_but_profiles_stay_exact() {
        let mut t = TraceState::new(&TraceOptions { capacity: 2 }, 1);
        for i in 0..5u64 {
            t.emit(
                i,
                ClockDomain::Session,
                EventKind::RegionEnter {
                    region: 0,
                    keyed: false,
                },
            );
        }
        assert_eq!(t.events().count(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.profiles()[0].invocations, 5);
    }

    #[test]
    fn jsonl_has_stable_shape() {
        let mut t = TraceState::new(&TraceOptions::default(), 1);
        t.emit(
            7,
            ClockDomain::Session,
            EventKind::KeyedLookup {
                region: 0,
                hit: true,
            },
        );
        t.emit(
            9,
            ClockDomain::Worker(2),
            EventKind::BgReady {
                region: 0,
                speculative: false,
            },
        );
        let s = t.render_jsonl();
        assert_eq!(
            s,
            "{\"at\":7,\"clock\":\"session\",\"event\":\"KeyedLookup\",\"region\":0,\"hit\":true}\n\
             {\"at\":9,\"clock\":\"w2\",\"event\":\"BgReady\",\"region\":0,\"speculative\":false}\n"
        );
        assert_eq!(t.profiles()[0].keyed_hit_ratio(), 1.0);
        assert_eq!(t.profiles()[0].first_stitched_at, Some(7));
    }

    #[test]
    fn seal_is_idempotent_and_emits_waste() {
        let mut t = TraceState::new(&TraceOptions::default(), 1);
        for _ in 0..3 {
            t.emit(
                1,
                ClockDomain::Session,
                EventKind::SpeculateIssue { region: 0 },
            );
        }
        t.seal(50);
        t.seal(60);
        let rendered = t.render_jsonl();
        let lines: Vec<&str> = rendered.lines().map(|l| l.trim()).collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].contains("\"SpeculateWaste\""));
        assert!(lines[3].contains("\"wasted\":3"));
        assert!(lines[3].contains("\"at\":50"));
        assert_eq!(t.profiles()[0].speculation_accuracy(), 0.0);
    }

    #[test]
    fn self_check_catches_drift() {
        let mut t = TraceState::new(&TraceOptions::default(), 1);
        t.emit(
            1,
            ClockDomain::Session,
            EventKind::RegionEnter {
                region: 0,
                keyed: false,
            },
        );
        let mut report = RegionReport {
            invocations: 1,
            ..RegionReport::default()
        };
        assert!(t.self_check(&[report]).is_ok());
        report.invocations = 2;
        let err = t.self_check(&[report]).unwrap_err();
        assert!(err.contains("invocations"), "{err}");
    }
}
