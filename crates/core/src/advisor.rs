//! The annotation advisor: "what would specialization buy here?"
//!
//! The paper's §7 lists *"tools to help the programmer identify good
//! dynamic regions"* as future work. This module is that tool: it takes
//! un-annotated MiniC source and, for each function, evaluates the
//! hypothesis *"parameter `p` is a run-time constant"* by running the real
//! §3.1 analyses over a pseudo-region spanning the whole function body —
//! with every loop hypothetically `unrolled` (loops the unrolling check
//! rejects are withdrawn and the analysis re-run, so reported numbers only
//! credit legal annotations).
//!
//! The result ranks parameters by how much of the function folds away,
//! which is exactly the judgement a programmer makes before writing
//! `dynamicRegion (p)`.
//!
//! ```
//! let advice = dyncomp::advise(
//!     "int power(int k, int x) {
//!          int r = 1;
//!          int i;
//!          for (i = 0; i < k; i++) { r = r * x; }
//!          return r;
//!      }",
//! )?;
//! let f = &advice[0];
//! // Holding k constant unrolls the loop and folds the control flow;
//! // holding x constant folds almost nothing.
//! assert!(f.params[0].score() > f.params[1].score());
//! assert_eq!(f.params[0].unrollable_loops, 1);
//! # Ok::<(), dyncomp::Error>(())
//! ```

use crate::Error;
use dyncomp_analysis::{analyze_region, AnalysisConfig, RegionAnalysis};
use dyncomp_frontend::LowerOptions;
use dyncomp_ir::dom::DomTree;
use dyncomp_ir::loops::find_loops;
use dyncomp_ir::{BlockId, DynRegion, Function, IdSet, InstId, InstKind, Terminator};

/// What holding one set of parameters constant would buy.
#[derive(Clone, Debug)]
pub struct Hypothesis {
    /// Parameter indices assumed constant.
    pub params: Vec<usize>,
    /// Instructions the analysis proves are run-time constants (excluding
    /// compile-time literals, which are constant regardless).
    pub const_insts: usize,
    /// Instructions eligible for folding (same exclusion).
    pub total_insts: usize,
    /// Branches/switches that would become stitch-time `CONST_BRANCH`es.
    pub const_branches: usize,
    /// Multi-way branches in the function.
    pub total_branches: usize,
    /// Loops that could legally be annotated `unrolled` and completely
    /// unrolled under this hypothesis.
    pub unrollable_loops: usize,
    /// Natural loops in the function.
    pub total_loops: usize,
}

impl Hypothesis {
    /// Fraction of foldable instructions that fold, in `[0, 1]` — the
    /// headline number for ranking annotation candidates.
    pub fn score(&self) -> f64 {
        if self.total_insts == 0 {
            0.0
        } else {
            self.const_insts as f64 / self.total_insts as f64
        }
    }
}

/// Advice for one function: one [`Hypothesis`] per parameter, plus the
/// all-parameters-constant bound.
#[derive(Clone, Debug)]
pub struct FunctionAdvice {
    /// Function name.
    pub func: String,
    /// Single-parameter hypotheses, in parameter order.
    pub params: Vec<Hypothesis>,
    /// Every parameter held constant at once (the upper bound any
    /// annotation of this function can reach).
    pub all_params: Hypothesis,
}

impl FunctionAdvice {
    /// Parameter indices worth annotating: those whose single-parameter
    /// score reaches `threshold` (the paper's kernels sit well above 0.3).
    pub fn recommended(&self, threshold: f64) -> Vec<usize> {
        self.params
            .iter()
            .filter(|h| h.score() >= threshold)
            .flat_map(|h| h.params.iter().copied())
            .collect()
    }
}

/// Analyze un-annotated source and report, per function, what each
/// parameter would buy as a `dynamicRegion` constant.
///
/// Existing annotations in `src` are ignored (the advisor judges the plain
/// program, the way a programmer annotating from scratch would).
///
/// # Errors
/// Front-end failures only; the advisor never rejects a hypothesis, it
/// just scores it.
pub fn advise(src: &str) -> Result<Vec<FunctionAdvice>, Error> {
    let lowered = dyncomp_frontend::compile(
        src,
        &LowerOptions {
            honor_annotations: false,
            tiered_fallback: false,
        },
    )?;
    let mut module = lowered.module;
    let mut out = Vec::new();
    for fid in module.funcs.ids().collect::<Vec<_>>() {
        let f = &mut module.funcs[fid];
        dyncomp_ir::ssa::construct_ssa(f);
        dyncomp_opt::optimize(
            f,
            &dyncomp_opt::OptOptions {
                cfg_simplify: true,
                hole_scope: None,
            },
        );
        dyncomp_ir::cfg::split_critical_edges(f);
        let n_params = f.params.len();
        let template = f.clone();

        let mut params = Vec::new();
        for p in 0..n_params {
            params.push(evaluate(&template, &[p]));
        }
        let all: Vec<usize> = (0..n_params).collect();
        let all_params = evaluate(&template, &all);
        out.push(FunctionAdvice {
            func: template.name.clone(),
            params,
            all_params,
        });
    }
    Ok(out)
}

/// Score one hypothesis on a clean clone of the function.
fn evaluate(template: &Function, params: &[usize]) -> Hypothesis {
    let mut f = template.clone();
    let roots: Vec<InstId> = param_insts(&f, params);

    // Pseudo-region spanning every reachable block.
    let blocks: IdSet<BlockId> = dyncomp_ir::cfg::reachable(&f);
    let rid = f.regions.push(DynRegion {
        entry: f.entry,
        blocks: blocks.clone(),
        const_roots: roots,
        key_roots: Vec::new(),
    });

    // Pass 1: hypothetically unroll every loop, then withdraw the flags
    // the legality check rejects and re-analyze with only the legal set.
    let dom = DomTree::compute(&f);
    let forest = find_loops(&f, &dom);
    let headers: Vec<BlockId> = forest.loops.iter().map(|l| l.header).collect();
    for &h in &headers {
        f.blocks[h].unrolled_header = true;
    }
    let total_loops = headers.len();
    let analysis = analyze_region(&f, rid, &AnalysisConfig::default());
    let legal: Vec<BlockId> = headers
        .iter()
        .copied()
        .filter(|&h| {
            dyncomp_analysis::unroll::check_unrollable(&f, rid, &analysis, &forest, h).is_ok()
        })
        .collect();
    let analysis = if legal.len() == total_loops {
        analysis
    } else {
        for &h in &headers {
            f.blocks[h].unrolled_header = legal.contains(&h);
        }
        analyze_region(&f, rid, &AnalysisConfig::default())
    };

    count(&f, &blocks, &analysis, params, legal.len(), total_loops)
}

/// The `Param` instructions realizing the chosen parameter indices (a
/// parameter the optimizer removed as dead contributes nothing).
fn param_insts(f: &Function, params: &[usize]) -> Vec<InstId> {
    let mut roots = Vec::new();
    for (_, blk) in f.iter_blocks() {
        for &i in &blk.insts {
            if let InstKind::Param(p) = f.kind(i) {
                if params.contains(&(*p as usize)) {
                    roots.push(i);
                }
            }
        }
    }
    roots
}

fn count(
    f: &Function,
    blocks: &IdSet<BlockId>,
    analysis: &RegionAnalysis,
    params: &[usize],
    unrollable_loops: usize,
    total_loops: usize,
) -> Hypothesis {
    let mut const_insts = 0;
    let mut total_insts = 0;
    let mut const_branches = 0;
    let mut total_branches = 0;
    for b in blocks.iter() {
        for &i in &f.blocks[b].insts {
            // Literals and parameter reads are free either way; counting
            // them would flatter every hypothesis equally.
            if matches!(f.kind(i), InstKind::Const(_) | InstKind::Param(_)) {
                continue;
            }
            total_insts += 1;
            if analysis.is_const(i) {
                const_insts += 1;
            }
        }
        match f.blocks[b].term {
            Terminator::Branch { .. } | Terminator::Switch { .. } => {
                total_branches += 1;
                if analysis.const_branches.contains(b) {
                    const_branches += 1;
                }
            }
            _ => {}
        }
    }
    Hypothesis {
        params: params.to_vec(),
        const_insts,
        total_insts,
        const_branches,
        total_branches,
        unrollable_loops,
        total_loops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_function_prefers_the_exponent() {
        let advice = advise(
            r#"
            int power(int k, int x) {
                int r = 1;
                int i;
                for (i = 0; i < k; i++) { r = r * x; }
                return r;
            }
            "#,
        )
        .unwrap();
        let f = &advice[0];
        assert_eq!(f.func, "power");
        assert_eq!(f.params.len(), 2);
        let k = &f.params[0];
        let x = &f.params[1];
        assert_eq!(k.unrollable_loops, 1, "k constant => loop unrolls");
        assert_eq!(k.total_loops, 1);
        assert_eq!(x.unrollable_loops, 0, "x constant does not bound the loop");
        assert!(
            k.score() > x.score(),
            "k {:.2} vs x {:.2}",
            k.score(),
            x.score()
        );
        assert!(k.const_branches >= 1, "the loop test becomes constant");
        assert_eq!(f.recommended(0.5), vec![0]);
    }

    #[test]
    fn cache_lookup_prefers_the_cache() {
        let advice = advise(
            r#"
            struct setStructure { unsigned tag; };
            struct cacheLine { struct setStructure **sets; };
            struct Cache {
                unsigned blockSize;
                unsigned numLines;
                struct cacheLine **lines;
                int associativity;
            };
            int cacheLookup(unsigned addr, struct Cache *cache) {
                unsigned blockSize = cache->blockSize;
                unsigned numLines = cache->numLines;
                unsigned tag = addr / (blockSize * numLines);
                unsigned line = (addr / blockSize) % numLines;
                struct setStructure **setArray = cache->lines[line]->sets;
                int assoc = cache->associativity;
                int set;
                for (set = 0; set < assoc; set++) {
                    if (setArray[set]->tag == tag)
                        return 1;
                }
                return 0;
            }
            "#,
        )
        .unwrap();
        let f = &advice[0];
        let addr = &f.params[0];
        let cache = &f.params[1];
        assert!(
            cache.score() > addr.score(),
            "cache {:.2} vs addr {:.2}",
            cache.score(),
            addr.score()
        );
        assert_eq!(cache.unrollable_loops, 1, "assoc bounds the set loop");
        // Both parameters together cover at least what cache alone does.
        assert!(f.all_params.const_insts >= cache.const_insts);
    }

    #[test]
    fn dynamic_only_function_scores_zero_everywhere() {
        let advice = advise("int add(int a, int b) { return a + b; }").unwrap();
        let f = &advice[0];
        // a + b needs both; single-parameter hypotheses fold nothing.
        assert_eq!(f.params[0].const_insts, 0);
        assert_eq!(f.params[1].const_insts, 0);
        assert_eq!(f.all_params.const_insts, f.all_params.total_insts);
        assert!(f.recommended(0.3).is_empty());
    }

    #[test]
    fn dispatcher_shape_matches_the_papers_annotation() {
        // The §5 event dispatcher annotates the guard list; the advisor,
        // shown the un-annotated interpreter, should reach the same
        // conclusion: the guard struct dominates, the event doesn't.
        let advice = advise(
            r#"
            struct Guards { int n; int *kind; int *param; };
            int dispatch(struct Guards *g, int ev) {
                int result = 0;
                int i;
                for (i = 0; i < g->n; i++) {
                    int match = 0;
                    switch (g->kind[i]) {
                        case 0: match = ev == g->param[i]; break;
                        case 1: match = ev != g->param[i]; break;
                        default: match = ev < g->param[i]; break;
                    }
                    result += match;
                }
                return result;
            }
            "#,
        )
        .unwrap();
        let f = &advice[0];
        let g = &f.params[0];
        let ev = &f.params[1];
        assert!(g.score() > ev.score());
        assert_eq!(g.unrollable_loops, 1, "g->n bounds the guard loop");
        assert!(
            g.const_branches >= 2,
            "loop test and guard-kind switch resolve: {g:?}"
        );
        assert_eq!(f.recommended(0.3), vec![0], "annotate the guard list only");
    }

    #[test]
    fn existing_annotations_are_ignored() {
        let annotated = r#"
            int f(int k, int x) {
                dynamicRegion (k) { return k * x; }
            }
        "#;
        let advice = advise(annotated).unwrap();
        assert_eq!(advice[0].params.len(), 2);
    }

    #[test]
    fn dead_parameters_contribute_nothing() {
        let advice = advise("int f(int unused, int x) { return x * 2; }").unwrap();
        let f = &advice[0];
        assert_eq!(f.params[0].const_insts, 0);
    }
}
